"""Benchmark — Figure 5: observed probability of timing failures.

Same sweep as Figure 4; the claim validated here is the paper's headline
result: the observed timing-failure probability stays below the failure
budget ``1 − Pc`` the client declared.
"""

from repro.experiments import fig45_selection

from benchmarks.conftest import attach_rows

DEADLINES = (100.0, 140.0, 200.0)
PROBABILITIES = (0.9, 0.5, 0.0)


def test_fig5_timing_failures(benchmark):
    points = benchmark.pedantic(
        lambda: fig45_selection.run(
            deadlines_ms=DEADLINES, probabilities=PROBABILITIES, seeds=(0, 1)
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            p.min_probability,
            p.deadline_ms,
            p.failure_probability,
            p.tolerated_failure_probability,
        )
        for p in points
    ]
    attach_rows(
        benchmark, ["Pc", "deadline_ms", "observed", "tolerated"], rows
    )
    print()
    print("Figure 5: observed probability of timing failures (client 2)")
    for row in rows:
        print(f"  Pc={row[0]:<4}  deadline={row[1]:>5.0f} ms  "
              f"observed={row[2]:.3f}  tolerated={row[3]:.3f}")

    # The paper's validation: every configuration keeps the observed
    # failure probability within the client's budget.
    for p in points:
        assert p.failure_probability <= p.tolerated_failure_probability + 1e-9
    # And comfortably so for the strict client (paper: max 0.08 vs 0.10).
    strict = [p for p in points if p.min_probability == 0.9]
    assert max(p.failure_probability for p in strict) <= 0.1
