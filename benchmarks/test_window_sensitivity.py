"""Benchmark — Ablation A3: sliding-window size sensitivity (§5.2)."""

from repro.experiments import window_sensitivity

from benchmarks.conftest import attach_rows


def test_window_sensitivity(benchmark):
    results = benchmark.pedantic(
        lambda: window_sensitivity.run(
            window_sizes=(2, 5, 20), seeds=(0, 1)
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (r.workload, r.window_size, r.failure_probability, r.mean_redundancy)
        for r in results
    ]
    attach_rows(
        benchmark,
        ["workload", "window", "failure_prob", "redundancy"],
        rows,
    )
    print()
    print("Sliding-window sensitivity (deadline 140 ms, Pc = 0.9)")
    for row in rows:
        print(f"  {row[0]:<11} l={row[1]:<3} failures={row[2]:.3f}  "
              f"redundancy={row[3]:.2f}")

    stationary = {
        r.window_size: r for r in results if r.workload == "stationary"
    }
    # On the paper's stationary workload every window size holds the
    # budget — the paper's l=5 choice is not load-bearing there.
    assert all(r.failure_probability <= 0.1 for r in stationary.values())
