"""Benchmark — Ablation A11: queue-depth-scaled estimation under load."""

from repro.experiments import queue_scaling

from benchmarks.conftest import attach_rows


def test_queue_scaling(benchmark):
    points = benchmark.pedantic(
        lambda: queue_scaling.run(
            client_counts=(2, 6), seeds=(0, 1), num_requests=25
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (p.estimator, p.num_clients, p.failure_probability, p.mean_redundancy)
        for p in points
    ]
    attach_rows(
        benchmark, ["estimator", "clients", "failure_prob", "redundancy"], rows
    )
    print()
    print("Queue-scaled estimation (deadline 160 ms, Pc = 0.9)")
    for row in rows:
        print(f"  {row[0]:<18} clients={row[1]:<3} failures={row[2]:.3f}  "
              f"redundancy={row[3]:.2f}")

    cell = {(p.estimator, p.num_clients): p for p in points}
    windowed = cell[("windowed (paper)", 6)]
    scaled = cell[("queue-scaled", 6)]
    # At medium load the queue-aware model achieves a comparable failure
    # rate without hedging more than the lagging windowed model.
    assert scaled.mean_redundancy <= windowed.mean_redundancy + 0.2
    assert abs(scaled.failure_probability - windowed.failure_probability) < 0.1
