"""Benchmarks — the paper's §8 extension ablations (A6, A7, A8)."""

from repro.experiments import bursty_network, method_classification, probing

from benchmarks.conftest import attach_rows


def test_active_probing(benchmark):
    """A6: probes rescue QoS when information goes stale between bursts."""
    results = benchmark.pedantic(
        lambda: probing.run(seeds=(0, 1), num_requests=30),
        rounds=1,
        iterations=1,
    )
    rows = [
        (r.variant, r.failure_probability, r.mean_redundancy, r.probes_sent)
        for r in results
    ]
    attach_rows(
        benchmark, ["variant", "failure_prob", "redundancy", "probes"], rows
    )
    print()
    print("Active probing (idle client, toggling LAN, budget 0.10)")
    for row in rows:
        print(f"  {row[0]:<20} failures={row[1]:.3f}  "
              f"redundancy={row[2]:.2f}  probes={row[3]:.0f}")

    by_name = {r.variant: r for r in results}
    without = by_name["without probes"]
    with_probes = by_name["with active probes"]
    assert with_probes.probes_sent > 0
    assert without.probes_sent == 0
    # Probing must cut the failure rate on this workload.
    assert with_probes.failure_probability < without.failure_probability


def test_method_classification(benchmark):
    """A7: per-method models find the specialist replicas."""
    results = benchmark.pedantic(
        lambda: method_classification.run(seeds=(0, 1), num_requests=40),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            r.variant,
            r.failure_probability,
            r.cheap_redundancy,
            r.heavy_redundancy,
        )
        for r in results
    ]
    attach_rows(
        benchmark,
        ["variant", "failure_prob", "process_redundancy", "analyze_redundancy"],
        rows,
    )
    print()
    print("Per-method classification (specialist replicas, budget 0.10)")
    for row in rows:
        print(f"  {row[0]:<26} failures={row[1]:.3f}  "
              f"redundancy={row[2]:.2f}/{row[3]:.2f}")

    by_name = {r.variant: r for r in results}
    pooled = by_name["pooled (paper base)"]
    classified = by_name["classified (per-method)"]
    # Classification meets the budget with far less redundancy: the
    # pooled model cannot tell specialists apart and over-broadcasts.
    assert classified.failure_probability <= 0.1
    assert classified.heavy_redundancy < pooled.heavy_redundancy
    assert classified.cheap_redundancy < pooled.cheap_redundancy


def test_bursty_network_gateway_window(benchmark):
    """A8: windowed T_i never does worse than last-value on bursty LANs."""
    results = benchmark.pedantic(
        lambda: bursty_network.run(seeds=(0, 1, 2), num_requests=40),
        rounds=1,
        iterations=1,
    )
    rows = [
        (r.variant, r.failure_probability, r.mean_redundancy)
        for r in results
    ]
    attach_rows(benchmark, ["variant", "failure_prob", "redundancy"], rows)
    print()
    print("Gateway-delay representation on a bursty LAN (budget 0.10)")
    for row in rows:
        print(f"  {row[0]:<24} failures={row[1]:.3f}  redundancy={row[2]:.2f}")

    by_name = {r.variant: r for r in results}
    base = by_name["last value (paper base)"]
    windowed = by_name["window of 5"]
    # Both meet the budget (the paper's simplification holds on a LAN);
    # the window must not hurt.
    assert base.failure_probability <= 0.1
    assert windowed.failure_probability <= base.failure_probability + 0.02
