"""Benchmark — Ablation A14: the adaptation transient around a crash."""

from repro.experiments import adaptation_timeline

from benchmarks.conftest import attach_rows

CRASH_WINDOW = (10_000.0, 12_500.0)


def test_adaptation_timeline(benchmark):
    buckets = benchmark.pedantic(
        lambda: adaptation_timeline.run(seed=0), rounds=1, iterations=1
    )
    rows = [
        (b.policy, b.start_ms, b.requests, b.failures, b.timeouts)
        for b in buckets
        if b.requests
    ]
    attach_rows(
        benchmark, ["policy", "start_ms", "requests", "failures", "timeouts"],
        rows,
    )

    def crash_bucket(policy):
        return next(
            b for b in buckets
            if b.policy == policy and b.start_ms == CRASH_WINDOW[0]
        )

    dynamic = crash_bucket("dynamic (paper)")
    single = crash_bucket("single-fastest")
    print()
    print("Crash-window bucket (10.0-12.5 s; crash at t=10 s)")
    for b in (dynamic, single):
        print(f"  {b.policy:<16} requests={b.requests}  "
              f"failures={b.failures}  timeouts={b.timeouts}")

    # The §5.3.2 hedge masks the entire detection window ...
    assert dynamic.failures == 0
    assert dynamic.timeouts == 0
    # ... which single-replica routing demonstrably does not.
    assert single.failures + single.timeouts >= 1
    # Outside the window, both policies keep serving (liveness check).
    for b in buckets:
        if b.start_ms < CRASH_WINDOW[0]:
            assert b.requests > 0
