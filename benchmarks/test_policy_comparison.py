"""Benchmark — Ablation A1/A4: dynamic policy vs. related-work baselines.

Asserted shape: the paper's policy meets the failure budget with less
redundancy than send-to-all, while the informed single-replica baselines
cannot hold the budget at a tight deadline.
"""

from repro.experiments import policy_comparison

from benchmarks.conftest import attach_rows

SUBSET = {
    name: policy_comparison.POLICY_FACTORIES[name]
    for name in (
        "dynamic (paper)",
        "dynamic, no t-delta",
        "all-replicas",
        "single-fastest",
        "lowest-mean",
        "random-1",
    )
}


def test_policy_comparison(benchmark):
    results = benchmark.pedantic(
        lambda: policy_comparison.run(
            deadline_ms=120.0, min_probability=0.9, seeds=(0, 1), policies=SUBSET
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (r.policy, r.failure_probability, r.mean_redundancy, r.mean_response_ms)
        for r in results
    ]
    attach_rows(
        benchmark,
        ["policy", "failure_prob", "redundancy", "response_ms"],
        rows,
    )
    print()
    print("Policy comparison (deadline 120 ms, Pc = 0.9, budget 0.10)")
    for row in rows:
        print(f"  {row[0]:<22} failures={row[1]:.3f}  "
              f"redundancy={row[2]:.2f}  response={row[3]:.1f} ms")

    by_name = {r.policy: r for r in results}
    budget = 0.10
    # The paper's policy meets the budget.
    assert by_name["dynamic (paper)"].failure_probability <= budget
    # ... with strictly less redundancy than active replication.
    assert (
        by_name["dynamic (paper)"].mean_redundancy
        < by_name["all-replicas"].mean_redundancy
    )
    # Single-replica baselines under-hedge at this deadline.
    single_failures = min(
        by_name["single-fastest"].failure_probability,
        by_name["lowest-mean"].failure_probability,
        by_name["random-1"].failure_probability,
    )
    assert single_failures > budget
