"""Benchmark — Figure 3: selection-algorithm overhead vs. n and l.

The benchmarked callable is one full selection (distribution computation
for every replica + Algorithm 1), the per-request cost the paper plots.
"""

import pytest

from repro.core.estimator import ResponseTimeEstimator
from repro.core.selection import ReplicaProbability, select_replicas
from repro.experiments.fig3_overhead import build_loaded_repository


@pytest.mark.parametrize("window_size", [5, 10, 20])
@pytest.mark.parametrize("num_replicas", [2, 4, 6, 8])
def test_fig3_selection_overhead(benchmark, num_replicas, window_size):
    repository = build_loaded_repository(num_replicas, window_size, seed=0)
    estimator = ResponseTimeEstimator(repository)
    deadline = 150.0

    def one_selection():
        # Fresh distributions each request, as in the paper's handler.
        estimator.invalidate()
        candidates = [
            ReplicaProbability(
                name, estimator.probability_by(name, deadline)
            )
            for name in repository.replicas()
        ]
        return select_replicas(candidates, 0.9)

    result = benchmark(one_selection)
    assert 1 <= result.redundancy <= num_replicas
    benchmark.extra_info["num_replicas"] = num_replicas
    benchmark.extra_info["window_size"] = window_size


def test_fig3_distribution_computation_dominates(benchmark):
    """The paper attributes ~90 % of the overhead to the distributions."""
    from repro.experiments.fig3_overhead import measure_overhead

    point = benchmark.pedantic(
        lambda: measure_overhead(7, 5, iterations=50),
        rounds=1,
        iterations=1,
    )
    assert point.distribution_fraction > 0.8
    benchmark.extra_info["distribution_fraction"] = round(
        point.distribution_fraction, 4
    )
