"""Benchmark — Figure 3: selection-algorithm overhead vs. n and l.

The benchmarked callable is one full selection (distribution computation
for every replica + Algorithm 1), the per-request cost the paper plots.

Two variants are measured:

* **uncached** — the paper's cost model: every request rebuilds every
  distribution from the raw window samples (``incremental=False`` plus an
  explicit invalidate per selection);
* **cached** — the incremental estimator pipeline with unchanged windows,
  the steady-state hot path of the handler.

``test_cached_speedup_exported`` writes the cached-vs-uncached curves to
``BENCH_estimator.json`` at the repository root (format documented in
docs/PERFORMANCE.md) so the performance trajectory is tracked PR over PR.
"""

import pathlib

import pytest

from repro.core.estimator import ResponseTimeEstimator
from repro.core.selection import ReplicaProbability, select_replicas
from repro.experiments.fig3_overhead import (
    build_loaded_repository,
    export_estimator_bench,
    run_cached_comparison,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _one_selection(repository, estimator, deadline=150.0, invalidate=True):
    if invalidate:
        estimator.invalidate()
    replicas = repository.replicas()
    candidates = [
        ReplicaProbability(name, probability)
        for name, probability in zip(
            replicas, estimator.batch_probability_by(replicas, deadline)
        )
    ]
    return select_replicas(candidates, 0.9)


@pytest.mark.parametrize("window_size", [5, 10, 20])
@pytest.mark.parametrize("num_replicas", [2, 4, 6, 8])
def test_fig3_selection_overhead(benchmark, num_replicas, window_size):
    repository = build_loaded_repository(num_replicas, window_size, seed=0)
    # Fresh distributions each request, as in the paper's handler.
    estimator = ResponseTimeEstimator(repository, incremental=False)

    result = benchmark(lambda: _one_selection(repository, estimator))
    assert 1 <= result.redundancy <= num_replicas
    benchmark.extra_info["num_replicas"] = num_replicas
    benchmark.extra_info["window_size"] = window_size


@pytest.mark.parametrize("window_size", [20, 60])
@pytest.mark.parametrize("num_replicas", [4, 8])
def test_fig3_cached_selection_overhead(benchmark, num_replicas, window_size):
    """Steady-state cost with the incremental pipeline and warm caches."""
    repository = build_loaded_repository(num_replicas, window_size, seed=0)
    estimator = ResponseTimeEstimator(repository)
    _one_selection(repository, estimator, invalidate=False)  # warm

    result = benchmark(
        lambda: _one_selection(repository, estimator, invalidate=False)
    )
    assert 1 <= result.redundancy <= num_replicas
    assert estimator.cache_info()["misses"] <= num_replicas  # warm-up only
    benchmark.extra_info["num_replicas"] = num_replicas
    benchmark.extra_info["window_size"] = window_size


def test_fig3_distribution_computation_dominates(benchmark):
    """The paper attributes ~90 % of the overhead to the distributions."""
    from repro.experiments.fig3_overhead import measure_overhead

    point = benchmark.pedantic(
        lambda: measure_overhead(7, 5, iterations=50),
        rounds=1,
        iterations=1,
    )
    assert point.distribution_fraction > 0.8
    benchmark.extra_info["distribution_fraction"] = round(
        point.distribution_fraction, 4
    )


def test_cached_speedup_exported(benchmark):
    """Acceptance: cached δ ≥ 5× lower than uncached at l = 60.

    Also exports the full cached-vs-uncached curve set to
    ``BENCH_estimator.json`` so later PRs can compare against it.
    """
    comparisons = benchmark.pedantic(
        lambda: run_cached_comparison(
            replica_counts=(2, 4, 8),
            window_sizes=(5, 20, 60),
            iterations=100,
        ),
        rounds=1,
        iterations=1,
    )
    export_estimator_bench(comparisons, str(REPO_ROOT / "BENCH_estimator.json"))
    for comparison in comparisons:
        if comparison.window_size == 60:
            assert comparison.speedup >= 5.0, (
                f"cached path only {comparison.speedup:.1f}x faster at "
                f"n={comparison.num_replicas}, l=60"
            )
    benchmark.extra_info["speedups"] = {
        f"n={c.num_replicas},l={c.window_size}": round(c.speedup, 1)
        for c in comparisons
    }
