"""Benchmark — Ablation A13: concurrent redundancy vs. retransmission."""

from repro.experiments import retransmission

from benchmarks.conftest import attach_rows


def test_redundancy_vs_retransmission(benchmark):
    points = benchmark.pedantic(
        lambda: retransmission.run(
            deadlines_ms=(140.0, 240.0), seeds=(0, 1), num_requests=30
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            p.strategy,
            p.deadline_ms,
            p.failure_probability,
            p.messages_per_request,
        )
        for p in points
    ]
    attach_rows(
        benchmark, ["strategy", "deadline", "failure_prob", "msgs"], rows
    )
    print()
    print("Redundancy vs retransmission (crash at t=8 s, Pc = 0.9)")
    for row in rows:
        print(f"  {row[0]:<26} deadline={row[1]:>5.0f}  failures={row[2]:.3f}  "
              f"msgs/req={row[3]:.2f}")

    cell = {(p.strategy, p.deadline_ms): p for p in points}
    tight_dynamic = cell[("dynamic (paper)", 140.0)]
    tight_retry = cell[("retransmit (related work)", 140.0)]
    # The paper's §1 claim: at tight deadlines, retrying after a timeout
    # cannot substitute for concurrent redundancy.
    assert tight_dynamic.failure_probability <= 0.1
    assert tight_retry.failure_probability > tight_dynamic.failure_probability
    # The flip side, honestly reported: retransmission is cheaper.
    assert tight_retry.messages_per_request < tight_dynamic.messages_per_request