"""Benchmark — fleet-scale selection and event-kernel throughput.

CI smoke for ISSUE 7's scale targets: one *cached* selection over a
1024-replica fleet must stay under 1 ms, and the slotted event queue
must sustain a healthy dispatch rate.  ``test_scale_bench_exported``
writes the full grid (n ∈ {64, 256, 1024}, l ∈ {60, 240}) plus the
kernel throughput points to ``BENCH_scale.json`` at the repository root
(format documented in docs/PERFORMANCE.md §7) so the numbers are
tracked PR over PR; the ``bench-scale`` CI job uploads it as an
artifact.
"""

import pathlib

import numpy as np
import pytest

from repro.core.estimator import ResponseTimeEstimator
from repro.core.selection import select_replicas_arrays
from repro.experiments.bench_scale import (
    export_scale_bench,
    measure_kernel_throughput,
    measure_selection_scale,
)
from repro.experiments.fig3_overhead import build_loaded_repository

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Generous floor for the slotted queue: it clocks >300k events/sec on a
#: developer laptop; 50k trips only on a genuine regression, not on a
#: noisy CI runner.
KERNEL_EVENTS_PER_SEC_FLOOR = 50_000.0


@pytest.mark.parametrize("num_replicas", [64, 256, 1024])
def test_cached_selection_at_scale(benchmark, num_replicas):
    """Acceptance (ISSUE 7): cached selection over 1024 replicas < 1 ms."""
    repository = build_loaded_repository(num_replicas, window_size=60, seed=0)
    estimator = ResponseTimeEstimator(repository)
    replicas = repository.replicas()
    names = np.asarray(replicas)
    estimator.batch_probability_by(replicas, 150.0)  # warm

    def one_selection():
        probabilities = np.asarray(
            estimator.batch_probability_by(replicas, 150.0), dtype=float
        )
        return select_replicas_arrays(names, probabilities, 0.9)

    result = benchmark(one_selection)
    assert 1 <= result.redundancy <= num_replicas
    assert benchmark.stats.stats.mean < 1e-3, (
        f"cached selection over {num_replicas} replicas took "
        f"{benchmark.stats.stats.mean * 1e6:.0f} us (budget: 1000 us)"
    )
    benchmark.extra_info["num_replicas"] = num_replicas


def test_kernel_throughput_floor(benchmark):
    """The slotted event queue sustains the minimum dispatch rate."""
    point = benchmark.pedantic(
        lambda: measure_kernel_throughput(
            pending_timers=512, target_events=100_000
        ),
        rounds=1,
        iterations=1,
    )
    assert point.events_per_sec >= KERNEL_EVENTS_PER_SEC_FLOOR, (
        f"kernel dispatched only {point.events_per_sec:.0f} events/sec "
        f"(floor: {KERNEL_EVENTS_PER_SEC_FLOOR:.0f})"
    )
    benchmark.extra_info["events_per_sec"] = round(point.events_per_sec, 1)


def test_scale_bench_exported(benchmark):
    """Export the full scale grid to ``BENCH_scale.json``."""
    selection, kernel = benchmark.pedantic(
        lambda: (
            measure_selection_scale(
                cached_iterations=20, uncached_iterations=1
            ),
            [measure_kernel_throughput(pending_timers=n, target_events=50_000)
             for n in (64, 512, 4096)],
        ),
        rounds=1,
        iterations=1,
    )
    export_scale_bench(selection, kernel, str(REPO_ROOT / "BENCH_scale.json"))
    largest = [p for p in selection if p.num_replicas == 1024]
    assert largest, "scale grid must include the 1024-replica point"
    for point in largest:
        assert point.cached_us < 1000.0, (
            f"cached selection at n=1024, l={point.window_size} took "
            f"{point.cached_us:.0f} us (budget: 1000 us)"
        )
    benchmark.extra_info["cached_us"] = {
        f"n={p.num_replicas},l={p.window_size}": round(p.cached_us, 1)
        for p in selection
    }
