"""Benchmark — Ablation A12: routing around co-location interference."""

from repro.experiments import colocation

from benchmarks.conftest import attach_rows


def test_colocation_interference(benchmark):
    results = benchmark.pedantic(
        lambda: colocation.run(seeds=(0, 1), num_requests=30),
        rounds=1,
        iterations=1,
    )
    rows = [
        (r.policy, r.failure_probability, r.noisy_host_share, r.mean_redundancy)
        for r in results
    ]
    attach_rows(
        benchmark,
        ["policy", "failure_prob", "noisy_share", "redundancy"],
        rows,
    )
    print()
    print("Co-location interference (deadline 160 ms, Pc = 0.9)")
    for row in rows:
        print(f"  {row[0]:<22} failures={row[1]:.3f}  "
              f"noisy replies={row[2]:.3f}  redundancy={row[3]:.2f}")

    by_name = {r.policy: r for r in results}
    dynamic = by_name["dynamic (paper)"]
    blind = by_name["random-2 (load-blind)"]
    # The measurement loop steers the dynamic policy to the quiet hosts.
    assert dynamic.noisy_host_share < blind.noisy_host_share
    assert dynamic.failure_probability <= 0.1
    assert dynamic.failure_probability <= blind.failure_probability
