"""Benchmark — Ablation A2: the single-crash guarantee of §5.3.2."""

from repro.experiments import crash_tolerance

from benchmarks.conftest import attach_rows


def test_crash_tolerance(benchmark):
    results = benchmark.pedantic(
        lambda: crash_tolerance.run(seeds=(0, 1, 2)), rounds=1, iterations=1
    )
    rows = [
        (r.policy, r.failure_probability, r.timeout_fraction, r.mean_redundancy)
        for r in results
    ]
    attach_rows(
        benchmark,
        ["policy", "failure_prob", "timeout_frac", "redundancy"],
        rows,
    )
    print()
    print("Crash tolerance (replica-1 crashes at t=10 s; budget 0.10)")
    for row in rows:
        print(f"  {row[0]:<24} failures={row[1]:.3f}  "
              f"timeouts={row[2]:.3f}  redundancy={row[3]:.2f}")

    by_name = {r.policy: r for r in results}
    # The paper's policy keeps the budget through the crash.
    assert by_name["dynamic (paper)"].failure_probability <= 0.10
    # The hedged set masks the crash entirely: no request times out.
    assert by_name["dynamic (paper)"].timeout_fraction == 0.0
    # Higher tolerance never hedges with fewer replicas.
    assert (
        by_name["dynamic, 2-crash hedge"].mean_redundancy
        >= by_name["dynamic (paper)"].mean_redundancy
    )
    assert (
        by_name["dynamic (paper)"].mean_redundancy
        >= by_name["dynamic, no crash hedge"].mean_redundancy
    )
