"""Benchmark — Ablation A5: scalability with concurrent clients (§1/§4)."""

from repro.experiments import scalability

from benchmarks.conftest import attach_rows


def test_scalability(benchmark):
    points = benchmark.pedantic(
        lambda: scalability.run(
            client_counts=(1, 4, 8), seeds=(0, 1), num_requests=30
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            p.policy,
            p.num_clients,
            p.failure_probability,
            p.mean_redundancy,
            p.server_load_amplification,
        )
        for p in points
    ]
    attach_rows(
        benchmark,
        ["policy", "clients", "failure_prob", "redundancy", "amplification"],
        rows,
    )
    print()
    print("Scalability (deadline 160 ms, Pc = 0.9)")
    for row in rows:
        print(f"  {row[0]:<16} clients={row[1]:<3} failures={row[2]:.3f}  "
              f"redundancy={row[3]:.2f}  msgs/request={row[4]:.2f}")

    cell = {(p.policy, p.num_clients): p for p in points}
    # Send-to-all amplifies server load ~7x regardless of client count.
    assert cell[("all-replicas", 8)].server_load_amplification > 6.0
    # The dynamic policy stays well below that at every scale.
    for clients in (1, 4, 8):
        assert (
            cell[("dynamic (paper)", clients)].server_load_amplification
            < cell[("all-replicas", clients)].server_load_amplification
        )
    # It meets the failure budget at light load ...
    assert cell[("dynamic (paper)", 1)].failure_probability <= 0.1
    assert cell[("dynamic (paper)", 4)].failure_probability <= 0.1
    # ... and under congestion (8 clients make the 160 ms deadline
    # infeasible) it still degrades more gracefully than no-redundancy
    # selection, at a fraction of send-to-all's load.
    assert (
        cell[("dynamic (paper)", 8)].failure_probability
        < cell[("single-fastest", 8)].failure_probability
    )
