"""Benchmark — Figure 4: average number of replicas selected.

Runs the paper's two-client sweep and prints the Fig. 4 series.  The
shape assertions encode the paper's two observations: redundancy falls
as the deadline grows, and as the requested probability falls.
"""

from repro.experiments import fig45_selection

from benchmarks.conftest import attach_rows

DEADLINES = (100.0, 140.0, 200.0)
PROBABILITIES = (0.9, 0.5, 0.0)


def test_fig4_replicas_selected(benchmark):
    points = benchmark.pedantic(
        lambda: fig45_selection.run(
            deadlines_ms=DEADLINES, probabilities=PROBABILITIES, seeds=(0, 1)
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (p.min_probability, p.deadline_ms, p.avg_replicas_selected)
        for p in points
    ]
    attach_rows(benchmark, ["Pc", "deadline_ms", "avg_replicas"], rows)
    print()
    print("Figure 4: average number of replicas selected (client 2)")
    for row in rows:
        print(f"  Pc={row[0]:<4}  deadline={row[1]:>5.0f} ms  "
              f"avg replicas={row[2]:.2f}")

    cell = {(p.min_probability, p.deadline_ms): p for p in points}
    # Observation 1: fewer replicas as the deadline grows.
    for pc in PROBABILITIES:
        assert (
            cell[(pc, 100.0)].avg_replicas_selected
            >= cell[(pc, 200.0)].avg_replicas_selected
        )
    # Observation 2: fewer replicas as the requested probability falls.
    for deadline in DEADLINES:
        assert (
            cell[(0.9, deadline)].avg_replicas_selected
            >= cell[(0.0, deadline)].avg_replicas_selected
        )
    # The Pc=0 series sits at Algorithm 1's floor of 2 (plus bootstrap).
    assert cell[(0.0, 200.0)].avg_replicas_selected < 2.3
