"""Benchmark-suite configuration.

Each benchmark regenerates one figure/table of the paper (or one ablation
from DESIGN.md): it runs the corresponding experiment harness once under
``pytest-benchmark`` timing, prints the paper-style table (visible with
``-s``; always written to the terminal summary via ``extra_info``), and
asserts the qualitative shape so a regression fails loudly.
"""


def attach_rows(benchmark, headers, rows):
    """Store result rows on the benchmark record (shows up in JSON)."""
    benchmark.extra_info["headers"] = list(headers)
    benchmark.extra_info["rows"] = [
        [round(c, 4) if isinstance(c, float) else c for c in row]
        for row in rows
    ]
