"""Benchmark — §6 floor: minimum response time ≈ 3.5 ms."""

from repro.experiments import min_response

from benchmarks.conftest import attach_rows


def test_min_response_floor(benchmark):
    result = benchmark.pedantic(
        lambda: min_response.run(num_requests=100), rounds=1, iterations=1
    )
    attach_rows(
        benchmark,
        ["min_ms", "mean_ms", "paper_ms"],
        [(result.min_response_ms, result.mean_response_ms, 3.5)],
    )
    print()
    print(
        f"Minimum response time: {result.min_response_ms:.2f} ms "
        f"(mean {result.mean_response_ms:.2f} ms; paper ~3.5 ms)"
    )
    assert 1.0 <= result.min_response_ms <= 6.0
