"""Benchmarks — §5.1 factor decomposition, A9 calibration, A10 omission."""

from repro.experiments import calibration, factors, omission_faults

from benchmarks.conftest import attach_rows


def test_factors_decomposition(benchmark):
    """§5.1: service + queueing dominate; network is a small fraction."""
    rows_data = benchmark.pedantic(
        lambda: factors.run(num_requests=60), rounds=1, iterations=1
    )
    rows = [
        (r.stage, r.mean_ms, r.p90_ms, r.share_of_total) for r in rows_data
    ]
    attach_rows(benchmark, ["stage", "mean_ms", "p90_ms", "share"], rows)
    print()
    print("Response-time factors (winning-reply path)")
    for row in rows:
        print(f"  {row[0]:<12} mean={row[1]:7.2f} ms  p90={row[2]:7.2f} ms  "
              f"share={row[3]:.3f}")

    by_stage = {r.stage: r for r in rows_data}
    network_share = (
        by_stage["request-net"].share_of_total
        + by_stage["reply-net"].share_of_total
    )
    # The paper's independence argument: network is a small fraction.
    assert network_share < 0.15
    # Equation 2's three factors dominate the total.
    assert (
        by_stage["service"].share_of_total
        + by_stage["queueing"].share_of_total
        + network_share
    ) > 0.9


def test_model_calibration(benchmark):
    """A9: the Eq. 1 model is calibrated on the paper's LAN and degrades
    under correlated congestion."""
    results = benchmark.pedantic(
        lambda: calibration.run(seeds=(0, 1), num_requests=40),
        rounds=1,
        iterations=1,
    )
    rows = [
        (r.regime, r.brier, r.max_overconfidence) for r in results
    ]
    attach_rows(benchmark, ["regime", "brier", "max_overconfidence"], rows)
    print()
    print("Equation 1 calibration")
    for row in rows:
        print(f"  {row[0]:<28} brier={row[1]:.4f}  "
              f"max overconfidence={row[2]:+.3f}")

    by_regime = {r.regime: r for r in results}
    independent = by_regime["independent (paper LAN)"]
    correlated = by_regime["correlated (shared switch)"]
    # Reasonably calibrated where the paper's assumption holds ...
    assert independent.brier < 0.12
    assert independent.max_overconfidence < 0.1
    # ... and strictly worse when response times are correlated.
    assert correlated.brier > independent.brier


def test_omission_faults(benchmark):
    """A10: redundancy masks message loss; single-replica routing cannot."""
    points = benchmark.pedantic(
        lambda: omission_faults.run(
            loss_rates=(0.0, 0.05), seeds=(0, 1), num_requests=30
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (p.policy, p.loss_probability, p.failure_probability, p.timeout_fraction)
        for p in points
    ]
    attach_rows(
        benchmark, ["policy", "loss", "failure_prob", "timeout_frac"], rows
    )
    print()
    print("Omission faults (deadline 180 ms, Pc = 0.9)")
    for row in rows:
        print(f"  {row[0]:<16} loss={row[1]:.2f}  failures={row[2]:.3f}  "
              f"timeouts={row[3]:.3f}")

    cell = {(p.policy, p.loss_probability): p for p in points}
    # The dynamic policy holds the budget through 5 % link loss.
    assert cell[("dynamic (paper)", 0.05)].failure_probability <= 0.1
    # Single-replica routing suffers more at the same loss rate.
    assert (
        cell[("single-fastest", 0.05)].failure_probability
        > cell[("dynamic (paper)", 0.05)].failure_probability
    )
