"""Probe/staleness interaction: a replica whose model window goes stale
while a verification probe is already in flight must not be double-probed,
and the in-flight probe must not make the record look fresh."""

from repro.health import HealthConfig, HealthState
from repro.sim.random import Constant

from .conftest import MiniStack


def probing_client(stack: MiniStack, **kwargs):
    kwargs.setdefault("deadline_ms", 1000.0)
    kwargs.setdefault("probe_staleness_ms", 50.0)
    kwargs.setdefault("probe_interval_ms", 100.0)
    return stack.add_client("client-1", **kwargs)


class TestInFlightGuard:
    def test_stale_replica_is_probed_once_not_twice(self):
        stack = MiniStack()
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = probing_client(stack)
        # Cold record -> infinitely stale -> due.  The first tick sends
        # exactly one probe; while it is in flight (no reply processed,
        # the simulator never ran) a second tick must not send another.
        client._probe_tick()
        assert client.probes_sent == 1
        assert len(client._probes_in_flight) == 1
        client._probe_tick()
        assert client.probes_sent == 1

    def test_health_due_probe_is_not_duplicated_while_in_flight(self):
        stack = MiniStack()
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = probing_client(
            stack,
            probe_staleness_ms=None,
            health_config=HealthConfig(
                suspect_after=2, quarantine_after=1, backoff_initial_ms=50.0
            ),
        )
        for at in (1.0, 2.0, 3.0):
            client.health.record_fault("replica-1", at)
        assert client.health.state("replica-1") is HealthState.QUARANTINED
        client.health.record_for("replica-1").next_probe_at_ms = 0.0
        client._probe_tick()
        assert client.probes_sent == 1
        # Force the replica due again: even so, the in-flight guard wins.
        client.health.record_for("replica-1").next_probe_at_ms = 0.0
        client._probe_tick()
        assert client.probes_sent == 1

    def test_both_paths_due_still_yield_a_single_probe(self):
        # Staleness AND health both nominate the same replica in one tick.
        stack = MiniStack()
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = probing_client(
            stack,
            health_config=HealthConfig(
                suspect_after=1, quarantine_after=1, backoff_initial_ms=50.0
            ),
        )
        client.health.record_fault("replica-1", 1.0)  # SUSPECTED: due every tick
        assert client.health.state("replica-1") is HealthState.SUSPECTED
        client._probe_tick()
        assert client.probes_sent == 1

    def test_in_flight_probe_does_not_refresh_the_record(self):
        stack = MiniStack()
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = probing_client(stack)
        stack.invoke("client-1", 0)
        stack.sim.run()
        record = client.repository.record("replica-1")
        updated_at = record.last_update_ms
        client._send_probe("replica-1")
        # Only the probe *reply* refreshes the window; the send must not.
        assert record.last_update_ms == updated_at

    def test_expired_probe_frees_the_slot_for_reprobing(self):
        stack = MiniStack()
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = probing_client(stack)
        client._probe_tick()
        assert client.probes_sent == 1
        (msg_id,) = client._probes_in_flight
        client._expire_probe(msg_id)
        assert client._probes_in_flight == {}
        client._probe_tick()
        assert client.probes_sent == 2

    def test_probe_expiry_feeds_health_as_probe_failure(self):
        stack = MiniStack()
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = probing_client(
            stack,
            probe_staleness_ms=None,
            health_config=HealthConfig(
                suspect_after=2, quarantine_after=1, backoff_initial_ms=50.0
            ),
        )
        for at in (1.0, 2.0):
            client.health.record_fault("replica-1", at)
        assert client.health.state("replica-1") is HealthState.SUSPECTED
        client._probe_tick()  # suspected replicas are probed every tick
        (msg_id,) = client._probes_in_flight
        client._expire_probe(msg_id)
        assert client.health.state("replica-1") is HealthState.QUARANTINED
