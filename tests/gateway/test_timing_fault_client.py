"""Unit tests for the client side of the timing fault handler."""

import pytest

from repro.core.qos import QoSSpec
from repro.sim.random import Constant

from .conftest import SERVICE


def test_qos_service_must_match_interface(stack):
    stack.add_server("replica-1")
    with pytest.raises(ValueError):
        stack.add_client("client-1", deadline_ms=100.0).renegotiate_qos(
            QoSSpec("other", 100.0, 0.5)
        )


def test_first_request_bootstraps_to_all_replicas(stack):
    for i in range(3):
        stack.add_server(f"replica-{i + 1}", service_time=Constant(10.0))
    stack.add_client("client-1", deadline_ms=1000.0)
    event = stack.invoke("client-1", 0)
    stack.sim.run()
    assert event.value.redundancy == 3
    assert event.value.decision_meta.get("bootstrap") is True


def test_second_request_uses_the_model(stack):
    for i in range(3):
        stack.add_server(f"replica-{i + 1}", service_time=Constant(10.0))
    stack.add_client("client-1", deadline_ms=1000.0, min_probability=0.0)
    first = stack.invoke("client-1", 0)
    stack.sim.run()
    second = stack.invoke("client-1", 1)
    stack.sim.run()
    assert second.value.decision_meta.get("bootstrap") is False
    # Pc = 0 selects Algorithm 1's floor of two replicas.
    assert second.value.redundancy == 2


def test_first_reply_wins_and_duplicates_update_repository(stack):
    stack.add_server("replica-fast", service_time=Constant(10.0))
    stack.add_server("replica-slow", service_time=Constant(80.0))
    client = stack.add_client("client-1", deadline_ms=1000.0)
    event = stack.invoke("client-1", 0)  # bootstrap: goes to both
    stack.sim.run()
    assert event.value.replica == "replica-fast"
    # The slow duplicate was discarded but its perf data retained.
    slow = client.repository.record("replica-slow")
    assert len(slow.service_times) == 1
    assert slow.gateway_delay_ms is not None


def test_response_time_measured_from_interception(stack):
    stack.add_server("replica-1", service_time=Constant(40.0))
    stack.add_client("client-1", deadline_ms=1000.0)
    event = stack.invoke("client-1", 0)
    stack.sim.run()
    tr = event.value.response_time_ms
    # service 40 + two 1 ms hops; no jitter, no marshalling in MiniStack.
    assert tr == pytest.approx(42.0, abs=0.5)


def test_timing_failure_detected_when_late(stack):
    stack.add_server("replica-1", service_time=Constant(100.0))
    client = stack.add_client("client-1", deadline_ms=50.0)
    event = stack.invoke("client-1", 0)
    stack.sim.run()
    assert event.value.timely is False
    assert not event.value.timed_out  # the reply did arrive, just late
    assert client.stats.timing_failures == 1


def test_gateway_delay_computation(stack):
    stack.add_server("replica-1", service_time=Constant(40.0))
    client = stack.add_client("client-1", deadline_ms=1000.0)
    stack.invoke("client-1", 0)
    stack.sim.run()
    record = client.repository.record("replica-1")
    # td = t4 - t1 - tq - ts = round-trip minus queue minus service = 2 ms.
    assert record.gateway_delay_ms == pytest.approx(2.0, abs=0.2)


def test_expiry_when_no_replica_replies(stack):
    server = stack.add_server("replica-1", service_time=Constant(10.0))
    client = stack.add_client("client-1", deadline_ms=20.0)
    server.crash()
    event = stack.invoke("client-1", 0)
    stack.sim.run()
    outcome = event.value
    assert outcome.timed_out
    assert outcome.timely is False
    assert outcome.response_time_ms >= 20.0 * client.response_timeout_factor - 1
    assert client.stats.timing_failures == 1


def test_view_change_purges_crashed_replica(stack):
    stack.add_server("replica-1", service_time=Constant(10.0))
    stack.add_server("replica-2", service_time=Constant(10.0))
    client = stack.add_client("client-1", deadline_ms=1000.0)
    stack.sim.run()
    assert client.repository.replicas() == ["replica-1", "replica-2"]
    stack.lan.mark_down("replica-2")
    stack.servers["replica-2"].crash()
    stack.sim.run(until=stack.sim.now + 500.0)
    assert client.repository.replicas() == ["replica-1"]


def test_requests_avoid_evicted_replica(stack):
    stack.add_server("replica-1", service_time=Constant(10.0))
    stack.add_server("replica-2", service_time=Constant(10.0))
    client = stack.add_client("client-1", deadline_ms=1000.0)
    stack.sim.run()
    stack.lan.mark_down("replica-2")
    stack.servers["replica-2"].crash()
    stack.sim.run(until=stack.sim.now + 500.0)
    event = stack.invoke("client-1", 0)
    stack.sim.run()
    assert event.value.replica == "replica-1"
    assert event.value.redundancy == 1


def test_violation_callback_fires_once_per_episode(stack):
    stack.add_server("replica-1", service_time=Constant(100.0))
    violations = []
    client = stack.add_client(
        "client-1",
        deadline_ms=50.0,
        min_probability=0.9,
        violation_callback=lambda svc, p, spec: violations.append((svc, p)),
        min_violation_samples=3,
    )
    for i in range(5):
        event = stack.invoke("client-1", i)
        stack.sim.run()
    assert len(violations) == 1  # edge-triggered, not once per failure
    assert violations[0][0] == SERVICE
    assert violations[0][1] < 0.9


def test_renegotiation_resets_stats(stack):
    stack.add_server("replica-1", service_time=Constant(100.0))
    client = stack.add_client("client-1", deadline_ms=50.0, min_probability=0.9)
    event = stack.invoke("client-1", 0)
    stack.sim.run()
    assert client.stats.timing_failures == 1
    client.renegotiate_qos(QoSSpec(SERVICE, 500.0, 0.5))
    assert client.stats.responses == 0
    event = stack.invoke("client-1", 1)
    stack.sim.run()
    assert event.value.timely  # the new deadline is generous


def test_constructor_validation(stack):
    stack.add_server("replica-1")
    with pytest.raises(ValueError):
        stack.add_client("client-x", deadline_ms=100.0, response_timeout_factor=1.0)
    with pytest.raises(ValueError):
        stack.add_client("client-y", deadline_ms=100.0, selection_charge_ms=-1.0)


def test_stale_perf_push_does_not_resurrect_evicted_replica(stack):
    from repro.gateway.handlers.timing_fault import MSG_PERF, PerformanceUpdate
    from repro.net.message import Message

    stack.add_server("replica-1", service_time=Constant(10.0))
    client = stack.add_client("client-1", deadline_ms=1000.0)
    stack.sim.run()
    client.repository.remove_replica("replica-1")
    perf = PerformanceUpdate(
        replica="replica-1", service=SERVICE,
        service_time_ms=10.0, queue_delay_ms=0.0, queue_length=0,
    )
    client.handle_message(
        Message(
            sender="replica-1", destination="client-1", kind=MSG_PERF,
            payload={"service": SERVICE, "replica": "replica-1", "perf": perf},
        )
    )
    assert "replica-1" not in client.repository
