"""Tests for the retransmission-based client handler."""

import pytest

from repro.gateway.handlers.retransmit import RetransmittingClientHandler
from repro.sim.random import Constant

from .conftest import MiniStack


def _stack_with(handler_kwargs=None, servers=2, service_time=None):
    stack = MiniStack()
    for index in range(servers):
        stack.add_server(
            f"replica-{index + 1}", service_time=service_time or Constant(10.0)
        )
    return stack


def _add_retry_client(stack, deadline=200.0, **kwargs):
    from repro.core.qos import QoSSpec
    from repro.gateway.gateway import Gateway
    from repro.orb.orb import Orb

    stack.lan.add_host("client-1")
    handler = RetransmittingClientHandler(
        sim=stack.sim,
        host="client-1",
        transport=stack.transport,
        group_comm=stack.group_comm,
        interface=stack.interface,
        qos=QoSSpec("search", deadline, 0.0),
        marshalling=stack.marshalling,
        selection_charge_ms=0.0,
        rng=stack.streams.stream("client-1.policy"),
        **kwargs,
    )
    Gateway("client-1", stack.sim, stack.transport).load_handler(handler)
    orb = Orb()
    orb.register_interface(stack.interface)
    orb.bind_interceptor("search", handler)
    stack.clients["client-1"] = handler
    stack.stubs["client-1"] = orb.stub("search")
    return handler


def test_sends_to_single_replica_after_bootstrap():
    stack = _stack_with(servers=3)
    handler = _add_retry_client(stack)
    first = stack.invoke("client-1", 0)  # bootstrap: all replicas
    stack.sim.run()
    second = stack.invoke("client-1", 1)
    stack.sim.run()
    assert second.value.redundancy == 1
    assert handler.retransmissions == 0  # fast reply, no retry needed


def test_retransmits_when_replica_is_silent():
    stack = _stack_with(servers=2, service_time=Constant(10.0))
    handler = _add_retry_client(stack, deadline=400.0, retry_timeout_ms=50.0)
    # Warm up the model so routing is single-replica.
    event = stack.invoke("client-1", 0)
    stack.sim.run()
    # Kill the preferred replica silently (still in the view for a bit).
    preferred = event.value.replica
    stack.servers[preferred].crash()
    second = stack.invoke("client-1", 1)
    stack.sim.run()
    outcome = second.value
    assert handler.retransmissions >= 1
    assert not outcome.timed_out
    assert outcome.replica != preferred
    # The retry burned at least one retry timeout.
    assert outcome.response_time_ms > 50.0


def test_gives_up_after_max_retries():
    stack = _stack_with(servers=2)
    handler = _add_retry_client(
        stack, deadline=100.0, retry_timeout_ms=30.0, max_retries=1
    )
    stack.invoke("client-1", 0)
    stack.sim.run()
    for server in stack.servers.values():
        server.crash()
    event = stack.invoke("client-1", 1)
    stack.sim.run()
    assert event.value.timed_out
    assert handler.retransmissions == 1  # one retry, then gave up


def test_duplicate_replies_after_retransmit_are_discarded():
    # Slow service + aggressive retry: the original reply and the
    # retransmitted reply both arrive; only one outcome is delivered.
    stack = _stack_with(servers=2, service_time=Constant(80.0))
    handler = _add_retry_client(stack, deadline=1000.0, retry_timeout_ms=20.0)
    stack.invoke("client-1", 0)
    stack.sim.run()
    outcomes = []
    event = stack.invoke("client-1", 1)
    event.add_callback(lambda e: outcomes.append(e.value))
    stack.sim.run()
    assert len(outcomes) == 1
    assert handler.retransmissions >= 1


def test_parameter_validation():
    stack = _stack_with()
    with pytest.raises(ValueError):
        _add_retry_client(stack, retry_timeout_ms=0.0)
    stack2 = _stack_with()
    with pytest.raises(ValueError):
        _add_retry_client(stack2, max_retries=-1)


def test_rejects_custom_policy():
    from repro.core.baselines import RandomPolicy

    stack = _stack_with()
    with pytest.raises(ValueError):
        _add_retry_client(stack, policy=RandomPolicy(1))


def test_default_retry_timeout_is_half_deadline():
    stack = _stack_with()
    handler = _add_retry_client(stack, deadline=300.0)
    assert handler._effective_retry_timeout() == pytest.approx(150.0)


def test_retry_backoff_doubles_up_to_the_cap():
    stack = _stack_with()
    handler = _add_retry_client(
        stack,
        deadline=300.0,
        retry_timeout_ms=25.0,
        retry_backoff_factor=2.0,
        retry_timeout_cap_ms=100.0,
    )
    waits = [handler._effective_retry_timeout(attempt) for attempt in (1, 2, 3, 4)]
    assert waits == pytest.approx([25.0, 50.0, 100.0, 100.0])


def test_backoff_factor_one_restores_fixed_intervals():
    stack = _stack_with()
    handler = _add_retry_client(
        stack, deadline=300.0, retry_timeout_ms=30.0, retry_backoff_factor=1.0
    )
    assert handler._effective_retry_timeout(1) == pytest.approx(30.0)
    assert handler._effective_retry_timeout(7) == pytest.approx(30.0)


def test_backoff_cap_defaults_to_the_deadline():
    stack = _stack_with()
    handler = _add_retry_client(stack, deadline=300.0, retry_timeout_ms=50.0)
    # 50 × 2^9 ≫ 300; the implicit cap is max(base, deadline) = 300.
    assert handler._effective_retry_timeout(10) == pytest.approx(300.0)


def test_backoff_parameter_validation():
    stack = _stack_with()
    with pytest.raises(ValueError):
        _add_retry_client(stack, retry_backoff_factor=0.5)
    stack2 = _stack_with()
    with pytest.raises(ValueError):
        _add_retry_client(stack2, retry_timeout_cap_ms=0.0)


def test_backoff_spreads_retransmissions_exponentially():
    from repro.sim.trace import Tracer

    tracer = Tracer()
    stack = _stack_with(servers=2)
    _add_retry_client(
        stack,
        deadline=1000.0,
        retry_timeout_ms=10.0,
        retry_backoff_factor=2.0,
        max_retries=3,
        tracer=tracer,
    )
    stack.invoke("client-1", 0)
    stack.sim.run()
    for server in stack.servers.values():
        server.crash()
    crashed_at = stack.sim.now
    stack.invoke("client-1", 1)
    stack.sim.run()
    times = [
        r.time
        for r in tracer.of_kind("client.retransmit")
        if r.time > crashed_at  # the warm-up request may retry too
    ]
    assert len(times) == 3
    gaps = [b - a for a, b in zip(times, times[1:])]
    # Waits of 10, 20, 40 ms -> successive gaps double.
    assert gaps == pytest.approx([20.0, 40.0])
