"""Tests for the paper's §8 extensions: classification, probing,
gateway-delay windows."""

import pytest

from repro.gateway.handlers.timing_fault import (
    DEFAULT_CLASS,
    method_classifier,
)
from repro.orb.object import MethodRequest, MethodSignature
from repro.sim.random import Constant

from .conftest import SERVICE, MiniStack


def test_method_classifier():
    request = MethodRequest("svc", "lookup", (1,))
    assert method_classifier(request) == "lookup"


class TestRequestClassification:
    def _two_method_stack(self):
        """A stack whose interface has a cheap and an expensive method."""
        stack = MiniStack()
        stack.interface.add_method(MethodSignature("heavy"))
        stack.lan.add_host("replica-1")

        from repro.gateway.gateway import Gateway
        from repro.gateway.handlers.timing_fault import TimingFaultServerHandler
        from repro.orb.object import FunctionServant
        from repro.replica.load import ServiceProfile
        from repro.replica.server import ReplicaApplication

        servant = FunctionServant(
            stack.interface,
            {"process": lambda i: i, "heavy": lambda i: -i},
        )
        app = ReplicaApplication(
            host="replica-1",
            servant=servant,
            profile=ServiceProfile(
                default=Constant(10.0),
                per_method={"heavy": Constant(120.0)},
            ),
            streams=stack.streams,
        )
        handler = TimingFaultServerHandler(
            sim=stack.sim, app=app, transport=stack.transport,
            marshalling=stack.marshalling,
        )
        Gateway("replica-1", stack.sim, stack.transport).load_handler(handler)
        stack.group_comm.join(SERVICE, "replica-1", watch=True)
        stack.servers["replica-1"] = handler
        return stack

    def test_classified_history_is_kept_apart(self):
        stack = self._two_method_stack()
        client = stack.add_client(
            "client-1", deadline_ms=1000.0, classifier=method_classifier
        )
        stub = stack.stubs["client-1"]
        for i in range(3):
            event = stub.invoke("process", i)
            stack.sim.run()
            event = stub.invoke("heavy", i)
            stack.sim.run()
        assert set(client.request_classes()) == {DEFAULT_CLASS, "process", "heavy"}
        cheap = client._repositories["process"].record("replica-1")
        costly = client._repositories["heavy"].record("replica-1")
        assert max(cheap.service_times.values()) < 20.0
        assert min(costly.service_times.values()) > 100.0

    def test_classified_model_predicts_per_method(self):
        stack = self._two_method_stack()
        client = stack.add_client(
            "client-1", deadline_ms=50.0, classifier=method_classifier
        )
        stub = stack.stubs["client-1"]
        for i in range(3):
            event = stub.invoke("process", i)
            stack.sim.run()
            event = stub.invoke("heavy", i)
            stack.sim.run()
        fast = client._estimators["process"].probability_by("replica-1", 50.0)
        slow = client._estimators["heavy"].probability_by("replica-1", 50.0)
        assert fast == pytest.approx(1.0)
        assert slow == pytest.approx(0.0)

    def test_pooled_model_blurs_the_methods(self):
        # Without classification, both methods share one history and the
        # model is wrong for both — the motivation for the extension.
        stack = self._two_method_stack()
        client = stack.add_client("client-1", deadline_ms=50.0)
        stub = stack.stubs["client-1"]
        for i in range(3):
            event = stub.invoke("process", i)
            stack.sim.run()
            event = stub.invoke("heavy", i)
            stack.sim.run()
        pooled = client.estimator.probability_by("replica-1", 50.0)
        assert 0.0 < pooled < 1.0

    def test_default_class_always_present(self):
        stack = MiniStack()
        stack.add_server("replica-1")
        client = stack.add_client("client-1")
        assert client.request_classes() == [DEFAULT_CLASS]


class TestGatewayDelayWindow:
    def test_window_collects_delays(self, stack):
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = stack.add_client(
            "client-1", deadline_ms=1000.0, gateway_window_size=4
        )
        for i in range(3):
            stack.invoke("client-1", i)
            stack.sim.run()
        record = client.repository.record("replica-1")
        assert record.gateway_delays is not None
        assert len(record.gateway_delays) == 3

    def test_estimator_convolves_gateway_distribution(self, stack):
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = stack.add_client(
            "client-1", deadline_ms=1000.0, gateway_window_size=4
        )
        for i in range(3):
            stack.invoke("client-1", i)
            stack.sim.run()
        pmf = client.estimator.response_time_pmf("replica-1")
        # Deterministic MiniStack: every T sample identical, so mean must
        # equal service + queue + T regardless of representation.
        record = client.repository.record("replica-1")
        expected = (
            sum(record.service_times.values()) / len(record.service_times)
            + sum(record.queue_delays.values()) / len(record.queue_delays)
            + record.gateway_delay_ms
        )
        assert pmf.mean() == pytest.approx(expected, abs=0.6)


class TestActiveProbing:
    def test_probe_refreshes_stale_records(self):
        stack = MiniStack()
        server = stack.add_server("replica-1", service_time=Constant(10.0))
        client = stack.add_client(
            "client-1",
            deadline_ms=1000.0,
            probe_staleness_ms=500.0,
            probe_interval_ms=100.0,
        )
        stack.invoke("client-1", 0)
        stack.sim.run()
        record = client.repository.record("replica-1")
        updated_at = record.last_update_ms
        # Idle for two seconds: the record goes stale, probes fire.
        stack.sim.run(until=stack.sim.now + 2000.0)
        assert client.probes_sent >= 1
        assert server.probes_answered >= 1
        assert record.last_update_ms > updated_at

    def test_no_probes_while_traffic_is_fresh(self):
        stack = MiniStack()
        stack.add_server("replica-1", service_time=Constant(10.0))
        client = stack.add_client(
            "client-1",
            deadline_ms=1000.0,
            probe_staleness_ms=10_000.0,
            probe_interval_ms=100.0,
        )
        stack.invoke("client-1", 0)
        stack.sim.run(until=stack.sim.now + 1000.0)
        assert client.probes_sent == 0

    def test_probes_do_not_enter_the_fifo_queue(self):
        stack = MiniStack()
        server = stack.add_server("replica-1", service_time=Constant(500.0))
        client = stack.add_client(
            "client-1",
            deadline_ms=10_000.0,
            probe_staleness_ms=50.0,
            probe_interval_ms=100.0,
        )
        # Park a long request in service, then let probes fire during it.
        stack.invoke("client-1", 0)
        stack.sim.run(until=stack.sim.now + 400.0)
        assert server.probes_answered >= 1  # answered while busy
        # The probe saw the in-service request in the queue-length count.
        assert client.repository.record("replica-1").queue_length >= 1

    def test_probing_is_daemon_activity(self):
        stack = MiniStack()
        stack.add_server("replica-1")
        stack.add_client(
            "client-1", deadline_ms=1000.0, probe_staleness_ms=100.0
        )
        stack.sim.run()  # must terminate despite the probe loop
        assert True

    def test_probe_parameter_validation(self):
        stack = MiniStack()
        stack.add_server("replica-1")
        with pytest.raises(ValueError):
            stack.add_client("client-x", probe_staleness_ms=0.0)
        with pytest.raises(ValueError):
            stack.add_client("client-y", probe_interval_ms=0.0)
