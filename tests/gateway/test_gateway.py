"""Unit tests for gateway message dispatch."""

import pytest

from repro.gateway.gateway import Gateway, GatewayError, ProtocolHandler
from repro.net.message import Message


class RecordingHandler(ProtocolHandler):
    def __init__(self, kinds, service=""):
        self.message_kinds = tuple(kinds)
        self.service = service
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


def _send(transport, sim, dest, kind, service=None):
    payload = {"service": service} if service is not None else {}
    transport.send(
        Message(sender="client-1", destination=dest, kind=kind, payload=payload)
    )
    sim.run()


def test_gateway_binds_its_host(sim, transport):
    Gateway("server-1", sim, transport)
    assert transport.is_bound("server-1")


def test_dispatch_by_kind(sim, transport):
    gateway = Gateway("server-1", sim, transport)
    handler = RecordingHandler(["ping"])
    gateway.load_handler(handler)
    _send(transport, sim, "server-1", "ping")
    assert len(handler.received) == 1


def test_dispatch_by_kind_and_service(sim, transport):
    gateway = Gateway("server-1", sim, transport)
    search = RecordingHandler(["req"], service="search")
    orders = RecordingHandler(["req"], service="orders")
    gateway.load_handler(search)
    gateway.load_handler(orders)
    _send(transport, sim, "server-1", "req", service="orders")
    assert len(orders.received) == 1
    assert len(search.received) == 0


def test_service_agnostic_fallback_route(sim, transport):
    gateway = Gateway("server-1", sim, transport)
    catch_all = RecordingHandler(["req"], service="")
    gateway.load_handler(catch_all)
    _send(transport, sim, "server-1", "req", service="whatever")
    assert len(catch_all.received) == 1


def test_unrouted_message_is_dropped_silently(sim, transport, tracer):
    gateway = Gateway("server-1", sim, transport, tracer=tracer)
    _send(transport, sim, "server-1", "mystery")
    assert tracer.of_kind("gateway.unrouted")


def test_handler_without_kinds_rejected(sim, transport):
    gateway = Gateway("server-1", sim, transport)
    with pytest.raises(GatewayError):
        gateway.load_handler(RecordingHandler([]))


def test_conflicting_route_rejected(sim, transport):
    gateway = Gateway("server-1", sim, transport)
    gateway.load_handler(RecordingHandler(["req"], service="search"))
    with pytest.raises(GatewayError):
        gateway.load_handler(RecordingHandler(["req"], service="search"))


def test_unload_frees_the_route(sim, transport):
    gateway = Gateway("server-1", sim, transport)
    handler = RecordingHandler(["req"], service="search")
    gateway.load_handler(handler)
    gateway.unload_handler(handler)
    replacement = RecordingHandler(["req"], service="search")
    gateway.load_handler(replacement)
    _send(transport, sim, "server-1", "req", service="search")
    assert len(handler.received) == 0
    assert len(replacement.received) == 1


def test_handlers_lists_distinct_handlers(sim, transport):
    gateway = Gateway("server-1", sim, transport)
    multi = RecordingHandler(["a", "b"])
    gateway.load_handler(multi)
    assert gateway.handlers() == [multi]
