"""Unit tests for the server side of the timing fault handler."""

import pytest

from repro.sim.random import Constant



def test_request_is_serviced_and_replied(stack):
    stack.add_server("replica-1", service_time=Constant(20.0))
    stack.add_client("client-1", deadline_ms=200.0)
    event = stack.invoke("client-1", 7)
    stack.sim.run()
    outcome = event.value
    assert outcome.value == 7
    assert outcome.replica == "replica-1"
    assert not outcome.timed_out


def test_fifo_ordering_under_backlog(stack):
    server = stack.add_server("replica-1", service_time=Constant(50.0))
    stack.add_client("client-1", deadline_ms=10_000.0)
    first = stack.invoke("client-1", 1)
    second = stack.invoke("client-1", 2)
    stack.sim.run()
    assert first.value.value == 1
    assert second.value.value == 2
    # The second request waited behind the first: its reply carries the
    # queuing delay in its response time.
    assert second.value.response_time_ms > first.value.response_time_ms


def test_queue_delay_reported_in_perf_data(stack):
    stack.add_server("replica-1", service_time=Constant(50.0))
    client = stack.add_client("client-1", deadline_ms=10_000.0)
    stack.invoke("client-1", 1)
    stack.invoke("client-1", 2)
    stack.sim.run()
    delays = client.repository.record("replica-1").queue_delays.values()
    assert delays[0] == pytest.approx(0.0, abs=0.01)
    assert delays[1] >= 49.0  # waited one service time


def test_service_time_reported_in_perf_data(stack):
    stack.add_server("replica-1", service_time=Constant(35.0))
    client = stack.add_client("client-1", deadline_ms=10_000.0)
    stack.invoke("client-1", 1)
    stack.sim.run()
    services = client.repository.record("replica-1").service_times.values()
    assert services == [pytest.approx(35.0)]


def test_queue_length_counts_waiting_and_in_service(stack):
    server = stack.add_server("replica-1", service_time=Constant(100.0))
    stack.add_client("client-1", deadline_ms=100_000.0)
    for i in range(3):
        stack.invoke("client-1", i)
    stack.sim.run(until=30.0)  # all three arrived; one in service
    assert server.queue_length == 3
    stack.sim.run(until=150.0)  # first finished
    assert server.queue_length == 2


def test_subscription_registers_client(stack):
    server = stack.add_server("replica-1")
    stack.add_client("client-1")
    stack.sim.run()
    assert server.subscribers == ["client-1"]


def test_perf_updates_pushed_to_other_subscribers(stack):
    stack.add_server("replica-1", service_time=Constant(10.0))
    active = stack.add_client("client-1", deadline_ms=1000.0)
    passive = stack.add_client("client-2", deadline_ms=1000.0)
    stack.sim.run()  # let subscriptions land
    stack.invoke("client-1", 1)
    stack.sim.run()
    # The passive client saw a perf push without ever sending a request.
    record = passive.repository.record("replica-1")
    assert len(record.service_times) == 1
    # But it has no gateway-delay measurement of its own yet.
    assert record.gateway_delay_ms is None


def test_crashed_server_ignores_requests(stack):
    server = stack.add_server("replica-1", service_time=Constant(10.0))
    stack.add_client("client-1", deadline_ms=50.0)
    server.crash()
    event = stack.invoke("client-1", 1)
    stack.sim.run()
    assert event.value.timed_out


def test_crash_mid_service_loses_reply(stack):
    server = stack.add_server("replica-1", service_time=Constant(100.0))
    stack.add_client("client-1", deadline_ms=50.0)
    event = stack.invoke("client-1", 1)
    stack.sim.call_in(30.0, server.crash)  # while request is in service
    stack.sim.run()
    assert event.value.timed_out


def test_restart_after_crash_processes_again(stack):
    server = stack.add_server("replica-1", service_time=Constant(10.0))
    stack.add_client("client-1", deadline_ms=1000.0)
    server.crash()
    server.restart()
    event = stack.invoke("client-1", 5)
    stack.sim.run()
    assert event.value.value == 5


def test_crash_and_restart_are_idempotent(stack):
    server = stack.add_server("replica-1")
    server.crash()
    server.crash()
    server.restart()
    server.restart()
    assert not server.crashed
