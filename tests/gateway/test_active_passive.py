"""Tests for the active and passive replication handlers."""

import pytest

from repro.core.qos import QoSSpec
from repro.gateway.handlers.active import ActiveReplicationClientHandler
from repro.gateway.handlers.passive import (
    PassiveReplicationClientHandler,
    PrimaryBackupPolicy,
)
from repro.sim.random import Constant
from repro.workload.scenarios import Scenario, ScenarioConfig


def _scenario(num_replicas=3, seed=0, **cfg):
    return Scenario(
        ScenarioConfig(
            seed=seed,
            num_replicas=num_replicas,
            service_distribution_factory=lambda host: Constant(20.0),
            **cfg,
        )
    )


def _qos(scenario, deadline=500.0):
    return QoSSpec(scenario.config.service, deadline, 0.0)


class TestActiveHandler:
    def test_broadcasts_every_request(self):
        scenario = _scenario()
        client = scenario.add_client(
            "c1",
            _qos(scenario),
            handler_cls=ActiveReplicationClientHandler,
            num_requests=5,
            think_time=Constant(50.0),
        )
        scenario.run_to_completion()
        assert all(o.redundancy == 3 for o in client.outcomes)

    def test_rejects_custom_policy(self):
        from repro.core.baselines import RandomPolicy

        scenario = _scenario()
        with pytest.raises(ValueError):
            scenario.add_client(
                "c1",
                _qos(scenario),
                handler_cls=ActiveReplicationClientHandler,
                policy=RandomPolicy(1),
            )

    def test_survives_any_single_crash_without_timeouts(self):
        scenario = _scenario()
        client = scenario.add_client(
            "c1",
            _qos(scenario),
            handler_cls=ActiveReplicationClientHandler,
            num_requests=20,
            think_time=Constant(100.0),
        )
        scenario.schedule_crash("replica-2", at_ms=500.0)
        scenario.run_to_completion()
        assert client.summary().timeouts == 0


class TestPassiveHandler:
    def test_routes_to_single_primary(self):
        scenario = _scenario()
        client = scenario.add_client(
            "c1",
            _qos(scenario),
            handler_cls=PassiveReplicationClientHandler,
            num_requests=5,
            think_time=Constant(50.0),
        )
        scenario.run_to_completion()
        replicas = {o.replica for o in client.outcomes if o.replica}
        assert replicas == {"replica-1"}  # lowest name is primary
        assert all(o.redundancy == 1 for o in client.outcomes)

    def test_primary_property(self):
        scenario = _scenario()
        scenario.add_client(
            "c1",
            _qos(scenario),
            handler_cls=PassiveReplicationClientHandler,
            num_requests=1,
        )
        handler = scenario.handlers["c1"]
        assert handler.primary == "replica-1"

    def test_backup_promoted_after_primary_crash(self):
        scenario = _scenario(seed=1, response_timeout_factor=2.0)
        client = scenario.add_client(
            "c1",
            _qos(scenario, deadline=300.0),
            handler_cls=PassiveReplicationClientHandler,
            num_requests=20,
            think_time=Constant(150.0),
        )
        scenario.schedule_crash("replica-1", at_ms=1_000.0)
        scenario.run_to_completion()
        late_replicas = {
            o.replica for o in client.outcomes[-5:] if o.replica
        }
        assert late_replicas == {"replica-2"}  # next in name order

    def test_policy_returns_empty_for_empty_view(self):
        import numpy as np

        from repro.core.estimator import ResponseTimeEstimator
        from repro.core.repository import InformationRepository
        from repro.core.selection import SelectionContext

        ctx = SelectionContext(
            replicas=[],
            estimator=ResponseTimeEstimator(InformationRepository()),
            qos=QoSSpec("s", 100.0, 0.0),
            now_ms=0.0,
            rng=np.random.default_rng(0),
        )
        assert PrimaryBackupPolicy().decide(ctx).selected == ()
