"""Property tests: per-entity substreams are order-invariant (ISSUE 6).

The tentpole contract of :mod:`repro.rng` — the sequence an entity draws
from its substream is a pure function of ``(base_seed, stream, entity)``,
never of which other entities exist, in what order they were first
touched, or how draws interleave — stated over randomized entity sets
and interleavings rather than the hand-picked cases of test_manager.py.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import RNGManager, derive_entity_seed

#: Entity ids as they appear in the codebase: host names, indices.  Key
#: parts canonicalize via ``str()`` (the documented contract), so entity
#: sets must be unique *by string form* — ``0`` and ``"0"`` are the same
#: key on purpose.
entity_ids = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-._"
        ),
        min_size=1,
        max_size=12,
    ),
)


def _unique_entities(min_size=2, max_size=6):
    return st.lists(
        entity_ids, min_size=min_size, max_size=max_size, unique_by=str
    )


@settings(max_examples=50, deadline=None)
@given(
    base_seed=st.integers(min_value=0, max_value=2**32 - 1),
    entities=_unique_entities(),
    schedule=st.lists(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=40
    ),
)
def test_interleaving_never_perturbs_an_entity(base_seed, entities, schedule):
    """Any draw interleaving gives each entity its reference sequence."""
    # Reference: each entity drawn alone, in isolation from the others.
    reference = {}
    for entity in entities:
        solo = RNGManager(base_seed=base_seed)
        reference[entity] = solo.substream("svc", entity).uniform(size=40)

    # Subject: one manager serving an arbitrary interleaved draw schedule.
    manager = RNGManager(base_seed=base_seed)
    positions = {entity: 0 for entity in entities}
    for step in schedule:
        entity = entities[step % len(entities)]
        value = manager.substream("svc", entity).uniform()
        assert value == reference[entity][positions[entity]]
        positions[entity] += 1


@settings(max_examples=50, deadline=None)
@given(
    base_seed=st.integers(min_value=0, max_value=2**32 - 1),
    entities=_unique_entities(),
    data=st.data(),
)
def test_first_touch_order_is_irrelevant(base_seed, entities, data):
    """Creating substreams in permuted order never changes any seed."""
    permuted = data.draw(st.permutations(entities))
    forward = RNGManager(base_seed=base_seed)
    shuffled = RNGManager(base_seed=base_seed)
    first = {
        e: forward.substream("svc", e).uniform() for e in entities
    }
    second = {
        e: shuffled.substream("svc", e).uniform() for e in permuted
    }
    assert first == second


@settings(max_examples=100, deadline=None)
@given(
    base_seed=st.integers(min_value=0, max_value=2**32 - 1),
    stream=st.text(min_size=1, max_size=16),
    entity=entity_ids,
    repetition=st.integers(min_value=0, max_value=10**4),
)
def test_entity_seed_is_a_pure_function(base_seed, stream, entity, repetition):
    """The derived seed depends only on its own key, computed twice."""
    once = derive_entity_seed(base_seed, stream, entity, repetition)
    again = derive_entity_seed(base_seed, stream, entity, repetition)
    assert once == again
    assert once != derive_entity_seed(
        base_seed, stream, entity, repetition + 1
    )
