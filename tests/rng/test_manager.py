"""Determinism and derivation contracts of repro.rng (tentpole, ISSUE 6)."""

import hashlib

import numpy as np
import pytest

from repro.rng import (
    RNGManager,
    RNGRegistry,
    derive_entity_seed,
    derive_repetition_seed,
    derive_seed,
    seed_sequence,
)
from repro.sim.random import RandomStreams


class TestDeriveSeed:
    def test_deterministic_across_instances(self):
        assert derive_seed(42, "lan") == derive_seed(42, "lan")

    def test_matches_documented_construction(self):
        # The normative scheme of docs/REPRODUCIBILITY.md: join with ":",
        # sha256, first 8 digest bytes little-endian.
        digest = hashlib.sha256(b"42:client-1.policy").digest()
        expected = int.from_bytes(digest[:8], "little")
        assert derive_seed(42, "client-1.policy") == expected

    def test_single_part_matches_legacy_sim_derivation(self):
        # The historic repro.sim.random scheme hashed f"{seed}:{name}" the
        # same way; this equality is what kept every simulation result
        # unchanged when RandomStreams was rebased onto RNGManager.
        for seed, name in [(0, "lan.a->b"), (7, "service.s-1"), (123, "x")]:
            digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
            assert derive_seed(seed, name) == int.from_bytes(
                digest[:8], "little"
            )

    def test_distinct_keys_distinct_seeds(self):
        seeds = {
            derive_seed(1, "a"),
            derive_seed(1, "b"),
            derive_seed(2, "a"),
            derive_seed(1, "a", "b"),
        }
        assert len(seeds) == 4

    def test_requires_at_least_one_part(self):
        with pytest.raises(ValueError):
            derive_seed(1)


class TestEntityAndRepetitionSeeds:
    def test_entity_encoding_never_collides_with_stream_name(self):
        # substream("s", "x") keys on "entity=x", not the literal "x",
        # so a stream literally named "s:x" cannot alias it.
        assert derive_entity_seed(1, "s", "x") != derive_seed(1, "s", "x")
        assert derive_entity_seed(1, "s", "x") == derive_seed(
            1, "s", "entity=x"
        )

    def test_repetition_refines_entity(self):
        base = derive_entity_seed(3, "sweep", 0)
        with_rep = derive_entity_seed(3, "sweep", 0, repetition=1)
        assert base != with_rep
        assert with_rep == derive_seed(3, "sweep", "entity=0", "rep=1")

    def test_repetition_seed_rejects_negative(self):
        with pytest.raises(ValueError):
            derive_repetition_seed(0, -1)

    def test_repetition_seeds_are_distinct(self):
        seeds = [derive_repetition_seed(5, r) for r in range(32)]
        assert len(set(seeds)) == 32

    def test_seed_sequence_wraps_derived_entropy(self):
        seq = seed_sequence(9, "probe")
        direct = np.random.default_rng(derive_seed(9, "probe"))
        via_seq = np.random.default_rng(seq)
        assert via_seq.uniform() == direct.uniform()


class TestRNGManager:
    def test_stream_memoized(self):
        manager = RNGManager(base_seed=1)
        assert manager.stream("a") is manager.stream("a")

    def test_creation_order_irrelevant(self):
        first = RNGManager(base_seed=11)
        second = RNGManager(base_seed=11)
        a1 = first.stream("a").uniform()
        b1 = first.stream("b").uniform()
        # Opposite creation order on the twin manager.
        b2 = second.stream("b").uniform()
        a2 = second.stream("a").uniform()
        assert (a1, b1) == (a2, b2)

    def test_substream_interleaving_invariance(self):
        # Drawing entities round-robin vs entity-at-a-time must give each
        # entity the identical private sequence.
        robin = RNGManager(base_seed=4)
        blocked = RNGManager(base_seed=4)
        interleaved = {e: [] for e in ("x", "y", "z")}
        for _ in range(5):
            for entity in ("x", "y", "z"):
                interleaved[entity].append(
                    robin.substream("svc", entity).uniform()
                )
        for entity in ("z", "x", "y"):  # different order again
            block = [
                blocked.substream("svc", entity).uniform() for _ in range(5)
            ]
            assert block == interleaved[entity]

    def test_substream_repetition_axis_is_independent(self):
        manager = RNGManager(base_seed=2)
        r0 = manager.substream("svc", "x", repetition=0).uniform()
        r1 = manager.substream("svc", "x", repetition=1).uniform()
        plain = manager.substream("svc", "x").uniform()
        assert len({r0, r1, plain}) == 3

    def test_child_seed_does_not_create_stream(self):
        manager = RNGManager(base_seed=3)
        manager.child_seed("quiet")
        assert not manager._streams
        assert manager.child_seed("quiet") == derive_seed(3, "quiet")

    def test_child_seed_rejects_empty_name(self):
        with pytest.raises(ValueError):
            RNGManager(0).child_seed("")

    def test_reset_replays_identically(self):
        manager = RNGManager(base_seed=8)
        before = manager.stream("a").uniform(size=4).tolist()
        manager.reset()
        assert manager.stream("a").uniform(size=4).tolist() == before

    def test_fork_is_independent_and_deterministic(self):
        parent = RNGManager(base_seed=6)
        child = parent.fork("stage2")
        assert child.base_seed == derive_seed(6, "fork:stage2")
        assert child.base_seed != parent.base_seed
        assert parent.fork("stage2").base_seed == child.base_seed

    def test_legacy_seed_alias(self):
        assert RNGManager(base_seed=17).seed == 17


class TestRandomStreamsCompat:
    def test_randomstreams_is_an_rng_manager(self):
        assert isinstance(RandomStreams(seed=0), RNGManager)

    def test_stream_sequences_match_plain_manager(self):
        # The sim layer's streams and a bare manager with the same base
        # seed are the same streams — RandomStreams adds distributions,
        # not derivation.
        legacy = RandomStreams(seed=33)
        manager = RNGManager(base_seed=33)
        for name in ("lan.c->s-1", "service.s-2", "client-1.policy"):
            assert (
                legacy.stream(name).uniform(size=3).tolist()
                == manager.stream(name).uniform(size=3).tolist()
            )


class TestRNGRegistry:
    def test_no_scope_equals_plain_manager(self):
        assert RNGRegistry(21).base_seed == RNGManager(21).base_seed

    def test_scope_folds_into_base_seed(self):
        scoped = RNGRegistry(5, scenario="a15", worker=1, repetition=2)
        assert scoped.root_seed == 5
        assert scoped.base_seed == derive_seed(
            5, "scenario=a15", "worker=1", "rep=2"
        )

    def test_equal_scopes_reproduce(self):
        one = RNGRegistry(9, scenario="s", worker=0, repetition=1)
        two = RNGRegistry(9, scenario="s", worker=0, repetition=1)
        assert one.stream("x").uniform() == two.stream("x").uniform()

    def test_scopes_are_disjoint(self):
        base = RNGRegistry(9, scenario="s", worker=0, repetition=0)
        seeds = {
            base.base_seed,
            RNGRegistry(9, scenario="s", worker=1, repetition=0).base_seed,
            RNGRegistry(9, scenario="s", worker=0, repetition=1).base_seed,
            RNGRegistry(9, scenario="t", worker=0, repetition=0).base_seed,
        }
        assert len(seeds) == 4

    def test_fork_preserves_registry_type(self):
        assert isinstance(RNGRegistry(1).fork("x"), RNGRegistry)
