"""Shared fixtures: a wired mini-stack for substrate-level tests."""

from __future__ import annotations

import pytest

from repro.net.lan import LanModel
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.trace import Tracer


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulation kernel."""
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams for tests."""
    return RandomStreams(seed=1234)


@pytest.fixture
def tracer() -> Tracer:
    """An enabled tracer."""
    return Tracer()


@pytest.fixture
def lan(streams) -> LanModel:
    """A LAN with three hosts: one client, two servers."""
    lan = LanModel(streams)
    for name in ("client-1", "server-1", "server-2"):
        lan.add_host(name)
    return lan


@pytest.fixture
def transport(sim, lan, tracer) -> Transport:
    """Transport over the three-host LAN."""
    return Transport(sim, lan, tracer=tracer)
