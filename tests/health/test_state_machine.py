"""Unit tests for the per-replica health state machine (no simulator)."""

import pytest

from repro.health import HealthConfig, HealthMonitor, HealthState


def make_monitor(**overrides) -> HealthMonitor:
    defaults = dict(
        suspect_after=2,
        quarantine_after=1,
        recover_after=2,
        probation_after=2,
        backoff_initial_ms=100.0,
        backoff_factor=2.0,
        backoff_max_ms=800.0,
    )
    defaults.update(overrides)
    monitor = HealthMonitor(HealthConfig(**defaults))
    monitor.sync_members(["r-1", "r-2"], now_ms=0.0)
    return monitor


class TestSuspicionAndQuarantine:
    def test_starts_healthy_with_full_trust(self):
        monitor = make_monitor()
        assert monitor.state("r-1") is HealthState.HEALTHY
        assert monitor.discount("r-1") == 1.0
        assert not monitor.is_quarantined("r-1")

    def test_untracked_replica_gets_full_trust(self):
        monitor = make_monitor()
        assert monitor.state("ghost") is None
        assert monitor.discount("ghost") == 1.0
        assert not monitor.is_quarantined("ghost")

    def test_fault_streak_suspects_then_quarantines(self):
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0)
        assert monitor.state("r-1") is HealthState.HEALTHY
        monitor.record_fault("r-1", 20.0)
        assert monitor.state("r-1") is HealthState.SUSPECTED
        assert monitor.discount("r-1") == pytest.approx(0.5)
        monitor.record_fault("r-1", 30.0)
        assert monitor.state("r-1") is HealthState.QUARANTINED
        assert monitor.discount("r-1") == 0.0
        assert monitor.quarantined() == ["r-1"]

    def test_success_resets_the_fault_streak(self):
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0)
        monitor.record_success("r-1", 20.0)
        monitor.record_fault("r-1", 30.0)
        assert monitor.state("r-1") is HealthState.HEALTHY

    def test_successes_recover_a_suspected_replica(self):
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0)
        monitor.record_fault("r-1", 20.0)
        assert monitor.state("r-1") is HealthState.SUSPECTED
        monitor.record_success("r-1", 30.0)
        assert monitor.state("r-1") is HealthState.SUSPECTED
        monitor.record_success("r-1", 40.0)
        assert monitor.state("r-1") is HealthState.HEALTHY

    def test_crash_declaration_quarantines_immediately(self):
        monitor = make_monitor()
        monitor.record_crash("r-2", 50.0)
        assert monitor.state("r-2") is HealthState.QUARANTINED
        assert monitor.events[-1].reason == "crash"


class TestProbeEvidence:
    def test_probe_success_does_not_reset_healthy_fault_streak(self):
        # Probes bypass the FIFO queue: an overloaded replica answers its
        # probes promptly while timing out client requests.  Probe
        # successes must not mask that.
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0)
        monitor.record_probe_success("r-1", 15.0)
        monitor.record_fault("r-1", 20.0)
        assert monitor.state("r-1") is HealthState.SUSPECTED

    def test_probe_failure_escalates_a_suspected_replica(self):
        # Once suspected, selection may stop routing to the replica, so
        # request evidence dries up; the verification probes must be able
        # to finish the job.
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0)
        monitor.record_fault("r-1", 20.0)
        assert monitor.state("r-1") is HealthState.SUSPECTED
        monitor.record_probe_failure("r-1", 30.0)
        assert monitor.state("r-1") is HealthState.QUARANTINED

    def test_probe_failure_on_healthy_replica_is_ignored(self):
        monitor = make_monitor()
        monitor.record_probe_failure("r-1", 10.0)
        assert monitor.state("r-1") is HealthState.HEALTHY
        assert monitor.record_for("r-1").consecutive_faults == 0

    def test_probe_success_enters_probation_then_healthy(self):
        monitor = make_monitor()
        for at in (10.0, 20.0, 30.0):
            monitor.record_fault("r-1", at)
        assert monitor.state("r-1") is HealthState.QUARANTINED
        monitor.record_probe_success("r-1", 200.0)
        assert monitor.state("r-1") is HealthState.PROBATION
        # probation_after=2; the admitting probe already counted once.
        monitor.record_probe_success("r-1", 300.0)
        assert monitor.state("r-1") is HealthState.HEALTHY
        assert monitor.discount("r-1") == 1.0

    def test_timely_reply_while_quarantined_enters_probation(self):
        monitor = make_monitor()
        for at in (10.0, 20.0, 30.0):
            monitor.record_fault("r-1", at)
        monitor.record_success("r-1", 40.0)
        assert monitor.state("r-1") is HealthState.PROBATION
        assert monitor.events[-1].reason == "reply-while-quarantined"

    def test_probation_fault_requarantines_with_escalated_backoff(self):
        monitor = make_monitor()
        for at in (10.0, 20.0, 30.0):
            monitor.record_fault("r-1", at)
        first_backoff = monitor.record_for("r-1").backoff_ms
        assert first_backoff == pytest.approx(100.0)
        monitor.record_probe_success("r-1", 200.0)
        monitor.record_fault("r-1", 210.0)
        assert monitor.state("r-1") is HealthState.QUARANTINED
        assert monitor.record_for("r-1").backoff_ms == pytest.approx(200.0)


class TestBackoffSchedule:
    def test_failed_probes_double_the_backoff_up_to_the_cap(self):
        monitor = make_monitor()
        for at in (10.0, 20.0, 30.0):
            monitor.record_fault("r-1", at)
        record = monitor.record_for("r-1")
        assert record.backoff_ms == pytest.approx(100.0)
        expected = [200.0, 400.0, 800.0, 800.0]  # capped at 800
        for backoff in expected:
            monitor.record_probe_failure("r-1", 0.0)
            assert record.backoff_ms == pytest.approx(backoff)

    def test_due_probes_respect_the_quarantine_backoff(self):
        monitor = make_monitor()
        for at in (10.0, 20.0, 30.0):
            monitor.record_fault("r-1", at)
        record = monitor.record_for("r-1")
        # Quarantined at 30 with backoff 100: due at 130, not before.
        assert monitor.due_probes(100.0) == []
        assert monitor.due_probes(130.0) == ["r-1"]
        monitor.note_probe_sent("r-1", 130.0)
        assert monitor.due_probes(131.0) == []
        assert record.next_probe_at_ms == pytest.approx(230.0)

    def test_suspected_replicas_are_probed_every_tick(self):
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0)
        monitor.record_fault("r-1", 20.0)
        assert monitor.due_probes(21.0) == ["r-1"]
        monitor.note_probe_sent("r-1", 21.0)  # no-op outside quarantine
        assert monitor.due_probes(22.0) == ["r-1"]


class TestMembershipAndEvents:
    def test_departed_replica_is_dropped_and_rejoins_fresh(self):
        monitor = make_monitor()
        for at in (10.0, 20.0, 30.0):
            monitor.record_fault("r-1", at)
        assert monitor.is_quarantined("r-1")
        monitor.sync_members(["r-2"], now_ms=40.0)
        assert monitor.state("r-1") is None
        monitor.sync_members(["r-1", "r-2"], now_ms=50.0)
        assert monitor.state("r-1") is HealthState.HEALTHY

    def test_listener_sees_every_transition_and_can_unsubscribe(self):
        seen = []
        monitor = HealthMonitor(
            HealthConfig(
                suspect_after=1, quarantine_after=1, backoff_initial_ms=10.0,
                backoff_max_ms=10.0,
            ),
            listener=seen.append,
        )
        monitor.sync_members(["r-1"], now_ms=0.0)
        monitor.record_fault("r-1", 10.0)
        monitor.record_fault("r-1", 20.0)
        assert [e.new_state for e in seen] == [
            HealthState.SUSPECTED,
            HealthState.QUARANTINED,
        ]
        assert seen == monitor.events
        unsubscribe = monitor.add_listener(seen.append)
        unsubscribe()
        monitor.record_probe_success("r-1", 30.0)
        assert len(seen) == 3  # only the original listener fired

    def test_evidence_for_untracked_replicas_is_ignored(self):
        monitor = make_monitor()
        monitor.record_fault("ghost", 10.0)
        monitor.record_success("ghost", 20.0)
        monitor.record_crash("ghost", 30.0)
        monitor.record_probe_failure("ghost", 40.0)
        assert monitor.states() == {
            "r-1": HealthState.HEALTHY,
            "r-2": HealthState.HEALTHY,
        }


class TestClockAnomalies:
    """The clock-sanity signal (ISSUE 10): anomaly streaks quarantine."""

    def test_disabled_by_default(self):
        monitor = make_monitor()  # clock_anomaly_after=None
        for at in (10.0, 20.0, 30.0, 40.0):
            monitor.record_clock_anomaly("r-1", at)
        assert monitor.state("r-1") is HealthState.HEALTHY

    def test_anomaly_streak_quarantines_with_clock_fault_reason(self):
        monitor = make_monitor(clock_anomaly_after=3)
        monitor.record_clock_anomaly("r-1", 10.0)
        monitor.record_clock_anomaly("r-1", 20.0)
        assert not monitor.is_quarantined("r-1")
        monitor.record_clock_anomaly("r-1", 30.0)
        assert monitor.state("r-1") is HealthState.QUARANTINED
        assert monitor.events[-1].reason == "clock_fault"
        assert monitor.record_for("r-1").last_fault_kind == "clock"

    def test_coherent_sample_resets_the_anomaly_streak(self):
        monitor = make_monitor(clock_anomaly_after=3)
        monitor.record_clock_anomaly("r-1", 10.0)
        monitor.record_clock_anomaly("r-1", 20.0)
        monitor.record_coherent_sample("r-1")
        monitor.record_clock_anomaly("r-1", 30.0)
        monitor.record_clock_anomaly("r-1", 40.0)
        assert monitor.state("r-1") is HealthState.HEALTHY
        monitor.record_clock_anomaly("r-1", 50.0)
        assert monitor.state("r-1") is HealthState.QUARANTINED

    def test_probe_readmission_after_clock_quarantine(self):
        # A resynced clock stops producing anomalies; the normal
        # backoff-probe path then walks the replica back to HEALTHY.
        monitor = make_monitor(clock_anomaly_after=2)
        monitor.record_clock_anomaly("r-1", 10.0)
        monitor.record_clock_anomaly("r-1", 20.0)
        assert monitor.is_quarantined("r-1")
        monitor.record_probe_success("r-1", 200.0)
        assert monitor.state("r-1") is HealthState.PROBATION
        monitor.record_probe_success("r-1", 300.0)
        assert monitor.state("r-1") is HealthState.HEALTHY

    def test_anomalies_count_as_faults_in_the_totals(self):
        monitor = make_monitor(clock_anomaly_after=2)
        monitor.record_clock_anomaly("r-1", 10.0)
        record = monitor.record_for("r-1")
        assert record.clock_anomalies == 1
        assert record.faults_total == 1
        assert record.consecutive_successes == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(clock_anomaly_after=0)
        with pytest.raises(ValueError):
            HealthConfig(clock_deflation_factor=0.5)
        with pytest.raises(ValueError):
            HealthConfig(clock_slack_ms=-1.0)
