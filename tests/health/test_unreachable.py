"""The ``unreachable`` fast path of the health state machine (ISSUE 9).

A partitioned replica is *silent* — every addressed request is an
omission and its probes expire — while a grey or overloaded replica
still makes contact (late replies, probe answers).  With
``unreachable_after`` set, an unbroken reply-loss streak quarantines
directly, skipping the SUSPECTED ladder; any contact resets the streak,
so only true silence takes the shortcut.
"""

import pytest

from repro.health import HealthConfig, HealthMonitor, HealthState


def make_monitor(**overrides) -> HealthMonitor:
    # suspect_after is deliberately high: anything that quarantines in
    # fewer than five faults below did so via the unreachable fast path,
    # not the ordinary suspicion ladder.
    defaults = dict(
        suspect_after=5,
        quarantine_after=2,
        recover_after=2,
        probation_after=2,
        backoff_initial_ms=100.0,
        backoff_factor=2.0,
        backoff_max_ms=800.0,
        unreachable_after=3,
    )
    defaults.update(overrides)
    monitor = HealthMonitor(HealthConfig(**defaults))
    monitor.sync_members(["r-1", "r-2"], now_ms=0.0)
    return monitor


class TestConfig:
    def test_rejects_a_nonpositive_threshold(self):
        with pytest.raises(ValueError, match="unreachable_after"):
            HealthConfig(unreachable_after=0)

    def test_default_is_disabled(self):
        assert HealthConfig().unreachable_after is None


class TestFastPath:
    def test_omission_streak_quarantines_before_the_ladder(self):
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0, kind="omission")
        monitor.record_fault("r-1", 20.0, kind="omission")
        assert monitor.state("r-1") is HealthState.HEALTHY
        monitor.record_fault("r-1", 30.0, kind="omission")
        assert monitor.state("r-1") is HealthState.QUARANTINED
        assert monitor.events[-1].reason == "unreachable"
        # Three faults < suspect_after: the ladder alone could not have
        # quarantined yet — this really was the fast path.
        assert monitor.record_for("r-1").consecutive_faults == 3

    def test_probe_failures_count_toward_the_streak(self):
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0, kind="omission")
        monitor.record_fault("r-1", 20.0, kind="probe-failure")
        monitor.record_fault("r-1", 30.0, kind="omission")
        assert monitor.state("r-1") is HealthState.QUARANTINED
        assert monitor.events[-1].reason == "unreachable"

    def test_disabled_threshold_keeps_the_legacy_ladder(self):
        monitor = make_monitor(unreachable_after=None)
        for t in range(8):
            monitor.record_fault("r-1", float(t), kind="omission")
        # Quarantined eventually — but only through SUSPECTED, and never
        # with the fast-path reason.
        assert monitor.state("r-1") is HealthState.QUARANTINED
        assert all(e.reason != "unreachable" for e in monitor.events)


class TestContactResetsTheStreak:
    def test_timing_faults_never_accumulate_silence(self):
        # A late reply is still contact: the replica is slow, not gone.
        monitor = make_monitor()
        for t in range(4):
            monitor.record_fault("r-1", float(t), kind="timing")
        assert monitor.record_for("r-1").consecutive_omissions == 0
        assert all(e.reason != "unreachable" for e in monitor.events)

    def test_a_late_reply_interrupts_the_streak(self):
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0, kind="omission")
        monitor.record_fault("r-1", 20.0, kind="omission")
        monitor.record_fault("r-1", 30.0, kind="timing")  # contact!
        monitor.record_fault("r-1", 40.0, kind="omission")
        monitor.record_fault("r-1", 50.0, kind="omission")
        # Five faults, but never three *consecutive* omissions: the fast
        # path must not fire (the ladder quarantines on its own terms).
        assert monitor.state("r-1") is HealthState.SUSPECTED
        assert all(e.reason != "unreachable" for e in monitor.events)

    def test_a_grey_replica_answering_probes_is_never_unreachable(self):
        # The grey-failure signature: data omissions pile up while the
        # (exempted) probes keep getting answered.
        monitor = make_monitor(suspect_after=50)
        for t in range(10):
            monitor.record_fault("r-1", float(2 * t), kind="omission")
            monitor.record_fault("r-1", float(2 * t) + 0.5, kind="omission")
            monitor.record_probe_success("r-1", float(2 * t) + 1.0)
        assert monitor.state("r-1") is HealthState.HEALTHY
        assert monitor.record_for("r-1").consecutive_omissions == 0

    def test_a_timely_reply_resets_the_streak(self):
        monitor = make_monitor()
        monitor.record_fault("r-1", 10.0, kind="omission")
        monitor.record_fault("r-1", 20.0, kind="omission")
        monitor.record_success("r-1", 30.0)
        monitor.record_fault("r-1", 40.0, kind="omission")
        monitor.record_fault("r-1", 50.0, kind="omission")
        assert monitor.state("r-1") is not HealthState.QUARANTINED


class TestReadmission:
    def test_unreachable_quarantine_recovers_through_probation(self):
        # The heal path: once the partition lifts, a probe answer moves
        # the replica into PROBATION and successes restore full trust —
        # identical to any other quarantine, so re-admission probing
        # needs no special casing for partitions.
        monitor = make_monitor()
        for t in (10.0, 20.0, 30.0):
            monitor.record_fault("r-1", t, kind="omission")
        assert monitor.is_quarantined("r-1")
        monitor.record_probe_success("r-1", 100.0)
        assert monitor.state("r-1") is HealthState.PROBATION
        monitor.record_success("r-1", 110.0)
        monitor.record_success("r-1", 120.0)
        assert monitor.state("r-1") is HealthState.HEALTHY
