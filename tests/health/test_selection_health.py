"""Selection-layer health integration: quarantine exclusion, trust
discounts, and the graceful-degradation ladder (stale-model fallback)."""

import numpy as np
import pytest

from repro.core.baselines import StaticMinResponsePolicy
from repro.core.estimator import ResponseTimeEstimator
from repro.core.qos import QoSSpec
from repro.core.repository import InformationRepository
from repro.core.selection import DynamicSelectionPolicy, SelectionContext
from repro.health import HealthConfig, HealthMonitor, HealthState


def loaded_repo(means, now_ms=0.0):
    repo = InformationRepository(window_size=5)
    for name, mean in means.items():
        for _ in range(5):
            repo.record_performance(name, mean, 0.0, 0, now_ms=now_ms)
        repo.record_gateway_delay(name, 3.0, now_ms=now_ms)
    return repo


def context(repo, health=None, deadline=120.0, min_probability=0.9, now_ms=0.0):
    return SelectionContext(
        replicas=repo.replicas(),
        estimator=ResponseTimeEstimator(repo),
        qos=QoSSpec("svc", deadline, min_probability),
        now_ms=now_ms,
        rng=np.random.default_rng(0),
        health=health,
    )


def monitor_for(repo, **overrides) -> HealthMonitor:
    defaults = dict(suspect_after=2, quarantine_after=1, backoff_initial_ms=50.0)
    defaults.update(overrides)
    monitor = HealthMonitor(HealthConfig(**defaults))
    monitor.sync_members(repo.replicas(), now_ms=0.0)
    return monitor


def quarantine(monitor, name):
    for at in (1.0, 2.0, 3.0):
        monitor.record_fault(name, at)
    assert monitor.state(name) is HealthState.QUARANTINED


class TestQuarantineExclusion:
    def test_quarantined_replica_is_never_selected(self):
        repo = loaded_repo({"r1": 50.0, "r2": 60.0, "r3": 70.0})
        monitor = monitor_for(repo)
        quarantine(monitor, "r1")
        decision = DynamicSelectionPolicy().decide(context(repo, monitor))
        assert "r1" not in decision.selected
        assert decision.meta["quarantined"] == ("r1",)
        assert decision.meta["quarantine_override"] is False

    def test_all_quarantined_keeps_full_set_with_override(self):
        repo = loaded_repo({"r1": 50.0, "r2": 60.0})
        monitor = monitor_for(repo)
        quarantine(monitor, "r1")
        quarantine(monitor, "r2")
        decision = DynamicSelectionPolicy().decide(context(repo, monitor))
        assert set(decision.selected) == {"r1", "r2"}
        assert decision.meta["quarantine_override"] is True

    def test_bootstrap_goes_to_non_quarantined_replicas_only(self):
        repo = loaded_repo({"r1": 50.0})
        repo.add_replica("r2")  # no history -> bootstrap path
        repo.add_replica("r3")
        monitor = monitor_for(repo)
        quarantine(monitor, "r3")
        decision = DynamicSelectionPolicy().decide(context(repo, monitor))
        assert decision.meta["bootstrap"] is True
        assert set(decision.selected) == {"r1", "r2"}

    def test_without_health_view_behavior_is_unchanged(self):
        repo = loaded_repo({"r1": 50.0, "r2": 60.0})
        plain = DynamicSelectionPolicy().decide(context(repo))
        assert "quarantined" not in plain.meta
        assert set(plain.selected) == {"r1", "r2"}


class TestTrustDiscount:
    def test_suspected_replica_probability_is_discounted(self):
        # r1 and r2 are identical; suspecting r1 must scale its F by the
        # configured discount, visible in the decision's probabilities.
        repo = loaded_repo({"r1": 50.0, "r2": 50.0})
        monitor = monitor_for(repo, suspected_discount=0.5)
        monitor.record_fault("r1", 1.0)
        monitor.record_fault("r1", 2.0)
        assert monitor.state("r1") is HealthState.SUSPECTED
        decision = DynamicSelectionPolicy().decide(context(repo, monitor))
        probabilities = decision.meta["probabilities"]
        assert probabilities["r1"] == pytest.approx(0.5 * probabilities["r2"])

    def test_discount_changes_the_pick_between_equals(self):
        repo = loaded_repo({"r1": 50.0, "r2": 50.0, "r3": 50.0})
        monitor = monitor_for(repo, suspected_discount=0.1)
        monitor.record_fault("r1", 1.0)
        monitor.record_fault("r1", 2.0)
        decision = DynamicSelectionPolicy(crash_tolerance=0).decide(
            context(repo, monitor, min_probability=0.9)
        )
        # All three meet the deadline with F=1 when healthy; a heavily
        # discounted r1 must rank behind the two full-trust replicas.
        assert decision.selected[0] in {"r2", "r3"}
        assert "r1" not in decision.selected[:2]


class TestStaleModelLadder:
    def test_all_stale_delegates_to_static_min_response(self):
        repo = loaded_repo(
            {"r1": 100.0, "r2": 50.0, "r3": 80.0}, now_ms=0.0
        )
        policy = DynamicSelectionPolicy(stale_after_ms=500.0)
        decision = policy.decide(context(repo, now_ms=2000.0))
        assert decision.meta["degraded"] == "stale-model"
        assert decision.meta["policy"] == "static-min-response"
        # StaticMinResponsePolicy ranks by T_i + min service time.
        assert decision.selected == ("r2", "r3")

    def test_one_fresh_record_keeps_the_model(self):
        repo = loaded_repo({"r1": 100.0, "r2": 50.0}, now_ms=0.0)
        repo.record_gateway_delay("r1", 3.0, now_ms=1900.0)
        policy = DynamicSelectionPolicy(stale_after_ms=500.0)
        decision = policy.decide(context(repo, now_ms=2000.0))
        assert "degraded" not in decision.meta

    def test_ladder_disabled_by_default(self):
        repo = loaded_repo({"r1": 100.0, "r2": 50.0}, now_ms=0.0)
        decision = DynamicSelectionPolicy().decide(
            context(repo, now_ms=1_000_000.0)
        )
        assert "degraded" not in decision.meta

    def test_custom_fallback_policy_is_honored(self):
        class PickFirst(StaticMinResponsePolicy):
            name = "pick-first"

        repo = loaded_repo({"r1": 100.0, "r2": 50.0}, now_ms=0.0)
        policy = DynamicSelectionPolicy(
            stale_after_ms=500.0, stale_fallback=PickFirst(redundancy=1)
        )
        decision = policy.decide(context(repo, now_ms=2000.0))
        assert decision.selected == ("r2",)

    def test_stale_ladder_still_excludes_quarantined(self):
        repo = loaded_repo({"r1": 100.0, "r2": 50.0, "r3": 80.0}, now_ms=0.0)
        monitor = monitor_for(repo)
        quarantine(monitor, "r2")
        policy = DynamicSelectionPolicy(stale_after_ms=500.0)
        decision = policy.decide(context(repo, monitor, now_ms=2000.0))
        assert decision.meta["degraded"] == "stale-model"
        assert "r2" not in decision.selected

    def test_invalid_stale_after_rejected(self):
        with pytest.raises(ValueError):
            DynamicSelectionPolicy(stale_after_ms=0.0)
