"""The adaptive response timeout: pmf-quantile driven, clamped to
``[deadline, factor × deadline]``, and bit-identical to the legacy fixed
timeout whenever disabled or cold."""

import pytest

from repro.health import HealthConfig
from repro.sim.random import Constant

from ..gateway.conftest import MiniStack


def warm_up(stack, client="c-1", requests=3):
    """Drive a few requests so every replica has model history."""

    def load():
        for i in range(requests):
            yield stack.invoke(client, i)
            yield stack.sim.timeout(2.0)

    stack.sim.spawn(load(), name="warmup")
    stack.sim.run()


class TestAdaptiveTimeout:
    def test_disabled_without_health_config(self, stack: MiniStack):
        stack.add_server("s-1", service_time=Constant(8.0))
        handler = stack.add_client(
            "c-1", deadline_ms=100.0, response_timeout_factor=10.0
        )
        assert handler.adaptive_timeout_quantile is None
        warm_up(stack)
        assert handler._response_timeout_ms(("s-1",), "") == 1000.0

    def test_cold_model_keeps_the_legacy_ceiling(self, stack: MiniStack):
        stack.add_server("s-1", service_time=Constant(8.0))
        handler = stack.add_client(
            "c-1",
            deadline_ms=100.0,
            response_timeout_factor=10.0,
            health_config=HealthConfig(),
        )
        assert handler.adaptive_timeout_quantile == 0.99
        # No requests yet: no pmf for s-1 -> generous legacy wait.
        assert handler._response_timeout_ms(("s-1",), "") == 1000.0

    def test_warm_model_clamps_up_to_the_deadline(self, stack: MiniStack):
        # Predicted responses (~10 ms) sit far below the 100 ms deadline:
        # the timeout must rise to the deadline, never below it.
        stack.add_server("s-1", service_time=Constant(8.0))
        handler = stack.add_client(
            "c-1",
            deadline_ms=100.0,
            response_timeout_factor=10.0,
            health_config=HealthConfig(),
        )
        warm_up(stack)
        assert handler._response_timeout_ms(("s-1",), "") == 100.0

    def test_warm_model_between_deadline_and_ceiling(self, stack: MiniStack):
        # Predicted responses (~84 ms) exceed the 50 ms deadline: the
        # timeout follows the model, well under the 500 ms legacy wait.
        stack.add_server("s-1", service_time=Constant(80.0))
        handler = stack.add_client(
            "c-1",
            deadline_ms=50.0,
            response_timeout_factor=10.0,
            health_config=HealthConfig(),
        )
        warm_up(stack)
        timeout = handler._response_timeout_ms(("s-1",), "")
        assert 50.0 < timeout < 150.0

    def test_worst_selected_replica_dominates(self, stack: MiniStack):
        stack.add_server("s-1", service_time=Constant(20.0))
        stack.add_server("s-2", service_time=Constant(80.0))
        handler = stack.add_client(
            "c-1",
            deadline_ms=50.0,
            response_timeout_factor=10.0,
            health_config=HealthConfig(),
        )
        warm_up(stack, requests=4)
        both = handler._response_timeout_ms(("s-1", "s-2"), "")
        fast_only = handler._response_timeout_ms(("s-1",), "")
        assert both > fast_only

    def test_any_cold_member_reverts_to_the_ceiling(self, stack: MiniStack):
        stack.add_server("s-1", service_time=Constant(8.0))
        handler = stack.add_client(
            "c-1",
            deadline_ms=100.0,
            response_timeout_factor=10.0,
            health_config=HealthConfig(),
        )
        warm_up(stack)
        assert handler._response_timeout_ms(("s-1", "ghost"), "") == 1000.0

    def test_explicit_quantile_works_without_health(self, stack: MiniStack):
        stack.add_server("s-1", service_time=Constant(8.0))
        handler = stack.add_client(
            "c-1",
            deadline_ms=100.0,
            response_timeout_factor=10.0,
            adaptive_timeout_quantile=0.5,
        )
        assert handler.health is None
        warm_up(stack)
        assert handler._response_timeout_ms(("s-1",), "") == 100.0

    def test_invalid_quantile_rejected(self, stack: MiniStack):
        stack.add_server("s-1")
        with pytest.raises(ValueError):
            stack.add_client("c-1", adaptive_timeout_quantile=1.5)
