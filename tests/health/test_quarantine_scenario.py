"""The ISSUE's acceptance scenario: a persistently degraded replica is
quarantined, receives zero client traffic while quarantined, is re-admitted
through probation probes after it recovers — and the client's timely
fraction during the degradation window beats the no-health baseline.

Why the baseline suffers (model starvation): with ``crash_tolerance=0``
every replica predicts F(t)=1, so selection keeps picking ``s-1`` by the
deterministic name tie-break.  Once the degradation drops all of ``s-1``'s
traffic its performance window never refreshes, the stale-good model keeps
nominating it, and every request burns the full response timeout.
"""

from repro.core.selection import DynamicSelectionPolicy
from repro.faultinject import DegradationFault, FaultSchedule
from repro.health import HealthConfig, HealthState
from repro.sim.random import Constant

from ..faults.conftest import FaultStack

REPLICAS = [f"s-{i + 1}" for i in range(5)]
WINDOW_START, WINDOW_END = 500.0, 2500.0
REQUESTS = 150


def run_scenario(with_health: bool):
    schedule = FaultSchedule(
        degradations=(
            DegradationFault(
                host="s-1",
                start_ms=WINDOW_START,
                end_ms=WINDOW_END,
                omission_probability=1.0,
            ),
        )
    )
    stack = FaultStack(seed=3, schedule=schedule, fault_seed=11)
    for host in REPLICAS:
        stack.add_server(host, service_time=Constant(8.0))

    kwargs = dict(
        deadline_ms=100.0,
        min_probability=0.9,
        response_timeout_factor=3.0,
        policy=DynamicSelectionPolicy(crash_tolerance=0),
    )
    if with_health:
        kwargs["health_config"] = HealthConfig(
            suspect_after=2,
            quarantine_after=1,
            probation_after=2,
            backoff_initial_ms=400.0,
            backoff_factor=2.0,
            backoff_max_ms=3200.0,
        )
        kwargs["probe_interval_ms"] = 200.0
    client = stack.add_client("c-1", **kwargs)

    outcomes = []

    def load():
        for i in range(REQUESTS):
            t0 = stack.sim.now
            event = stack.invoke("c-1", i)
            yield event
            outcomes.append((t0, event.value))
            yield stack.sim.timeout(5.0)

    stack.sim.spawn(load(), name="load.c-1")
    stack.sim.run()
    # Keep the clock moving so the re-admission probes (daemon activity)
    # can finish even though the client load has drained.
    stack.sim.run(until=6000.0)
    return stack, client, outcomes


def timely_fraction(outcomes, since, until):
    window = [v.timely for t0, v in outcomes if since <= t0 < until]
    assert window, "no requests submitted inside the degradation window"
    return sum(window) / len(window)


class TestQuarantineScenario:
    def test_degraded_replica_is_quarantined_and_readmitted(self):
        stack, client, outcomes = run_scenario(with_health=True)

        transitions = [
            (e.replica, e.new_state, e.at_ms) for e in client.health.events
        ]
        quarantined_at = [
            at
            for replica, state, at in transitions
            if replica == "s-1" and state is HealthState.QUARANTINED
        ]
        assert quarantined_at, f"s-1 never quarantined: {transitions}"
        assert WINDOW_START < quarantined_at[0] < WINDOW_END

        # Zero client traffic while quarantined — auditor-enforced: the
        # quarantined_traffic lifecycle leak would fail assert_clean().
        assert client.quarantined_traffic == []
        report = stack.auditor.assert_clean()
        assert report.submitted == REQUESTS
        assert report.completed == REQUESTS

        # Re-admitted through probation after the degradation lifts.
        probation_at = [
            at
            for replica, state, at in transitions
            if replica == "s-1" and state is HealthState.PROBATION
        ]
        assert probation_at and probation_at[0] > WINDOW_END
        assert client.health.state("s-1") is HealthState.HEALTHY

    def test_health_beats_the_no_health_baseline_in_the_window(self):
        _, _, with_health = run_scenario(with_health=True)
        _, _, baseline = run_scenario(with_health=False)

        healthy_frac = timely_fraction(with_health, WINDOW_START, WINDOW_END)
        baseline_frac = timely_fraction(baseline, WINDOW_START, WINDOW_END)

        # The baseline starves on the stale-good model: nearly every
        # in-window request chases s-1 into a 300 ms timeout.  The health
        # subsystem eats a couple of faults, then routes around it.
        assert baseline_frac < 0.3
        assert healthy_frac > 0.8
        assert healthy_frac > baseline_frac + 0.5

    def test_traffic_returns_to_the_recovered_replica(self):
        stack, client, _ = run_scenario(with_health=True)
        assert client.health.state("s-1") is HealthState.HEALTHY

        event = stack.invoke("c-1", 9999)
        stack.sim.run()
        outcome = event.value
        # Fully recovered: s-1 wins the name tie-break again.
        assert outcome.timely
        assert outcome.replica == "s-1"
