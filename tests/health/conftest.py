"""Shared fixtures for the health-subsystem tests.

Re-exports the gateway ``MiniStack`` fixture so the adaptive-timeout
tests can drive a real handler without duplicating the harness.
"""

import pytest

from ..gateway.conftest import MiniStack


@pytest.fixture
def stack() -> MiniStack:
    return MiniStack()
