"""Integration tests for crash tolerance (paper §5.3.2)."""


from repro.core.baselines import SingleFastestPolicy
from repro.core.qos import QoSSpec
from repro.sim.random import Constant
from repro.workload.scenarios import Scenario, ScenarioConfig


def _qos(scenario, deadline=160.0, probability=0.9):
    return QoSSpec(scenario.config.service, deadline, probability)


def test_single_crash_does_not_break_qos():
    """Algorithm 1's selected set absorbs the crash of any one member."""
    scenario = Scenario(ScenarioConfig(seed=0))
    client = scenario.add_client("client-1", _qos(scenario), num_requests=50)
    scenario.schedule_crash("replica-1", at_ms=10_000.0)
    scenario.run_to_completion()
    summary = client.summary()
    assert summary.requests == 50
    assert summary.failure_probability <= 0.1


def test_crashed_replica_is_purged_from_repositories():
    scenario = Scenario(ScenarioConfig(seed=0))
    handler_owner = scenario.add_client(
        "client-1", _qos(scenario), num_requests=30
    )
    scenario.schedule_crash("replica-3", at_ms=5_000.0)
    scenario.run_to_completion()
    handler = scenario.handlers["client-1"]
    assert "replica-3" not in handler.repository
    # Later requests never addressed the dead replica.
    late = [
        o for o in handler_owner.outcomes[10:] if o.replica == "replica-3"
    ]
    assert late == []


def test_recovered_replica_rejoins_and_serves_again():
    scenario = Scenario(ScenarioConfig(seed=1))
    client = scenario.add_client("client-1", _qos(scenario), num_requests=50)
    scenario.schedule_crash("replica-1", at_ms=5_000.0, recover_at_ms=20_000.0)
    scenario.run_to_completion()
    assert "replica-1" in scenario.group_comm.view("search")
    assert client.summary().requests == 50


def test_single_replica_policy_suffers_on_crash():
    """Without redundancy, requests in the detection window are lost."""
    scenario = Scenario(
        ScenarioConfig(seed=0, response_timeout_factor=3.0)
    )
    client = scenario.add_client(
        "client-1",
        _qos(scenario, deadline=200.0, probability=0.0),
        policy=SingleFastestPolicy(),
        num_requests=30,
        think_time=Constant(200.0),
    )
    # Crash whichever replica the policy has locked onto by killing all
    # outstanding history leaders one by one is overkill; crashing the
    # globally fastest (lowest-mean) host suffices with seed 0.
    scenario.schedule_crash("replica-1", at_ms=3_000.0)
    scenario.schedule_crash("replica-2", at_ms=3_000.0)
    scenario.run_to_completion()
    summary = client.summary()
    # At least one request timed out or was late during the window, which
    # the dynamic policy's hedging would have absorbed.
    assert summary.timeouts + summary.timing_failures >= 1


def test_multiple_sequential_crashes_leave_service_available():
    scenario = Scenario(ScenarioConfig(seed=2))
    client = scenario.add_client(
        "client-1", _qos(scenario, 200.0, 0.5), num_requests=40
    )
    scenario.schedule_crash("replica-1", at_ms=5_000.0)
    scenario.schedule_crash("replica-2", at_ms=15_000.0)
    scenario.schedule_crash("replica-3", at_ms=25_000.0)
    scenario.run_to_completion()
    summary = client.summary()
    assert summary.requests == 40
    assert len(scenario.group_comm.view("search")) == 4
    assert summary.failure_probability <= 0.5


def test_all_replicas_crashing_times_out_requests():
    scenario = Scenario(
        ScenarioConfig(seed=3, num_replicas=2, response_timeout_factor=2.0)
    )
    client = scenario.add_client(
        "client-1",
        _qos(scenario, 200.0, 0.0),
        num_requests=10,
        think_time=Constant(300.0),
    )
    scenario.schedule_crash("replica-1", at_ms=2_000.0)
    scenario.schedule_crash("replica-2", at_ms=2_000.0)
    scenario.run_to_completion()
    summary = client.summary()
    assert summary.requests == 10
    assert summary.timeouts >= 1  # requests after the massacre time out
