"""Soak test: a long chaotic run must stay live and account correctly.

Crashes, recoveries, load steps and message loss all at once, with
several QoS tiers — the closest this suite gets to production chaos.
Assertions are about *liveness* and *conservation*, not performance.
"""

import pytest

from repro.core.qos import QoSSpec
from repro.replica.load import ConstantLoad, PeriodicLoad, StepLoad
from repro.sim.random import Exponential
from repro.workload.scenarios import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def soak_run():
    def load_factory(host):
        if host == "replica-2":
            return StepLoad([(10_000.0, 2.5), (30_000.0, 1.0)])
        if host == "replica-5":
            return PeriodicLoad(mean=1.0, amplitude=0.6, period_ms=20_000.0)
        return ConstantLoad(1.0)

    config = ScenarioConfig(
        seed=13,
        num_replicas=7,
        loss_probability=0.01,
        load_factory=load_factory,
        response_timeout_factor=5.0,
        trace=True,
    )
    scenario = Scenario(config)
    clients = []
    specs = [
        (150.0, 0.9),
        (200.0, 0.5),
        (300.0, 0.0),
        (180.0, 0.8),
    ]
    for index, (deadline, probability) in enumerate(specs):
        clients.append(
            scenario.add_client(
                f"client-{index + 1}",
                QoSSpec(config.service, deadline, probability),
                num_requests=40,
                think_time=Exponential(400.0),
            )
        )
    # Chaos schedule: two crashes (one recovers), staggered.
    scenario.schedule_crash("replica-1", at_ms=8_000.0, recover_at_ms=25_000.0)
    scenario.schedule_crash("replica-4", at_ms=15_000.0)
    scenario.run_to_completion()
    return scenario, clients


def test_every_client_finishes(soak_run):
    _scenario, clients = soak_run
    for client in clients:
        assert client.done
        assert client.summary().requests == 40


def test_no_request_is_lost_by_accounting(soak_run):
    scenario, clients = soak_run
    # Every issued request produced exactly one outcome.
    issued = sum(len(c.outcomes) for c in clients)
    assert issued == 4 * 40
    # Every outcome is either a reply or an explicit timeout.
    for client in clients:
        for outcome in client.outcomes:
            assert outcome.timed_out or outcome.replica is not None


def test_transport_conservation(soak_run):
    scenario, _clients = soak_run
    transport = scenario.transport
    assert (
        transport.delivered_count
        + transport.dropped_count
        + transport.lost_count
        == transport.sent_count
    )


def test_membership_reflects_final_fault_state(soak_run):
    scenario, _clients = soak_run
    members = scenario.group_comm.view("search").members
    assert "replica-4" not in members  # crashed for good
    assert "replica-1" in members  # recovered and rejoined
    assert len(members) == 6


def test_repositories_track_only_live_replicas(soak_run):
    scenario, _clients = soak_run
    live = set(scenario.group_comm.view("search").members)
    for handler in scenario.handlers.values():
        assert set(handler.repository.replicas()) <= live


def test_loose_tier_never_over_hedges(soak_run):
    _scenario, clients = soak_run
    # The Pc=0 client floors at 2 replicas except bootstrap/fallbacks.
    loose = clients[2]
    non_bootstrap = [
        o for o in loose.outcomes
        if not o.decision_meta.get("bootstrap", False)
    ]
    assert non_bootstrap
    typical = sorted(o.redundancy for o in non_bootstrap)
    assert typical[len(typical) // 2] == 2  # median redundancy


def test_timing_failure_stats_match_outcomes(soak_run):
    scenario, clients = soak_run
    for index, client in enumerate(clients):
        handler = scenario.handlers[f"client-{index + 1}"]
        late = sum(1 for o in client.outcomes if not o.timely)
        assert handler.stats.timing_failures == late
        assert handler.stats.responses == len(client.outcomes)
