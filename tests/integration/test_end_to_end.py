"""End-to-end integration tests: the full AQuA stack under load."""

import pytest

from repro.core.qos import QoSSpec
from repro.sim.random import Constant
from repro.workload.scenarios import Scenario, ScenarioConfig


def _qos(scenario, deadline, probability):
    return QoSSpec(scenario.config.service, deadline, probability)


class TestPaperWorkload:
    """The §6 two-client workload end to end."""

    @pytest.fixture(scope="class")
    def result(self):
        scenario = Scenario(ScenarioConfig(seed=1))
        client1 = scenario.add_client(
            "client-1", _qos(scenario, 200.0, 0.0), num_requests=50
        )
        client2 = scenario.add_client(
            "client-2", _qos(scenario, 160.0, 0.9), num_requests=50
        )
        scenario.run_to_completion()
        return scenario, client1, client2

    def test_all_requests_complete(self, result):
        _scenario, client1, client2 = result
        assert client1.summary().requests == 50
        assert client2.summary().requests == 50

    def test_qos_client_meets_its_budget(self, result):
        _scenario, _client1, client2 = result
        assert client2.summary().failure_probability <= 0.1

    def test_stricter_client_uses_more_redundancy(self, result):
        _scenario, client1, client2 = result
        assert client2.summary().mean_redundancy > client1.summary().mean_redundancy

    def test_loose_client_floors_at_two_replicas(self, result):
        _scenario, client1, _client2 = result
        # Paper Fig. 4: Pc=0 always selects Algorithm 1's minimum of 2
        # (the bootstrap request alone selects all 7).
        non_bootstrap = client1.outcomes[1:]
        assert all(o.redundancy == 2 for o in non_bootstrap)

    def test_responses_carry_the_servant_value(self, result):
        _scenario, client1, _client2 = result
        values = [o.value for o in client1.outcomes if not o.timed_out]
        assert values == list(range(len(values)))

    def test_handlers_track_all_replicas(self, result):
        scenario, _c1, _c2 = result
        for handler in scenario.handlers.values():
            assert len(handler.repository) == 7
            assert handler.repository.all_have_history()


class TestTightDeadlines:
    def test_impossible_deadline_fails_most_requests(self):
        scenario = Scenario(ScenarioConfig(seed=2))
        client = scenario.add_client(
            "client-1",
            _qos(scenario, 20.0, 0.9),  # < mean service 100 ms
            num_requests=30,
        )
        scenario.run_to_completion()
        summary = client.summary()
        # The system cannot conjure capacity; the algorithm falls back to
        # all replicas and most requests still miss.
        assert summary.failure_probability > 0.5
        assert summary.mean_redundancy > 5.0

    def test_violation_callback_reports_impossible_qos(self):
        scenario = Scenario(ScenarioConfig(seed=2))
        violations = []
        scenario.add_client(
            "client-1",
            _qos(scenario, 20.0, 0.9),
            num_requests=30,
            violation_callback=lambda svc, p, spec: violations.append(p),
        )
        scenario.run_to_completion()
        assert violations
        assert violations[0] < 0.9


class TestMultiplePolicies:
    def test_all_replicas_policy_floods_every_server(self):
        from repro.core.baselines import AllReplicasPolicy

        scenario = Scenario(ScenarioConfig(seed=3, num_replicas=4))
        client = scenario.add_client(
            "client-1",
            _qos(scenario, 300.0, 0.0),
            policy=AllReplicasPolicy(),
            num_requests=10,
            think_time=Constant(200.0),
        )
        scenario.run_to_completion()
        assert all(o.redundancy == 4 for o in client.outcomes)
        for host in scenario.config.replica_hosts():
            assert scenario.manager.handler_on(host).app.requests_served == 10

    def test_single_fastest_uses_one_replica_after_bootstrap(self):
        from repro.core.baselines import SingleFastestPolicy

        scenario = Scenario(ScenarioConfig(seed=3, num_replicas=4))
        client = scenario.add_client(
            "client-1",
            _qos(scenario, 300.0, 0.0),
            policy=SingleFastestPolicy(),
            num_requests=10,
            think_time=Constant(200.0),
        )
        scenario.run_to_completion()
        assert all(o.redundancy == 1 for o in client.outcomes)


class TestSharedService:
    def test_many_clients_share_the_replica_pool(self):
        scenario = Scenario(ScenarioConfig(seed=4))
        clients = [
            scenario.add_client(
                f"client-{i}",
                _qos(scenario, 200.0, 0.5),
                num_requests=10,
                think_time=Constant(100.0),
            )
            for i in range(5)
        ]
        scenario.run_to_completion()
        for client in clients:
            assert client.summary().requests == 10
        served = sum(
            scenario.manager.handler_on(h).app.requests_served
            for h in scenario.config.replica_hosts()
        )
        # Every request was served by >= 1 replica.
        assert served >= 50
