"""Tests for the CSV figure-data exporter."""

import csv


from repro.experiments.export import export_all, write_csv


def test_write_csv_roundtrip(tmp_path):
    path = tmp_path / "t.csv"
    count = write_csv(path, ["a", "b"], [(1, 2.5), ("x", "y")])
    assert count == 2
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["a", "b"]
    assert rows[1] == ["1", "2.5"]


def test_export_all_quick(tmp_path):
    written = export_all(tmp_path / "figures", quick=True)
    names = {p.name for p in written}
    assert names == {
        "fig3_overhead.csv",
        "fig4_replicas_selected.csv",
        "fig5_timing_failures.csv",
        "min_response.csv",
        "policy_comparison.csv",
    }
    for path in written:
        assert path.exists()
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) >= 2  # header + at least one data row


def test_fig4_csv_has_full_sweep(tmp_path):
    written = export_all(tmp_path, quick=True)
    fig4 = next(p for p in written if p.name == "fig4_replicas_selected.csv")
    with open(fig4) as handle:
        rows = list(csv.DictReader(handle))
    # 6 deadlines x 3 probabilities.
    assert len(rows) == 18
    probabilities = {row["min_probability"] for row in rows}
    assert probabilities == {"0.9", "0.5", "0.0"}
