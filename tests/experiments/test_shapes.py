"""Shape tests: the paper's qualitative claims hold on reduced sweeps.

These run the real experiment harnesses with fewer points/seeds than the
benchmark targets, asserting directions and bounds rather than absolute
numbers — exactly what a reproduction can promise on different hardware.
"""

import pytest

from repro.experiments import fig3_overhead, fig45_selection, min_response
from repro.experiments.harness import run_two_client_experiment


class TestFig3Shape:
    @pytest.fixture(scope="class")
    def points(self):
        return fig3_overhead.run(
            replica_counts=(2, 8), window_sizes=(5, 20), iterations=30
        )

    def test_overhead_grows_with_replica_count(self, points):
        by_window = {}
        for p in points:
            by_window.setdefault(p.window_size, {})[p.num_replicas] = p
        for window, cells in by_window.items():
            assert cells[8].total_us > cells[2].total_us

    def test_overhead_grows_with_window_size(self, points):
        by_n = {}
        for p in points:
            by_n.setdefault(p.num_replicas, {})[p.window_size] = p
        for n, cells in by_n.items():
            assert cells[20].total_us > cells[5].total_us

    def test_distribution_computation_dominates(self, points):
        # Paper: ~90 % of the overhead is computing the distributions.
        for p in points:
            assert p.distribution_fraction > 0.8


class TestFig45Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            (p.min_probability, p.deadline_ms): p
            for p in fig45_selection.run(
                deadlines_ms=(100.0, 200.0),
                probabilities=(0.9, 0.0),
                seeds=(0,),
            )
        }

    def test_redundancy_decreases_with_deadline(self, rows):
        assert (
            rows[(0.9, 100.0)].avg_replicas_selected
            > rows[(0.9, 200.0)].avg_replicas_selected
        )

    def test_redundancy_decreases_with_lower_probability(self, rows):
        assert (
            rows[(0.9, 100.0)].avg_replicas_selected
            > rows[(0.0, 100.0)].avg_replicas_selected
        )

    def test_pc_zero_floors_at_two_replicas(self, rows):
        # 50 requests: 1 bootstrap (7 replicas) + 49 at the floor of 2.
        floor = (7 + 49 * 2) / 50
        assert rows[(0.0, 200.0)].avg_replicas_selected == pytest.approx(
            floor, abs=0.15
        )

    def test_failure_probability_within_client_budget(self, rows):
        assert rows[(0.9, 100.0)].failure_probability <= 0.1
        assert rows[(0.9, 200.0)].failure_probability <= 0.1

    def test_failures_decrease_with_deadline(self, rows):
        assert (
            rows[(0.0, 100.0)].failure_probability
            >= rows[(0.0, 200.0)].failure_probability
        )


class TestMinResponseFloor:
    def test_floor_is_a_few_milliseconds(self):
        result = min_response.run(num_requests=50)
        # Paper: ~3.5 ms on their testbed.  Ours is calibrated to land in
        # the same band; the reproduction claim is "low single digits".
        assert 1.0 <= result.min_response_ms <= 6.0
        assert result.min_response_ms <= result.mean_response_ms


class TestTwoClientHarness:
    def test_client1_configuration_is_fixed(self):
        result = run_two_client_experiment(
            deadline_ms=150.0, min_probability=0.5, seed=0, num_requests=10
        )
        assert result.client1.requests == 10
        assert result.client2.requests == 10
        assert result.deadline_ms == 150.0
