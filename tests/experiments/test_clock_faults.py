"""A18 acceptance: the clock-fault ablation's qualitative contract.

Reduced sweep (one scenario seed) of the real harness, asserting the
ISSUE 10 acceptance shape: the skew-tolerant stack holds the in-window
timely floor and quarantines the clock-faulty replica, the same-clock
discipline alone degrades but avoids the collapse, and the naive
absolute-timestamp baseline collapses under the open-loop load.
"""

import pytest

from repro.experiments import clock_faults
from repro.health import HealthState


@pytest.fixture(scope="module")
def points():
    return {p.variant: p for p in clock_faults.run(seeds=(0,))}


class TestA18Shape:
    def test_tolerant_holds_the_window_floor(self, points):
        assert points["tolerant"].window_timely_fraction >= 0.90

    def test_naive_collapses(self, points):
        # The funnel: zeroed duration reports + future-stamp-clamped
        # gateway delays keep the frozen replica looking instant, so the
        # open-loop load piles onto its unbounded real queue.
        assert points["naive"].window_timely_fraction < 0.5

    def test_disciplines_order_strictly(self, points):
        assert (
            points["naive"].window_timely_fraction
            < points["same-clock"].window_timely_fraction
            < points["tolerant"].window_timely_fraction
        )

    def test_only_the_tolerant_variant_quarantines(self, points):
        assert points["tolerant"].clock_quarantines >= 1
        assert points["naive"].clock_quarantines == 0
        assert points["same-clock"].clock_quarantines == 0

    def test_every_variant_rejects_some_reports(self, points):
        # naive's rejections are its outlier discards; the same-clock
        # variants' are coherence rejections.  All non-zero: the fault
        # windows are actually observed by every discipline.
        for p in points.values():
            assert p.clock_rejections > 0


class TestA18Determinism:
    def test_run_one_is_bit_identical(self):
        assert clock_faults.run_one("tolerant", 0) == clock_faults.run_one(
            "tolerant", 0
        )

    def test_parallel_sweep_matches_serial(self):
        serial = clock_faults.run(seeds=(0,))
        fanned = clock_faults.run(seeds=(0,), workers=2)
        assert fanned == serial


class TestA18QuarantineTargets:
    def test_clock_quarantines_name_only_clock_faulted_replicas(self):
        # s-1 (step + freeze) must be quarantined with the clock reason;
        # the drifting replicas (±500 ppm, inside the coherence slack)
        # must never be.  s-4's 200 ms step may or may not accumulate a
        # streak — it is allowed either way, being genuinely faulted.
        from repro.sim.random import RandomStreams

        sim, client, stub = clock_faults._build_stack(0, "tolerant")
        arrival = RandomStreams(seed=0).stream("a18.arrivals")

        def waiter(event):
            yield event

        def load():
            for i in range(900):
                event = stub.invoke(clock_faults.METHOD, i)
                sim.spawn(waiter(event), name=f"wait.{i}")
                yield sim.timeout(
                    float(arrival.exponential(clock_faults.INTERARRIVAL_MS))
                )

        sim.spawn(load(), name="load.open")
        sim.run()
        culprits = {
            e.replica
            for e in client.health.events
            if e.new_state is HealthState.QUARANTINED
            and e.reason == "clock_fault"
        }
        assert "s-1" in culprits
        assert culprits <= {"s-1", "s-4"}
