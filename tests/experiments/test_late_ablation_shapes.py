"""Shape tests for ablations A12-A14 (reduced sweeps)."""

import pytest

from repro.experiments import adaptation_timeline, colocation, retransmission


class TestColocationShape:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            r.policy: r for r in colocation.run(seeds=(0,), num_requests=25)
        }

    def test_dynamic_avoids_noisy_hosts(self, results):
        assert (
            results["dynamic (paper)"].noisy_host_share
            < results["random-2 (load-blind)"].noisy_host_share
        )

    def test_dynamic_meets_budget(self, results):
        assert results["dynamic (paper)"].failure_probability <= 0.1


class TestRetransmissionShape:
    @pytest.fixture(scope="class")
    def cells(self):
        points = retransmission.run(
            deadlines_ms=(140.0,), seeds=(0,), num_requests=25
        )
        return {(p.strategy, p.deadline_ms): p for p in points}

    def test_retry_worse_at_tight_deadline(self, cells):
        dynamic = cells[("dynamic (paper)", 140.0)]
        retry = cells[("retransmit (related work)", 140.0)]
        assert retry.failure_probability >= dynamic.failure_probability

    def test_retry_sends_fewer_messages(self, cells):
        dynamic = cells[("dynamic (paper)", 140.0)]
        retry = cells[("retransmit (related work)", 140.0)]
        assert retry.messages_per_request < dynamic.messages_per_request


class TestAdaptationTimelineShape:
    @pytest.fixture(scope="class")
    def buckets(self):
        return adaptation_timeline.run(seed=0)

    def test_dynamic_masks_crash_window(self, buckets):
        crash = [
            b for b in buckets
            if b.policy == "dynamic (paper)" and b.start_ms == 10_000.0
        ][0]
        assert crash.failures == 0
        assert crash.timeouts == 0

    def test_single_fastest_suffers_in_crash_window(self, buckets):
        crash = [
            b for b in buckets
            if b.policy == "single-fastest" and b.start_ms == 10_000.0
        ][0]
        assert crash.failures + crash.timeouts >= 1

    def test_timeline_covers_horizon(self, buckets):
        dynamic = [b for b in buckets if b.policy == "dynamic (paper)"]
        assert dynamic[0].start_ms == 0.0
        assert dynamic[-1].end_ms == 30_000.0
        assert sum(b.requests for b in dynamic) > 0


class TestRunAllWiring:
    def test_every_entry_is_runnable(self):
        from repro.experiments.run_all import ALL_EXPERIMENTS

        for label, module in ALL_EXPERIMENTS:
            if module is None:
                continue  # the lazily imported crash_tolerance entry
            assert hasattr(module, "main"), label
            assert hasattr(module, "run"), label

    def test_quick_flag_parses(self):
        import argparse

        parser = argparse.ArgumentParser()
        parser.add_argument("--quick", action="store_true")
        assert parser.parse_args(["--quick"]).quick
