"""Unit tests for the experiment harness utilities."""

import pytest

from repro.experiments.harness import average, format_table


def test_average():
    assert average([1.0, 2.0, 3.0]) == 2.0


def test_average_rejects_empty():
    with pytest.raises(ValueError):
        average([])


def test_format_table_alignment():
    table = format_table(
        ["name", "value"],
        [("alpha", 1.5), ("b", 20.25)],
    )
    lines = table.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert "name" in lines[0] and "value" in lines[0]
    assert "alpha" in lines[2]
    assert "1.500" in lines[2]
    assert "20.250" in lines[3]


def test_format_table_floats_rounded_to_three_places():
    table = format_table(["x"], [(0.123456,)])
    assert "0.123" in table
    assert "0.1234" not in table


def test_format_table_non_floats_pass_through():
    table = format_table(["x"], [("text",), (7,)])
    assert "text" in table
    assert "7" in table
