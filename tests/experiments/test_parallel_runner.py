"""The parallel sweep engine's 1-vs-N invariance contract (ISSUE 6).

The headline property: ``run_sweep`` produces **byte-identical** merged
results for 1, 2, and 4 workers — same task seeds, same values, same
canonical digest.  Plus the supporting pieces: deterministic task
seeding, order-independent summary merging, and the canonical encoding
the digest is computed over.
"""

import math

import pytest

from repro.experiments.parallel import (
    SMOKE_POINTS,
    TaskResult,
    _build_tasks,
    _smoke_sweep,
    canonical,
    merge_summaries,
    run_sweep,
    sweep_digest,
)
from repro.rng import derive_entity_seed
from repro.workload.client import ClientSummary


def _echo_task(params, seed, repetition):
    """Module-level (picklable) task: a pure function of its arguments."""
    return {
        "params": params,
        "seed": seed,
        "repetition": repetition,
        "value": math.sin(seed % 1000) * (repetition + 1),
    }


class TestTaskSeeding:
    def test_requires_exactly_one_of_repetitions_or_seeds(self):
        with pytest.raises(ValueError):
            _build_tasks(["p"], None, None, 0, "sweep")
        with pytest.raises(ValueError):
            _build_tasks(["p"], 2, (0, 1), 0, "sweep")

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            _build_tasks(["p"], 0, None, 0, "sweep")

    def test_explicit_seeds_shared_across_points(self):
        tasks = _build_tasks(["a", "b"], None, (7, 13), 0, "sweep")
        assert [(t.point_index, t.repetition, t.seed) for t in tasks] == [
            (0, 0, 7),
            (0, 1, 13),
            (1, 0, 7),
            (1, 1, 13),
        ]

    def test_derived_seeds_are_per_cell_and_keyed(self):
        tasks = _build_tasks(["a", "b"], 2, None, 99, "sweep")
        assert len({t.seed for t in tasks}) == 4
        for task in tasks:
            assert task.seed == derive_entity_seed(
                99, "sweep", task.point_index, task.repetition
            )


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_digest_identical_to_serial(self, workers):
        serial = run_sweep(_echo_task, ["a", "b", "c"], repetitions=3)
        parallel = run_sweep(
            _echo_task, ["a", "b", "c"], repetitions=3, workers=workers
        )
        assert parallel.results == serial.results
        assert parallel.digest() == serial.digest()

    def test_workers_capped_by_task_count(self):
        sweep = run_sweep(_echo_task, ["only"], repetitions=1, workers=8)
        assert sweep.workers == 1

    def test_by_point_groups_in_repetition_order(self):
        sweep = run_sweep(_echo_task, ["a", "b"], repetitions=2, workers=2)
        grouped = sweep.by_point()
        assert len(grouped) == 2
        for point_values in grouped:
            assert [v["repetition"] for v in point_values] == [0, 1]

    def test_smoke_sweep_parallel_matches_serial(self):
        # The CI digest job's exact comparison, in-process: the built-in
        # two-client smoke sweep through real scenario runs.
        assert _smoke_sweep(workers=1).digest() == _smoke_sweep(2).digest()

    def test_smoke_points_are_full_scenario_runs(self):
        sweep = _smoke_sweep(workers=1)
        assert len(sweep.points) == len(SMOKE_POINTS)
        assert all(r.value is not None for r in sweep.results)


class TestMergeSummaries:
    @staticmethod
    def _summary(requests, failures, timeouts, resp, red, sheds):
        return ClientSummary(
            requests=requests,
            timing_failures=failures,
            timeouts=timeouts,
            mean_response_ms=resp,
            mean_redundancy=red,
            sheds=sheds,
        )

    def test_counters_add_and_means_weight_by_admitted(self):
        merged = merge_summaries(
            [
                self._summary(10, 1, 0, 20.0, 1.5, 2),  # admitted 8
                self._summary(6, 0, 1, 50.0, 3.0, 2),  # admitted 4
            ]
        )
        assert merged.requests == 16
        assert merged.timing_failures == 1
        assert merged.timeouts == 1
        assert merged.sheds == 4
        assert merged.admitted == 12
        assert merged.mean_response_ms == (20.0 * 8 + 50.0 * 4) / 12
        assert merged.mean_redundancy == (1.5 * 8 + 3.0 * 4) / 12

    def test_all_shed_run_merges_without_dividing_by_zero(self):
        merged = merge_summaries([self._summary(5, 0, 0, 0.0, 0.0, 5)])
        assert merged.admitted == 0
        assert merged.mean_response_ms == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_summaries([])

    def test_identity_on_single_summary(self):
        one = self._summary(9, 2, 1, 33.0, 2.0, 0)
        assert merge_summaries([one]) == one


class TestCanonicalEncoding:
    def test_floats_encode_bit_exact(self):
        assert canonical(0.1) == (0.1).hex()
        assert canonical(0.1) != canonical(0.1 + 1e-17 * 2)

    def test_bools_are_not_ints(self):
        assert canonical(True) is True
        assert canonical(1) == 1

    def test_dataclasses_tagged_and_dicts_sorted(self):
        result = TaskResult(point_index=0, repetition=1, seed=3, value=None)
        encoded = canonical(result)
        assert encoded["__dataclass__"] == "TaskResult"
        assert canonical({"b": 1, "a": 2}) == {"a": 2, "b": 1}

    def test_digest_is_order_insensitive(self):
        results = [
            TaskResult(point_index=p, repetition=r, seed=0, value=p * 10 + r)
            for p in range(2)
            for r in range(2)
        ]
        assert sweep_digest(results) == sweep_digest(list(reversed(results)))
