"""Shape tests for the §8-extension ablations (A6–A8)."""

import pytest

from repro.experiments import bursty_network, method_classification, probing


class TestProbingShape:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            r.variant: r for r in probing.run(seeds=(0,), num_requests=20)
        }

    def test_probes_fire_only_when_enabled(self, results):
        assert results["without probes"].probes_sent == 0
        assert results["with active probes"].probes_sent > 0

    def test_probing_reduces_failures_on_stale_workload(self, results):
        assert (
            results["with active probes"].failure_probability
            < results["without probes"].failure_probability
        )


class TestClassificationShape:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            r.variant: r
            for r in method_classification.run(seeds=(0,), num_requests=30)
        }

    def test_classified_routes_with_less_redundancy(self, results):
        pooled = results["pooled (paper base)"]
        classified = results["classified (per-method)"]
        assert classified.heavy_redundancy < pooled.heavy_redundancy
        assert classified.cheap_redundancy < pooled.cheap_redundancy

    def test_classified_meets_budget(self, results):
        assert results["classified (per-method)"].failure_probability <= 0.1


class TestBurstyShape:
    def test_window_not_worse_than_last_value(self):
        results = {
            r.variant: r
            for r in bursty_network.run(seeds=(0, 1), num_requests=25)
        }
        base = results["last value (paper base)"]
        windowed = results["window of 5"]
        assert windowed.failure_probability <= base.failure_probability + 0.05
