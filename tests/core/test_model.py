"""Unit tests for the Equation 1 timeliness model."""

import pytest

from repro.core.model import (
    min_replicas_needed,
    subset_timeliness_from_map,
    subset_timeliness_probability,
)


class TestSubsetProbability:
    def test_empty_subset_cannot_respond(self):
        assert subset_timeliness_probability([]) == 0.0

    def test_single_replica_is_identity(self):
        assert subset_timeliness_probability([0.7]) == pytest.approx(0.7)

    def test_two_replicas_match_equation_1(self):
        # 1 - (1-0.6)(1-0.5) = 0.8
        assert subset_timeliness_probability([0.6, 0.5]) == pytest.approx(0.8)

    def test_adding_replicas_never_hurts(self):
        base = subset_timeliness_probability([0.3, 0.4])
        bigger = subset_timeliness_probability([0.3, 0.4, 0.01])
        assert bigger >= base

    def test_certain_replica_dominates(self):
        assert subset_timeliness_probability([1.0, 0.1]) == 1.0

    def test_all_zero_replicas_give_zero(self):
        assert subset_timeliness_probability([0.0, 0.0]) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            subset_timeliness_probability([1.1])
        with pytest.raises(ValueError):
            subset_timeliness_probability([-0.1])

    def test_from_map(self):
        probs = {"r1": 0.6, "r2": 0.5}
        assert subset_timeliness_from_map(["r1", "r2"], probs) == pytest.approx(0.8)


class TestMinReplicasNeeded:
    def test_target_zero_needs_one(self):
        assert min_replicas_needed(0.5, 0.0) == 1

    def test_perfect_replica_needs_one(self):
        assert min_replicas_needed(1.0, 0.999) == 1

    def test_known_case(self):
        # 1-(1-0.5)^k >= 0.9  ->  k >= 3.32  ->  4
        assert min_replicas_needed(0.5, 0.9) == 4

    def test_exact_boundary(self):
        # 1-(1-0.5)^1 = 0.5 exactly meets target 0.5
        assert min_replicas_needed(0.5, 0.5) == 1

    def test_zero_probability_is_unreachable(self):
        assert min_replicas_needed(0.0, 0.5) == 10**9

    def test_certain_target_with_uncertain_replicas_unreachable(self):
        assert min_replicas_needed(0.5, 1.0) == 10**9

    def test_result_actually_satisfies_target(self):
        for p in (0.1, 0.3, 0.7, 0.95):
            for target in (0.5, 0.9, 0.99):
                k = min_replicas_needed(p, target)
                assert subset_timeliness_probability([p] * k) >= target - 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            min_replicas_needed(1.5, 0.5)
        with pytest.raises(ValueError):
            min_replicas_needed(0.5, -0.1)
