"""Unit tests for the response-time estimator (Equation 2)."""

import pytest

from repro.core.estimator import QueueScaledEstimator, ResponseTimeEstimator
from repro.core.repository import InformationRepository


@pytest.fixture
def repo():
    return InformationRepository(window_size=5)


def _feed(repo, name, services, queues, gateway):
    for s, q in zip(services, queues):
        repo.record_performance(name, s, q, queue_length=1, now_ms=0.0)
    repo.record_gateway_delay(name, gateway, now_ms=0.0)


def test_bin_width_validation(repo):
    with pytest.raises(ValueError):
        ResponseTimeEstimator(repo, bin_width_ms=0.0)


def test_no_history_returns_none(repo):
    repo.add_replica("r1")
    estimator = ResponseTimeEstimator(repo)
    assert estimator.response_time_pmf("r1") is None
    assert estimator.probability_by("r1", 100.0) is None


def test_pmf_is_convolution_plus_shift(repo):
    _feed(repo, "r1", services=[100, 100, 120, 120, 140],
          queues=[0, 0, 10, 10, 20], gateway=3.0)
    estimator = ResponseTimeEstimator(repo)
    pmf = estimator.response_time_pmf("r1")
    assert pmf.mean() == pytest.approx(116.0 + 8.0 + 3.0)
    assert pmf.min() == pytest.approx(103.0)
    assert pmf.max() == pytest.approx(163.0)


def test_probability_by_deadline(repo):
    _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
    estimator = ResponseTimeEstimator(repo)
    assert estimator.probability_by("r1", 103.0) == pytest.approx(1.0)
    assert estimator.probability_by("r1", 102.0) == pytest.approx(0.0)


def test_nonpositive_deadline_gives_zero(repo):
    _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
    estimator = ResponseTimeEstimator(repo)
    assert estimator.probability_by("r1", 0.0) == 0.0
    assert estimator.probability_by("r1", -5.0) == 0.0


def test_probabilities_by_covers_all_replicas(repo):
    _feed(repo, "r1", services=[50] * 5, queues=[0] * 5, gateway=3.0)
    repo.add_replica("r2")  # no history
    estimator = ResponseTimeEstimator(repo)
    probs = estimator.probabilities_by(100.0)
    assert probs["r1"] == pytest.approx(1.0)
    assert probs["r2"] is None


def test_cache_reused_until_new_measurements(repo):
    _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
    estimator = ResponseTimeEstimator(repo)
    first = estimator.response_time_pmf("r1")
    assert estimator.response_time_pmf("r1") is first  # memoized
    repo.record_performance("r1", 200.0, 0.0, 0, now_ms=1.0)
    second = estimator.response_time_pmf("r1")
    assert second is not first
    assert second.mean() > first.mean()


def test_cache_invalidated_by_gateway_delay_update(repo):
    _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
    estimator = ResponseTimeEstimator(repo)
    before = estimator.response_time_pmf("r1")
    repo.record_gateway_delay("r1", 50.0, now_ms=1.0)
    after = estimator.response_time_pmf("r1")
    assert after.mean() == pytest.approx(before.mean() + 47.0)


def test_invalidate_clears_memo(repo):
    _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
    estimator = ResponseTimeEstimator(repo)
    first = estimator.response_time_pmf("r1")
    estimator.invalidate()
    second = estimator.response_time_pmf("r1")
    assert second is not first
    assert second.allclose(first)


def test_expected_response_time(repo):
    _feed(repo, "r1", services=[100] * 5, queues=[10] * 5, gateway=5.0)
    estimator = ResponseTimeEstimator(repo)
    assert estimator.expected_response_time("r1") == pytest.approx(115.0)
    repo.add_replica("r2")
    assert estimator.expected_response_time("r2") is None


def test_binning_groups_noisy_samples(repo):
    _feed(repo, "r1", services=[100.2, 99.8, 100.4, 99.6, 100.1],
          queues=[0.1, 0.2, 0.0, 0.1, 0.2], gateway=3.0)
    estimator = ResponseTimeEstimator(repo, bin_width_ms=1.0)
    pmf = estimator.response_time_pmf("r1")
    assert pmf.support_size == 1  # everything collapses to 100 + 0 + 3


class TestIncrementalPipeline:
    def test_incremental_matches_from_scratch(self, repo):
        _feed(repo, "r1", services=[100, 110, 120, 130, 140],
              queues=[0, 5, 10, 15, 20], gateway=3.0)
        cached = ResponseTimeEstimator(repo).response_time_pmf("r1")
        fresh = ResponseTimeEstimator(
            repo, incremental=False
        ).response_time_pmf("r1")
        assert cached.allclose(fresh)

    def test_cache_info_counts_hits_and_misses(self, repo):
        _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
        estimator = ResponseTimeEstimator(repo)
        estimator.response_time_pmf("r1")
        estimator.response_time_pmf("r1")
        info = estimator.cache_info()
        assert info == {"hits": 1, "misses": 1, "entries": 1}

    def test_gateway_delay_update_reuses_convolution(self, repo):
        # A new T_i must re-shift the cached S ⊛ W, not rebuild it.
        _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
        estimator = ResponseTimeEstimator(repo)
        estimator.response_time_pmf("r1")
        conv_before = estimator._conv_cache["r1"]
        repo.record_gateway_delay("r1", 9.0, now_ms=1.0)
        after = estimator.response_time_pmf("r1")
        assert estimator._conv_cache["r1"] is conv_before
        assert after.min() == pytest.approx(109.0)

    def test_prune_drops_departed_replicas(self, repo):
        _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
        _feed(repo, "r2", services=[100] * 5, queues=[0] * 5, gateway=3.0)
        estimator = ResponseTimeEstimator(repo)
        estimator.response_time_pmf("r1")
        estimator.response_time_pmf("r2")
        estimator.prune(["r2"])
        assert estimator.cache_info()["entries"] == 1

    def test_batch_matches_scalar(self, repo):
        _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
        _feed(repo, "r2", services=[50] * 5, queues=[0] * 5, gateway=3.0)
        repo.add_replica("r3")  # no history
        estimator = ResponseTimeEstimator(repo)
        replicas = repo.replicas()
        for deadline in (-1.0, 0.0, 60.0, 104.0, 500.0):
            batched = estimator.batch_probability_by(replicas, deadline)
            for name, probability in zip(replicas, batched):
                assert probability == estimator.probability_by(name, deadline)

    def test_batch_reuses_matrix_across_calls(self, repo):
        _feed(repo, "r1", services=[100] * 5, queues=[0] * 5, gateway=3.0)
        estimator = ResponseTimeEstimator(repo)
        estimator.batch_probability_by(["r1"], 100.0)
        matrix = estimator._batch_cache
        estimator.batch_probability_by(["r1"], 200.0)
        assert estimator._batch_cache is matrix  # unchanged pmfs: reused
        repo.record_performance("r1", 150.0, 0.0, 0, now_ms=1.0)
        estimator.batch_probability_by(["r1"], 200.0)
        assert estimator._batch_cache is not matrix


class TestQueueScaledEstimator:
    def test_scales_with_current_queue_depth(self, repo):
        # History: queueing ~ one service time (depth ~1).
        _feed(repo, "r1", services=[100] * 5, queues=[100] * 5, gateway=0.0)
        base = ResponseTimeEstimator(repo).response_time_pmf("r1")
        record = repo.record("r1")
        record.queue_length = 5  # queue exploded since the window filled
        scaled = QueueScaledEstimator(repo).response_time_pmf("r1")
        assert scaled.mean() > base.mean()

    def test_matches_base_when_depth_is_stable(self, repo):
        _feed(repo, "r1", services=[100] * 5, queues=[100] * 5, gateway=0.0)
        record = repo.record("r1")
        record.queue_length = 1  # same depth the history implies
        base = ResponseTimeEstimator(repo).response_time_pmf("r1")
        scaled = QueueScaledEstimator(repo).response_time_pmf("r1")
        assert scaled.mean() == pytest.approx(base.mean())

    def test_cache_tracks_probe_queue_updates(self, repo):
        # Probe replies write queue_length directly, without a window
        # version bump; the scaled estimator's cache key must still see it.
        _feed(repo, "r1", services=[100] * 5, queues=[100] * 5, gateway=0.0)
        estimator = QueueScaledEstimator(repo)
        record = repo.record("r1")
        record.queue_length = 1
        before = estimator.response_time_pmf("r1")
        record.queue_length = 7
        after = estimator.response_time_pmf("r1")
        assert after is not before
        assert after.mean() > before.mean()


class TestBatchedFleetPipeline:
    """ISSUE 7: batched convolution refresh + the repository-version gate."""

    def _fleet(self, num_replicas=16, window=12, seed=0):
        import numpy as np

        rng = np.random.default_rng(seed)
        repository = InformationRepository(window_size=window)
        for index in range(num_replicas):
            name = f"replica-{index:04d}"
            for _ in range(window):
                repository.record_performance(
                    name,
                    float(max(0.0, rng.normal(100.0, 40.0))),
                    float(rng.exponential(15.0)),
                    queue_length=1,
                    now_ms=0.0,
                )
            repository.record_gateway_delay(
                name, float(max(0.0, rng.normal(3.0, 0.5))), now_ms=0.0
            )
        return repository

    def test_batch_refresh_matches_scalar_path(self):
        repository = self._fleet()
        replicas = repository.replicas()
        batched = ResponseTimeEstimator(repository)
        scalar = ResponseTimeEstimator(repository, incremental=False)
        fast = batched.batch_probability_by(replicas, 150.0)
        slow = [scalar.probability_by(name, 150.0) for name in replicas]
        assert fast == pytest.approx(slow, abs=1e-12)

    def test_batch_refresh_matches_after_fleet_wide_burst(self):
        repository = self._fleet()
        replicas = repository.replicas()
        estimator = ResponseTimeEstimator(repository)
        estimator.batch_probability_by(replicas, 150.0)  # warm every cache
        for name in replicas:  # every window moves at once
            repository.record_performance(
                name, 180.0, 25.0, queue_length=2, now_ms=1.0
            )
        fresh = ResponseTimeEstimator(repository, incremental=False)
        fast = estimator.batch_probability_by(replicas, 150.0)
        slow = [fresh.probability_by(name, 150.0) for name in replicas]
        assert fast == pytest.approx(slow, abs=1e-12)

    def test_version_gate_caches_steady_state(self):
        repository = self._fleet()
        replicas = repository.replicas()
        estimator = ResponseTimeEstimator(repository)
        first = estimator.batch_probability_by(replicas, 150.0)
        misses = estimator.cache_misses
        hits = estimator.cache_hits
        second = estimator.batch_probability_by(replicas, 150.0)
        assert second == first
        # The version gate short-circuits before any per-replica lookup,
        # so neither counter of the per-replica cache moves.
        assert estimator.cache_misses == misses
        assert estimator.cache_hits == hits

    def test_version_gate_sees_direct_queue_write(self, repo):
        # Probe replies assign record.queue_length directly; the setter
        # must bump repository.version so the fleet cache invalidates.
        _feed(repo, "r1", services=[100] * 5, queues=[10] * 5, gateway=1.0)
        before = repo.version
        repo.record("r1").queue_length = 9
        assert repo.version > before

    def test_version_gate_sees_membership_changes(self, repo):
        _feed(repo, "r1", services=[100] * 5, queues=[10] * 5, gateway=1.0)
        estimator = ResponseTimeEstimator(repo)
        assert estimator.batch_probability_by(["r1"], 150.0)[0] is not None
        before = repo.version
        repo.remove_replica("r1")
        assert repo.version > before


@pytest.mark.timeout(60)
def test_thousand_replica_selection_smoke():
    """n = 1024 end-to-end: estimator batch pass + Algorithm 1 (ISSUE 7).

    A smoke test, not a benchmark: it proves the fleet-scale path stays
    functional (and terminates promptly — pytest-timeout enforces the
    ceiling in CI) without asserting wall-clock numbers, which
    ``benchmarks/test_bench_scale.py`` owns.
    """
    import numpy as np

    from repro.core.selection import select_replicas_arrays
    from repro.experiments.fig3_overhead import build_loaded_repository

    repository = build_loaded_repository(1024, window_size=30, seed=0)
    estimator = ResponseTimeEstimator(repository)
    replicas = repository.replicas()
    names = np.asarray(replicas)
    for _ in range(3):  # cold pass, then the version-gated steady state
        probabilities = np.asarray(
            estimator.batch_probability_by(replicas, 150.0), dtype=float
        )
        result = select_replicas_arrays(names, probabilities, 0.9)
    assert 1 <= result.redundancy <= 1024
    assert set(result.selected) <= set(replicas)
