"""Tests for the adaptive QoS controller."""

import pytest

from repro.core.negotiation import AdaptiveQoSController
from repro.core.qos import QoSSpec


class FakeHandler:
    """Minimal RenegotiatingHandler double."""

    def __init__(self, deadline=100.0, probability=0.9):
        self.qos = QoSSpec("svc", deadline, probability)
        self.renegotiations = 0

    def renegotiate_qos(self, new_spec):
        self.qos = new_spec
        self.renegotiations += 1


class TestValidation:
    def test_relax_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            AdaptiveQoSController(FakeHandler(), relax_factor=1.0)

    def test_tighten_factor_range(self):
        with pytest.raises(ValueError):
            AdaptiveQoSController(FakeHandler(), tighten_factor=1.0)

    def test_bounds_ordering(self):
        with pytest.raises(ValueError):
            AdaptiveQoSController(
                FakeHandler(), min_deadline_ms=500.0, max_deadline_ms=200.0
            )


class TestRelaxation:
    def test_relax_multiplies_deadline(self):
        handler = FakeHandler(deadline=100.0)
        controller = AdaptiveQoSController(handler, relax_factor=1.5)
        spec = controller.relax()
        assert spec.deadline_ms == pytest.approx(150.0)
        assert handler.qos.deadline_ms == pytest.approx(150.0)
        assert handler.qos.min_probability == 0.9  # untouched

    def test_relax_respects_max(self):
        handler = FakeHandler(deadline=100.0)
        controller = AdaptiveQoSController(
            handler, relax_factor=3.0, max_deadline_ms=200.0
        )
        spec = controller.relax()
        assert spec.deadline_ms == 200.0
        assert controller.exhausted
        assert controller.relax() is None  # nothing left to give

    def test_violation_callback_relaxes(self):
        handler = FakeHandler(deadline=100.0)
        controller = AdaptiveQoSController(handler)
        controller.on_violation("svc", 0.5, handler.qos)
        assert handler.qos.deadline_ms > 100.0
        assert controller.relaxations == 1

    def test_history_records_every_step(self):
        handler = FakeHandler(deadline=100.0)
        controller = AdaptiveQoSController(handler, relax_factor=2.0)
        controller.relax()
        controller.relax()
        assert controller.history == [100.0, 200.0, 400.0]


class TestTightening:
    def test_tighten_moves_back_toward_original(self):
        handler = FakeHandler(deadline=100.0)
        controller = AdaptiveQoSController(
            handler, relax_factor=2.0, tighten_factor=0.5
        )
        controller.relax()  # 200
        spec = controller.try_tighten()  # back to 100
        assert spec.deadline_ms == pytest.approx(100.0)
        assert not controller.exhausted

    def test_tighten_stops_at_min(self):
        handler = FakeHandler(deadline=100.0)
        controller = AdaptiveQoSController(handler)
        assert controller.try_tighten() is None  # already at the floor


class TestEndToEnd:
    def test_controller_rescues_impossible_spec(self):
        from repro.workload.scenarios import Scenario, ScenarioConfig

        scenario = Scenario(ScenarioConfig(seed=5))
        # Impossible: 40 ms deadline against ~100 ms service times.
        holder = {}

        def callback(service, observed, spec):
            holder["controller"].on_violation(service, observed, spec)

        client = scenario.add_client(
            "client-1",
            QoSSpec(scenario.config.service, 40.0, 0.9),
            num_requests=60,
            violation_callback=callback,
        )
        handler = scenario.handlers["client-1"]
        holder["controller"] = AdaptiveQoSController(
            handler, relax_factor=2.0, max_deadline_ms=400.0
        )
        scenario.run_to_completion()
        controller = holder["controller"]
        assert controller.relaxations >= 1
        assert handler.qos.deadline_ms > 40.0
        # After relaxation, the tail of the run meets the adopted spec.
        tail = client.outcomes[-20:]
        late = sum(1 for o in tail if not o.timely)
        assert late / len(tail) <= 0.1
