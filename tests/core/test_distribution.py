"""Unit tests for empirical pmfs and discrete convolution."""

import numpy as np
import pytest

from repro.core.distribution import (
    BinWidthMismatchError,
    DiscretePMF,
    SampleCounts,
    batch_convolve,
    quantize,
)


class TestQuantize:
    def test_rounds_to_bin_grid(self):
        assert quantize(10.4, 1.0) == 10.0
        assert quantize(10.6, 1.0) == 11.0

    def test_fractional_bins(self):
        assert quantize(0.26, 0.5) == 0.5
        assert quantize(0.24, 0.5) == 0.0

    def test_nonpositive_bin_rejected(self):
        with pytest.raises(ValueError):
            quantize(1.0, 0.0)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscretePMF([], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DiscretePMF([1.0], [0.5, 0.5])

    def test_rejects_non_normalized(self):
        with pytest.raises(ValueError):
            DiscretePMF([1.0, 2.0], [0.4, 0.4])

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError):
            DiscretePMF([1.0, 2.0], [1.5, -0.5])

    def test_values_sorted_on_construction(self):
        pmf = DiscretePMF([3.0, 1.0, 2.0], [0.2, 0.5, 0.3])
        assert list(pmf.values) == [1.0, 2.0, 3.0]
        assert list(pmf.probs) == [0.5, 0.3, 0.2]

    def test_from_samples_relative_frequency(self):
        pmf = DiscretePMF.from_samples([10, 10, 10, 20], bin_width=1.0)
        assert pmf.items() == [(10.0, 0.75), (20.0, 0.25)]

    def test_from_samples_bins_nearby_values(self):
        pmf = DiscretePMF.from_samples([9.6, 10.2, 10.4], bin_width=1.0)
        assert pmf.items() == [(10.0, 1.0)]

    def test_from_samples_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscretePMF.from_samples([])

    def test_degenerate(self):
        pmf = DiscretePMF.degenerate(7.0)
        assert pmf.mean() == 7.0
        assert pmf.cdf(6.9) == 0.0
        assert pmf.cdf(7.0) == 1.0


class TestStatistics:
    def test_mean_and_variance(self):
        pmf = DiscretePMF([0.0, 10.0], [0.5, 0.5])
        assert pmf.mean() == 5.0
        assert pmf.variance() == 25.0

    def test_cdf_is_right_continuous_step(self):
        pmf = DiscretePMF([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert pmf.cdf(0.5) == 0.0
        assert pmf.cdf(1.0) == pytest.approx(0.2)
        assert pmf.cdf(2.5) == pytest.approx(0.5)
        assert pmf.cdf(3.0) == pytest.approx(1.0)
        assert pmf.cdf(100.0) == 1.0

    def test_survival_complements_cdf(self):
        pmf = DiscretePMF([1.0, 2.0], [0.4, 0.6])
        assert pmf.survival(1.0) == pytest.approx(0.6)

    def test_quantile(self):
        pmf = DiscretePMF([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert pmf.quantile(0.1) == 1.0
        assert pmf.quantile(0.2) == 1.0
        assert pmf.quantile(0.5) == 2.0
        assert pmf.quantile(1.0) == 3.0

    def test_quantile_validation(self):
        pmf = DiscretePMF.degenerate(1.0)
        with pytest.raises(ValueError):
            pmf.quantile(1.5)

    def test_min_max(self):
        pmf = DiscretePMF([5.0, 1.0], [0.5, 0.5])
        assert pmf.min() == 1.0
        assert pmf.max() == 5.0


class TestAlgebra:
    def test_shift_moves_support(self):
        pmf = DiscretePMF([1.0, 2.0], [0.5, 0.5]).shift(3.0)
        assert list(pmf.values) == [4.0, 5.0]
        assert pmf.mean() == pytest.approx(4.5)

    def test_scale(self):
        pmf = DiscretePMF([1.0, 2.0], [0.5, 0.5]).scale(2.0)
        assert list(pmf.values) == [2.0, 4.0]

    def test_scale_by_zero_collapses_to_origin(self):
        pmf = DiscretePMF([1.0, 2.0], [0.5, 0.5]).scale(0.0)
        assert pmf.items() == [(0.0, 1.0)]

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            DiscretePMF.degenerate(1.0).scale(-1.0)

    def test_convolution_of_degenerates_is_sum(self):
        a = DiscretePMF.degenerate(3.0)
        b = DiscretePMF.degenerate(4.0)
        assert a.convolve(b).items() == [(7.0, 1.0)]

    def test_convolution_matches_hand_computation(self):
        # Two fair coins over {0, 1}: sum ~ {0: .25, 1: .5, 2: .25}
        coin = DiscretePMF([0.0, 1.0], [0.5, 0.5])
        total = coin.convolve(coin)
        assert total.items() == [(0.0, 0.25), (1.0, 0.5), (2.0, 0.25)]

    def test_convolution_mean_is_additive(self):
        a = DiscretePMF.from_samples([10, 12, 14, 16])
        b = DiscretePMF.from_samples([1, 2, 3])
        assert a.convolve(b).mean() == pytest.approx(a.mean() + b.mean())

    def test_convolution_via_add_operator(self):
        a = DiscretePMF.degenerate(1.0)
        b = DiscretePMF.degenerate(2.0)
        assert (a + b).items() == [(3.0, 1.0)]

    def test_convolution_is_commutative(self):
        a = DiscretePMF.from_samples([1, 5, 5, 9])
        b = DiscretePMF.from_samples([0, 2, 2, 4, 4])
        assert a.convolve(b).allclose(b.convolve(a))

    def test_equation_2_composition(self):
        # R = S + W + T with T a constant shift (paper Equation 2).
        service = DiscretePMF.from_samples([100, 100, 120, 140, 100])
        queueing = DiscretePMF.from_samples([0, 0, 10, 10, 30])
        response = service.convolve(queueing).shift(3.0)
        assert response.mean() == pytest.approx(
            service.mean() + queueing.mean() + 3.0
        )
        assert response.min() == pytest.approx(103.0)
        assert response.max() == pytest.approx(173.0)


class TestSampleCounts:
    """The incremental count-delta backend of ``from_samples``."""

    def test_matches_from_samples(self):
        samples = [10.2, 10.4, 9.8, 20.1, 20.1]
        counter = SampleCounts(1.0, samples)
        assert counter.pmf().allclose(DiscretePMF.from_samples(samples, 1.0))

    def test_add_then_evict_restores_counts(self):
        counter = SampleCounts(1.0, [10.0, 20.0])
        before = counter.counts()
        counter.add(30.0)
        counter.evict(30.0)
        assert counter.counts() == before
        assert len(counter) == 2

    def test_replace_is_evict_plus_add(self):
        counter = SampleCounts(1.0, [10.0, 20.0])
        counter.replace(30.0, evicted=10.0)
        assert counter.counts() == {20.0: 1, 30.0: 1}

    def test_evict_missing_sample_rejected(self):
        counter = SampleCounts(1.0, [10.0])
        with pytest.raises(ValueError):
            counter.evict(99.0)

    def test_sliding_stream_equals_full_recount(self):
        # Emulate a size-4 sliding window over a long stream.
        rng = np.random.default_rng(3)
        stream = rng.uniform(0.0, 50.0, size=40).tolist()
        window = []
        counter = SampleCounts(2.0)
        for sample in stream:
            evicted = window.pop(0) if len(window) == 4 else None
            window.append(sample)
            counter.replace(sample, evicted)
            assert counter.pmf().allclose(
                DiscretePMF.from_samples(window, 2.0)
            )

    def test_bin_width_validation(self):
        with pytest.raises(ValueError):
            SampleCounts(0.0)


class TestFromCounts:
    def test_from_counts_matches_from_samples(self):
        pmf = DiscretePMF.from_counts({10.0: 3, 20.0: 1})
        assert pmf.items() == [(10.0, 0.75), (20.0, 0.25)]

    def test_from_counts_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscretePMF.from_counts({})


class TestMicrosecondScaleBins:
    """Regression: tolerances derive from bin_width, not hard-coded 1e-9.

    With the old fixed 9-decimal rounding, grids finer than ~1e-8 were
    flattened (``quantize(1.4e-10, 1e-10) == 0.0``) and sub-multiples
    collapsed (``quantize(7.5e-9, 2.5e-9)`` rounded off-grid).
    """

    def test_quantize_preserves_nano_grid(self):
        assert quantize(3.14e-9, 1e-9) == pytest.approx(3e-9, abs=1e-15)
        assert quantize(3.14e-9, 1e-9) != quantize(4.2e-9, 1e-9)

    def test_quantize_preserves_sub_1e8_grid(self):
        # 3 bins of 2.5e-9: must stay at 7.5e-9, not round to 8e-9.
        assert quantize(7.4e-9, 2.5e-9) == pytest.approx(7.5e-9, rel=1e-6)
        assert quantize(1.4e-10, 1e-10) == pytest.approx(1e-10, rel=1e-6)

    def test_from_samples_keeps_micro_bins_distinct(self):
        pmf = DiscretePMF.from_samples([1e-6, 2e-6, 2e-6, 3e-6], 1e-6)
        assert pmf.support_size == 3
        assert pmf.probs.tolist() == [0.25, 0.5, 0.25]

    def test_cdf_includes_atom_at_micro_scale(self):
        pmf = DiscretePMF.from_samples([1e-6, 2e-6], 1e-6)
        assert pmf.cdf(1e-6) == pytest.approx(0.5)
        assert pmf.cdf(0.5e-6) == 0.0
        assert pmf.cdf(2e-6) == 1.0

    def test_cdf_tolerance_scales_with_grid(self):
        # Dust three orders below the grid is absorbed; half a bin is not.
        pmf = DiscretePMF.from_samples([1e-6, 2e-6], 1e-6)
        assert pmf.cdf(1e-6 - 1e-10) == pytest.approx(0.5)
        assert pmf.cdf(1e-6 - 5e-7) == 0.0

    def test_convolution_on_micro_grid(self):
        a = DiscretePMF.from_samples([1e-6, 2e-6], 1e-6)
        b = DiscretePMF.from_samples([1e-6, 3e-6], 1e-6)
        combined = a.convolve(b)
        assert combined.support_size == 4  # 2, 3, 4, 5 microseconds
        assert combined.mean() == pytest.approx(a.mean() + b.mean())

    def test_shift_keeps_micro_grid(self):
        pmf = DiscretePMF.from_samples([1e-6, 2e-6], 1e-6).shift(5e-6)
        assert pmf.min() == pytest.approx(6e-6, rel=1e-9)
        assert pmf.support_size == 2

    def test_millisecond_grids_keep_historical_tolerance(self):
        # Coarse grids must not loosen: 1e-9 dust absorbed, 1e-4 is not.
        pmf = DiscretePMF.from_samples([10.0, 20.0], 1.0)
        assert pmf.cdf(10.0 - 5e-10) == pytest.approx(0.5)
        assert pmf.cdf(10.0 - 1e-4) == 0.0


class TestConvolveFastPaths:
    def test_degenerate_right_operand_is_shift(self):
        pmf = DiscretePMF.from_samples([1.0, 2.0, 3.0])
        shifted = pmf.convolve(DiscretePMF.degenerate(5.0))
        assert shifted.allclose(pmf.shift(5.0))

    def test_degenerate_left_operand_is_shift(self):
        pmf = DiscretePMF.from_samples([1.0, 2.0, 3.0])
        shifted = DiscretePMF.degenerate(5.0).convolve(pmf)
        assert shifted.allclose(pmf.shift(5.0))

    def test_fast_path_matches_outer_product(self):
        # Reference result computed without the fast path.
        pmf = DiscretePMF.from_samples([1.0, 2.0, 2.0, 4.0])
        single = DiscretePMF.degenerate(3.0)
        sums = np.add.outer(pmf.values, single.values).ravel()
        weights = np.multiply.outer(pmf.probs, single.probs).ravel()
        reference = DiscretePMF(np.round(sums, 9), weights)
        assert pmf.convolve(single).allclose(reference)


def _reference_convolve(a, b):
    """Pure-python dict convolution — the pre-vectorization semantics."""
    sums = {}
    for va, pa in a.items():
        for vb, pb in b.items():
            key = round(va + vb, 9)
            sums[key] = sums.get(key, 0.0) + pa * pb
    values = sorted(sums)
    return values, [sums[v] for v in values]


def _random_grid_pmf(rng, size, bin_width=1.0, spread=None):
    """A grid-tagged pmf with exactly ``size`` atoms."""
    spread = spread if spread is not None else max(4 * size, 8)
    lattice = rng.choice(spread, size=size, replace=False)
    weights = rng.random(size) + 0.05
    return DiscretePMF(
        np.sort(lattice) * bin_width,
        weights / weights.sum(),
        bin_width=bin_width,
    )


def _assert_matches_reference(result, a, b):
    ref_values, ref_probs = _reference_convolve(a, b)
    assert result.support_size == len(ref_values)
    assert np.allclose(result.values, ref_values, atol=1e-9)
    assert np.allclose(result.probs, ref_probs, atol=1e-9)
    assert result.probs.sum() == pytest.approx(1.0, abs=1e-12)


class TestLatticeConvolution:
    """The dense direct/FFT kernel vs the pure-python reference."""

    @pytest.mark.parametrize("size", range(1, 65))
    def test_exhaustive_sizes_match_reference(self, size):
        # Sweeps straight across the FFT crossover (64 lattice slots):
        # contiguous supports of `size` atoms span exactly `size` slots.
        rng = np.random.default_rng(size)
        weights_a = rng.random(size) + 0.05
        weights_b = rng.random(size) + 0.05
        a = DiscretePMF(
            np.arange(size, dtype=float),
            weights_a / weights_a.sum(),
            bin_width=1.0,
        )
        b = DiscretePMF(
            np.arange(size, dtype=float) + 3.0,
            weights_b / weights_b.sum(),
            bin_width=1.0,
        )
        _assert_matches_reference(a.convolve(b), a, b)

    @pytest.mark.parametrize("trial", range(20))
    def test_randomized_sparse_supports_match_reference(self, trial):
        rng = np.random.default_rng(1000 + trial)
        a = _random_grid_pmf(rng, int(rng.integers(2, 40)))
        b = _random_grid_pmf(rng, int(rng.integers(2, 40)))
        _assert_matches_reference(a.convolve(b), a, b)

    def test_fft_side_of_crossover_matches_reference(self):
        rng = np.random.default_rng(7)
        a = _random_grid_pmf(rng, 80, spread=90)   # >= 64 lattice slots
        b = _random_grid_pmf(rng, 75, spread=90)
        _assert_matches_reference(a.convolve(b), a, b)

    def test_direct_side_of_crossover_matches_reference(self):
        rng = np.random.default_rng(8)
        a = _random_grid_pmf(rng, 30, spread=60)   # < 64 lattice slots
        b = _random_grid_pmf(rng, 30, spread=60)
        _assert_matches_reference(a.convolve(b), a, b)

    def test_fractional_grid(self):
        a = DiscretePMF([0.0, 0.5, 1.5], [0.25, 0.5, 0.25], bin_width=0.5)
        b = DiscretePMF([0.5, 1.0], [0.5, 0.5], bin_width=0.5)
        _assert_matches_reference(a.convolve(b), a, b)

    def test_untagged_pmfs_take_pairwise_path(self):
        # Off-grid atoms (irrational spacing) must still convolve exactly.
        a = DiscretePMF([0.0, 0.3, 1.7], [0.2, 0.3, 0.5])
        b = DiscretePMF([0.1, 2.9], [0.6, 0.4])
        _assert_matches_reference(a.convolve(b), a, b)

    def test_grid_tag_propagates_through_convolve(self):
        a = DiscretePMF.from_samples([1, 2, 2, 5], bin_width=1.0)
        b = DiscretePMF.from_samples([0, 3, 3], bin_width=1.0)
        assert a.bin_width == 1.0
        assert a.convolve(b).bin_width == 1.0

    def test_shift_keeps_tag_scale_drops_it(self):
        pmf = DiscretePMF.from_samples([1, 2, 4], bin_width=1.0)
        assert pmf.shift(2.5).bin_width == 1.0
        assert pmf.scale(1.5).bin_width is None

    def test_fft_mass_is_renormalized(self):
        rng = np.random.default_rng(11)
        a = _random_grid_pmf(rng, 200, spread=400)
        b = _random_grid_pmf(rng, 200, spread=400)
        result = a.convolve(b)
        assert result.probs.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(result.probs >= 0.0)


class TestBinWidthMismatch:
    def test_convolve_refuses_different_grids(self):
        a = DiscretePMF.from_samples([1, 2, 3], bin_width=1.0)
        b = DiscretePMF.from_samples([1, 2, 3], bin_width=0.5)
        with pytest.raises(BinWidthMismatchError):
            a.convolve(b)
        with pytest.raises(BinWidthMismatchError):
            b.convolve(a)

    def test_error_is_a_value_error(self):
        # Callers that guarded with ValueError keep working.
        assert issubclass(BinWidthMismatchError, ValueError)

    def test_singleton_operand_bypasses_the_check(self):
        # A constant shift never misaligns a grid.
        a = DiscretePMF.from_samples([1, 2, 3], bin_width=1.0)
        b = DiscretePMF.from_samples([5, 5], bin_width=0.5)
        assert a.convolve(b).allclose(a.shift(5.0))

    def test_untagged_operand_bypasses_the_check(self):
        a = DiscretePMF.from_samples([1, 2, 3], bin_width=1.0)
        b = DiscretePMF([0.25, 1.5], [0.5, 0.5])
        result = a.convolve(b)
        _assert_matches_reference(result, a, b)

    def test_batch_convolve_raises_on_mismatch(self):
        a = DiscretePMF.from_samples([1, 2, 3], bin_width=1.0)
        b = DiscretePMF.from_samples([1, 2, 3], bin_width=2.0)
        with pytest.raises(BinWidthMismatchError):
            batch_convolve([(a, b)])


class TestBatchConvolve:
    def test_matches_scalar_convolve(self):
        rng = np.random.default_rng(21)
        pairs = [
            (
                _random_grid_pmf(rng, int(rng.integers(2, 50))),
                _random_grid_pmf(rng, int(rng.integers(2, 50))),
            )
            for _ in range(12)
        ]
        results = batch_convolve(pairs)
        assert len(results) == len(pairs)
        for (a, b), result in zip(pairs, results):
            assert result is not None
            _assert_matches_reference(result, a, b)

    def test_singletons_become_shifts(self):
        pmf = DiscretePMF.from_samples([1, 2, 4], bin_width=1.0)
        single = DiscretePMF.degenerate(3.0)
        left, right = batch_convolve([(single, pmf), (pmf, single)])
        assert left.allclose(pmf.shift(3.0))
        assert right.allclose(pmf.shift(3.0))

    def test_untagged_pairs_come_back_none(self):
        tagged = DiscretePMF.from_samples([1, 2, 4], bin_width=1.0)
        untagged = DiscretePMF([0.0, 0.3], [0.5, 0.5])
        results = batch_convolve([(tagged, untagged), (tagged, tagged)])
        assert results[0] is None
        assert results[1] is not None

    def test_mixed_row_lengths_pad_correctly(self):
        rng = np.random.default_rng(33)
        pairs = [
            (_random_grid_pmf(rng, 3, spread=8), _random_grid_pmf(rng, 3, spread=8)),
            (_random_grid_pmf(rng, 90, spread=120), _random_grid_pmf(rng, 90, spread=120)),
        ]
        for (a, b), result in zip(pairs, batch_convolve(pairs)):
            _assert_matches_reference(result, a, b)

    def test_empty_input(self):
        assert batch_convolve([]) == []
