"""Unit tests for empirical pmfs and discrete convolution."""

import numpy as np
import pytest

from repro.core.distribution import DiscretePMF, quantize


class TestQuantize:
    def test_rounds_to_bin_grid(self):
        assert quantize(10.4, 1.0) == 10.0
        assert quantize(10.6, 1.0) == 11.0

    def test_fractional_bins(self):
        assert quantize(0.26, 0.5) == 0.5
        assert quantize(0.24, 0.5) == 0.0

    def test_nonpositive_bin_rejected(self):
        with pytest.raises(ValueError):
            quantize(1.0, 0.0)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscretePMF([], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DiscretePMF([1.0], [0.5, 0.5])

    def test_rejects_non_normalized(self):
        with pytest.raises(ValueError):
            DiscretePMF([1.0, 2.0], [0.4, 0.4])

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError):
            DiscretePMF([1.0, 2.0], [1.5, -0.5])

    def test_values_sorted_on_construction(self):
        pmf = DiscretePMF([3.0, 1.0, 2.0], [0.2, 0.5, 0.3])
        assert list(pmf.values) == [1.0, 2.0, 3.0]
        assert list(pmf.probs) == [0.5, 0.3, 0.2]

    def test_from_samples_relative_frequency(self):
        pmf = DiscretePMF.from_samples([10, 10, 10, 20], bin_width=1.0)
        assert pmf.items() == [(10.0, 0.75), (20.0, 0.25)]

    def test_from_samples_bins_nearby_values(self):
        pmf = DiscretePMF.from_samples([9.6, 10.2, 10.4], bin_width=1.0)
        assert pmf.items() == [(10.0, 1.0)]

    def test_from_samples_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscretePMF.from_samples([])

    def test_degenerate(self):
        pmf = DiscretePMF.degenerate(7.0)
        assert pmf.mean() == 7.0
        assert pmf.cdf(6.9) == 0.0
        assert pmf.cdf(7.0) == 1.0


class TestStatistics:
    def test_mean_and_variance(self):
        pmf = DiscretePMF([0.0, 10.0], [0.5, 0.5])
        assert pmf.mean() == 5.0
        assert pmf.variance() == 25.0

    def test_cdf_is_right_continuous_step(self):
        pmf = DiscretePMF([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert pmf.cdf(0.5) == 0.0
        assert pmf.cdf(1.0) == pytest.approx(0.2)
        assert pmf.cdf(2.5) == pytest.approx(0.5)
        assert pmf.cdf(3.0) == pytest.approx(1.0)
        assert pmf.cdf(100.0) == 1.0

    def test_survival_complements_cdf(self):
        pmf = DiscretePMF([1.0, 2.0], [0.4, 0.6])
        assert pmf.survival(1.0) == pytest.approx(0.6)

    def test_quantile(self):
        pmf = DiscretePMF([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert pmf.quantile(0.1) == 1.0
        assert pmf.quantile(0.2) == 1.0
        assert pmf.quantile(0.5) == 2.0
        assert pmf.quantile(1.0) == 3.0

    def test_quantile_validation(self):
        pmf = DiscretePMF.degenerate(1.0)
        with pytest.raises(ValueError):
            pmf.quantile(1.5)

    def test_min_max(self):
        pmf = DiscretePMF([5.0, 1.0], [0.5, 0.5])
        assert pmf.min() == 1.0
        assert pmf.max() == 5.0


class TestAlgebra:
    def test_shift_moves_support(self):
        pmf = DiscretePMF([1.0, 2.0], [0.5, 0.5]).shift(3.0)
        assert list(pmf.values) == [4.0, 5.0]
        assert pmf.mean() == pytest.approx(4.5)

    def test_scale(self):
        pmf = DiscretePMF([1.0, 2.0], [0.5, 0.5]).scale(2.0)
        assert list(pmf.values) == [2.0, 4.0]

    def test_scale_by_zero_collapses_to_origin(self):
        pmf = DiscretePMF([1.0, 2.0], [0.5, 0.5]).scale(0.0)
        assert pmf.items() == [(0.0, 1.0)]

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            DiscretePMF.degenerate(1.0).scale(-1.0)

    def test_convolution_of_degenerates_is_sum(self):
        a = DiscretePMF.degenerate(3.0)
        b = DiscretePMF.degenerate(4.0)
        assert a.convolve(b).items() == [(7.0, 1.0)]

    def test_convolution_matches_hand_computation(self):
        # Two fair coins over {0, 1}: sum ~ {0: .25, 1: .5, 2: .25}
        coin = DiscretePMF([0.0, 1.0], [0.5, 0.5])
        total = coin.convolve(coin)
        assert total.items() == [(0.0, 0.25), (1.0, 0.5), (2.0, 0.25)]

    def test_convolution_mean_is_additive(self):
        a = DiscretePMF.from_samples([10, 12, 14, 16])
        b = DiscretePMF.from_samples([1, 2, 3])
        assert a.convolve(b).mean() == pytest.approx(a.mean() + b.mean())

    def test_convolution_via_add_operator(self):
        a = DiscretePMF.degenerate(1.0)
        b = DiscretePMF.degenerate(2.0)
        assert (a + b).items() == [(3.0, 1.0)]

    def test_convolution_is_commutative(self):
        a = DiscretePMF.from_samples([1, 5, 5, 9])
        b = DiscretePMF.from_samples([0, 2, 2, 4, 4])
        assert a.convolve(b).allclose(b.convolve(a))

    def test_equation_2_composition(self):
        # R = S + W + T with T a constant shift (paper Equation 2).
        service = DiscretePMF.from_samples([100, 100, 120, 140, 100])
        queueing = DiscretePMF.from_samples([0, 0, 10, 10, 30])
        response = service.convolve(queueing).shift(3.0)
        assert response.mean() == pytest.approx(
            service.mean() + queueing.mean() + 3.0
        )
        assert response.min() == pytest.approx(103.0)
        assert response.max() == pytest.approx(173.0)
