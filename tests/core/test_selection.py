"""Unit tests for Algorithm 1 and the dynamic selection policy."""

import numpy as np
import pytest

from repro.core.estimator import ResponseTimeEstimator
from repro.core.model import subset_timeliness_probability
from repro.core.qos import QoSSpec
from repro.core.repository import InformationRepository
from repro.core.selection import (
    DynamicSelectionPolicy,
    ReplicaProbability,
    SelectionContext,
    select_replicas,
)


def _candidates(probabilities):
    return [
        ReplicaProbability(f"r{i + 1}", p) for i, p in enumerate(probabilities)
    ]


class TestSelectReplicas:
    def test_needs_candidates(self):
        with pytest.raises(ValueError):
            select_replicas([], 0.5)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            select_replicas(_candidates([0.5]), 1.5)
        with pytest.raises(ValueError):
            ReplicaProbability("r1", -0.2)

    def test_minimum_selection_is_two_replicas(self):
        # Pc = 0 is satisfied by any single replica in X, plus the
        # protected best: Algorithm 1's floor of 2 (paper §6).
        result = select_replicas(_candidates([0.9, 0.8, 0.7]), 0.0)
        assert result.redundancy == 2
        assert not result.used_fallback

    def test_best_replica_always_included_first(self):
        result = select_replicas(_candidates([0.2, 0.95, 0.5]), 0.0)
        assert result.selected[0] == "r2"  # highest probability

    def test_acceptance_test_excludes_best_member(self):
        # Best = 0.99 but X must reach 0.9 alone: one 0.5 is not enough,
        # so X = {0.5, 0.5, 0.5} (1 - 0.125 = 0.875 < 0.9 -> need 4th).
        result = select_replicas(
            _candidates([0.99, 0.5, 0.5, 0.5, 0.5]), 0.9
        )
        crash_set = [name for name in result.selected if name != "r1"]
        probs = {"r2": 0.5, "r3": 0.5, "r4": 0.5, "r5": 0.5}
        achieved = subset_timeliness_probability(
            probs[name] for name in crash_set
        )
        assert achieved >= 0.9
        assert "r1" in result.selected

    def test_crash_safe_probability_matches_reported(self):
        result = select_replicas(_candidates([0.9, 0.8, 0.7, 0.6]), 0.9)
        crash_set = result.selected[1:]
        probs = {"r1": 0.9, "r2": 0.8, "r3": 0.7, "r4": 0.6}
        expected = subset_timeliness_probability(probs[n] for n in crash_set)
        assert result.crash_safe_probability == pytest.approx(expected)
        assert result.crash_safe_probability >= 0.9

    def test_single_crash_guarantee_holds_for_any_member(self):
        # Equation 3: remove ANY one member of K; the rest still meet Pc.
        probabilities = [0.85, 0.7, 0.6, 0.55, 0.4]
        target = 0.8
        result = select_replicas(_candidates(probabilities), target)
        assert not result.used_fallback
        prob_map = {c.name: c.probability for c in _candidates(probabilities)}
        for excluded in result.selected:
            rest = [prob_map[n] for n in result.selected if n != excluded]
            assert subset_timeliness_probability(rest) >= target - 1e-12

    def test_fallback_returns_all_replicas(self):
        result = select_replicas(_candidates([0.3, 0.2, 0.1]), 0.999)
        assert result.used_fallback
        assert set(result.selected) == {"r1", "r2", "r3"}

    def test_fallback_orders_by_probability(self):
        result = select_replicas(_candidates([0.1, 0.3, 0.2]), 0.999)
        assert result.selected == ("r2", "r3", "r1")

    def test_single_candidate_falls_back_to_itself(self):
        result = select_replicas(_candidates([0.99]), 0.5)
        assert result.used_fallback
        assert result.selected == ("r1",)

    def test_never_selects_more_than_needed(self):
        # With Pc = 0.5 and replicas at 0.8, one X member suffices.
        result = select_replicas(_candidates([0.9, 0.8, 0.8, 0.8]), 0.5)
        assert result.redundancy == 2

    def test_ties_break_deterministically_by_name(self):
        result = select_replicas(_candidates([0.5, 0.5, 0.5]), 0.0)
        assert result.selected == ("r1", "r2")

    def test_crash_tolerance_zero_skips_protection(self):
        result = select_replicas(_candidates([0.9, 0.8]), 0.5, crash_tolerance=0)
        assert result.selected == ("r1",)
        assert result.crash_safe_probability == pytest.approx(0.9)

    def test_crash_tolerance_two_protects_two_best(self):
        result = select_replicas(
            _candidates([0.9, 0.9, 0.8, 0.8, 0.7]), 0.8, crash_tolerance=2
        )
        assert not result.used_fallback
        assert "r1" in result.selected and "r2" in result.selected
        # Removing the two protected members must still meet the target.
        prob_map = {"r3": 0.8, "r4": 0.8, "r5": 0.7}
        rest = [
            prob_map[n] for n in result.selected if n in prob_map
        ]
        assert subset_timeliness_probability(rest) >= 0.8

    def test_crash_tolerance_validation(self):
        with pytest.raises(ValueError):
            select_replicas(_candidates([0.5]), 0.5, crash_tolerance=-1)

    def test_full_probability_reported(self):
        result = select_replicas(_candidates([0.5, 0.5]), 0.0)
        assert result.full_probability == pytest.approx(0.75)

    def test_vectorized_matches_reference_implementation(self):
        # The batched numpy version against a line-by-line transcription
        # of Algorithm 1, over a random sweep of inputs.
        def reference(candidates, min_probability, crash_tolerance):
            ordered = sorted(
                candidates, key=lambda c: (-c.probability, c.name)
            )
            protected = ordered[:crash_tolerance]
            chosen, product = [], 1.0
            for candidate in ordered[crash_tolerance:]:
                chosen.append(candidate)
                product *= 1.0 - candidate.probability
                if 1.0 - product >= min_probability:
                    return tuple(c.name for c in protected + chosen), False
            return tuple(c.name for c in ordered), True

        rng = np.random.default_rng(42)
        for _ in range(200):
            count = int(rng.integers(1, 10))
            candidates = _candidates(rng.uniform(0.0, 1.0, size=count))
            min_probability = float(rng.uniform(0.0, 1.0))
            crash_tolerance = int(rng.integers(0, 4))
            expected, fallback = reference(
                candidates, min_probability, crash_tolerance
            )
            result = select_replicas(
                candidates, min_probability, crash_tolerance=crash_tolerance
            )
            assert result.selected == expected
            assert result.used_fallback is fallback


class TestDynamicSelectionPolicy:
    def _context(self, repo, deadline=120.0, min_probability=0.9):
        estimator = ResponseTimeEstimator(repo)
        return SelectionContext(
            replicas=repo.replicas(),
            estimator=estimator,
            qos=QoSSpec("svc", deadline, min_probability),
            now_ms=0.0,
            rng=np.random.default_rng(0),
        )

    def _loaded_repo(self, means):
        repo = InformationRepository(window_size=5)
        for name, mean in means.items():
            for _ in range(5):
                repo.record_performance(name, mean, 0.0, 0, now_ms=0.0)
            repo.record_gateway_delay(name, 3.0, now_ms=0.0)
        return repo

    def test_bootstrap_selects_all_when_history_missing(self):
        repo = InformationRepository()
        repo.add_replica("r1")
        repo.add_replica("r2")
        policy = DynamicSelectionPolicy()
        decision = policy.decide(self._context(repo))
        assert set(decision.selected) == {"r1", "r2"}
        assert decision.meta["bootstrap"] is True

    def test_partial_history_also_bootstraps(self):
        repo = self._loaded_repo({"r1": 100.0})
        repo.add_replica("r2")  # nothing recorded
        decision = DynamicSelectionPolicy().decide(self._context(repo))
        assert set(decision.selected) == {"r1", "r2"}
        assert decision.meta["bootstrap"] is True

    def test_selects_fast_replicas_for_tight_deadline(self):
        repo = self._loaded_repo({"fast-1": 50.0, "fast-2": 60.0, "slow": 500.0})
        decision = DynamicSelectionPolicy().decide(self._context(repo))
        assert decision.meta["bootstrap"] is False
        assert "slow" not in decision.selected
        assert set(decision.selected) == {"fast-1", "fast-2"}

    def test_overhead_compensation_tightens_deadline(self):
        repo = self._loaded_repo({"r1": 100.0, "r2": 100.0})
        policy = DynamicSelectionPolicy(
            compensate_overhead=True, fixed_overhead_ms=5.0
        )
        decision = policy.decide(self._context(repo, deadline=107.0))
        # Effective deadline 102.0: response times are 103 -> F = 0.
        assert decision.meta["effective_deadline_ms"] == pytest.approx(102.0)
        assert decision.meta["fallback"] is True

    def test_without_compensation_deadline_unchanged(self):
        repo = self._loaded_repo({"r1": 100.0, "r2": 100.0})
        policy = DynamicSelectionPolicy(compensate_overhead=False)
        decision = policy.decide(self._context(repo, deadline=107.0))
        assert decision.meta["effective_deadline_ms"] == pytest.approx(107.0)
        assert decision.meta["fallback"] is False

    def test_overhead_is_measured_each_decision(self):
        repo = self._loaded_repo({"r1": 100.0})
        policy = DynamicSelectionPolicy()
        assert policy.last_overhead_ms == 0.0
        policy.decide(self._context(repo))
        assert policy.last_overhead_ms > 0.0

    def test_negative_fixed_overhead_rejected(self):
        with pytest.raises(ValueError):
            DynamicSelectionPolicy(fixed_overhead_ms=-1.0)

    def test_decision_meta_has_probabilities(self):
        repo = self._loaded_repo({"r1": 50.0, "r2": 60.0})
        decision = DynamicSelectionPolicy().decide(self._context(repo))
        assert set(decision.meta["probabilities"]) == {"r1", "r2"}

    def test_empty_replica_list_returns_empty(self):
        repo = InformationRepository()
        decision = DynamicSelectionPolicy().decide(self._context(repo))
        assert decision.selected == ()
