"""Tests for the repository's §8-extension features."""

import math

import pytest

from repro.core.estimator import ResponseTimeEstimator
from repro.core.repository import InformationRepository, ReplicaRecord


class TestGatewayDelayWindow:
    def test_disabled_by_default(self):
        record = ReplicaRecord("r1", window_size=5)
        assert record.gateway_delays is None

    def test_window_records_recent_delays(self):
        record = ReplicaRecord("r1", window_size=5, gateway_window_size=3)
        for delay in (1.0, 2.0, 3.0, 4.0):
            record.record_gateway_delay(delay, now_ms=0.0)
        assert record.gateway_delays.values() == [2.0, 3.0, 4.0]
        assert record.gateway_delay_ms == 4.0  # last value kept too

    def test_repository_passes_window_size_down(self):
        repo = InformationRepository(window_size=5, gateway_window_size=2)
        repo.record_gateway_delay("r1", 1.0, now_ms=0.0)
        repo.record_gateway_delay("r1", 2.0, now_ms=1.0)
        repo.record_gateway_delay("r1", 3.0, now_ms=2.0)
        assert repo.record("r1").gateway_delays.values() == [2.0, 3.0]

    def test_gateway_window_size_validation(self):
        with pytest.raises(ValueError):
            InformationRepository(gateway_window_size=0)

    def test_estimator_uses_window_distribution(self):
        repo = InformationRepository(window_size=5, gateway_window_size=4)
        for _ in range(5):
            repo.record_performance("r1", 100.0, 0.0, 0, now_ms=0.0)
        for delay in (0.0, 0.0, 20.0, 20.0):
            repo.record_gateway_delay("r1", delay, now_ms=0.0)
        pmf = ResponseTimeEstimator(repo).response_time_pmf("r1")
        # T is bimodal {0, 20}: the response pmf must have both atoms.
        assert pmf.support_size == 2
        assert pmf.mean() == pytest.approx(110.0)
        assert pmf.cdf(100.0) == pytest.approx(0.5)

    def test_estimator_falls_back_to_last_value_without_window(self):
        repo = InformationRepository(window_size=5)
        for _ in range(5):
            repo.record_performance("r1", 100.0, 0.0, 0, now_ms=0.0)
        repo.record_gateway_delay("r1", 0.0, now_ms=0.0)
        repo.record_gateway_delay("r1", 20.0, now_ms=1.0)
        pmf = ResponseTimeEstimator(repo).response_time_pmf("r1")
        assert pmf.support_size == 1
        assert pmf.mean() == pytest.approx(120.0)  # only the last T


class TestStaleness:
    def test_never_updated_record_is_infinitely_stale(self):
        record = ReplicaRecord("r1", window_size=5)
        assert math.isinf(record.staleness(now_ms=100.0))

    def test_staleness_measures_age(self):
        record = ReplicaRecord("r1", window_size=5)
        record.record_performance(10.0, 0.0, 0, now_ms=50.0)
        assert record.staleness(now_ms=80.0) == pytest.approx(30.0)

    def test_gateway_delay_also_freshens(self):
        record = ReplicaRecord("r1", window_size=5)
        record.record_performance(10.0, 0.0, 0, now_ms=50.0)
        record.record_gateway_delay(3.0, now_ms=70.0)
        assert record.staleness(now_ms=80.0) == pytest.approx(10.0)

    def test_staleness_never_negative(self):
        record = ReplicaRecord("r1", window_size=5)
        record.record_performance(10.0, 0.0, 0, now_ms=50.0)
        assert record.staleness(now_ms=40.0) == 0.0
