"""Unit tests for the baseline selection policies."""

import numpy as np
import pytest

from repro.core.baselines import (
    AllReplicasPolicy,
    FixedRedundancyPolicy,
    LowestMeanPolicy,
    NearestPolicy,
    ProbeEstimatePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SingleFastestPolicy,
)
from repro.core.estimator import ResponseTimeEstimator
from repro.core.qos import QoSSpec
from repro.core.repository import InformationRepository
from repro.core.selection import SelectionContext


def _loaded_repo(means, queue_lengths=None, gateway=3.0):
    repo = InformationRepository(window_size=5)
    for name, mean in means.items():
        for _ in range(5):
            repo.record_performance(
                name, mean, 0.0,
                (queue_lengths or {}).get(name, 0), now_ms=0.0,
            )
        repo.record_gateway_delay(name, gateway, now_ms=0.0)
    return repo


def _context(repo, deadline=150.0, distance=None, seed=0):
    return SelectionContext(
        replicas=repo.replicas(),
        estimator=ResponseTimeEstimator(repo),
        qos=QoSSpec("svc", deadline, 0.9),
        now_ms=0.0,
        rng=np.random.default_rng(seed),
        distance=distance,
    )


@pytest.fixture
def repo():
    return _loaded_repo({"r1": 50.0, "r2": 100.0, "r3": 200.0})


def test_all_replicas_selects_everything(repo):
    decision = AllReplicasPolicy().decide(_context(repo))
    assert set(decision.selected) == {"r1", "r2", "r3"}


def test_single_fastest_picks_highest_probability(repo):
    decision = SingleFastestPolicy().decide(_context(repo, deadline=60.0))
    assert decision.selected == ("r1",)


def test_single_fastest_with_empty_view():
    empty = InformationRepository()
    decision = SingleFastestPolicy().decide(_context(empty))
    assert decision.selected == ()


def test_fixed_redundancy_takes_k_best(repo):
    decision = FixedRedundancyPolicy(2).decide(_context(repo, deadline=120.0))
    assert set(decision.selected) == {"r1", "r2"}


def test_fixed_redundancy_validation():
    with pytest.raises(ValueError):
        FixedRedundancyPolicy(0)


def test_fixed_redundancy_caps_at_view_size(repo):
    decision = FixedRedundancyPolicy(10).decide(_context(repo))
    assert len(decision.selected) == 3


def test_random_policy_is_reproducible(repo):
    a = RandomPolicy(2).decide(_context(repo, seed=7)).selected
    b = RandomPolicy(2).decide(_context(repo, seed=7)).selected
    assert a == b
    assert len(a) == 2


def test_random_policy_selects_valid_members(repo):
    for seed in range(20):
        decision = RandomPolicy(1).decide(_context(repo, seed=seed))
        assert set(decision.selected) <= {"r1", "r2", "r3"}


def test_round_robin_rotates(repo):
    policy = RoundRobinPolicy(1)
    picks = [policy.decide(_context(repo)).selected[0] for _ in range(6)]
    assert picks == ["r1", "r2", "r3", "r1", "r2", "r3"]


def test_round_robin_multi_wraps(repo):
    policy = RoundRobinPolicy(2)
    first = policy.decide(_context(repo)).selected
    second = policy.decide(_context(repo)).selected
    assert first == ("r1", "r2")
    assert second == ("r3", "r1")


def test_lowest_mean_prefers_fast_replica(repo):
    decision = LowestMeanPolicy().decide(_context(repo))
    assert decision.selected == ("r1",)


def test_lowest_mean_unknown_history_ranks_last():
    repo = _loaded_repo({"r1": 500.0})
    repo.add_replica("r0")  # no history -> infinite mean
    decision = LowestMeanPolicy().decide(_context(repo))
    assert decision.selected == ("r1",)


def test_nearest_uses_distance_metric(repo):
    distances = {"r1": 3.0, "r2": 1.0, "r3": 2.0}
    decision = NearestPolicy().decide(
        _context(repo, distance=lambda r: distances[r])
    )
    assert decision.selected == ("r2",)


def test_nearest_without_metric_uses_name_order(repo):
    decision = NearestPolicy().decide(_context(repo, distance=None))
    assert decision.selected == ("r1",)


def test_probe_estimate_accounts_for_queue_depth():
    # r1 is intrinsically fast but has a deep queue; r2 wins on the
    # (queue_length + 1) * mean_service estimate.
    repo = _loaded_repo(
        {"r1": 50.0, "r2": 80.0}, queue_lengths={"r1": 5, "r2": 0}
    )
    decision = ProbeEstimatePolicy().decide(_context(repo))
    assert decision.selected == ("r2",)


def test_probe_estimate_without_history_ranks_last():
    repo = _loaded_repo({"r1": 100.0})
    repo.add_replica("r0")
    decision = ProbeEstimatePolicy().decide(_context(repo))
    assert decision.selected == ("r1",)


def test_redundancy_validation_across_policies():
    for cls in (RandomPolicy, RoundRobinPolicy, LowestMeanPolicy,
                NearestPolicy, ProbeEstimatePolicy):
        with pytest.raises(ValueError):
            cls(0)
