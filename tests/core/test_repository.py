"""Unit tests for the gateway information repository."""

import pytest

from repro.core.repository import InformationRepository, ReplicaRecord, SlidingWindow


class TestSlidingWindow:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_appends_until_capacity(self):
        window = SlidingWindow(3)
        for value in (1.0, 2.0, 3.0):
            window.append(value)
        assert window.values() == [1.0, 2.0, 3.0]
        assert window.full

    def test_oldest_evicted_when_full(self):
        window = SlidingWindow(3)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.append(value)
        assert window.values() == [2.0, 3.0, 4.0]

    def test_negative_measurement_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindow(3).append(-1.0)

    def test_version_bumps_on_append(self):
        window = SlidingWindow(3)
        v0 = window.version
        window.append(1.0)
        assert window.version == v0 + 1

    def test_clear(self):
        window = SlidingWindow(3)
        window.append(1.0)
        window.clear()
        assert len(window) == 0
        assert not window.full

    def test_pmf_cached_while_version_unchanged(self):
        window = SlidingWindow(3)
        window.append(10.0)
        window.append(20.0)
        first = window.pmf(1.0)
        assert window.pmf(1.0) is first  # same version: cached object
        window.append(30.0)
        second = window.pmf(1.0)
        assert second is not first  # version bump invalidated

    def test_pmf_tracks_eviction(self):
        window = SlidingWindow(2)
        for value in (10.0, 20.0, 30.0):
            window.append(value)
        assert window.pmf(1.0).items() == [(20.0, 0.5), (30.0, 0.5)]

    def test_counts_maintained_per_bin_width(self):
        window = SlidingWindow(3)
        for value in (0.6, 1.2, 2.4):
            window.append(value)
        assert window.counts(1.0) == {1.0: 2, 2.0: 1}
        assert window.counts(2.0) == {0.0: 1, 2.0: 2}
        window.append(3.1)  # evicts 0.6
        assert window.counts(1.0) == {1.0: 1, 2.0: 1, 3.0: 1}
        assert window.counts(2.0) == {2.0: 2, 4.0: 1}

    def test_pmf_on_empty_window_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindow(3).pmf(1.0)

    def test_clear_resets_counters(self):
        window = SlidingWindow(3)
        window.append(10.0)
        assert window.counts(1.0) == {10.0: 1}
        window.clear()
        window.append(20.0)
        assert window.counts(1.0) == {20.0: 1}


class TestReplicaRecord:
    def test_no_history_initially(self):
        record = ReplicaRecord("r1", window_size=5)
        assert not record.has_history

    def test_history_needs_all_three_sources(self):
        record = ReplicaRecord("r1", window_size=5)
        record.record_performance(100.0, 5.0, 1, now_ms=0.0)
        assert not record.has_history  # gateway delay still missing
        record.record_gateway_delay(3.0, now_ms=1.0)
        assert record.has_history

    def test_negative_gateway_delay_clamped(self):
        record = ReplicaRecord("r1", window_size=5)
        record.record_gateway_delay(-0.4, now_ms=0.0)
        assert record.gateway_delay_ms == 0.0

    def test_negative_queue_length_rejected(self):
        record = ReplicaRecord("r1", window_size=5)
        with pytest.raises(ValueError):
            record.record_performance(1.0, 1.0, -1, now_ms=0.0)

    def test_version_covers_both_update_kinds(self):
        record = ReplicaRecord("r1", window_size=5)
        v0 = record.version
        record.record_performance(1.0, 1.0, 0, now_ms=0.0)
        v1 = record.version
        record.record_gateway_delay(3.0, now_ms=1.0)
        v2 = record.version
        assert v0 < v1 < v2


class TestInformationRepository:
    def test_window_size_validation(self):
        with pytest.raises(ValueError):
            InformationRepository(window_size=0)

    def test_add_is_idempotent(self):
        repo = InformationRepository()
        first = repo.add_replica("r1")
        assert repo.add_replica("r1") is first
        assert len(repo) == 1

    def test_remove_is_idempotent(self):
        repo = InformationRepository()
        repo.add_replica("r1")
        repo.remove_replica("r1")
        repo.remove_replica("r1")
        assert "r1" not in repo

    def test_record_unknown_replica_raises(self):
        with pytest.raises(KeyError):
            InformationRepository().record("ghost")

    def test_replicas_sorted(self):
        repo = InformationRepository()
        for name in ("r3", "r1", "r2"):
            repo.add_replica(name)
        assert repo.replicas() == ["r1", "r2", "r3"]

    def test_sync_members_adds_and_drops(self):
        repo = InformationRepository()
        repo.add_replica("r1")
        repo.add_replica("r2")
        repo.sync_members(["r2", "r3"])
        assert repo.replicas() == ["r2", "r3"]

    def test_sync_preserves_existing_history(self):
        repo = InformationRepository()
        repo.record_performance("r1", 100.0, 5.0, 1, now_ms=0.0)
        repo.record_gateway_delay("r1", 3.0, now_ms=0.0)
        repo.sync_members(["r1", "r2"])
        assert repo.record("r1").has_history
        assert not repo.record("r2").has_history

    def test_windows_use_configured_size(self):
        repo = InformationRepository(window_size=2)
        for i in range(5):
            repo.record_performance("r1", float(i), 0.0, 0, now_ms=float(i))
        assert repo.record("r1").service_times.values() == [3.0, 4.0]

    def test_replicas_with_history(self):
        repo = InformationRepository()
        repo.record_performance("r1", 100.0, 5.0, 1, now_ms=0.0)
        repo.record_gateway_delay("r1", 3.0, now_ms=0.0)
        repo.add_replica("r2")
        assert repo.replicas_with_history() == ["r1"]
        assert not repo.all_have_history()

    def test_all_have_history_empty_repo_is_false(self):
        assert not InformationRepository().all_have_history()
