"""Unit tests for QoS specifications and timing-failure accounting."""

import pytest

from repro.core.qos import QoSSpec, TimingFailureStats


class TestQoSSpec:
    def test_valid_spec(self):
        spec = QoSSpec("search", deadline_ms=150.0, min_probability=0.9)
        assert spec.max_failure_probability == pytest.approx(0.1)

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            QoSSpec("s", deadline_ms=0.0, min_probability=0.5)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            QoSSpec("s", deadline_ms=10.0, min_probability=1.5)

    def test_zero_probability_is_legal(self):
        # The paper's worst-case configuration (§6).
        spec = QoSSpec("s", deadline_ms=10.0, min_probability=0.0)
        assert spec.max_failure_probability == 1.0

    def test_renegotiate_changes_only_given_fields(self):
        spec = QoSSpec("s", deadline_ms=100.0, min_probability=0.9)
        new = spec.renegotiate(deadline_ms=200.0)
        assert new.deadline_ms == 200.0
        assert new.min_probability == 0.9
        assert new.service == "s"
        assert spec.deadline_ms == 100.0  # original untouched

    def test_specs_are_immutable(self):
        spec = QoSSpec("s", 100.0, 0.9)
        with pytest.raises(AttributeError):
            spec.deadline_ms = 50.0


class TestTimingFailureStats:
    def test_record_classifies_by_deadline(self):
        stats = TimingFailureStats()
        assert stats.record(90.0, deadline_ms=100.0) is False
        assert stats.record(110.0, deadline_ms=100.0) is True
        assert stats.responses == 2
        assert stats.timing_failures == 1
        assert stats.timely_responses == 1

    def test_boundary_response_is_timely(self):
        stats = TimingFailureStats()
        assert stats.record(100.0, deadline_ms=100.0) is False

    def test_observed_probability_before_any_response(self):
        assert TimingFailureStats().observed_timely_probability == 1.0

    def test_observed_probabilities_sum_to_one(self):
        stats = TimingFailureStats()
        for tr in (50.0, 150.0, 150.0, 50.0):
            stats.record(tr, deadline_ms=100.0)
        assert stats.observed_timely_probability == pytest.approx(0.5)
        assert stats.observed_failure_probability == pytest.approx(0.5)

    def test_violation_needs_min_samples(self):
        spec = QoSSpec("s", 100.0, 0.9)
        stats = TimingFailureStats(min_samples=10)
        for _ in range(9):
            stats.record(200.0, deadline_ms=100.0)  # all failures
        assert not stats.violates(spec)  # still warming up
        stats.record(200.0, deadline_ms=100.0)
        assert stats.violates(spec)

    def test_no_violation_when_within_budget(self):
        spec = QoSSpec("s", 100.0, 0.5)
        stats = TimingFailureStats(min_samples=4)
        for tr in (50.0, 50.0, 50.0, 150.0):
            stats.record(tr, deadline_ms=100.0)
        assert not stats.violates(spec)  # 75 % timely >= 50 %

    def test_reset_clears_counters(self):
        stats = TimingFailureStats()
        stats.record(200.0, deadline_ms=100.0)
        stats.reset()
        assert stats.responses == 0
        assert stats.timing_failures == 0

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            TimingFailureStats(min_samples=0)
