"""Unit tests for group membership and views."""

import pytest

from repro.group.membership import Group, MembershipError, MembershipService


class TestGroup:
    def test_new_group_has_empty_view_zero(self):
        group = Group("svc")
        view = group.view()
        assert view.view_id == 0
        assert len(view) == 0

    def test_join_installs_new_view(self):
        group = Group("svc")
        view = group.join("r1")
        assert view.view_id == 1
        assert "r1" in view

    def test_join_preserves_order(self):
        group = Group("svc")
        group.join("r1")
        group.join("r2")
        assert group.view().members == ("r1", "r2")

    def test_duplicate_join_rejected(self):
        group = Group("svc")
        group.join("r1")
        with pytest.raises(MembershipError):
            group.join("r1")

    def test_leave_removes_member(self):
        group = Group("svc")
        group.join("r1")
        group.join("r2")
        view = group.leave("r1")
        assert view.members == ("r2",)

    def test_leave_unknown_member_rejected(self):
        group = Group("svc")
        with pytest.raises(MembershipError):
            group.leave("ghost")

    def test_evict_is_idempotent(self):
        group = Group("svc")
        group.join("r1")
        assert group.evict("r1") is not None
        assert group.evict("r1") is None

    def test_view_ids_increase_monotonically(self):
        group = Group("svc")
        ids = [group.join("r1").view_id, group.join("r2").view_id,
               group.leave("r1").view_id]
        assert ids == [1, 2, 3]

    def test_history_records_every_view(self):
        group = Group("svc")
        group.join("r1")
        group.leave("r1")
        assert [v.view_id for v in group.history()] == [0, 1, 2]

    def test_listener_sees_old_and_new_views(self):
        group = Group("svc")
        changes = []
        group.subscribe(lambda old, new: changes.append((old.view_id, new.view_id)))
        group.join("r1")
        group.join("r2")
        assert changes == [(0, 1), (1, 2)]

    def test_unsubscribe_stops_notifications(self):
        group = Group("svc")
        changes = []
        listener = lambda old, new: changes.append(new.view_id)
        group.subscribe(listener)
        group.join("r1")
        group.unsubscribe(listener)
        group.join("r2")
        assert changes == [1]

    def test_views_are_immutable_snapshots(self):
        group = Group("svc")
        view = group.join("r1")
        group.join("r2")
        assert view.members == ("r1",)


class TestMembershipService:
    def test_create_and_get(self):
        service = MembershipService()
        created = service.create("svc")
        assert service.get("svc") is created

    def test_duplicate_create_rejected(self):
        service = MembershipService()
        service.create("svc")
        with pytest.raises(MembershipError):
            service.create("svc")

    def test_get_unknown_raises(self):
        with pytest.raises(MembershipError):
            MembershipService().get("nope")

    def test_get_or_create(self):
        service = MembershipService()
        group = service.get_or_create("svc")
        assert service.get_or_create("svc") is group

    def test_groups_of_member(self):
        service = MembershipService()
        service.get_or_create("a").join("r1")
        service.get_or_create("b").join("r1")
        service.get_or_create("c").join("r2")
        assert sorted(g.name for g in service.groups_of("r1")) == ["a", "b"]

    def test_evict_everywhere(self):
        service = MembershipService()
        service.get_or_create("a").join("r1")
        service.get_or_create("b").join("r1")
        views = service.evict_everywhere("r1")
        assert len(views) == 2
        assert all("r1" not in v for v in views)
