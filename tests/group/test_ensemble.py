"""Unit tests for the group-communication facade."""

import pytest

from repro.group.ensemble import GroupCommunication
from repro.group.failure_detector import FailureDetector


@pytest.fixture
def gc(sim, lan, transport):
    detector = FailureDetector(sim, lan, poll_interval_ms=10.0, confirm_polls=2)
    return GroupCommunication(
        sim, lan, transport, notify_delay_ms=2.0, failure_detector=detector
    )


def test_join_creates_group_and_installs_view(gc):
    view = gc.join("svc", "server-1")
    assert view.members == ("server-1",)
    assert gc.view("svc").view_id == 1


def test_leave_updates_view(gc):
    gc.join("svc", "server-1")
    gc.join("svc", "server-2")
    view = gc.leave("svc", "server-1")
    assert view.members == ("server-2",)


def test_view_change_notifications_are_delayed(sim, gc):
    gc.join("svc", "server-1")
    views = []
    gc.on_view_change("svc", "client-1", lambda v: views.append((sim.now, v)))
    gc.join("svc", "server-2")
    assert views == []  # not synchronous
    join_time = sim.now
    sim.run()
    assert len(views) == 1
    arrived_at, view = views[0]
    assert arrived_at == pytest.approx(join_time + 2.0)
    assert view.members == ("server-1", "server-2")


def test_crashed_member_is_evicted_and_others_notified(sim, lan, gc):
    gc.join("svc", "server-1")
    gc.join("svc", "server-2")
    views = []
    gc.on_view_change("svc", "client-1", lambda v: views.append(v))
    lan.mark_down("server-2")
    sim.run(until=500.0)
    assert gc.view("svc").members == ("server-1",)
    assert views and views[-1].members == ("server-1",)


def test_unwatched_member_is_not_evicted_on_crash(sim, lan, gc):
    gc.join("svc", "client-1", watch=False)
    lan.mark_down("client-1")
    sim.run(until=500.0)
    assert "client-1" in gc.view("svc")


def test_notifications_skip_crashed_recipients(sim, lan, gc):
    gc.join("svc", "server-1")
    views = []
    gc.on_view_change("svc", "client-1", lambda v: views.append(v))
    lan.mark_down("client-1")
    gc.join("svc", "server-2")
    sim.run(until=100.0)
    assert views == []


def test_multicast_group_tracks_membership(sim, lan, gc):
    gc.join("svc", "server-1")
    mgroup = gc.multicast_group("svc")
    assert mgroup.members() == ["server-1"]
    gc.join("svc", "server-2")
    assert sorted(mgroup.members()) == ["server-1", "server-2"]


def test_negative_notify_delay_rejected(sim, lan, transport):
    with pytest.raises(ValueError):
        GroupCommunication(sim, lan, transport, notify_delay_ms=-1.0)


def test_eviction_covers_all_groups_of_member(sim, lan, gc):
    gc.join("svc-a", "server-1")
    gc.join("svc-b", "server-1")
    lan.mark_down("server-1")
    sim.run(until=500.0)
    assert "server-1" not in gc.view("svc-a")
    assert "server-1" not in gc.view("svc-b")
