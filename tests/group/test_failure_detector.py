"""Unit tests for the heartbeat-style failure detector."""

import pytest

from repro.group.failure_detector import FailureDetector


@pytest.fixture
def detector(sim, lan):
    return FailureDetector(sim, lan, poll_interval_ms=10.0, confirm_polls=2)


def test_constructor_validation(sim, lan):
    with pytest.raises(ValueError):
        FailureDetector(sim, lan, poll_interval_ms=0.0)
    with pytest.raises(ValueError):
        FailureDetector(sim, lan, confirm_polls=0)


def test_watch_requires_known_host(detector):
    with pytest.raises(KeyError):
        detector.watch("ghost")


def test_up_host_is_never_declared(sim, detector):
    detector.watch("server-1")
    sim.run(until=500.0)
    assert not detector.is_declared_crashed("server-1")


def test_crash_detected_within_latency_bound(sim, lan, detector):
    detector.watch("server-1")
    crashes = []
    detector.on_crash(crashes.append)
    sim.call_in(25.0, lambda: lan.mark_down("server-1"))
    sim.run(until=200.0)
    assert crashes == ["server-1"]
    declared_at = detector.declared_crashes()["server-1"]
    assert 25.0 < declared_at <= 25.0 + detector.detection_latency_ms


def test_transient_blip_not_declared(sim, lan, detector):
    # Down for less than one poll interval: never observed down twice.
    detector.watch("server-1")
    sim.call_in(11.0, lambda: lan.mark_down("server-1"))
    sim.call_in(14.0, lambda: lan.mark_up("server-1"))
    sim.run(until=200.0)
    assert not detector.is_declared_crashed("server-1")


def test_crash_declared_only_once(sim, lan, detector):
    detector.watch("server-1")
    crashes = []
    detector.on_crash(crashes.append)
    lan.mark_down("server-1")
    sim.run(until=300.0)
    assert crashes == ["server-1"]


def test_recovery_clears_declaration(sim, lan, detector):
    detector.watch("server-1")
    lan.mark_down("server-1")
    sim.run(until=100.0)
    assert detector.is_declared_crashed("server-1")
    lan.mark_up("server-1")
    sim.run(until=200.0)
    assert not detector.is_declared_crashed("server-1")


def test_unwatch_stops_detection(sim, lan, detector):
    detector.watch("server-1")
    detector.unwatch("server-1")
    lan.mark_down("server-1")
    sim.run(until=200.0)
    assert not detector.is_declared_crashed("server-1")


def test_watch_is_idempotent(sim, lan, detector):
    detector.watch("server-1")
    detector.watch("server-1")
    crashes = []
    detector.on_crash(crashes.append)
    lan.mark_down("server-1")
    sim.run(until=200.0)
    assert crashes == ["server-1"]  # not double-declared by two poll loops


def test_polling_does_not_keep_unbounded_run_alive(sim, detector):
    detector.watch("server-1")
    sim.run()  # must terminate: polls are daemon events
    assert sim.now == 0.0
