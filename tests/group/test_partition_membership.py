"""Membership, failure detection and multicast under network partitions.

ISSUE 9 makes partitions first-class: the failure detector can observe
from a *vantage point* (so a severed-but-alive host is evicted like a
crashed one), a heal is a fresh sighting (stale suspicion must not
survive a cut), and the group layer's views re-converge after the heal
without duplicate view deliveries.  Multicast keeps its exactly-once-
per-destination contract under one-way loss and reordering.
"""

import numpy as np
import pytest

from repro.faultinject import (
    DelayRule,
    FaultSchedule,
    FaultyTransport,
    PartitionDriver,
    PartitionFault,
)
from repro.group.ensemble import GroupCommunication
from repro.group.failure_detector import FailureDetector
from repro.group.membership import Group, MembershipError
from repro.group.multicast import MulticastGroup
from repro.net.message import Message

OBSERVER = "client-1"


def _vantage_detector(sim, lan, confirm_polls=2):
    return FailureDetector(
        sim,
        lan,
        poll_interval_ms=10.0,
        confirm_polls=confirm_polls,
        vantage=OBSERVER,
    )


class TestVantageDetection:
    def test_symmetric_cut_declares_a_live_host(self, sim, lan):
        detector = _vantage_detector(sim, lan)
        detector.watch("server-1")
        sim.call_in(25.0, lambda: lan.sever_link(OBSERVER, "server-1"))
        sim.call_in(25.0, lambda: lan.sever_link("server-1", OBSERVER))
        sim.run(until=100.0)
        assert lan.is_up("server-1")  # alive — just unreachable
        assert detector.is_declared_crashed("server-1")

    def test_one_way_reply_loss_is_observed_down(self, sim, lan):
        # Probes arrive but answers die: the detector cannot tell the
        # difference, so a one-way cut still samples as down.
        detector = _vantage_detector(sim, lan)
        detector.watch("server-1")
        sim.call_in(25.0, lambda: lan.sever_link("server-1", OBSERVER))
        sim.run(until=100.0)
        assert detector.is_declared_crashed("server-1")

    def test_legacy_detector_ignores_partitions(self, sim, lan):
        detector = FailureDetector(
            sim, lan, poll_interval_ms=10.0, confirm_polls=2
        )
        detector.watch("server-1")
        lan.sever_link(OBSERVER, "server-1")
        lan.sever_link("server-1", OBSERVER)
        sim.run(until=200.0)
        assert not detector.is_declared_crashed("server-1")

    def test_vantage_host_observes_itself_up(self, sim, lan):
        detector = _vantage_detector(sim, lan)
        detector.watch(OBSERVER)
        lan.sever_link(OBSERVER, "server-1")
        sim.run(until=100.0)
        assert not detector.is_declared_crashed(OBSERVER)


class TestStaleSuspicionRegression:
    """A heal is a fresh sighting (ISSUE 9 satellite regression)."""

    def _run_blip_then_cut(self, sim, lan, sight_on_heal):
        # Polls land at 10, 20, 30, ...  A cut over [5, 25) yields two
        # down samples; the link then heals for one instant and is cut
        # again at 26, so polls from 30 on sample down once more.
        detector = _vantage_detector(sim, lan, confirm_polls=3)
        detector.watch("server-1")
        sim.call_in(5.0, lambda: lan.sever_link("server-1", OBSERVER))

        def heal():
            lan.heal_link("server-1", OBSERVER)
            if sight_on_heal:
                detector.sight("server-1")

        sim.call_in(25.0, heal)
        sim.call_in(26.0, lambda: lan.sever_link("server-1", OBSERVER))
        return detector

    def test_sighting_resets_the_consecutive_down_count(self, sim, lan):
        detector = self._run_blip_then_cut(sim, lan, sight_on_heal=True)
        sim.run(until=45.0)
        # Two stale samples plus one fresh one must NOT declare: the
        # detector promised three *consecutive* down observations.
        assert not detector.is_declared_crashed("server-1")
        sim.run(until=65.0)
        # ... but three fresh ones (30, 40, 50) do.
        assert detector.is_declared_crashed("server-1")

    def test_without_the_sighting_suspicion_leaks_across_the_heal(
        self, sim, lan
    ):
        # The regression this satellite fixes: stale pre-heal samples
        # combine with one fresh sample into a premature declaration.
        detector = self._run_blip_then_cut(sim, lan, sight_on_heal=False)
        sim.run(until=35.0)
        assert detector.is_declared_crashed("server-1")

    def test_rewatch_is_a_fresh_sighting(self, sim, lan):
        detector = _vantage_detector(sim, lan, confirm_polls=3)
        detector.watch("server-1")
        lan.sever_link("server-1", OBSERVER)
        sim.run(until=25.0)  # two down samples banked
        detector.watch("server-1")  # a rejoin re-watches the member
        sim.run(until=35.0)
        assert not detector.is_declared_crashed("server-1")


class TestViewConvergence:
    """Partition → eviction → heal → rejoin, with exactly-once views."""

    def _stack(self, sim, lan, transport):
        detector = _vantage_detector(sim, lan)
        comm = GroupCommunication(
            sim, lan, transport, notify_delay_ms=1.0,
            failure_detector=detector,
        )
        comm.join("svc", "server-1", watch=True)
        comm.join("svc", "server-2", watch=True)
        driver = PartitionDriver(
            sim=sim,
            lan=lan,
            group_comm=comm,
            service="svc",
            replicas=("server-1", "server-2"),
        )
        return comm, driver

    def test_views_reconverge_after_the_heal(self, sim, lan, transport):
        comm, driver = self._stack(sim, lan, transport)
        views = []
        comm.on_view_change("svc", OBSERVER, views.append)
        driver.apply(
            FaultSchedule(
                partitions=(
                    PartitionFault(
                        side=("server-1",), start_ms=50.0, end_ms=200.0
                    ),
                ),
            )
        )
        sim.run(until=150.0)
        assert comm.failure_detector.is_declared_crashed("server-1")
        assert "server-1" not in comm.view("svc")
        sim.run(until=400.0)
        # Healed: sighted, rejoined, and the view converged back.
        assert not comm.failure_detector.is_declared_crashed("server-1")
        final = comm.view("svc")
        assert "server-1" in final and "server-2" in final
        assert driver.sightings_applied == 1
        assert driver.rejoins_applied == 1
        # Exactly-once view delivery, in installation order: some view
        # excludes the dark host, a later one restores it, and no
        # view_id is ever delivered twice.
        ids = [view.view_id for view in views]
        assert ids == sorted(set(ids))
        assert any("server-1" not in view for view in views)
        assert "server-1" in views[-1]

    def test_member_behind_the_cut_misses_no_final_view(
        self, sim, lan, transport
    ):
        # The view callback of the *partitioned* member still fires (the
        # notifier only checks host liveness, not reachability — Ensemble
        # delivers the backlog once the member is reachable again), and
        # after the heal its last view matches the observer's.
        comm, driver = self._stack(sim, lan, transport)
        dark, lit = [], []
        comm.on_view_change("svc", "server-1", dark.append)
        comm.on_view_change("svc", OBSERVER, lit.append)
        driver.apply(
            FaultSchedule(
                partitions=(
                    PartitionFault(
                        side=("server-1",), start_ms=50.0, end_ms=200.0
                    ),
                ),
            )
        )
        sim.run(until=400.0)
        assert dark[-1].members == lit[-1].members
        assert "server-1" in dark[-1]


class TestMulticastUnderPartition:
    def _group(self, transport):
        group = Group("svc")
        group.join("server-1")
        group.join("server-2")
        return group, MulticastGroup(group, transport)

    def test_one_way_loss_kills_only_dark_side_copies(
        self, sim, lan, transport
    ):
        group, mgroup = self._group(transport)
        received = {"server-1": [], "server-2": []}
        for host in received:
            transport.bind(host, received[host].append)
        lan.sever_link(OBSERVER, "server-1")
        targets = mgroup.send(Message(OBSERVER, "*", "data", payload=1))
        assert sorted(targets) == ["server-1", "server-2"]
        sim.run()
        # The multicast addressed both; only the reachable copy landed.
        assert [m.payload for m in received["server-2"]] == [1]
        assert received["server-1"] == []
        assert transport.lost_count == 1
        # After the heal the same group delivers everywhere again.
        lan.heal_link(OBSERVER, "server-1")
        mgroup.send(Message(OBSERVER, "*", "data", payload=2))
        sim.run()
        assert [m.payload for m in received["server-1"]] == [2]
        assert [m.payload for m in received["server-2"]] == [1, 2]

    def test_reordered_multicasts_deliver_exactly_once_each(
        self, sim, lan, transport
    ):
        # A delay window reorders two multicasts; every destination sees
        # both exactly once, out of order, and the copies of one send
        # share its msg_id (one logical multicast).
        schedule = FaultSchedule(
            delays=(DelayRule(start_ms=0.0, end_ms=5.0, extra_ms=30.0),),
        )
        faulty = FaultyTransport(
            transport, schedule=schedule, rng=np.random.default_rng(0)
        )
        group, mgroup = self._group(faulty)
        received = {"server-1": [], "server-2": []}
        for host in received:
            transport.bind(host, received[host].append)
        first = Message(OBSERVER, "*", "data", payload="first")
        second = Message(OBSERVER, "*", "data", payload="second")
        sim.call_in(1.0, lambda: mgroup.send(first))
        sim.call_in(10.0, lambda: mgroup.send(second))
        sim.run()
        for host, messages in received.items():
            assert [m.payload for m in messages] == ["second", "first"]
        assert {m.msg_id for m in received["server-1"]} == {
            m.msg_id for m in received["server-2"]
        }

    def test_send_skips_evicted_members_and_raises_when_none_remain(
        self, sim, transport
    ):
        group, mgroup = self._group(transport)
        group.evict("server-1")
        targets = mgroup.send(
            Message(OBSERVER, "*", "data"),
            members=["server-1", "server-2"],
        )
        assert targets == ["server-2"]
        with pytest.raises(MembershipError):
            mgroup.send(Message(OBSERVER, "*", "data"), members=["server-1"])
