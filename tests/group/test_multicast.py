"""Unit tests for send-to-subset multicast."""

import pytest

from repro.group.membership import Group, MembershipError
from repro.group.multicast import MulticastGroup
from repro.net.message import Message


@pytest.fixture
def mgroup(transport):
    group = Group("svc")
    group.join("server-1")
    group.join("server-2")
    return MulticastGroup(group, transport)


def _msg():
    return Message(sender="client-1", destination="", kind="request", payload={})


def test_default_send_reaches_whole_view(sim, transport, mgroup):
    inbox = []
    transport.bind("server-1", lambda m: inbox.append("s1"))
    transport.bind("server-2", lambda m: inbox.append("s2"))
    targets = mgroup.send(_msg())
    sim.run()
    assert sorted(targets) == ["server-1", "server-2"]
    assert sorted(inbox) == ["s1", "s2"]


def test_subset_send_addresses_only_named_members(sim, transport, mgroup):
    inbox = []
    transport.bind("server-1", lambda m: inbox.append("s1"))
    transport.bind("server-2", lambda m: inbox.append("s2"))
    targets = mgroup.send(_msg(), members=["server-2"])
    sim.run()
    assert targets == ["server-2"]
    assert inbox == ["s2"]


def test_stale_members_are_skipped(sim, transport, mgroup):
    inbox = []
    transport.bind("server-1", lambda m: inbox.append("s1"))
    mgroup.group.leave("server-2")
    targets = mgroup.send(_msg(), members=["server-1", "server-2"])
    sim.run()
    assert targets == ["server-1"]
    assert inbox == ["s1"]


def test_entirely_stale_subset_raises(mgroup):
    mgroup.group.leave("server-1")
    mgroup.group.leave("server-2")
    with pytest.raises(MembershipError):
        mgroup.send(_msg())


def test_sent_message_carries_group_header(sim, transport, mgroup):
    received = []
    transport.bind("server-1", received.append)
    mgroup.send(_msg(), members=["server-1"])
    sim.run()
    assert received[0].header("group") == "svc"


def test_members_reflects_current_view(mgroup):
    assert mgroup.members() == ["server-1", "server-2"]
    mgroup.group.leave("server-1")
    assert mgroup.members() == ["server-2"]
