"""Unit tests for the dependability manager."""

import pytest

from repro.group.ensemble import GroupCommunication
from repro.group.failure_detector import FailureDetector
from repro.net.lan import LanModel, LinkProfile
from repro.net.transport import Transport
from repro.proteus.manager import DependabilityManager, ServiceSpec
from repro.replica.faults import CrashSchedule, FaultInjector
from repro.replica.load import ServiceProfile
from repro.sim.kernel import Simulator
from repro.sim.random import Constant, RandomStreams
from repro.workload.scenarios import IntegerServant, make_interface


class ManagerFixture:
    def __init__(self, num_hosts=4):
        self.sim = Simulator()
        self.streams = RandomStreams(seed=0)
        profile = LinkProfile(jitter=Constant(0.0))
        self.lan = LanModel(self.streams, default_profile=profile)
        self.hosts = [f"replica-{i + 1}" for i in range(num_hosts)]
        for host in self.hosts:
            self.lan.add_host(host)
        self.transport = Transport(self.sim, self.lan)
        detector = FailureDetector(
            self.sim, self.lan, poll_interval_ms=10.0, confirm_polls=2
        )
        self.group_comm = GroupCommunication(
            self.sim, self.lan, self.transport, failure_detector=detector
        )
        self.interface = make_interface("search")
        self.manager = DependabilityManager(
            self.sim, self.lan, self.transport, self.group_comm, self.streams
        )
        self.injector = FaultInjector(self.sim, self.lan)
        self.manager.attach_injector(self.injector)

    def spec(self, level):
        return ServiceSpec(
            service="search",
            servant_factory=lambda: IntegerServant(self.interface),
            profile_factory=lambda host: ServiceProfile(default=Constant(10.0)),
            replication_level=level,
        )


@pytest.fixture
def fx():
    return ManagerFixture()


def test_replication_level_validation(fx):
    with pytest.raises(ValueError):
        fx.spec(0)


def test_deploy_starts_target_level(fx):
    active = fx.manager.deploy(fx.spec(3), fx.hosts)
    assert active == fx.hosts[:3]
    assert fx.group_comm.view("search").members == tuple(fx.hosts[:3])
    assert fx.manager.replicas_started == 3


def test_deploy_needs_enough_hosts(fx):
    with pytest.raises(ValueError):
        fx.manager.deploy(fx.spec(5), fx.hosts)


def test_double_deploy_rejected(fx):
    fx.manager.deploy(fx.spec(2), fx.hosts)
    with pytest.raises(ValueError):
        fx.manager.deploy(fx.spec(2), fx.hosts)


def test_host_cannot_run_two_replicas(fx):
    fx.manager.deploy(fx.spec(2), fx.hosts)
    with pytest.raises(ValueError):
        fx.manager.start_replica("search", fx.hosts[0])


def test_crash_hooks_stop_the_server(fx):
    fx.manager.deploy(fx.spec(2), fx.hosts)
    handler = fx.manager.handler_on(fx.hosts[0])
    fx.injector.crash_now(fx.hosts[0])
    assert handler.crashed


def test_crash_evicts_from_group(fx):
    fx.manager.deploy(fx.spec(2), fx.hosts)
    fx.injector.schedule(CrashSchedule(fx.hosts[0], crash_at_ms=50.0))
    fx.sim.run(until=500.0)
    assert fx.hosts[0] not in fx.group_comm.view("search")


def test_recovery_restarts_and_rejoins(fx):
    fx.manager.deploy(fx.spec(2), fx.hosts)
    fx.injector.schedule(
        CrashSchedule(fx.hosts[0], crash_at_ms=50.0, recover_at_ms=300.0)
    )
    fx.sim.run(until=1000.0)
    handler = fx.manager.handler_on(fx.hosts[0])
    assert not handler.crashed
    assert fx.hosts[0] in fx.group_comm.view("search")


def test_maintain_replication_uses_spares(fx):
    fx.manager.deploy(fx.spec(2), fx.hosts)  # hosts 3,4 become spares
    fx.manager.maintain_replication("search", start_delay_ms=100.0)
    fx.injector.schedule(CrashSchedule(fx.hosts[0], crash_at_ms=50.0))
    fx.sim.run(until=2000.0)
    members = fx.group_comm.view("search").members
    assert len(members) == 2
    assert fx.hosts[2] in members  # first spare promoted


def test_maintain_replication_delay_validation(fx):
    fx.manager.deploy(fx.spec(2), fx.hosts)
    with pytest.raises(ValueError):
        fx.manager.maintain_replication("search", start_delay_ms=-1.0)


def test_gateway_for_is_cached(fx):
    gateway = fx.manager.gateway_for("replica-1")
    assert fx.manager.gateway_for("replica-1") is gateway
