"""Tests for co-located replicas of multiple services on shared hosts."""

import pytest

from repro.core.qos import QoSSpec
from repro.gateway.handlers.timing_fault import TimingFaultClientHandler
from repro.orb.orb import Orb
from repro.proteus.manager import ServiceSpec
from repro.replica.load import CoupledLoad, HostActivity, ServiceProfile
from repro.sim.random import Constant
from repro.workload.scenarios import (
    IntegerServant,
    Scenario,
    ScenarioConfig,
    make_interface,
)


class TestHostActivity:
    def test_enter_exit_counting(self):
        activity = HostActivity()
        assert activity.busy("h") == 0
        activity.enter("h")
        activity.enter("h")
        assert activity.busy("h") == 2
        activity.exit("h")
        assert activity.busy("h") == 1

    def test_exit_without_enter_raises(self):
        with pytest.raises(ValueError):
            HostActivity().exit("h")

    def test_hosts_are_independent(self):
        activity = HostActivity()
        activity.enter("a")
        assert activity.busy("b") == 0


class TestCoupledLoad:
    def test_idle_host_runs_at_base(self):
        activity = HostActivity()
        load = CoupledLoad(activity, "h", alpha=1.0, base=2.0)
        assert load.factor(0.0) == 2.0

    def test_neighbours_slow_the_host(self):
        activity = HostActivity()
        load = CoupledLoad(activity, "h", alpha=0.5)
        activity.enter("h")
        activity.enter("h")
        assert load.factor(0.0) == pytest.approx(2.0)  # 1 + 0.5*2

    def test_validation(self):
        with pytest.raises(ValueError):
            CoupledLoad(HostActivity(), "h", alpha=-1.0)


class TestColocatedServices:
    def _deploy_second_service(self, scenario, hosts):
        """Deploy a second service onto the same replica hosts."""
        interface = make_interface("billing", "charge")
        activity = scenario.manager.host_activity
        spec = ServiceSpec(
            service="billing",
            servant_factory=lambda: IntegerServant(interface, "charge"),
            profile_factory=lambda host: ServiceProfile(
                default=Constant(30.0),
                load=CoupledLoad(activity, host, alpha=1.0),
            ),
            replication_level=len(hosts),
        )
        scenario.manager.deploy(spec, hosts)
        return interface

    def test_two_services_share_hosts(self):
        scenario = Scenario(ScenarioConfig(seed=0, num_replicas=2))
        interface = self._deploy_second_service(
            scenario, scenario.config.replica_hosts()
        )
        assert scenario.group_comm.view("billing").members == (
            "replica-1", "replica-2",
        )
        search = scenario.manager.handler_on("replica-1", service="search")
        billing = scenario.manager.handler_on("replica-1", service="billing")
        assert search is not billing

    def test_same_service_twice_on_host_rejected(self):
        scenario = Scenario(ScenarioConfig(seed=0, num_replicas=2))
        with pytest.raises(ValueError):
            scenario.manager.start_replica("search", "replica-1")

    def test_ambiguous_handler_lookup_needs_service(self):
        scenario = Scenario(ScenarioConfig(seed=0, num_replicas=2))
        self._deploy_second_service(scenario, scenario.config.replica_hosts())
        with pytest.raises(KeyError):
            scenario.manager.handler_on("replica-1")

    def test_crash_takes_down_all_colocated_replicas(self):
        scenario = Scenario(ScenarioConfig(seed=0, num_replicas=2))
        self._deploy_second_service(scenario, scenario.config.replica_hosts())
        scenario.injector.crash_now("replica-1")
        search = scenario.manager.handler_on("replica-1", service="search")
        billing = scenario.manager.handler_on("replica-1", service="billing")
        assert search.crashed
        assert billing.crashed

    def test_coupled_load_slows_busy_neighbours(self):
        # One host runs both services; the second service's duration is
        # scaled by co-located activity.
        scenario = Scenario(
            ScenarioConfig(
                seed=0,
                num_replicas=1,
                service_distribution_factory=lambda host: Constant(200.0),
            )
        )
        interface = self._deploy_second_service(scenario, ["replica-1"])
        # Client of the second (coupled) service.
        handler = TimingFaultClientHandler(
            sim=scenario.sim,
            host=scenario.lan.add_host("billing-client").name,
            transport=scenario.transport,
            group_comm=scenario.group_comm,
            interface=interface,
            qos=QoSSpec("billing", 10_000.0, 0.0),
            marshalling=scenario.marshalling,
            rng=scenario.streams.stream("billing-client.policy"),
        )
        scenario.manager.gateway_for("billing-client").load_handler(handler)
        orb = Orb()
        orb.register_interface(interface)
        orb.bind_interceptor("billing", handler)

        # Fire a long search request, then a billing request mid-service.
        search_client = scenario.add_client(
            "search-client",
            QoSSpec("search", 10_000.0, 0.0),
            num_requests=1,
        )
        billing_event = {}

        def fire_billing():
            billing_event["event"] = orb.stub("billing").invoke("charge", 1)

        scenario.sim.call_in(100.0, fire_billing)  # search still in service
        scenario.run_to_completion()
        scenario.sim.run()
        outcome = billing_event["event"].value
        # Base 30 ms, but the busy search neighbour doubles it (alpha=1).
        assert outcome.response_time_ms > 55.0
