"""Unit tests for the ORB object model."""

import pytest

from repro.orb.object import (
    FunctionServant,
    MethodRequest,
    MethodSignature,
    Servant,
    ServiceInterface,
)


@pytest.fixture
def interface():
    iface = ServiceInterface("search")
    iface.add_method(MethodSignature("process", request_bytes=64, reply_bytes=32))
    iface.add_method(MethodSignature("status"))
    return iface


class TestInterface:
    def test_method_lookup(self, interface):
        assert interface.method("process").request_bytes == 64

    def test_unknown_method_raises(self, interface):
        with pytest.raises(KeyError):
            interface.method("nope")

    def test_contains(self, interface):
        assert "process" in interface
        assert "nope" not in interface

    def test_duplicate_method_rejected(self, interface):
        with pytest.raises(ValueError):
            interface.add_method(MethodSignature("process"))

    def test_methods_in_declaration_order(self, interface):
        assert [m.name for m in interface.methods()] == ["process", "status"]

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            MethodSignature("m", request_bytes=-1)


class TestServant:
    def test_dispatch_to_named_method(self, interface):
        class Search(Servant):
            def process(self, x):
                return x + 1

        servant = Search(interface)
        assert servant.dispatch("process", (41,)) == 42

    def test_dispatch_unknown_method_raises(self, interface):
        servant = Servant(interface)
        with pytest.raises(KeyError):
            servant.dispatch("nope", ())

    def test_dispatch_unimplemented_method_raises(self, interface):
        servant = Servant(interface)
        with pytest.raises(NotImplementedError):
            servant.dispatch("process", ())


class TestFunctionServant:
    def test_handlers_are_invoked(self, interface):
        servant = FunctionServant(interface, {"process": lambda x: x * 2})
        assert servant.dispatch("process", (5,)) == 10

    def test_unknown_handler_names_rejected(self, interface):
        with pytest.raises(ValueError):
            FunctionServant(interface, {"bogus": lambda: None})

    def test_unbound_method_raises(self, interface):
        servant = FunctionServant(interface, {"process": lambda x: x})
        with pytest.raises(NotImplementedError):
            servant.dispatch("status", ())

    def test_dispatch_validates_interface(self, interface):
        servant = FunctionServant(interface, {})
        with pytest.raises(KeyError):
            servant.dispatch("nope", ())


def test_method_request_describe():
    request = MethodRequest(service="search", method="process", args=(1,))
    assert request.describe() == {"service": "search", "method": "process"}
