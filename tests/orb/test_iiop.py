"""Unit tests for the marshalling cost model."""

import pytest

from repro.orb.iiop import MarshallingModel
from repro.orb.object import MethodRequest, MethodSignature


@pytest.fixture
def model():
    return MarshallingModel(base_ms=0.1, per_kb_ms=1.0, envelope_bytes=100)


@pytest.fixture
def signature():
    return MethodSignature("process", request_bytes=924, reply_bytes=412)


def test_marshal_request_size_and_cost(model, signature):
    request = MethodRequest("search", "process", (1,))
    call, cost = model.marshal_request(request, signature)
    assert call.size_bytes == 1024  # 924 + 100 envelope
    assert cost == pytest.approx(0.1 + 1.0)  # base + 1 KB
    assert call.request is request


def test_demarshal_request_roundtrip(model, signature):
    request = MethodRequest("search", "process", (1,))
    call, _cost = model.marshal_request(request, signature)
    decoded, cost = model.demarshal_request(call)
    assert decoded is request
    assert cost > 0


def test_marshal_reply_roundtrip(model, signature):
    reply, cost = model.marshal_reply(42, signature)
    assert reply.size_bytes == 512
    assert cost == pytest.approx(0.1 + 0.5)
    value, _cost = model.demarshal_reply(reply)
    assert value == 42


def test_bigger_messages_cost_more(model):
    small = MethodSignature("m", request_bytes=10)
    large = MethodSignature("m", request_bytes=10_000)
    request = MethodRequest("s", "m")
    _call_s, cost_s = model.marshal_request(request, small)
    _call_l, cost_l = model.marshal_request(request, large)
    assert cost_l > cost_s


def test_negative_parameters_rejected():
    with pytest.raises(ValueError):
        MarshallingModel(base_ms=-0.1)
