"""Unit tests for the ORB registry and stubs."""

import pytest

from repro.orb.object import MethodRequest, MethodSignature, ServiceInterface
from repro.orb.orb import Orb, OrbError, RequestInterceptor


class EchoInterceptor(RequestInterceptor):
    """Test double: completes every request immediately with its args."""

    def __init__(self, sim):
        self.sim = sim
        self.requests = []

    def submit(self, request):
        self.requests.append(request)
        return self.sim.event().succeed(request.args)


@pytest.fixture
def interface():
    iface = ServiceInterface("search")
    iface.add_method(MethodSignature("process"))
    return iface


@pytest.fixture
def orb(interface):
    orb = Orb()
    orb.register_interface(interface)
    return orb


def test_duplicate_interface_rejected(orb, interface):
    with pytest.raises(OrbError):
        orb.register_interface(interface)


def test_unknown_service_lookup_raises(orb):
    with pytest.raises(OrbError):
        orb.interface("nope")


def test_stub_invocation_routes_to_interceptor(sim, orb):
    interceptor = EchoInterceptor(sim)
    orb.bind_interceptor("search", interceptor)
    stub = orb.stub("search")
    event = stub.invoke("process", 1, 2)
    sim.run()
    assert event.value == (1, 2)
    assert interceptor.requests[0] == MethodRequest("search", "process", (1, 2))


def test_stub_rejects_unknown_method(sim, orb):
    orb.bind_interceptor("search", EchoInterceptor(sim))
    with pytest.raises(KeyError):
        orb.stub("search").invoke("nope")


def test_invoke_without_interceptor_raises(orb):
    with pytest.raises(OrbError):
        orb.stub("search").invoke("process")


def test_double_bind_rejected(sim, orb):
    orb.bind_interceptor("search", EchoInterceptor(sim))
    with pytest.raises(OrbError):
        orb.bind_interceptor("search", EchoInterceptor(sim))


def test_rebind_replaces_interceptor(sim, orb):
    first = EchoInterceptor(sim)
    second = EchoInterceptor(sim)
    orb.bind_interceptor("search", first)
    orb.rebind_interceptor("search", second)
    orb.stub("search").invoke("process")
    assert not first.requests
    assert len(second.requests) == 1


def test_bind_requires_registered_interface(sim):
    orb = Orb()
    with pytest.raises(OrbError):
        orb.bind_interceptor("ghost", EchoInterceptor(sim))
