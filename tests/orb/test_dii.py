"""Unit tests for dynamic invocation."""

import pytest

from repro.orb.dii import DynamicInvoker, InvocationError
from repro.orb.object import FunctionServant, MethodRequest, MethodSignature, ServiceInterface


@pytest.fixture
def invoker():
    interface = ServiceInterface("search")
    interface.add_method(MethodSignature("process"))
    servant = FunctionServant(interface, {"process": lambda x: x + 1})
    return DynamicInvoker(servant)


def test_invoke_dispatches_to_servant(invoker):
    result = invoker.invoke(MethodRequest("search", "process", (1,)))
    assert result == 2


def test_wrong_service_rejected(invoker):
    with pytest.raises(InvocationError):
        invoker.invoke(MethodRequest("other", "process", (1,)))


def test_unknown_method_becomes_invocation_error(invoker):
    with pytest.raises(InvocationError):
        invoker.invoke(MethodRequest("search", "nope", ()))


def test_servant_application_errors_propagate(invoker):
    # A TypeError from the handler itself is an application bug and must
    # surface unchanged, not be masked as an InvocationError.
    with pytest.raises(TypeError):
        invoker.invoke(MethodRequest("search", "process", ()))
