"""Property-based tests for the response-time estimator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimator import ResponseTimeEstimator
from repro.core.repository import InformationRepository

service_samples = st.lists(
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    min_size=1,
    max_size=10,
)
queue_samples = st.lists(
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    min_size=1,
    max_size=10,
)
gateway_delays = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


def _repo(service, queue, gateway):
    repo = InformationRepository(window_size=10)
    record = repo.add_replica("r1")
    for s in service:
        record.service_times.append(s)
    for q in queue:
        record.queue_delays.append(q)
    record.record_gateway_delay(gateway, now_ms=0.0)
    return repo


@given(service_samples, queue_samples, gateway_delays)
def test_cdf_monotone_in_deadline(service, queue, gateway):
    estimator = ResponseTimeEstimator(_repo(service, queue, gateway))
    deadlines = np.linspace(0.0, 800.0, 20)
    probabilities = [estimator.probability_by("r1", t) for t in deadlines]
    assert all(
        a <= b + 1e-9 for a, b in zip(probabilities, probabilities[1:])
    )


@given(service_samples, queue_samples, gateway_delays)
def test_probability_in_unit_interval(service, queue, gateway):
    estimator = ResponseTimeEstimator(_repo(service, queue, gateway))
    for t in (0.0, 50.0, 200.0, 1e6):
        p = estimator.probability_by("r1", t)
        assert 0.0 <= p <= 1.0


@given(service_samples, queue_samples, gateway_delays)
def test_certain_beyond_worst_case(service, queue, gateway):
    estimator = ResponseTimeEstimator(_repo(service, queue, gateway))
    worst = max(service) + max(queue) + gateway
    assert estimator.probability_by("r1", worst + 2.0) == 1.0


@given(service_samples, queue_samples, gateway_delays)
def test_impossible_before_best_case(service, queue, gateway):
    estimator = ResponseTimeEstimator(_repo(service, queue, gateway))
    best = min(service) + min(queue) + gateway
    if best > 2.0:
        assert estimator.probability_by("r1", best - 2.0) == 0.0


@given(service_samples, queue_samples, gateway_delays, gateway_delays)
def test_larger_gateway_delay_never_raises_probability(
    service, queue, g_small, g_large
):
    if g_small > g_large:
        g_small, g_large = g_large, g_small
    fast = ResponseTimeEstimator(_repo(service, queue, g_small))
    slow = ResponseTimeEstimator(_repo(service, queue, g_large))
    for t in (50.0, 150.0, 400.0):
        assert (
            slow.probability_by("r1", t)
            <= fast.probability_by("r1", t) + 1e-9
        )


@given(service_samples, queue_samples, gateway_delays)
def test_expected_response_is_sum_of_means(service, queue, gateway):
    estimator = ResponseTimeEstimator(_repo(service, queue, gateway))
    expected = (
        sum(service) / len(service) + sum(queue) / len(queue) + gateway
    )
    # Quantization can move each window's mean by up to half the 1.0 ms
    # bin (two windows -> 1.0 total), and shift() rounds to the 9-decimal
    # grid, so the worst case sits a hair *above* 1.0.
    assert estimator.expected_response_time("r1") == pytest.approx(
        expected, abs=1.0 + 1e-8
    )
