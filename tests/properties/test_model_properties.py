"""Property-based tests for the Equation 1 model and supporting stats."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import min_replicas_needed, subset_timeliness_probability
from repro.metrics.stats import RunningStats

probs = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=12,
)


@given(probs)
def test_subset_probability_in_unit_interval(values):
    p = subset_timeliness_probability(values)
    assert 0.0 <= p <= 1.0


@given(probs)
def test_subset_probability_at_least_best_member(values):
    # The earliest-reply race can only help: P_K >= max individual F.
    p = subset_timeliness_probability(values)
    assert p >= max(values) - 1e-12


@given(probs, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_monotone_in_added_member(values, extra):
    base = subset_timeliness_probability(values)
    extended = subset_timeliness_probability(values + [extra])
    assert extended >= base - 1e-12


@given(probs)
def test_order_invariance(values):
    forward = subset_timeliness_probability(values)
    backward = subset_timeliness_probability(list(reversed(values)))
    assert math.isclose(forward, backward, abs_tol=1e-12)


@given(
    st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
)
def test_min_replicas_is_minimal(p, target):
    k = min_replicas_needed(p, target)
    assert subset_timeliness_probability([p] * k) >= target - 1e-9
    if k > 1:
        assert subset_timeliness_probability([p] * (k - 1)) < target


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_running_stats_matches_batch(values):
    stats = RunningStats()
    stats.extend(values)
    mean = sum(values) / len(values)
    assert math.isclose(stats.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)


@given(
    st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
)
def test_running_stats_merge_equals_concat(a_values, b_values):
    a, b, combined = RunningStats(), RunningStats(), RunningStats()
    a.extend(a_values)
    b.extend(b_values)
    combined.extend(a_values + b_values)
    merged = a.merge(b)
    assert merged.count == combined.count
    assert math.isclose(merged.mean, combined.mean, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(
        merged.variance, combined.variance, rel_tol=1e-6, abs_tol=1e-6
    )
