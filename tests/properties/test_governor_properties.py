"""Property-based tests for the governed selection policy (hypothesis).

The governor's contract, for *every* probability vector, QoS target and
load index:

* the best replica ``m0`` is always part of the governed selection;
* while admitting, the set never shrinks below the single-crash
  guarantee (``crash_tolerance + 1`` members, clamped to the pool);
* at zero load the governed policy degenerates to exactly the ungoverned
  ``select_replicas`` — same set, same order, same flags.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.qos import QoSSpec
from repro.core.selection import (
    DynamicSelectionPolicy,
    ReplicaProbability,
    SelectionContext,
    select_replicas,
)
from repro.overload import GovernorConfig, GovernedSelectionPolicy

probabilities = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=8,
)
targets = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
loads = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)
tolerances = st.integers(min_value=0, max_value=3)


class StubTracker:
    def __init__(self, load):
        self.load = load

    def system_load(self, names=None):
        return self.load


class FixedEstimator:
    def __init__(self, table):
        self.table = table

    def probability_by(self, replica, deadline_ms):
        return self.table[replica]


def governed(probs, load, crash_tolerance=1):
    table = {f"r{i}": p for i, p in enumerate(probs)}
    policy = GovernedSelectionPolicy(
        DynamicSelectionPolicy(
            crash_tolerance=crash_tolerance, compensate_overhead=False
        ),
        StubTracker(load),
        GovernorConfig(engage_load=0.5, saturate_load=1.5),
    )
    return policy, table


def decide(policy, table, target):
    ctx = SelectionContext(
        replicas=sorted(table),
        estimator=FixedEstimator(table),
        qos=QoSSpec("search", 100.0, target),
        now_ms=0.0,
        rng=np.random.default_rng(0),
    )
    return policy.decide(ctx)


@given(probabilities, targets, loads)
def test_governed_selection_always_contains_m0(probs, target, load):
    policy, table = governed(probs, load)
    decision = decide(policy, table, target)
    # m0 = highest probability, ties broken by name (Algorithm 1's sort).
    m0 = min(table, key=lambda name: (-table[name], name))
    assert m0 in decision.selected
    assert decision.selected  # never empty while replicas exist
    assert set(decision.selected) <= set(table)


@given(probabilities, targets, loads, tolerances)
def test_never_below_single_crash_guarantee_while_admitting(
    probs, target, load, crash_tolerance
):
    policy, table = governed(probs, load, crash_tolerance=crash_tolerance)
    decision = decide(policy, table, target)
    floor = min(crash_tolerance + 1, len(table))
    assert len(decision.selected) >= floor
    # The cap itself never dips below the floor either.
    assert policy.cap_for(load, len(table)) >= floor


@given(probabilities, targets)
def test_zero_load_degenerates_to_ungoverned_algorithm_1(probs, target):
    policy, table = governed(probs, load=0.0)
    decision = decide(policy, table, target)
    reference = select_replicas(
        [ReplicaProbability(name, p) for name, p in table.items()],
        target,
        crash_tolerance=1,
    )
    assert decision.selected == reference.selected
    assert decision.meta["fallback"] == reference.used_fallback
    assert decision.meta["capped"] is False
    assert decision.meta["governor"]["engaged"] is False


@given(probabilities, targets, loads)
def test_cap_is_monotone_in_load(probs, target, load):
    policy, table = governed(probs, load)
    available = len(table)
    tighter = policy.cap_for(load + 0.25, available)
    assert policy.cap_for(load, available) >= tighter
