"""Property-based tests for the incremental estimator cache.

The contract of the versioned-window pipeline (docs/PERFORMANCE.md): for
*any* interleaving of performance pushes and gateway-delay updates — each
push both appends and, once the window is full, evicts — the cached
estimator must return pmfs ``allclose`` to a from-scratch rebuild, and a
window version bump must always invalidate the memoized pmf.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import DiscretePMF, SampleCounts
from repro.core.estimator import QueueScaledEstimator, ResponseTimeEstimator
from repro.core.repository import InformationRepository

# One repository mutation: a replica performance push or a gateway-delay
# measurement, with millisecond-scale values.
perf_ops = st.tuples(
    st.just("perf"),
    st.sampled_from(["r1", "r2"]),
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.integers(min_value=0, max_value=5),
)
gateway_ops = st.tuples(
    st.just("gateway"),
    st.sampled_from(["r1", "r2"]),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)
op_sequences = st.lists(st.one_of(perf_ops, gateway_ops), min_size=1, max_size=30)
bin_widths = st.sampled_from([0.5, 1.0, 2.0])
window_sizes = st.integers(min_value=1, max_value=6)


def _apply(repo, op, now):
    if op[0] == "perf":
        _, name, service, queue, depth = op
        repo.record_performance(name, service, queue, depth, now_ms=now)
    else:
        _, name, delay = op
        repo.record_gateway_delay(name, delay, now_ms=now)


@given(op_sequences, bin_widths, window_sizes)
@settings(max_examples=60)
def test_cached_pmfs_match_from_scratch_rebuild(ops, bin_width, window_size):
    """Random push/evict sequences: cached == uncached, at every step."""
    repo = InformationRepository(window_size=window_size)
    cached = ResponseTimeEstimator(repo, bin_width_ms=bin_width)
    for step, op in enumerate(ops):
        _apply(repo, op, float(step))
        for name in repo.replicas():
            cached_pmf = cached.response_time_pmf(name)
            fresh = ResponseTimeEstimator(
                repo, bin_width_ms=bin_width, incremental=False
            ).response_time_pmf(name)
            if fresh is None:
                assert cached_pmf is None
            else:
                assert cached_pmf.allclose(fresh)


@given(op_sequences, bin_widths)
@settings(max_examples=40)
def test_cached_pmfs_match_with_gateway_windows(ops, bin_width):
    """Same contract with the §5.3.1 T_i-as-distribution extension."""
    repo = InformationRepository(window_size=4, gateway_window_size=3)
    cached = ResponseTimeEstimator(repo, bin_width_ms=bin_width)
    for step, op in enumerate(ops):
        _apply(repo, op, float(step))
    for name in repo.replicas():
        cached_pmf = cached.response_time_pmf(name)
        cached_pmf = cached.response_time_pmf(name)  # hit the memo too
        fresh = ResponseTimeEstimator(
            repo, bin_width_ms=bin_width, incremental=False
        ).response_time_pmf(name)
        if fresh is None:
            assert cached_pmf is None
        else:
            assert cached_pmf.allclose(fresh)


@given(op_sequences, bin_widths)
@settings(max_examples=40)
def test_queue_scaled_cached_matches_rebuild(ops, bin_width):
    """The queue-depth-scaled variant obeys the same cache contract."""
    repo = InformationRepository(window_size=4)
    cached = QueueScaledEstimator(repo, bin_width_ms=bin_width)
    for step, op in enumerate(ops):
        _apply(repo, op, float(step))
        for name in repo.replicas():
            cached_pmf = cached.response_time_pmf(name)
            fresh = QueueScaledEstimator(
                repo, bin_width_ms=bin_width, incremental=False
            ).response_time_pmf(name)
            if fresh is None:
                assert cached_pmf is None
            else:
                assert cached_pmf.allclose(fresh)


@given(op_sequences)
@settings(max_examples=40)
def test_batch_probabilities_match_scalar_queries(ops):
    repo = InformationRepository(window_size=4)
    estimator = ResponseTimeEstimator(repo)
    for step, op in enumerate(ops):
        _apply(repo, op, float(step))
    replicas = repo.replicas()
    for deadline in (0.0, 50.0, 150.0, 700.0):
        batched = estimator.batch_probability_by(replicas, deadline)
        for name, probability in zip(replicas, batched):
            expected = estimator.probability_by(name, deadline)
            if expected is None:
                assert probability is None
            else:
                assert probability == pytest.approx(expected, abs=1e-12)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=40)
def test_version_bump_always_invalidates(extra_samples):
    """Every push moves the window version and drops the memoized pmf."""
    repo = InformationRepository(window_size=3)
    repo.record_performance("r1", 100.0, 5.0, 1, now_ms=0.0)
    repo.record_gateway_delay("r1", 3.0, now_ms=0.0)
    estimator = ResponseTimeEstimator(repo)
    previous = estimator.response_time_pmf("r1")
    for step, sample in enumerate(extra_samples):
        record = repo.record("r1")
        version_before = (
            record.service_times.version,
            record.queue_delays.version,
        )
        repo.record_performance("r1", sample, sample / 2.0, 0, now_ms=float(step))
        version_after = (
            record.service_times.version,
            record.queue_delays.version,
        )
        assert version_after > version_before  # push bumps the version
        current = estimator.response_time_pmf("r1")
        assert current is not previous  # memo was invalidated
        fresh = ResponseTimeEstimator(
            repo, incremental=False
        ).response_time_pmf("r1")
        assert current.allclose(fresh)
        previous = current


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=5,
        max_size=40,
    ),
    st.sampled_from([0.5, 1.0, 1e-3, 1e-6]),
)
@settings(max_examples=60)
def test_incremental_counts_track_any_window(stream, bin_width):
    """SampleCounts under sliding eviction == full recount, any bin width."""
    window_size = 4
    window = []
    counter = SampleCounts(bin_width)
    for sample in stream:
        evicted = window.pop(0) if len(window) == window_size else None
        window.append(sample)
        counter.replace(sample, evicted)
        assert len(counter) == len(window)
        assert counter.pmf().allclose(
            DiscretePMF.from_samples(window, bin_width)
        )
