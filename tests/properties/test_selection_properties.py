"""Property-based tests for Algorithm 1 (hypothesis).

These check the paper's claims for *every* input, not just examples:
the single-crash guarantee (Equation 3), minimality, determinism and the
fallback contract.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import subset_timeliness_probability
from repro.core.selection import ReplicaProbability, select_replicas

probabilities = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=10,
)
targets = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _candidates(probs):
    return [ReplicaProbability(f"r{i}", p) for i, p in enumerate(probs)]


@given(probabilities, targets)
def test_selection_is_nonempty_subset(probs, target):
    result = select_replicas(_candidates(probs), target)
    assert 1 <= result.redundancy <= len(probs)
    names = {f"r{i}" for i in range(len(probs))}
    assert set(result.selected) <= names
    assert len(set(result.selected)) == result.redundancy  # no duplicates


@given(probabilities, targets)
def test_accepted_sets_meet_target_without_best_member(probs, target):
    result = select_replicas(_candidates(probs), target)
    if result.used_fallback:
        return
    prob_map = {f"r{i}": p for i, p in enumerate(probs)}
    rest = [prob_map[name] for name in result.selected[1:]]
    assert subset_timeliness_probability(rest) >= target - 1e-9


@given(probabilities, targets)
def test_single_crash_guarantee(probs, target):
    """Equation 3: remove ANY one member; the rest still meet Pc."""
    result = select_replicas(_candidates(probs), target)
    if result.used_fallback:
        return
    prob_map = {f"r{i}": p for i, p in enumerate(probs)}
    for crashed in result.selected:
        survivors = [
            prob_map[name] for name in result.selected if name != crashed
        ]
        assert subset_timeliness_probability(survivors) >= target - 1e-9


@given(probabilities, targets)
def test_fallback_iff_no_subset_suffices(probs, target):
    result = select_replicas(_candidates(probs), target)
    best_excluded = subset_timeliness_probability(sorted(probs, reverse=True)[1:])
    if result.used_fallback:
        # Even all replicas minus the best cannot reach the target (up to
        # float roundoff between this recomputation and the algorithm's
        # running product).
        assert best_excluded < target + 1e-9 or len(probs) == 1
        assert set(result.selected) == {f"r{i}" for i in range(len(probs))}
    else:
        assert best_excluded >= target - 1e-9


@given(probabilities, targets)
def test_selection_is_deterministic(probs, target):
    a = select_replicas(_candidates(probs), target)
    b = select_replicas(_candidates(probs), target)
    assert a.selected == b.selected


@given(probabilities, targets)
def test_selected_are_the_top_ranked_replicas(probs, target):
    """Algorithm 1 consumes the sorted list prefix-first: the selected
    set is always the top-|K| replicas by probability (ties by name)."""
    result = select_replicas(_candidates(probs), target)
    ranked = sorted(
        _candidates(probs), key=lambda c: (-c.probability, c.name)
    )
    expected_prefix = tuple(c.name for c in ranked[: result.redundancy])
    assert set(result.selected) == set(expected_prefix)


@given(probabilities)
def test_target_zero_selects_at_most_two(probs):
    result = select_replicas(_candidates(probs), 0.0)
    assert result.redundancy == min(2, len(probs))


@given(probabilities, targets, st.integers(min_value=0, max_value=3))
def test_k_crash_generalization(probs, target, k):
    result = select_replicas(_candidates(probs), target, crash_tolerance=k)
    if result.used_fallback:
        return
    prob_map = {f"r{i}": p for i, p in enumerate(probs)}
    # Remove the k protected (best) members: the rest still meet Pc.
    rest = [prob_map[name] for name in result.selected[k:]]
    assert subset_timeliness_probability(rest) >= target - 1e-9


@given(probabilities, targets)
def test_reported_probabilities_are_consistent(probs, target):
    result = select_replicas(_candidates(probs), target)
    prob_map = {f"r{i}": p for i, p in enumerate(probs)}
    full = subset_timeliness_probability(
        prob_map[name] for name in result.selected
    )
    assert math.isclose(result.full_probability, full, abs_tol=1e-9)
    assert result.full_probability >= result.crash_safe_probability - 1e-9
