"""Property-based tests for the simulation kernel and transport."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.lan import LanModel, LinkProfile
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.sim.random import Constant, RandomStreams

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=40,
)


@given(delays)
def test_events_fire_in_time_order(delay_list):
    sim = Simulator()
    fired = []
    for delay in delay_list:
        sim.call_in(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)
    assert sim.now == max(delay_list)


@given(delays)
def test_clock_never_goes_backwards(delay_list):
    sim = Simulator()
    observed = []
    for delay in delay_list:
        sim.call_in(delay, lambda: observed.append(sim.now))
    last = -1.0
    while sim.peek() != float("inf"):
        sim.step()
        assert sim.now >= last
        last = sim.now


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20),
    st.floats(min_value=0.0, max_value=120.0),
)
def test_run_until_is_exact_boundary(delay_list, horizon):
    sim = Simulator()
    fired = []
    for delay in delay_list:
        sim.call_in(delay, lambda d=delay: fired.append(d))
    sim.run(until=horizon)
    assert sorted(fired) == sorted(d for d in delay_list if d <= horizon)
    assert sim.now == horizon


@given(
    st.integers(min_value=1, max_value=60),
    st.floats(min_value=0.0, max_value=0.9),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30)
def test_transport_conservation(num_messages, loss, seed):
    """sent == delivered + dropped + lost after the run drains."""
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    profile = LinkProfile(jitter=Constant(0.0), loss_probability=loss)
    lan = LanModel(streams, default_profile=profile)
    lan.add_host("a")
    lan.add_host("b")
    transport = Transport(sim, lan)
    received = []
    transport.bind("b", received.append)
    for index in range(num_messages):
        transport.send(
            Message(sender="a", destination="b", kind="m", payload=index)
        )
    sim.run()
    assert transport.sent_count == num_messages
    assert (
        transport.delivered_count
        + transport.dropped_count
        + transport.lost_count
        == transport.sent_count
    )
    assert len(received) == transport.delivered_count


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30))
def test_fifo_within_same_instant(priorities):
    """Events scheduled for the same instant fire in scheduling order."""
    sim = Simulator()
    order = []
    for index, _p in enumerate(priorities):
        sim.call_in(10.0, lambda i=index: order.append(i))
    sim.run()
    assert order == list(range(len(priorities)))
