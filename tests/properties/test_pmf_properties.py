"""Property-based tests for :class:`DiscretePMF` (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import DiscretePMF

# Measurement-like samples: non-negative, bounded, millisecond scale.
samples = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=30,
)
bin_widths = st.sampled_from([0.5, 1.0, 2.0, 5.0])


@given(samples, bin_widths)
def test_probabilities_sum_to_one(values, bin_width):
    pmf = DiscretePMF.from_samples(values, bin_width)
    assert math.isclose(float(pmf.probs.sum()), 1.0, abs_tol=1e-9)


@given(samples, bin_widths)
def test_values_sorted_and_unique(values, bin_width):
    pmf = DiscretePMF.from_samples(values, bin_width)
    diffs = np.diff(pmf.values)
    assert (diffs > 0).all()


@given(samples)
def test_cdf_is_monotone_nondecreasing(values):
    pmf = DiscretePMF.from_samples(values)
    points = np.linspace(pmf.min() - 5, pmf.max() + 5, 40)
    cdfs = [pmf.cdf(t) for t in points]
    assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))


@given(samples)
def test_cdf_limits(values):
    pmf = DiscretePMF.from_samples(values)
    assert pmf.cdf(pmf.min() - 1.0) == 0.0
    assert math.isclose(pmf.cdf(pmf.max()), 1.0, abs_tol=1e-9)


@given(samples, bin_widths)
def test_mean_within_support(values, bin_width):
    pmf = DiscretePMF.from_samples(values, bin_width)
    assert pmf.min() - 1e-9 <= pmf.mean() <= pmf.max() + 1e-9


@given(samples, samples)
def test_convolution_mean_additive(a_values, b_values):
    a = DiscretePMF.from_samples(a_values)
    b = DiscretePMF.from_samples(b_values)
    combined = a.convolve(b)
    assert math.isclose(
        combined.mean(), a.mean() + b.mean(), rel_tol=1e-9, abs_tol=1e-6
    )


@given(samples, samples)
def test_convolution_support_bounds(a_values, b_values):
    a = DiscretePMF.from_samples(a_values)
    b = DiscretePMF.from_samples(b_values)
    combined = a.convolve(b)
    assert math.isclose(combined.min(), a.min() + b.min(), abs_tol=1e-6)
    assert math.isclose(combined.max(), a.max() + b.max(), abs_tol=1e-6)


@given(samples, samples)
def test_convolution_commutative(a_values, b_values):
    a = DiscretePMF.from_samples(a_values)
    b = DiscretePMF.from_samples(b_values)
    assert a.convolve(b).allclose(b.convolve(a), tol=1e-9)


@given(samples, st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
def test_shift_translates_cdf(values, delta):
    pmf = DiscretePMF.from_samples(values)
    shifted = pmf.shift(delta)
    for t in np.linspace(pmf.min(), pmf.max(), 10):
        assert math.isclose(
            pmf.cdf(t), shifted.cdf(t + delta), abs_tol=1e-9
        )


@given(samples, samples)
def test_variance_additive_under_convolution(a_values, b_values):
    # Independence: Var(S + W) = Var(S) + Var(W).
    a = DiscretePMF.from_samples(a_values)
    b = DiscretePMF.from_samples(b_values)
    combined = a.convolve(b)
    assert math.isclose(
        combined.variance(),
        a.variance() + b.variance(),
        rel_tol=1e-6,
        abs_tol=1e-5,
    )


@given(samples, st.floats(min_value=0.0, max_value=1.0))
def test_quantile_inverts_cdf(values, q):
    pmf = DiscretePMF.from_samples(values)
    value = pmf.quantile(q)
    assert pmf.cdf(value) >= q - 1e-9
