"""Property-based tests for :class:`DiscretePMF` (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import DiscretePMF

# Measurement-like samples: non-negative, bounded, millisecond scale.
samples = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=30,
)
bin_widths = st.sampled_from([0.5, 1.0, 2.0, 5.0])


@given(samples, bin_widths)
def test_probabilities_sum_to_one(values, bin_width):
    pmf = DiscretePMF.from_samples(values, bin_width)
    assert math.isclose(float(pmf.probs.sum()), 1.0, abs_tol=1e-9)


@given(samples, bin_widths)
def test_values_sorted_and_unique(values, bin_width):
    pmf = DiscretePMF.from_samples(values, bin_width)
    diffs = np.diff(pmf.values)
    assert (diffs > 0).all()


@given(samples)
def test_cdf_is_monotone_nondecreasing(values):
    pmf = DiscretePMF.from_samples(values)
    points = np.linspace(pmf.min() - 5, pmf.max() + 5, 40)
    cdfs = [pmf.cdf(t) for t in points]
    assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))


@given(samples)
def test_cdf_limits(values):
    pmf = DiscretePMF.from_samples(values)
    assert pmf.cdf(pmf.min() - 1.0) == 0.0
    assert math.isclose(pmf.cdf(pmf.max()), 1.0, abs_tol=1e-9)


@given(samples, bin_widths)
def test_mean_within_support(values, bin_width):
    pmf = DiscretePMF.from_samples(values, bin_width)
    assert pmf.min() - 1e-9 <= pmf.mean() <= pmf.max() + 1e-9


@given(samples, samples)
def test_convolution_mean_additive(a_values, b_values):
    a = DiscretePMF.from_samples(a_values)
    b = DiscretePMF.from_samples(b_values)
    combined = a.convolve(b)
    assert math.isclose(
        combined.mean(), a.mean() + b.mean(), rel_tol=1e-9, abs_tol=1e-6
    )


@given(samples, samples)
def test_convolution_support_bounds(a_values, b_values):
    a = DiscretePMF.from_samples(a_values)
    b = DiscretePMF.from_samples(b_values)
    combined = a.convolve(b)
    assert math.isclose(combined.min(), a.min() + b.min(), abs_tol=1e-6)
    assert math.isclose(combined.max(), a.max() + b.max(), abs_tol=1e-6)


@given(samples, samples)
def test_convolution_commutative(a_values, b_values):
    a = DiscretePMF.from_samples(a_values)
    b = DiscretePMF.from_samples(b_values)
    assert a.convolve(b).allclose(b.convolve(a), tol=1e-9)


@given(samples, st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
def test_shift_translates_cdf(values, delta):
    pmf = DiscretePMF.from_samples(values)
    shifted = pmf.shift(delta)
    for t in np.linspace(pmf.min(), pmf.max(), 10):
        assert math.isclose(
            pmf.cdf(t), shifted.cdf(t + delta), abs_tol=1e-9
        )


@given(samples, samples)
def test_variance_additive_under_convolution(a_values, b_values):
    # Independence: Var(S + W) = Var(S) + Var(W).
    a = DiscretePMF.from_samples(a_values)
    b = DiscretePMF.from_samples(b_values)
    combined = a.convolve(b)
    assert math.isclose(
        combined.variance(),
        a.variance() + b.variance(),
        rel_tol=1e-6,
        abs_tol=1e-5,
    )


@given(samples, st.floats(min_value=0.0, max_value=1.0))
def test_quantile_inverts_cdf(values, q):
    pmf = DiscretePMF.from_samples(values)
    value = pmf.quantile(q)
    assert pmf.cdf(value) >= q - 1e-9


# -- ISSUE 7: mass conservation over dense/FFT convolution chains ----------

chain_samples = st.lists(
    st.lists(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    min_size=2,
    max_size=6,
)


@settings(deadline=None, max_examples=40)
@given(chain_samples, bin_widths)
def test_convolution_chain_conserves_mass(sample_sets, bin_width):
    """Long S⊛W⊛… chains stay normalized, non-negative and on-grid.

    The FFT path leaves ± round-off noise in empty lattice slots; the
    kernel clamps it and renormalizes, so no matter how many convolutions
    are chained the result is still an exact probability vector.
    """
    pmfs = [DiscretePMF.from_samples(s, bin_width) for s in sample_sets]
    chained = pmfs[0]
    for pmf in pmfs[1:]:
        chained = chained.convolve(pmf)
    assert math.isclose(float(chained.probs.sum()), 1.0, abs_tol=1e-12)
    assert (chained.probs >= 0.0).all()
    assert chained.bin_width == bin_width
    # Support stays on the common lattice.
    offsets = (chained.values - chained.values[0]) / bin_width
    assert np.allclose(offsets, np.rint(offsets), atol=1e-6)
    # The chained mean is the sum of the operand means (convolution
    # identity) — a drifting mass would break this first.
    assert math.isclose(
        chained.mean(), sum(p.mean() for p in pmfs), rel_tol=1e-9, abs_tol=1e-6
    )


@settings(deadline=None, max_examples=30)
@given(chain_samples, bin_widths)
def test_chain_matches_pairwise_reference(sample_sets, bin_width):
    """The dense/FFT chain equals the exact pairwise path, fold for fold."""
    pmfs = [DiscretePMF.from_samples(s, bin_width) for s in sample_sets]
    fast = pmfs[0]
    slow = DiscretePMF(pmfs[0].values, pmfs[0].probs)  # untagged twin
    for pmf in pmfs[1:]:
        fast = fast.convolve(pmf)
        slow = slow.convolve(DiscretePMF(pmf.values, pmf.probs))
    assert fast.support_size == slow.support_size
    assert np.allclose(fast.values, slow.values, atol=1e-9)
    assert np.allclose(fast.probs, slow.probs, atol=1e-9)
