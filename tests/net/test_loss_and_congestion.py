"""Tests for omission faults and shared congestion on the LAN."""

import pytest

from repro.net.lan import LanModel, LinkProfile
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.random import Constant, RandomStreams


def _lan(streams, loss=0.0, shared=None):
    profile = LinkProfile(jitter=Constant(0.0), loss_probability=loss)
    lan = LanModel(streams, default_profile=profile, shared_congestion=shared)
    lan.add_host("a")
    lan.add_host("b")
    return lan


class TestLoss:
    def test_loss_probability_validation(self):
        with pytest.raises(ValueError):
            LinkProfile(loss_probability=1.0)
        with pytest.raises(ValueError):
            LinkProfile(loss_probability=-0.1)

    def test_zero_loss_never_drops(self, streams):
        lan = _lan(streams, loss=0.0)
        assert not any(lan.should_drop("a", "b") for _ in range(500))

    def test_loss_rate_is_respected(self, streams):
        lan = _lan(streams, loss=0.25)
        drops = sum(lan.should_drop("a", "b") for _ in range(4000))
        assert drops / 4000 == pytest.approx(0.25, abs=0.03)

    def test_lost_messages_never_delivered(self, sim, streams):
        lan = _lan(streams, loss=0.5)
        transport = Transport(sim, lan)
        received = []
        transport.bind("b", received.append)
        for _ in range(200):
            transport.send(
                Message(sender="a", destination="b", kind="x", payload={})
            )
        sim.run()
        assert transport.lost_count > 0
        assert len(received) + transport.lost_count == 200

    def test_loss_applies_per_link(self, sim, streams):
        lan = _lan(streams, loss=0.0)
        lossy = LinkProfile(jitter=Constant(0.0), loss_probability=0.9)
        lan.set_link_profile("a", "b", lossy)
        drops_forward = sum(lan.should_drop("a", "b") for _ in range(300))
        drops_reverse = sum(lan.should_drop("b", "a") for _ in range(300))
        assert drops_forward > 200
        assert drops_reverse == 0


class TestSharedCongestion:
    def test_shared_component_adds_delay(self, streams):
        quiet = _lan(streams, shared=None)
        congested = _lan(
            RandomStreams(seed=99), shared=Constant(25.0)
        )
        base = quiet.one_way_delay("a", "b")
        loaded = congested.one_way_delay("a", "b")
        assert loaded == pytest.approx(base + 25.0)

    def test_shared_state_correlates_links(self, streams):
        # With a Markov-modulated shared component, bursts hit messages on
        # *different* links at overlapping draws.
        from repro.sim.random import MarkovModulated

        shared = MarkovModulated(
            Constant(0.0), Constant(50.0),
            p_enter_burst=0.2, p_exit_burst=0.2,
        )
        lan = _lan(RandomStreams(seed=3), shared=shared)
        lan.add_host("c")
        delays_ab = []
        delays_ac = []
        for _ in range(400):
            delays_ab.append(lan.one_way_delay("a", "b"))
            delays_ac.append(lan.one_way_delay("a", "c"))
        burst_ab = [d > 25.0 for d in delays_ab]
        burst_ac = [d > 25.0 for d in delays_ac]
        # Consecutive draws share the chain state often enough that joint
        # bursts are far more common than independence would allow.
        joint = sum(1 for x, y in zip(burst_ab, burst_ac) if x and y)
        p_ab = sum(burst_ab) / len(burst_ab)
        p_ac = sum(burst_ac) / len(burst_ac)
        assert joint / len(burst_ab) > 1.5 * p_ab * p_ac
