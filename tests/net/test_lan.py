"""Unit tests for the LAN latency/topology model."""

import pytest

from repro.net.lan import LanModel, LinkProfile, bursty_jitter
from repro.sim.random import Constant, Normal


@pytest.fixture
def quiet_lan(streams):
    """A LAN with zero jitter for deterministic delay assertions."""
    profile = LinkProfile(
        stack_ms=1.0, per_kb_ms=0.5, per_member_ms=0.1, jitter=Constant(0.0)
    )
    lan = LanModel(streams, default_profile=profile)
    lan.add_host("a")
    lan.add_host("b")
    return lan


class TestTopology:
    def test_duplicate_host_rejected(self, quiet_lan):
        with pytest.raises(ValueError):
            quiet_lan.add_host("a")

    def test_unknown_host_lookup_raises(self, quiet_lan):
        with pytest.raises(KeyError):
            quiet_lan.host("nope")

    def test_has_host(self, quiet_lan):
        assert quiet_lan.has_host("a")
        assert not quiet_lan.has_host("zz")

    def test_hosts_in_registration_order(self, quiet_lan):
        assert [h.name for h in quiet_lan.hosts()] == ["a", "b"]


class TestAvailability:
    def test_hosts_start_up(self, quiet_lan):
        assert quiet_lan.is_up("a")

    def test_mark_down_and_up(self, quiet_lan):
        quiet_lan.mark_down("a")
        assert not quiet_lan.is_up("a")
        quiet_lan.mark_up("a")
        assert quiet_lan.is_up("a")


class TestDelays:
    def test_delay_components_add_up(self, quiet_lan):
        # stack 1.0 + 1024 bytes * 0.5/kb + no members + no jitter = 1.5
        delay = quiet_lan.one_way_delay("a", "b", size_bytes=1024, group_size=1)
        assert delay == pytest.approx(1.5)

    def test_multicast_members_add_cost(self, quiet_lan):
        solo = quiet_lan.one_way_delay("a", "b", group_size=1)
        group = quiet_lan.one_way_delay("a", "b", group_size=5)
        assert group == pytest.approx(solo + 4 * 0.1)

    def test_group_size_validation(self, quiet_lan):
        with pytest.raises(ValueError):
            quiet_lan.one_way_delay("a", "b", group_size=0)

    def test_link_override_takes_precedence(self, quiet_lan):
        slow = LinkProfile(
            stack_ms=100.0, per_kb_ms=0.0, per_member_ms=0.0, jitter=Constant(0.0)
        )
        quiet_lan.set_link_profile("a", "b", slow)
        assert quiet_lan.one_way_delay("a", "b") == pytest.approx(100.0)
        # Reverse direction keeps the default.
        assert quiet_lan.one_way_delay("b", "a") < 10.0

    def test_jitter_never_makes_delay_negative(self, streams):
        profile = LinkProfile(
            stack_ms=0.0, per_kb_ms=0.0, per_member_ms=0.0,
            jitter=Normal(0.0, 5.0),
        )
        lan = LanModel(streams, default_profile=profile)
        lan.add_host("a")
        lan.add_host("b")
        for _ in range(200):
            assert lan.one_way_delay("a", "b") >= 0.0

    def test_bursty_jitter_produces_occasional_large_delays(self, streams):
        profile = LinkProfile(jitter=bursty_jitter(p_enter_burst=0.05))
        lan = LanModel(streams, default_profile=profile)
        lan.add_host("a")
        lan.add_host("b")
        delays = [lan.one_way_delay("a", "b") for _ in range(2000)]
        assert max(delays) > 5.0  # burst samples present
        assert sorted(delays)[len(delays) // 2] < 3.0  # median stays LAN-like


class TestZones:
    def test_zone_distance(self, streams):
        lan = LanModel(streams)
        lan.add_host("near", zone="rack-1")
        lan.add_host("same", zone="rack-1")
        lan.add_host("far", zone="rack-2")
        assert lan.zone_distance("near", "same") == 0.0
        assert lan.zone_distance("near", "far") == 1.0
