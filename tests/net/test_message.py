"""Unit tests for message envelopes."""

import pytest

from repro.net.message import Message, next_message_id


def _msg(**overrides):
    base = dict(sender="a", destination="b", kind="request")
    base.update(overrides)
    return Message(**base)


def test_message_ids_are_unique_and_increasing():
    first = _msg()
    second = _msg()
    assert second.msg_id > first.msg_id


def test_next_message_id_monotone():
    assert next_message_id() < next_message_id()


def test_with_destination_preserves_msg_id():
    original = _msg()
    copy = original.with_destination("c")
    assert copy.destination == "c"
    assert copy.msg_id == original.msg_id
    assert copy.payload == original.payload


def test_reply_to_is_the_sender():
    assert _msg(sender="client-7").reply_to() == "client-7"


def test_headers_lookup_and_append():
    message = _msg().with_header("group", "search")
    assert message.header("group") == "search"
    assert message.header("missing") is None
    assert message.header("missing", "dflt") == "dflt"


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        _msg(size_bytes=-1)


def test_describe_contains_routing_fields():
    message = _msg(correlation_id=9)
    info = message.describe()
    assert info["from"] == "a"
    assert info["to"] == "b"
    assert info["corr"] == 9
    assert info["msg_kind"] == "request"


def test_messages_are_immutable():
    message = _msg()
    with pytest.raises(AttributeError):
        message.sender = "x"
