"""Unit tests for the transport layer."""

import pytest

from repro.net.message import Message


def _msg(dest="server-1", **overrides):
    base = dict(sender="client-1", destination=dest, kind="request", payload={})
    base.update(overrides)
    return Message(**base)


class TestBinding:
    def test_bind_requires_known_host(self, transport):
        with pytest.raises(KeyError):
            transport.bind("ghost", lambda m: None)

    def test_double_bind_rejected(self, transport):
        transport.bind("server-1", lambda m: None)
        with pytest.raises(ValueError):
            transport.bind("server-1", lambda m: None)

    def test_unbind_is_idempotent(self, transport):
        transport.bind("server-1", lambda m: None)
        transport.unbind("server-1")
        transport.unbind("server-1")
        assert not transport.is_bound("server-1")


class TestDelivery:
    def test_message_arrives_after_positive_delay(self, sim, transport):
        inbox = []
        transport.bind("server-1", inbox.append)
        delay = transport.send(_msg())
        assert delay > 0
        assert inbox == []  # not yet delivered
        sim.run()
        assert len(inbox) == 1
        assert sim.now == pytest.approx(delay)

    def test_delivery_to_down_host_is_dropped(self, sim, lan, transport):
        inbox = []
        transport.bind("server-1", inbox.append)
        lan.mark_down("server-1")
        transport.send(_msg())
        sim.run()
        assert inbox == []
        assert transport.dropped_count == 1

    def test_host_crashing_in_flight_drops_delivery(self, sim, lan, transport):
        inbox = []
        transport.bind("server-1", inbox.append)
        transport.send(_msg())
        # Crash before the in-flight message lands.
        lan.mark_down("server-1")
        sim.run()
        assert inbox == []
        assert transport.dropped_count == 1

    def test_unbound_destination_is_dropped(self, sim, transport):
        transport.send(_msg(dest="server-2"))
        sim.run()
        assert transport.dropped_count == 1

    def test_counters(self, sim, transport):
        transport.bind("server-1", lambda m: None)
        transport.send(_msg())
        transport.send(_msg())
        sim.run()
        assert transport.sent_count == 2
        assert transport.delivered_count == 2
        assert transport.dropped_count == 0


class TestMulticast:
    def test_multicast_reaches_every_destination(self, sim, transport):
        received = []
        transport.bind("server-1", lambda m: received.append(("s1", m)))
        transport.bind("server-2", lambda m: received.append(("s2", m)))
        delays = transport.multicast(_msg(dest=""), ["server-1", "server-2"])
        assert len(delays) == 2
        sim.run()
        assert sorted(tag for tag, _m in received) == ["s1", "s2"]
        # All copies share one logical message id.
        ids = {m.msg_id for _tag, m in received}
        assert len(ids) == 1

    def test_multicast_requires_destinations(self, transport):
        with pytest.raises(ValueError):
            transport.multicast(_msg(), [])

    def test_multicast_charges_group_overhead(self, sim, lan, streams, tracer):
        # With deterministic jitter, a bigger destination set means a
        # strictly larger per-copy delay.
        from repro.net.lan import LanModel, LinkProfile
        from repro.net.transport import Transport
        from repro.sim.random import Constant

        profile = LinkProfile(
            stack_ms=1.0, per_kb_ms=0.0, per_member_ms=0.5, jitter=Constant(0.0)
        )
        quiet = LanModel(streams, default_profile=profile)
        for name in ("c", "s1", "s2", "s3"):
            quiet.add_host(name)
        transport2 = Transport(sim, quiet)
        msg = Message(sender="c", destination="", kind="request")
        solo = transport2.multicast(msg, ["s1"])
        trio = transport2.multicast(msg, ["s1", "s2", "s3"])
        assert solo[0] == pytest.approx(1.0)
        assert all(d == pytest.approx(2.0) for d in trio)
