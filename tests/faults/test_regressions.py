"""Regression tests for the pending/alias leak family.

Each test pins one of the lifecycle fixes:

* retransmission aliases are popped on fold-back AND when the original
  request is forgotten (crashed target, lost reply),
* completed ``_pending`` records are dropped as soon as no redundant
  reply can arrive any more (not at the 10×deadline response timeout),
* the retry chain is armed on the request's own msg_id, not on
  ``max(self._pending)``,
* a request that reaches zero replicas (empty view, stale view) fails
  fast as a timeout instead of burning the full response timeout,
* probe bookkeeping is bounded when probe replies are lost.
"""

from types import SimpleNamespace

import pytest

from repro.faultinject import DropRule, FaultSchedule
from repro.gateway.handlers.retransmit import RetransmittingClientHandler
from repro.gateway.handlers.timing_fault import MSG_PROBE_REPLY
from repro.sim.random import Constant

from .conftest import SERVICE, FaultStack


def _retrans_stack(servers=2, **client_kwargs):
    stack = FaultStack()
    for index in range(servers):
        stack.add_server(f"s-{index + 1}", service_time=Constant(10.0))
    client_kwargs.setdefault("deadline_ms", 200.0)
    handler = stack.add_client(
        "c-1", handler_cls=RetransmittingClientHandler, **client_kwargs
    )
    return stack, handler


def test_alias_popped_when_copy_reply_folds_back():
    stack, handler = _retrans_stack(retry_timeout_ms=5.0, max_retries=1)
    event = stack.invoke("c-1", 0)
    stack.sim.run()
    assert not event.value.timed_out
    assert handler.retransmissions == 1
    # Both the original and the copy replied; nothing may survive.
    assert handler._aliases == {}
    assert handler._copies == {}
    assert handler._pending == {}
    stack.auditor.assert_clean()


def test_alias_dropped_when_original_request_expires():
    stack, handler = _retrans_stack(
        deadline_ms=100.0,
        retry_timeout_ms=5.0,
        max_retries=2,
        response_timeout_factor=3.0,
    )
    driver = stack.make_driver()
    # Both replicas fail-stop after the first send but before any reply:
    # the retransmitted copies can never be answered.
    stack.sim.call_at(2.0, lambda: driver.crash_now("s-1"))
    stack.sim.call_at(2.0, lambda: driver.crash_now("s-2"))
    event = stack.invoke("c-1", 0)
    stack.sim.run()
    assert event.value.timed_out
    assert handler.retransmissions >= 1  # copies were created, then leaked?
    assert handler._aliases == {}  # ...no: expiry cleaned them up
    assert handler._copies == {}
    assert handler._pending == {}
    report = stack.auditor.assert_clean()
    assert report.timeouts == 1


def test_retry_chain_is_armed_on_the_threaded_msg_id():
    stack, handler = _retrans_stack(retry_timeout_ms=20.0, max_retries=2)
    # Preferred replica goes silent (still in the view: the LAN is up, so
    # the failure detector never evicts it).
    stack.servers["s-1"].crash()
    # A decoy pending entry with a huge msg_id: code that infers "the
    # request I just created" via max(_pending) picks this one instead
    # and never retransmits.
    decoy_id = 10**9
    handler._pending[decoy_id] = SimpleNamespace(completed=True)
    event = stack.invoke("c-1", 0)
    stack.sim.run()
    outcome = event.value
    assert not outcome.timed_out
    assert outcome.replica == "s-2"
    assert handler.retransmissions >= 1
    del handler._pending[decoy_id]
    assert handler._pending == {}
    assert handler._aliases == {}


def test_pending_dropped_once_all_expected_replies_arrived():
    stack = FaultStack()
    for index in range(3):
        stack.add_server(f"s-{index + 1}", service_time=Constant(10.0))
    client = stack.add_client("c-1", deadline_ms=100.0)
    event = stack.invoke("c-1", 0)
    # Well before the 10×deadline response timeout: every selected replica
    # has replied by ~12 ms, so the record must already be gone.
    stack.sim.run(until=60.0)
    assert event.processed
    assert not event.value.timed_out
    assert client._pending == {}
    stack.sim.run()
    stack.auditor.assert_clean()


def test_empty_view_fails_fast_as_timeout():
    stack = FaultStack()
    client = stack.add_client("c-1", deadline_ms=100.0)
    event = stack.invoke("c-1", 0)
    stack.sim.run()
    outcome = event.value
    assert outcome.timed_out
    assert outcome.replica is None
    assert outcome.response_time_ms == pytest.approx(0.0)
    # The whole run drained long before even one deadline, let alone the
    # 10×deadline response timeout the old code waited for.
    assert stack.sim.now < 100.0
    assert client._pending == {}
    report = stack.auditor.assert_clean()
    assert report.timeouts == 1


def test_stale_view_membership_error_fails_fast():
    stack = FaultStack()
    stack.add_server("s-1")
    stack.add_server("s-2")
    client = stack.add_client("c-1", deadline_ms=100.0)
    # Drain the join/subscribe traffic, then empty the group *without*
    # announcing (Group.leave bypasses GroupCommunication): the client's
    # member list is now entirely stale and the multicast send raises.
    stack.sim.run()
    group = stack.group_comm.membership.get(SERVICE)
    group.leave("s-1")
    group.leave("s-2")
    assert client._members  # stale on purpose
    start = stack.sim.now
    event = stack.invoke("c-1", 0)
    stack.sim.run()
    outcome = event.value
    assert outcome.timed_out
    assert stack.sim.now - start < 100.0
    assert client._pending == {}


def test_probe_bookkeeping_is_bounded_when_replies_are_lost():
    schedule = FaultSchedule(
        drops=(DropRule(start_ms=0.0, end_ms=1e9, kinds=(MSG_PROBE_REPLY,)),)
    )
    stack = FaultStack(schedule=schedule)
    stack.add_server("s-1")
    client = stack.add_client(
        "c-1", probe_staleness_ms=20.0, probe_interval_ms=30.0
    )
    stack.sim.run(until=400.0)
    assert client.probes_sent >= 5
    assert stack.transport.injected_drops >= 5
    # Every lost probe was given up on after one interval; without the
    # expiry the in-flight map grows by one entry per tick forever.
    assert client.probes_expired >= client.probes_sent - 2
    assert len(client._probes_in_flight) <= 2
