"""The partition fault family: rules, wire enforcement, and the driver.

Covers the three enforcement layers of ISSUE 9's fault plane:

* :class:`PartitionFault` as pure data — validation, activity windows
  (including flapping duty cycles), crossing/severing semantics for all
  three modes, and the ``lan_visible`` / ``blackout`` classification;
* wire-level enforcement — the reference-counted severed-pair map of
  :class:`LanModel`, the :class:`Transport` partition check that kills
  delayed/duplicated copies, and :class:`FaultyTransport`'s per-message
  interpretation (grey exemptions, lossy cuts, draw-free total cuts);
* :class:`PartitionDriver` — mirroring blackout cuts into the LAN,
  failure-detector eviction from a vantage host, and the heal-time
  reconciliation that re-sights and rejoins partitioned replicas.
"""

import numpy as np
import pytest

from repro.faultinject import (
    CrashRestartFault,
    FaultSchedule,
    FaultyTransport,
    PartitionDriver,
    PartitionFault,
    PROBE_EXEMPT_KINDS,
    grey_partition,
)
from repro.gateway.handlers.timing_fault import MSG_PROBE
from repro.group.ensemble import GroupCommunication
from repro.group.failure_detector import FailureDetector
from repro.net.message import Message
from repro.sim.random import Constant

from .conftest import SERVICE, FaultStack


def _msg(src="client-1", dst="server-1", kind="request"):
    return Message(sender=src, destination=dst, kind=kind)


class TestPartitionFaultValidation:
    def test_needs_a_dark_side(self):
        with pytest.raises(ValueError):
            PartitionFault(side=(), start_ms=0.0, end_ms=10.0)

    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            PartitionFault(side=("a",), start_ms=10.0, end_ms=10.0)
        with pytest.raises(ValueError):
            PartitionFault(side=("a",), start_ms=-1.0, end_ms=10.0)

    def test_side_and_far_must_be_disjoint(self):
        with pytest.raises(ValueError):
            PartitionFault(
                side=("a", "b"), far=("b",), start_ms=0.0, end_ms=10.0
            )

    def test_mode_is_closed_set(self):
        with pytest.raises(ValueError):
            PartitionFault(
                side=("a",), start_ms=0.0, end_ms=10.0, mode="sideways"
            )

    def test_drop_probability_bounds(self):
        with pytest.raises(ValueError):
            PartitionFault(
                side=("a",), start_ms=0.0, end_ms=10.0, drop_probability=0.0
            )
        with pytest.raises(ValueError):
            PartitionFault(
                side=("a",), start_ms=0.0, end_ms=10.0, drop_probability=1.5
            )

    def test_flap_parameters_validated(self):
        with pytest.raises(ValueError):
            PartitionFault(
                side=("a",), start_ms=0.0, end_ms=10.0, flap_period_ms=0.0
            )
        with pytest.raises(ValueError):
            PartitionFault(
                side=("a",), start_ms=0.0, end_ms=10.0, flap_duty=0.0
            )


class TestActivityAndIntervals:
    def test_steady_cut_active_over_half_open_window(self):
        fault = PartitionFault(side=("a",), start_ms=10.0, end_ms=20.0)
        assert not fault.active(9.9)
        assert fault.active(10.0)
        assert fault.active(19.9)
        assert not fault.active(20.0)
        assert fault.cut_intervals() == [(10.0, 20.0)]

    def test_flapping_cut_follows_the_duty_cycle(self):
        fault = PartitionFault(
            side=("a",),
            start_ms=100.0,
            end_ms=140.0,
            flap_period_ms=20.0,
            flap_duty=0.5,
        )
        # Cycle 1: cut for [100, 110), healed [110, 120); cycle 2 likewise.
        assert fault.active(105.0)
        assert not fault.active(115.0)
        assert fault.active(125.0)
        assert not fault.active(135.0)
        assert fault.cut_intervals() == [(100.0, 110.0), (120.0, 130.0)]

    def test_flap_intervals_never_outlive_the_window(self):
        fault = PartitionFault(
            side=("a",),
            start_ms=0.0,
            end_ms=25.0,
            flap_period_ms=20.0,
            flap_duty=0.5,
        )
        intervals = fault.cut_intervals()
        assert intervals == [(0.0, 10.0), (20.0, 25.0)]
        assert all(heal <= fault.end_ms for _cut, heal in intervals)


class TestSeveringSemantics:
    def test_symmetric_cut_kills_both_directions(self):
        fault = PartitionFault(side=("s-1",), start_ms=0.0, end_ms=100.0)
        assert fault.severs(50.0, _msg("s-1", "client-1"))
        assert fault.severs(50.0, _msg("client-1", "s-1"))
        assert not fault.severs(150.0, _msg("client-1", "s-1"))

    def test_outbound_cut_loses_only_dark_side_traffic(self):
        # Requests arrive, replies vanish — the asymmetric cut.
        fault = PartitionFault(
            side=("s-1",), start_ms=0.0, end_ms=100.0, mode="outbound"
        )
        assert fault.severs(50.0, _msg("s-1", "client-1"))
        assert not fault.severs(50.0, _msg("client-1", "s-1"))

    def test_inbound_cut_loses_only_traffic_toward_the_dark_side(self):
        fault = PartitionFault(
            side=("s-1",), start_ms=0.0, end_ms=100.0, mode="inbound"
        )
        assert not fault.severs(50.0, _msg("s-1", "client-1"))
        assert fault.severs(50.0, _msg("client-1", "s-1"))

    def test_traffic_within_one_side_never_crosses(self):
        fault = PartitionFault(
            side=("s-1", "s-2"), start_ms=0.0, end_ms=100.0
        )
        assert not fault.severs(50.0, _msg("s-1", "s-2"))
        assert not fault.severs(50.0, _msg("client-1", "client-2"))

    def test_explicit_far_side_restricts_the_cut(self):
        fault = PartitionFault(
            side=("s-1",), far=("s-2",), start_ms=0.0, end_ms=100.0
        )
        assert fault.severs(50.0, _msg("s-1", "s-2"))
        assert fault.severs(50.0, _msg("s-2", "s-1"))
        # Hosts outside side ∪ far still talk to both.
        assert not fault.severs(50.0, _msg("s-1", "client-1"))
        assert not fault.severs(50.0, _msg("client-1", "s-1"))

    def test_grey_partition_exempts_the_probe_round_trip(self):
        fault = grey_partition(side=("s-1",), start_ms=0.0, end_ms=100.0)
        assert fault.exempt_kinds == PROBE_EXEMPT_KINDS
        for kind in PROBE_EXEMPT_KINDS:
            assert not fault.severs(50.0, _msg("s-1", "client-1", kind=kind))
        assert fault.severs(50.0, _msg("s-1", "client-1", kind="reply"))

    def test_separates_is_mode_agnostic(self):
        # Any severed crossing direction kills a round trip.
        for mode in ("symmetric", "outbound", "inbound"):
            fault = PartitionFault(
                side=("s-1",), start_ms=0.0, end_ms=100.0, mode=mode
            )
            assert fault.separates("client-1", "s-1")
            assert fault.separates("s-1", "client-1")
            assert not fault.separates("client-1", "client-2")


class TestClassification:
    def test_total_steady_cut_is_a_blackout(self):
        fault = PartitionFault(side=("s-1",), start_ms=0.0, end_ms=100.0)
        assert fault.lan_visible
        assert fault.blackout

    def test_grey_cut_stays_wire_level(self):
        fault = grey_partition(side=("s-1",), start_ms=0.0, end_ms=100.0)
        assert not fault.lan_visible
        assert not fault.blackout

    def test_lossy_cut_stays_wire_level(self):
        fault = PartitionFault(
            side=("s-1",), start_ms=0.0, end_ms=100.0, drop_probability=0.5
        )
        assert not fault.lan_visible

    def test_flapping_total_cut_is_lan_visible_but_not_blackout(self):
        fault = PartitionFault(
            side=("s-1",), start_ms=0.0, end_ms=100.0, flap_period_ms=10.0
        )
        assert fault.lan_visible
        assert not fault.blackout


class TestLanConnectivity:
    def test_severed_links_are_reference_counted(self, lan):
        lan.sever_link("client-1", "server-1")
        lan.sever_link("client-1", "server-1")
        assert not lan.reachable("client-1", "server-1")
        lan.heal_link("client-1", "server-1")
        assert not lan.reachable("client-1", "server-1")  # one cut remains
        lan.heal_link("client-1", "server-1")
        assert lan.reachable("client-1", "server-1")

    def test_heal_is_idempotent_at_zero(self, lan):
        lan.heal_link("client-1", "server-1")  # never severed: no-op
        assert lan.reachable("client-1", "server-1")

    def test_severance_is_directional(self, lan):
        lan.sever_link("server-1", "client-1")
        assert not lan.reachable("server-1", "client-1")
        assert lan.reachable("client-1", "server-1")
        assert lan.severed_links() == [("server-1", "client-1")]

    def test_transport_loses_messages_on_severed_links(
        self, sim, lan, transport
    ):
        received = []
        transport.bind("server-1", received.append)
        lan.sever_link("client-1", "server-1")
        transport.send(_msg())
        sim.run()
        assert received == []
        assert transport.lost_count == 1
        lan.heal_link("client-1", "server-1")
        transport.send(_msg())
        sim.run()
        assert len(received) == 1


class TestFaultyTransportEnforcement:
    def _wired(self, schedule, fault_seed=0):
        stack = FaultStack(schedule=schedule, fault_seed=fault_seed)
        stack.add_server("s-1", service_time=Constant(5.0))
        stack.add_server("s-2", service_time=Constant(5.0))
        stack.add_client("c-1", deadline_ms=100.0)
        return stack

    @staticmethod
    def _bare_wire(schedule, fault_seed=0):
        """A fault-injecting wire with no handlers (no setup traffic)."""
        from repro.net.lan import LanModel
        from repro.net.transport import Transport
        from repro.sim.kernel import Simulator
        from repro.sim.random import RandomStreams

        sim = Simulator()
        lan = LanModel(RandomStreams(seed=0))
        for host in ("c-1", "s-1"):
            lan.add_host(host)
        inner = Transport(sim, lan)
        faulty = FaultyTransport(
            inner, schedule=schedule, rng=np.random.default_rng(fault_seed)
        )
        return sim, inner, faulty

    def test_blackout_cut_times_out_the_request(self):
        schedule = FaultSchedule(
            partitions=(
                PartitionFault(side=("s-1", "s-2"), start_ms=0.0, end_ms=500.0),
            )
        )
        stack = self._wired(schedule)
        event = stack.invoke("c-1", 0)
        stack.sim.run()
        assert event.value.timed_out
        assert stack.transport.injected_partition_drops > 0
        stack.auditor.assert_clean()

    def test_outbound_cut_delivers_the_request_but_loses_the_reply(self):
        schedule = FaultSchedule(
            partitions=(
                PartitionFault(
                    side=("s-1", "s-2"),
                    start_ms=0.0,
                    end_ms=500.0,
                    mode="outbound",
                ),
            )
        )
        stack = self._wired(schedule)
        event = stack.invoke("c-1", 0)
        stack.sim.run()
        assert event.value.timed_out
        # The dark side *served* the request — only its ack vanished.
        served = sum(
            server.metrics.counter(
                "server.replies", labels={"replica": host}
            )
            for host, server in stack.servers.items()
        )
        assert served >= 1
        stack.auditor.assert_clean()

    def test_total_cut_is_draw_free(self):
        # A blackout consumes no wire-stream randomness, so adding one
        # never perturbs the draws of the probabilistic rules.
        schedule = FaultSchedule(
            partitions=(
                PartitionFault(side=("s-1",), start_ms=0.0, end_ms=100.0),
            )
        )
        _sim, _inner, faulty = self._bare_wire(schedule)
        state = faulty.rng.bit_generator.state
        faulty.send(_msg("c-1", "s-1"))
        assert faulty.injected_partition_drops == 1
        assert faulty.rng.bit_generator.state == state

    def test_lossy_cut_draws_from_the_wire_stream(self):
        fault = PartitionFault(
            side=("s-1",), start_ms=0.0, end_ms=100.0, drop_probability=0.5
        )
        schedule = FaultSchedule(partitions=(fault,))
        _sim, _inner, faulty = self._bare_wire(schedule, fault_seed=3)
        sent = 200
        for _ in range(sent):
            faulty.send(_msg("c-1", "s-1"))
        dropped = faulty.injected_partition_drops
        # A fair-ish coin: some die, some pass, none of it deterministic.
        assert 0 < dropped < sent
        rng = np.random.default_rng(3)
        expected = sum(rng.random() < 0.5 for _ in range(sent))
        assert dropped == expected

    def test_grey_cut_passes_probes_and_drops_data(self):
        fault = grey_partition(side=("s-1",), start_ms=0.0, end_ms=100.0)
        sim, inner, faulty = self._bare_wire(FaultSchedule(partitions=(fault,)))
        received = []
        inner.bind("s-1", received.append)
        faulty.send(_msg("c-1", "s-1", kind=MSG_PROBE))
        faulty.send(_msg("c-1", "s-1", kind="request"))
        sim.run()
        assert [m.kind for m in received] == [MSG_PROBE]
        assert faulty.injected_partition_drops == 1


class TestPartitionDriver:
    def _driver(self, stack, replicas=None):
        return PartitionDriver(
            sim=stack.sim,
            lan=stack.lan,
            group_comm=stack.group_comm,
            service=SERVICE,
            replicas=replicas or list(stack.servers),
        )

    def test_wire_only_cuts_never_touch_the_lan(self):
        stack = FaultStack()
        stack.add_server("s-1")
        driver = self._driver(stack)
        driver.apply(
            FaultSchedule(
                partitions=(
                    grey_partition(side=("s-1",), start_ms=1.0, end_ms=50.0),
                    PartitionFault(
                        side=("s-1",),
                        start_ms=1.0,
                        end_ms=50.0,
                        drop_probability=0.5,
                    ),
                )
            )
        )
        stack.sim.run(until=100.0)
        assert driver.cuts_applied == 0
        assert stack.lan.severed_links() == []

    def test_blackout_cut_severs_and_heals_ordered_pairs(self):
        stack = FaultStack()
        stack.add_server("s-1")
        stack.add_server("s-2")
        stack.add_client("c-1")
        driver = self._driver(stack)
        fault = PartitionFault(side=("s-1",), start_ms=10.0, end_ms=50.0)
        driver.apply_partition(fault)
        stack.sim.run(until=20.0)
        severed = set(stack.lan.severed_links())
        assert ("s-1", "s-2") in severed
        assert ("s-2", "s-1") in severed
        assert ("s-1", "c-1") in severed
        assert ("c-1", "s-1") in severed
        stack.sim.run(until=60.0)
        assert stack.lan.severed_links() == []
        assert driver.cuts_applied == 1
        assert driver.heals_applied == 1

    def test_one_way_cut_severs_one_direction_only(self):
        stack = FaultStack()
        stack.add_server("s-1")
        stack.add_client("c-1")
        driver = self._driver(stack)
        fault = PartitionFault(
            side=("s-1",), start_ms=10.0, end_ms=50.0, mode="outbound"
        )
        driver.apply_partition(fault)
        stack.sim.run(until=20.0)
        assert stack.lan.severed_links() == [("s-1", "c-1")]
        assert stack.lan.reachable("c-1", "s-1")

    def test_flapping_cut_cycles_the_links(self):
        stack = FaultStack()
        stack.add_server("s-1")
        stack.add_client("c-1")
        driver = self._driver(stack)
        fault = PartitionFault(
            side=("s-1",),
            start_ms=0.0,
            end_ms=100.0,
            flap_period_ms=40.0,
            flap_duty=0.5,
        )
        driver.apply_partition(fault)
        stack.sim.run(until=10.0)
        assert stack.lan.severed_links() != []
        stack.sim.run(until=30.0)
        assert stack.lan.severed_links() == []
        stack.sim.run(until=50.0)
        assert stack.lan.severed_links() != []
        stack.sim.run(until=200.0)
        assert stack.lan.severed_links() == []
        assert driver.cuts_applied == 3  # cycles at 0, 40 and 80 ms
        assert driver.heals_applied == 3

    def test_delayed_copies_die_on_a_cut_applied_after_send(self):
        # A duplicate scheduled before the cut must not cross it: the
        # LAN-level severance catches what FaultyTransport already
        # processed.
        from repro.faultinject.schedule import DuplicateRule

        schedule = FaultSchedule(
            duplicates=(
                DuplicateRule(
                    start_ms=0.0, end_ms=5.0, copies=1, late_by_ms=30.0
                ),
            ),
            partitions=(
                PartitionFault(side=("s-1",), start_ms=10.0, end_ms=100.0),
            ),
        )
        sim, inner, faulty = TestFaultyTransportEnforcement._bare_wire(
            schedule
        )
        driver = PartitionDriver(sim=sim, lan=inner.lan)
        driver.apply(schedule)
        received = []
        inner.bind("s-1", received.append)
        faulty.send(_msg("c-1", "s-1"))  # duplicated, copy at ~30ms
        sim.run(until=200.0)
        assert faulty.injected_duplicates == 1
        assert len(received) == 1  # the original; the late copy died
        assert inner.lost_count == 1


def _vantage_stack():
    """A stack whose detector observes from the client's vantage."""
    stack = FaultStack()
    detector = FailureDetector(
        stack.sim,
        stack.lan,
        poll_interval_ms=10.0,
        confirm_polls=2,
        vantage="c-1",
    )
    stack.group_comm = GroupCommunication(
        stack.sim,
        stack.lan,
        stack.transport,
        notify_delay_ms=1.0,
        failure_detector=detector,
    )
    stack.add_client("c-1")
    stack.add_server("s-1")
    stack.add_server("s-2")
    return stack, detector


class TestHealReconciliation:
    def _partitioned_stack(self):
        return _vantage_stack()

    def test_partition_evicts_and_heal_rejoins(self):
        stack, detector = self._partitioned_stack()
        driver = PartitionDriver(
            sim=stack.sim,
            lan=stack.lan,
            group_comm=stack.group_comm,
            service=SERVICE,
            replicas=["s-1", "s-2"],
        )
        fault = PartitionFault(side=("s-1",), start_ms=50.0, end_ms=200.0)
        driver.apply_partition(fault)
        stack.sim.run(until=150.0)
        # Mid-cut: the vantage host cannot see s-1, so the detector
        # declared it crashed and the group evicted it — view churn.
        assert detector.is_declared_crashed("s-1")
        assert "s-1" not in stack.group_comm.view(SERVICE)
        assert stack.lan.is_up("s-1")  # it never actually crashed
        stack.sim.run(until=400.0)
        # Post-heal: fresh sighting, membership reconciled.
        assert not detector.is_declared_crashed("s-1")
        assert "s-1" in stack.group_comm.view(SERVICE)
        assert driver.sightings_applied == 1
        assert driver.rejoins_applied == 1

    def test_heal_leaves_hosts_cut_by_an_overlapping_partition(self):
        stack, detector = self._partitioned_stack()
        driver = PartitionDriver(
            sim=stack.sim,
            lan=stack.lan,
            group_comm=stack.group_comm,
            service=SERVICE,
            replicas=["s-1", "s-2"],
        )
        first = PartitionFault(side=("s-1",), start_ms=50.0, end_ms=200.0)
        second = PartitionFault(side=("s-1",), start_ms=100.0, end_ms=300.0)
        driver.apply_partition(first)
        driver.apply_partition(second)
        stack.sim.run(until=250.0)
        # First heal at 200ms found s-1 still severed by the second cut:
        # no premature rejoin.
        assert "s-1" not in stack.group_comm.view(SERVICE)
        assert driver.rejoins_applied == 0
        stack.sim.run(until=400.0)
        assert "s-1" in stack.group_comm.view(SERVICE)
        assert driver.rejoins_applied == 1

    def test_heal_never_resurrects_a_genuinely_crashed_host(self):
        stack, detector = self._partitioned_stack()
        driver = PartitionDriver(
            sim=stack.sim,
            lan=stack.lan,
            group_comm=stack.group_comm,
            service=SERVICE,
            replicas=["s-1", "s-2"],
        )
        fault = PartitionFault(side=("s-1",), start_ms=50.0, end_ms=200.0)
        driver.apply_partition(fault)
        # The host dies for real mid-cut; the heal must not rejoin it.
        stack.sim.call_at(100.0, lambda: stack.lan.mark_down("s-1"))
        stack.sim.run(until=400.0)
        assert detector.is_declared_crashed("s-1")
        assert "s-1" not in stack.group_comm.view(SERVICE)
        assert driver.rejoins_applied == 0

    def test_heal_without_declaration_is_a_noop(self):
        # Cut too short for the detector to confirm: nothing to reconcile.
        stack, detector = self._partitioned_stack()
        driver = PartitionDriver(
            sim=stack.sim,
            lan=stack.lan,
            group_comm=stack.group_comm,
            service=SERVICE,
            replicas=["s-1", "s-2"],
        )
        fault = PartitionFault(side=("s-1",), start_ms=52.0, end_ms=61.0)
        driver.apply_partition(fault)
        stack.sim.run(until=200.0)
        assert not detector.is_declared_crashed("s-1")
        assert "s-1" in stack.group_comm.view(SERVICE)
        assert driver.sightings_applied == 0
        assert driver.rejoins_applied == 0


class TestFlapCrashRestartComposition:
    """ISSUE 10 satellite: a flapping cut composed with a crash-restart.

    The contract is the suspicion lifecycle: every positive liveness
    event — a flap heal's reconciliation or a restart — routes through
    :meth:`FailureDetector.sight`, which clears both the crash
    declaration and the consecutive-down count.  Eviction does *not*
    unwatch, so the poll chain keeps accumulating down samples the whole
    time a host is gone; without the sighting reset, the first blip
    after recovery would confirm a "crash" in a single poll.
    """

    def test_restart_after_flapping_cut_clears_stale_suspicion(self):
        stack, detector = _vantage_stack()
        partitions = PartitionDriver(
            sim=stack.sim,
            lan=stack.lan,
            group_comm=stack.group_comm,
            service=SERVICE,
            replicas=["s-1", "s-2"],
        )
        lifecycle = stack.make_driver()
        # Flap [50, 230), 60ms period, 50% duty: cuts at [50, 80),
        # [110, 140), [170, 200).  The host genuinely dies during the
        # second cut and comes back long after the window.
        partitions.apply_partition(
            PartitionFault(
                side=("s-1",),
                start_ms=50.0,
                end_ms=230.0,
                flap_period_ms=60.0,
                flap_duty=0.5,
            )
        )
        lifecycle.apply_crash(
            CrashRestartFault(
                host="s-1", crash_at_ms=120.0, restart_at_ms=400.0
            )
        )

        # First cut: two 10ms polls from c-1 confirm, s-1 is evicted —
        # yet it never actually crashed.
        stack.sim.run(until=75.0)
        assert detector.is_declared_crashed("s-1")
        assert "s-1" not in stack.group_comm.view(SERVICE)
        assert stack.lan.is_up("s-1")

        # The heal at 80 re-sighted and rejoined it once; the heals at
        # 140 and 200 found it genuinely down and must not resurrect it.
        stack.sim.run(until=300.0)
        assert detector.is_declared_crashed("s-1")
        assert "s-1" not in stack.group_comm.view(SERVICE)
        assert not stack.lan.is_up("s-1")
        assert partitions.sightings_applied == 1
        assert partitions.rejoins_applied == 1
        assert lifecycle.crashes_applied == 1

        # Restart: forget() -> sight() clears the declaration and the
        # ~28 consecutive down samples gathered since the crash, and the
        # fresh incarnation rejoins the view.
        stack.sim.run(until=405.0)
        assert not detector.is_declared_crashed("s-1")
        assert "s-1" in stack.group_comm.view(SERVICE)
        assert lifecycle.restarts_applied == 1

        # The teeth of sight(): a single-poll blip after the restart is
        # one fresh down sample, short of confirm_polls=2.  Had the
        # crashed stretch's suspicion survived the sighting, this blip
        # would insta-declare and evict again.
        stack.sim.call_at(414.0, lambda: stack.lan.mark_down("s-1"))
        stack.sim.call_at(423.0, lambda: stack.lan.mark_up("s-1"))
        stack.sim.run(until=460.0)
        assert not detector.is_declared_crashed("s-1")
        assert "s-1" in stack.group_comm.view(SERVICE)
