"""Mini AQuA stack wired through the fault-injection layer.

Like the gateway suite's ``MiniStack`` but every component sends through a
:class:`FaultyTransport`, the stack owns a :class:`LifecycleAuditor`
watching every client, and a :class:`LifecycleFaultDriver` can apply
crash/restart and churn faults to its servers.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import pytest

from repro.core.qos import QoSSpec
from repro.faultinject import (
    FaultSchedule,
    FaultyTransport,
    LifecycleAuditor,
    LifecycleFaultDriver,
)
from repro.gateway.gateway import Gateway
from repro.gateway.handlers.timing_fault import (
    TimingFaultClientHandler,
    TimingFaultServerHandler,
)
from repro.group.ensemble import GroupCommunication
from repro.group.failure_detector import FailureDetector
from repro.net.lan import LanModel, LinkProfile
from repro.net.transport import Transport
from repro.orb.iiop import MarshallingModel
from repro.orb.orb import Orb
from repro.replica.load import ServiceProfile
from repro.replica.server import ReplicaApplication
from repro.sim.kernel import Simulator
from repro.sim.random import Constant, Distribution, RandomStreams
from repro.workload.scenarios import IntegerServant, make_interface

SERVICE = "search"
METHOD = "process"


class FaultStack:
    """A deterministic deployment whose wire is fault-injectable."""

    def __init__(
        self,
        seed: int = 0,
        schedule: Optional[FaultSchedule] = None,
        fault_seed: int = 0,
    ):
        self.sim = Simulator()
        self.streams = RandomStreams(seed=seed)
        profile = LinkProfile(
            stack_ms=1.0, per_kb_ms=0.0, per_member_ms=0.0, jitter=Constant(0.0)
        )
        self.lan = LanModel(self.streams, default_profile=profile)
        self.inner_transport = Transport(self.sim, self.lan)
        self.transport = FaultyTransport(
            self.inner_transport,
            schedule=schedule or FaultSchedule(),
            rng=np.random.default_rng(fault_seed),
        )
        detector = FailureDetector(
            self.sim, self.lan, poll_interval_ms=10.0, confirm_polls=2
        )
        self.group_comm = GroupCommunication(
            self.sim,
            self.lan,
            self.transport,
            notify_delay_ms=1.0,
            failure_detector=detector,
        )
        self.marshalling = MarshallingModel(
            base_ms=0.0, per_kb_ms=0.0, envelope_bytes=0
        )
        self.interface = make_interface(SERVICE, METHOD)
        self.auditor = LifecycleAuditor()
        self.servers: Dict[str, TimingFaultServerHandler] = {}
        self.clients: Dict[str, TimingFaultClientHandler] = {}
        self.stubs: Dict[str, object] = {}

    # -- topology ----------------------------------------------------------
    def add_server(
        self,
        host: str,
        service_time: Optional[Distribution] = None,
    ) -> TimingFaultServerHandler:
        self.lan.add_host(host)
        app = ReplicaApplication(
            host=host,
            servant=IntegerServant(self.interface, METHOD),
            profile=ServiceProfile(default=service_time or Constant(10.0)),
            streams=self.streams,
        )
        handler = TimingFaultServerHandler(
            sim=self.sim,
            app=app,
            transport=self.transport,
            marshalling=self.marshalling,
        )
        Gateway(host, self.sim, self.transport).load_handler(handler)
        self.group_comm.join(SERVICE, host, watch=True)
        self.servers[host] = handler
        self.auditor.watch_server(handler)
        return handler

    def add_client(
        self,
        host: str,
        deadline_ms: float = 100.0,
        min_probability: float = 0.0,
        handler_cls=TimingFaultClientHandler,
        **handler_kwargs,
    ) -> TimingFaultClientHandler:
        self.lan.add_host(host)
        handler = handler_cls(
            sim=self.sim,
            host=host,
            transport=self.transport,
            group_comm=self.group_comm,
            interface=self.interface,
            qos=QoSSpec(SERVICE, deadline_ms, min_probability),
            marshalling=self.marshalling,
            selection_charge_ms=handler_kwargs.pop("selection_charge_ms", 0.0),
            rng=self.streams.stream(f"client.{host}.policy"),
            **handler_kwargs,
        )
        Gateway(host, self.sim, self.transport).load_handler(handler)
        self.auditor.watch_client(handler)
        orb = Orb()
        orb.register_interface(self.interface)
        orb.bind_interceptor(SERVICE, handler)
        self.clients[host] = handler
        self.stubs[host] = orb.stub(SERVICE)
        return handler

    def make_driver(self) -> LifecycleFaultDriver:
        """A host-level fault driver over the current server set."""
        return LifecycleFaultDriver(
            sim=self.sim,
            lan=self.lan,
            group_comm=self.group_comm,
            service=SERVICE,
            servers=self.servers,
        )

    # -- driving -----------------------------------------------------------
    def invoke(self, client_host: str, arg: int = 0):
        """Fire one request through the client's stub; returns the event."""
        return self.stubs[client_host].invoke(METHOD, arg)


@pytest.fixture
def stack() -> FaultStack:
    return FaultStack()
