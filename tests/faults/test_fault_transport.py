"""Unit tests for the message-level fault injector (FaultyTransport)."""

import numpy as np
import pytest

from repro.faultinject import (
    ChurnFault,
    CrashRestartFault,
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultSchedule,
    FaultyTransport,
    random_fault_schedule,
)
from repro.net.lan import LanModel, LinkProfile
from repro.net.message import Message
from repro.net.transport import Transport
from repro.sim.kernel import Simulator
from repro.sim.random import Constant, RandomStreams


class Wire:
    """Three hosts on a deterministic 1 ms LAN behind a FaultyTransport."""

    def __init__(self, schedule=None, rng=None):
        self.sim = Simulator()
        streams = RandomStreams(seed=0)
        profile = LinkProfile(
            stack_ms=1.0, per_kb_ms=0.0, per_member_ms=0.0, jitter=Constant(0.0)
        )
        self.lan = LanModel(streams, default_profile=profile)
        self.inner = Transport(self.sim, self.lan)
        self.transport = FaultyTransport(self.inner, schedule=schedule, rng=rng)
        self.received = {}
        for host in ("a", "b", "c"):
            self.lan.add_host(host)
            arrivals = []
            self.received[host] = arrivals
            self.transport.bind(
                host, lambda m, a=arrivals: a.append((self.sim.now, m))
            )


def _msg(sender="a", destination="b", kind="data"):
    return Message(
        sender=sender, destination=destination, kind=kind, payload=None,
        size_bytes=64,
    )


def test_clean_passthrough():
    wire = Wire()
    message = _msg()
    wire.transport.send(message)
    wire.sim.run()
    assert [(t, m.msg_id) for t, m in wire.received["b"]] == [
        (1.0, message.msg_id)
    ]
    assert wire.transport.sent_count == 1
    assert wire.transport.delivered_count == 1
    assert wire.transport.injected_drops == 0


def test_drop_rule_loses_matching_message():
    wire = Wire(FaultSchedule(drops=(DropRule(start_ms=0.0, end_ms=100.0),)))
    wire.transport.send(_msg())
    wire.sim.run()
    assert wire.received["b"] == []
    assert wire.transport.injected_drops == 1
    # The inner transport never saw the message at all.
    assert wire.inner.sent_count == 0


def test_drop_rule_window_is_half_open():
    wire = Wire(FaultSchedule(drops=(DropRule(start_ms=10.0, end_ms=20.0),)))
    wire.transport.send(_msg())  # t=0: before the window
    wire.sim.call_at(15.0, lambda: wire.transport.send(_msg()))  # inside
    wire.sim.call_at(20.0, lambda: wire.transport.send(_msg()))  # at end: out
    wire.sim.run()
    assert [t for t, _ in wire.received["b"]] == [1.0, 21.0]
    assert wire.transport.injected_drops == 1


def test_drop_rule_filters_by_kind_src_dst():
    schedule = FaultSchedule(
        drops=(
            DropRule(start_ms=0.0, end_ms=100.0, kinds=("x",)),
            DropRule(start_ms=0.0, end_ms=100.0, src="c"),
            DropRule(start_ms=0.0, end_ms=100.0, dst="c"),
        )
    )
    wire = Wire(schedule)
    wire.transport.send(_msg(kind="y"))  # survives every filter
    wire.transport.send(_msg(kind="x"))  # dropped by kind
    wire.transport.send(_msg(sender="c", destination="b"))  # dropped by src
    wire.transport.send(_msg(destination="c"))  # dropped by dst
    wire.sim.run()
    assert len(wire.received["b"]) == 1
    assert wire.received["c"] == []
    assert wire.transport.injected_drops == 3


def test_probabilistic_drop_is_seeded_and_partial():
    schedule = FaultSchedule(
        drops=(DropRule(start_ms=0.0, end_ms=1e9, probability=0.5),)
    )
    wire = Wire(schedule, rng=np.random.default_rng(42))
    for _ in range(200):
        wire.transport.send(_msg())
    wire.sim.run()
    delivered = len(wire.received["b"])
    assert delivered + wire.transport.injected_drops == 200
    assert 60 <= delivered <= 140  # ~Binomial(200, 0.5)


def test_delay_rule_postpones_transmission():
    wire = Wire(FaultSchedule(delays=(DelayRule(start_ms=0.0, end_ms=100.0, extra_ms=25.0),)))
    extra = wire.transport.send(_msg())
    wire.sim.run()
    assert extra == pytest.approx(25.0)
    assert [t for t, _ in wire.received["b"]] == [26.0]
    assert wire.transport.injected_delays == 1


def test_matching_delay_rules_sum():
    schedule = FaultSchedule(
        delays=(
            DelayRule(start_ms=0.0, end_ms=100.0, extra_ms=10.0),
            DelayRule(start_ms=0.0, end_ms=100.0, extra_ms=5.0),
        )
    )
    wire = Wire(schedule)
    assert wire.transport.send(_msg()) == pytest.approx(15.0)
    wire.sim.run()
    assert [t for t, _ in wire.received["b"]] == [16.0]


def test_duplicate_rule_delivers_late_copies_with_same_msg_id():
    schedule = FaultSchedule(
        duplicates=(
            DuplicateRule(start_ms=0.0, end_ms=100.0, copies=2, late_by_ms=5.0),
        )
    )
    wire = Wire(schedule)
    message = _msg()
    wire.transport.send(message)
    wire.sim.run()
    times = sorted(t for t, _ in wire.received["b"])
    assert times == [1.0, 6.0, 6.0]
    assert {m.msg_id for _, m in wire.received["b"]} == {message.msg_id}
    assert wire.transport.injected_duplicates == 2


def test_drop_wins_over_delay_and_duplicate():
    schedule = FaultSchedule(
        drops=(DropRule(start_ms=0.0, end_ms=100.0),),
        delays=(DelayRule(start_ms=0.0, end_ms=100.0, extra_ms=10.0),),
        duplicates=(DuplicateRule(start_ms=0.0, end_ms=100.0),),
    )
    wire = Wire(schedule)
    wire.transport.send(_msg())
    wire.sim.run()
    assert wire.received["b"] == []
    assert wire.transport.injected_drops == 1
    assert wire.transport.injected_delays == 0
    assert wire.transport.injected_duplicates == 0


def test_multicast_applies_rules_per_destination():
    wire = Wire(FaultSchedule(drops=(DropRule(start_ms=0.0, end_ms=100.0, dst="b"),)))
    message = _msg(destination="")
    wire.transport.multicast(message, ["b", "c"])
    wire.sim.run()
    assert wire.received["b"] == []
    assert [m.msg_id for _, m in wire.received["c"]] == [message.msg_id]
    assert wire.transport.injected_drops == 1


def test_multicast_rejects_empty_destinations():
    wire = Wire()
    with pytest.raises(ValueError):
        wire.transport.multicast(_msg(), [])


def test_rule_validation():
    with pytest.raises(ValueError):
        DropRule(start_ms=5.0, end_ms=5.0)
    with pytest.raises(ValueError):
        DropRule(start_ms=-1.0, end_ms=5.0)
    with pytest.raises(ValueError):
        DropRule(start_ms=0.0, end_ms=5.0, probability=0.0)
    with pytest.raises(ValueError):
        DelayRule(start_ms=0.0, end_ms=5.0, extra_ms=-1.0)
    with pytest.raises(ValueError):
        DuplicateRule(start_ms=0.0, end_ms=5.0, copies=0)
    with pytest.raises(ValueError):
        DuplicateRule(start_ms=0.0, end_ms=5.0, late_by_ms=-1.0)
    with pytest.raises(ValueError):
        CrashRestartFault(host="h", crash_at_ms=10.0, restart_at_ms=10.0)
    with pytest.raises(ValueError):
        ChurnFault(member="h", leave_at_ms=10.0, rejoin_at_ms=5.0)


def test_schedule_merge_and_len():
    first = FaultSchedule(drops=(DropRule(start_ms=0.0, end_ms=1.0),))
    second = FaultSchedule(
        delays=(DelayRule(start_ms=0.0, end_ms=1.0, extra_ms=2.0),),
        crashes=(CrashRestartFault(host="h", crash_at_ms=1.0),),
    )
    merged = first.merged(second)
    assert len(first) == 1
    assert len(second) == 2
    assert len(merged) == 3
    assert merged.drops == first.drops
    assert merged.crashes == second.crashes


def test_random_fault_schedule_shape():
    rng = np.random.default_rng(3)
    replicas = ["r1", "r2", "r3"]
    schedule = random_fault_schedule(rng, horizon_ms=1000.0, replicas=replicas)
    assert len(schedule.drops) == 3
    assert len(schedule.delays) == 2
    assert len(schedule.duplicates) == 2
    assert len(schedule.crashes) == 2
    assert len(schedule.churn) == 2
    for rule in schedule.drops + schedule.delays + schedule.duplicates:
        assert 0.0 <= rule.start_ms < rule.end_ms
    for fault in schedule.crashes:
        assert fault.host in replicas
        assert fault.restart_at_ms is not None
        assert fault.restart_at_ms > fault.crash_at_ms
    for fault in schedule.churn:
        assert fault.member in replicas
        assert fault.rejoin_at_ms is not None
        assert fault.rejoin_at_ms > fault.leave_at_ms


def test_random_fault_schedule_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        random_fault_schedule(rng, horizon_ms=0.0, replicas=["r1"])
    with pytest.raises(ValueError):
        random_fault_schedule(rng, horizon_ms=100.0, replicas=[])
