"""Seeding discipline of ``random_fault_schedule`` (ISSUE 6 satellite).

Two contracts:

* the **legacy path** (plain ``numpy`` generator) is frozen — historic
  schedules reproduce bit-for-bit under their historic seeds, pinned
  here by digests and spot-checked fields captured from the pre-ISSUE-6
  implementation;
* the **streamed path** (:class:`~repro.rng.RNGManager`) draws every
  fault window from its own named substream, so no family's windows can
  be perturbed by another family's count — the seed-stability footgun
  the satellite fixes.
"""

import hashlib

import numpy as np
import pytest

from repro.faultinject.schedule import (
    _draw_clock_fault,
    _draw_partition,
    random_fault_schedule,
)
from repro.rng import RNGManager

REPLICAS = ["s-1", "s-2", "s-3"]
HORIZON_MS = 4000.0

#: sha256(repr(schedule)) for the legacy path with every family enabled
#: (degradations=2, overload_windows=2), captured from the frozen
#: implementation.  A digest change here means historic fault scenarios
#: silently re-randomized.
LEGACY_DIGESTS = {
    7: "a6c4b50a91f42e0b66e316abdb67aa732986e4186dccb46ef8698436ac33f86d",
    13: "d116bd804ac728d52183902ce4c89f38ccabca0b4e1310f1b34826f173ea2201",
    29: "4a0fa44afd64e4c4a2fd4220c61df738a0bced4c6c30636588689c5dd7b5cdf9",
}


def _legacy(seed, **kwargs):
    return random_fault_schedule(
        np.random.default_rng(seed), HORIZON_MS, REPLICAS, **kwargs
    )


def _streamed(seed, **kwargs):
    return random_fault_schedule(
        RNGManager(base_seed=seed), HORIZON_MS, REPLICAS, **kwargs
    )


class TestLegacyPathFrozen:
    @pytest.mark.parametrize("seed", sorted(LEGACY_DIGESTS))
    def test_full_schedule_digest_pinned(self, seed):
        schedule = _legacy(seed, degradations=2, overload_windows=2)
        digest = hashlib.sha256(repr(schedule).encode()).hexdigest()
        assert digest == LEGACY_DIGESTS[seed]

    def test_seed7_spot_values_pinned(self):
        # Readable anchors in case the digest ever breaks: exact draws
        # from the frozen sequential order under the default families.
        schedule = _legacy(7)
        drop = schedule.drops[0]
        assert drop.start_ms == pytest.approx(2983.1844958506954, abs=0)
        assert drop.end_ms == pytest.approx(3658.241775813495, abs=0)
        crash = schedule.crashes[0]
        assert crash.host == "s-2"
        assert crash.crash_at_ms == pytest.approx(688.9878343539167, abs=0)
        assert crash.restart_at_ms == pytest.approx(953.0726478970545, abs=0)

    def test_trailing_families_do_not_perturb_core_families(self):
        # The legacy guarantee: degradations/overloads draw last, so
        # enabling them leaves the first five families byte-identical.
        plain = _legacy(13)
        extended = _legacy(13, degradations=2, overload_windows=2)
        for family in ("drops", "delays", "duplicates", "crashes", "churn"):
            assert getattr(extended, family) == getattr(plain, family)


class TestStreamedPathIndependence:
    def test_deterministic_per_seed(self):
        assert repr(_streamed(7)) == repr(_streamed(7))
        assert repr(_streamed(7)) != repr(_streamed(8))

    def test_family_counts_are_independent(self):
        # THE footgun fix: changing one family's window count must not
        # re-randomize any other family (the legacy path cannot do this).
        base = _streamed(29, degradations=1, overload_windows=1)
        more_drops = _streamed(
            29, drop_windows=7, degradations=1, overload_windows=1
        )
        for family in (
            "delays",
            "duplicates",
            "crashes",
            "churn",
            "degradations",
            "overloads",
        ):
            assert getattr(more_drops, family) == getattr(base, family)
        assert more_drops.drops[:3] == base.drops

    def test_window_index_is_the_substream_key(self):
        # Window i of a family is the same rule whether the family draws
        # 2 or 5 windows — each (family, i) key owns its substream.
        two = _streamed(7, delay_windows=2)
        five = _streamed(7, delay_windows=5)
        assert five.delays[:2] == two.delays

    def test_matches_manual_substream_draws(self):
        # The documented key scheme, reproduced by hand: window 0 of the
        # crash family draws host-then-start from substream
        # ("faults.crashes", 0) of the same manager seed.
        g = RNGManager(base_seed=41).substream("faults.crashes", 0)
        expected_host = str(g.choice(REPLICAS))
        expected_start = g.uniform(0.0, HORIZON_MS * 0.8)
        schedule = _streamed(41)
        assert schedule.crashes[0].host == expected_host
        assert schedule.crashes[0].crash_at_ms == expected_start

    def test_all_families_present_when_requested(self):
        schedule = _streamed(3, degradations=2, overload_windows=2)
        assert len(schedule.drops) == 3
        assert len(schedule.delays) == 2
        assert len(schedule.duplicates) == 2
        assert len(schedule.crashes) == 2
        assert len(schedule.churn) == 2
        assert len(schedule.degradations) == 2
        assert len(schedule.overloads) == 2


class TestPartitionFamily:
    """Seeding discipline of the newest family (partitions)."""

    def test_repr_omits_empty_partition_family(self):
        # The frozen legacy digests hash repr(schedule); a schedule with
        # no partitions must render byte-identically to the pre-partition
        # dataclass repr.
        schedule = _legacy(7)
        assert schedule.partitions == ()
        assert "partitions=" not in repr(schedule)

    def test_repr_shows_partitions_when_drawn(self):
        schedule = _streamed(7, partition_windows=1)
        assert len(schedule.partitions) == 1
        assert "partitions=" in repr(schedule)

    def test_legacy_partitions_draw_after_every_other_family(self):
        # Same guarantee degradations/overloads got: partitions draw
        # last on the sequential path, so enabling them leaves every
        # earlier family byte-identical.
        plain = _legacy(13, degradations=2, overload_windows=2)
        extended = _legacy(
            13, degradations=2, overload_windows=2, partition_windows=2
        )
        for family in (
            "drops",
            "delays",
            "duplicates",
            "crashes",
            "churn",
            "degradations",
            "overloads",
        ):
            assert getattr(extended, family) == getattr(plain, family)
        assert len(extended.partitions) == 2

    def test_streamed_partition_count_is_independent(self):
        base = _streamed(29, degradations=1, overload_windows=1)
        cut = _streamed(
            29, degradations=1, overload_windows=1, partition_windows=3
        )
        for family in (
            "drops",
            "delays",
            "duplicates",
            "crashes",
            "churn",
            "degradations",
            "overloads",
        ):
            assert getattr(cut, family) == getattr(base, family)
        assert len(cut.partitions) == 3
        # ... and window i keeps its identity as the count grows.
        more = _streamed(
            29, degradations=1, overload_windows=1, partition_windows=5
        )
        assert more.partitions[:3] == cut.partitions

    def test_matches_manual_partition_substream_draws(self):
        # The documented key scheme: window i of the partition family
        # draws from substream ("faults.partition", i) of the manager.
        manager = RNGManager(base_seed=41)
        expected = tuple(
            _draw_partition(
                manager.substream("faults.partition", i),
                REPLICAS,
                HORIZON_MS,
                window_fraction=0.15,
                flap_probability=0.25,
                grey_probability=0.2,
            )
            for i in range(2)
        )
        schedule = _streamed(41, partition_windows=2)
        assert schedule.partitions == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_partitions_are_valid_and_drained(self, seed):
        for schedule in (
            _streamed(seed, partition_windows=3),
            _legacy(seed, partition_windows=3),
        ):
            assert len(schedule.partitions) == 3
            for fault in schedule.partitions:
                assert set(fault.side) <= set(REPLICAS)
                assert fault.mode in ("symmetric", "outbound", "inbound")
                assert fault.end_ms <= HORIZON_MS * 0.85
                assert fault.start_ms < fault.end_ms


class TestClockFamily:
    """Seeding discipline of the clock-fault family (ISSUE 10)."""

    def test_repr_omits_empty_clock_family(self):
        # The frozen legacy digests hash repr(schedule); a schedule with
        # no clock windows must render byte-identically to the
        # pre-clock-plane dataclass repr.
        schedule = _legacy(7)
        assert schedule.clocks == ()
        assert "clocks=" not in repr(schedule)

    def test_repr_shows_clocks_when_drawn(self):
        schedule = _streamed(7, clock_windows=1)
        assert len(schedule.clocks) == 1
        assert "clocks=" in repr(schedule)

    def test_legacy_clocks_draw_after_every_other_family(self):
        # The legacy guarantee every late family gets: clocks draw LAST
        # on the sequential path, so enabling them leaves every earlier
        # family — including partitions — byte-identical.
        plain = _legacy(
            13, degradations=2, overload_windows=2, partition_windows=2
        )
        extended = _legacy(
            13,
            degradations=2,
            overload_windows=2,
            partition_windows=2,
            clock_windows=2,
        )
        for family in (
            "drops",
            "delays",
            "duplicates",
            "crashes",
            "churn",
            "degradations",
            "overloads",
            "partitions",
        ):
            assert getattr(extended, family) == getattr(plain, family)
        assert len(extended.clocks) == 2

    def test_streamed_clock_count_is_independent(self):
        base = _streamed(
            29, degradations=1, overload_windows=1, partition_windows=1
        )
        clocked = _streamed(
            29,
            degradations=1,
            overload_windows=1,
            partition_windows=1,
            clock_windows=3,
        )
        for family in (
            "drops",
            "delays",
            "duplicates",
            "crashes",
            "churn",
            "degradations",
            "overloads",
            "partitions",
        ):
            assert getattr(clocked, family) == getattr(base, family)
        assert len(clocked.clocks) == 3
        # ... and window i keeps its identity as the count grows.
        more = _streamed(
            29,
            degradations=1,
            overload_windows=1,
            partition_windows=1,
            clock_windows=5,
        )
        assert more.clocks[:3] == clocked.clocks

    def test_matches_manual_clock_substream_draws(self):
        # The documented key scheme: window i of the clock family draws
        # from substream ("faults.clock", i) of the manager.
        manager = RNGManager(base_seed=41)
        expected = tuple(
            _draw_clock_fault(
                manager.substream("faults.clock", i),
                REPLICAS,
                HORIZON_MS,
                0.15,
                200.0,
                800.0,
            )
            for i in range(2)
        )
        schedule = _streamed(41, clock_windows=2)
        assert schedule.clocks == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_clocks_are_valid_and_drained(self, seed):
        for schedule in (
            _streamed(seed, clock_windows=3),
            _legacy(seed, clock_windows=3),
        ):
            assert len(schedule.clocks) == 3
            for fault in schedule.clocks:
                assert fault.host in REPLICAS
                assert fault.kind in (
                    "skew", "drift", "step", "freeze", "jitter"
                )
                assert fault.end_ms <= HORIZON_MS * 0.85
                assert fault.start_ms < fault.end_ms


class TestDrainedWindows:
    @pytest.mark.parametrize("seed", range(20))
    def test_degradations_and_overloads_end_by_85_percent(self, seed):
        for schedule in (
            _streamed(seed, degradations=3, overload_windows=3),
            _legacy(seed, degradations=3, overload_windows=3),
        ):
            for fault in schedule.degradations + schedule.overloads:
                assert fault.end_ms <= HORIZON_MS * 0.85
                assert fault.start_ms < fault.end_ms
