"""The ISSUE's acceptance test: a randomized fault schedule over 500
requests must drain to a clean lifecycle audit.

Three closed-loop clients (two timing-fault handlers, one retransmitting
strawman) fire 500 requests at five replicas while the schedule injects
message drops, delay spikes, duplicated/late replies, crash-mid-service
with restart, and view churn.  Afterwards the LifecycleAuditor must find
every request completed exactly once and zero leaked ``_pending`` /
``_aliases`` / ``_probes_in_flight`` entries anywhere.

The test runs over a small seed matrix; every assertion message carries
``(seed, fault_seed)`` so a failing combination can be replayed directly.
``FAULT_ACCEPTANCE_SCALE`` (an integer, default 1) multiplies the request
counts and the schedule horizon — the nightly CI job runs at 5×.
"""

import os

import numpy as np
import pytest

from repro.faultinject import random_fault_schedule
from repro.gateway.handlers.retransmit import RetransmittingClientHandler
from repro.sim.random import Constant

from .conftest import FaultStack

REPLICAS = [f"s-{i + 1}" for i in range(5)]
SCALE = max(1, int(os.environ.get("FAULT_ACCEPTANCE_SCALE", "1")))

# (component seed, fault-injection seed, schedule-draw seed).  The first
# combination is the historic one; keep it first so its schedule stays
# bit-for-bit identical with earlier revisions.
SEED_MATRIX = [(3, 11, 7), (4, 19, 23), (5, 29, 31)]


def _closed_loop(stack, host, count, think_ms, first_arg=0):
    """Drive ``count`` sequential requests with a short think time."""

    def run():
        for i in range(count):
            yield stack.invoke(host, first_arg + i)
            yield stack.sim.timeout(think_ms)

    return stack.sim.spawn(run(), name=f"load.{host}")


@pytest.mark.parametrize("seed,fault_seed,schedule_seed", SEED_MATRIX)
def test_randomized_fault_schedule_drains_clean(seed, fault_seed, schedule_seed):
    tag = f"(seed={seed}, fault_seed={fault_seed})"
    stack = FaultStack(seed=seed, fault_seed=fault_seed)
    for host in REPLICAS:
        stack.add_server(host, service_time=Constant(8.0))
    stack.add_client("c-1", deadline_ms=100.0, response_timeout_factor=3.0)
    stack.add_client("c-2", deadline_ms=60.0, response_timeout_factor=3.0)
    stack.add_client(
        "c-3",
        deadline_ms=100.0,
        handler_cls=RetransmittingClientHandler,
        retry_timeout_ms=25.0,
        max_retries=2,
        response_timeout_factor=3.0,
    )

    schedule = random_fault_schedule(
        np.random.default_rng(schedule_seed),
        horizon_ms=4000.0 * SCALE,
        replicas=REPLICAS,
    )
    stack.transport.schedule = schedule
    driver = stack.make_driver()
    driver.apply(schedule)

    loads = [
        _closed_loop(stack, "c-1", 170 * SCALE, think_ms=5.0),
        _closed_loop(stack, "c-2", 170 * SCALE, think_ms=5.0, first_arg=100_000),
        _closed_loop(stack, "c-3", 160 * SCALE, think_ms=5.0, first_arg=200_000),
    ]
    stack.sim.run()
    assert all(not load.alive for load in loads), f"load stuck {tag}"

    # Every fault family actually fired.  Whether a drawn window catches
    # traffic depends on the seeds, so the family coverage assertions are
    # pinned to the historic combination only.
    if (seed, fault_seed, schedule_seed) == SEED_MATRIX[0]:
        assert stack.transport.injected_drops > 0, tag
        assert stack.transport.injected_delays > 0, tag
        assert stack.transport.injected_duplicates > 0, tag
        assert driver.crashes_applied >= 1, tag
        assert driver.restarts_applied >= 1, tag
        assert driver.leaves_applied + driver.rejoins_applied >= 1, tag

    report = stack.auditor.assert_clean()
    assert report.submitted == 500 * SCALE, tag
    assert report.completed == 500 * SCALE, tag
    assert report.replies > 0, tag  # useful work happened despite faults
    # Zero leaked entries, spelled out for the acceptance criterion:
    for client in stack.clients.values():
        assert client._pending == {}, f"pending leak in {client.host} {tag}"
        assert client._probes_in_flight == {}, f"probe leak in {client.host} {tag}"
    assert stack.clients["c-3"]._aliases == {}, f"alias leak {tag}"
    assert stack.clients["c-3"]._copies == {}, f"copy leak {tag}"


def test_same_seed_same_outcome():
    # The harness is deterministic end to end: identical seeds must give
    # identical reply/timeout splits (a prerequisite for debugging any
    # future auditor failure).
    def run_once():
        stack = FaultStack(seed=5, fault_seed=21)
        for host in REPLICAS[:3]:
            stack.add_server(host, service_time=Constant(8.0))
        stack.add_client("c-1", deadline_ms=80.0, response_timeout_factor=3.0)
        schedule = random_fault_schedule(
            np.random.default_rng(13), horizon_ms=600.0, replicas=REPLICAS[:3]
        )
        stack.transport.schedule = schedule
        driver = stack.make_driver()
        driver.apply(schedule)
        _closed_loop(stack, "c-1", 40, think_ms=4.0)
        stack.sim.run()
        report = stack.auditor.assert_clean()
        return report.replies, report.timeouts, stack.transport.injected_drops
    assert run_once() == run_once()
