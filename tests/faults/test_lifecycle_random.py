"""The ISSUE's acceptance test: a randomized fault schedule over 500
requests must drain to a clean lifecycle audit.

Three closed-loop clients (two timing-fault handlers, one retransmitting
strawman) fire 500 requests at five replicas while the schedule injects
message drops, delay spikes, duplicated/late replies, crash-mid-service
with restart, and view churn.  Afterwards the LifecycleAuditor must find
every request completed exactly once and zero leaked ``_pending`` /
``_aliases`` / ``_probes_in_flight`` entries anywhere.
"""

import numpy as np

from repro.faultinject import random_fault_schedule
from repro.gateway.handlers.retransmit import RetransmittingClientHandler
from repro.sim.random import Constant

from .conftest import FaultStack

REPLICAS = [f"s-{i + 1}" for i in range(5)]


def _closed_loop(stack, host, count, think_ms, first_arg=0):
    """Drive ``count`` sequential requests with a short think time."""

    def run():
        for i in range(count):
            yield stack.invoke(host, first_arg + i)
            yield stack.sim.timeout(think_ms)

    return stack.sim.spawn(run(), name=f"load.{host}")


def test_randomized_fault_schedule_drains_clean():
    stack = FaultStack(seed=3, fault_seed=11)
    for host in REPLICAS:
        stack.add_server(host, service_time=Constant(8.0))
    stack.add_client("c-1", deadline_ms=100.0, response_timeout_factor=3.0)
    stack.add_client("c-2", deadline_ms=60.0, response_timeout_factor=3.0)
    stack.add_client(
        "c-3",
        deadline_ms=100.0,
        handler_cls=RetransmittingClientHandler,
        retry_timeout_ms=25.0,
        max_retries=2,
        response_timeout_factor=3.0,
    )

    schedule = random_fault_schedule(
        np.random.default_rng(7), horizon_ms=4000.0, replicas=REPLICAS
    )
    stack.transport.schedule = schedule
    driver = stack.make_driver()
    driver.apply(schedule)

    loads = [
        _closed_loop(stack, "c-1", 170, think_ms=5.0),
        _closed_loop(stack, "c-2", 170, think_ms=5.0, first_arg=1000),
        _closed_loop(stack, "c-3", 160, think_ms=5.0, first_arg=2000),
    ]
    stack.sim.run()
    assert all(not load.alive for load in loads)

    # Every fault family actually fired.
    assert stack.transport.injected_drops > 0
    assert stack.transport.injected_delays > 0
    assert stack.transport.injected_duplicates > 0
    assert driver.crashes_applied >= 1
    assert driver.restarts_applied >= 1
    assert driver.leaves_applied + driver.rejoins_applied >= 1

    report = stack.auditor.assert_clean()
    assert report.submitted == 500
    assert report.completed == 500
    assert report.replies > 0  # the system did useful work despite faults
    # Zero leaked entries, spelled out for the acceptance criterion:
    for client in stack.clients.values():
        assert client._pending == {}
        assert client._probes_in_flight == {}
    assert stack.clients["c-3"]._aliases == {}
    assert stack.clients["c-3"]._copies == {}


def test_same_seed_same_outcome():
    # The harness is deterministic end to end: identical seeds must give
    # identical reply/timeout splits (a prerequisite for debugging any
    # future auditor failure).
    def run_once():
        stack = FaultStack(seed=5, fault_seed=21)
        for host in REPLICAS[:3]:
            stack.add_server(host, service_time=Constant(8.0))
        stack.add_client("c-1", deadline_ms=80.0, response_timeout_factor=3.0)
        schedule = random_fault_schedule(
            np.random.default_rng(13), horizon_ms=600.0, replicas=REPLICAS[:3]
        )
        stack.transport.schedule = schedule
        driver = stack.make_driver()
        driver.apply(schedule)
        _closed_loop(stack, "c-1", 40, think_ms=4.0)
        stack.sim.run()
        report = stack.auditor.assert_clean()
        return report.replies, report.timeouts, stack.transport.injected_drops

    assert run_once() == run_once()
