"""Crash-mid-service and restart race coverage for the server handler."""

import pytest

from repro.faultinject import CrashRestartFault
from repro.sim.random import Constant

from .conftest import FaultStack


def _replies(server) -> int:
    return server.metrics.counter("server.replies", labels={"replica": server.host})


def test_crash_mid_service_loses_reply_exactly_once():
    stack = FaultStack()
    stack.add_server("s-1", service_time=Constant(10.0))
    stack.add_client("c-1", deadline_ms=100.0, response_timeout_factor=3.0)
    driver = stack.make_driver()
    event = stack.invoke("c-1", 0)
    # The request is in service from t=1 to t=11; crash in the middle.
    stack.sim.call_at(5.0, lambda: driver.crash_now("s-1"))
    outcomes = []
    event.add_callback(lambda e: outcomes.append(e.value))
    stack.sim.run()
    assert len(outcomes) == 1
    assert outcomes[0].timed_out
    assert _replies(stack.servers["s-1"]) == 0
    stack.auditor.assert_clean()


def test_restart_services_new_requests_exactly_once():
    stack = FaultStack()
    server = stack.add_server("s-1", service_time=Constant(10.0))
    stack.add_client("c-1", deadline_ms=100.0, response_timeout_factor=3.0)
    driver = stack.make_driver()
    driver.apply_crash(CrashRestartFault("s-1", crash_at_ms=5.0, restart_at_ms=50.0))
    first = stack.invoke("c-1", 0)
    later = []
    stack.sim.call_at(400.0, lambda: later.append(stack.invoke("c-1", 1)))
    stack.sim.run()
    assert first.value.timed_out
    second = later[0].value
    assert not second.timed_out
    assert second.replica == "s-1"
    assert _replies(server) == 1  # new incarnation replied exactly once
    assert driver.crashes_applied == 1
    assert driver.restarts_applied == 1
    report = stack.auditor.assert_clean()
    assert report.replies == 1
    assert report.timeouts == 1


def test_old_service_loop_cannot_drain_the_new_queue():
    stack = FaultStack()
    server = stack.add_server("s-1", service_time=Constant(50.0))
    stack.add_client("c-1", deadline_ms=100.0, response_timeout_factor=3.0)
    driver = stack.make_driver()
    first = stack.invoke("c-1", 1)
    second = stack.invoke("c-1", 2)  # queued behind the first
    old_process = server._process
    driver.apply_crash(CrashRestartFault("s-1", crash_at_ms=20.0, restart_at_ms=60.0))
    later = []
    stack.sim.call_at(400.0, lambda: later.append(stack.invoke("c-1", 3)))
    stack.sim.run()
    # The crashed incarnation's loop is dead and was replaced.
    assert server._process is not old_process
    assert not old_process.alive
    # Both pre-crash requests died with the queue; only the post-restart
    # request was serviced, exactly once, by the new loop.
    assert first.value.timed_out
    assert second.value.timed_out
    assert not later[0].value.timed_out
    assert _replies(server) == 1
    assert server.queue_length == 0
    stack.auditor.assert_clean()


def test_restart_replaces_the_wakeup_event():
    stack = FaultStack()
    server = stack.add_server("s-1", service_time=Constant(10.0))
    stack.add_client("c-1", deadline_ms=100.0, response_timeout_factor=3.0)
    driver = stack.make_driver()
    stack.sim.run(until=5.0)  # let the idle loop block on its wakeup
    old_wakeup = server._wakeup
    assert old_wakeup is not None
    # Crash and restart before the failure detector even notices (the
    # member never leaves the view): the fresh loop must wait on a fresh
    # event, not the interrupted incarnation's.
    driver.crash_now("s-1")
    driver.restart_now("s-1")
    stack.sim.run(until=10.0)
    assert server._wakeup is not None
    assert server._wakeup is not old_wakeup
    event = stack.invoke("c-1", 0)
    stack.sim.run()
    assert not event.value.timed_out
    stack.auditor.assert_clean()


def test_driver_crash_restart_churn_are_idempotent():
    stack = FaultStack()
    stack.add_server("s-1")
    driver = stack.make_driver()
    driver.crash_now("s-1")
    driver.crash_now("s-1")  # already down: no-op
    assert driver.crashes_applied == 1
    driver.restart_now("s-1")
    driver.restart_now("s-1")  # already up: no-op
    assert driver.restarts_applied == 1
    driver.leave_now("s-1")
    driver.leave_now("s-1")  # already out of the view: no-op
    assert driver.leaves_applied == 1
    driver.rejoin_now("s-1")
    driver.rejoin_now("s-1")  # already back: no-op
    assert driver.rejoins_applied == 1


def test_driver_rejects_unknown_host():
    stack = FaultStack()
    stack.add_server("s-1")
    driver = stack.make_driver()
    with pytest.raises(KeyError):
        driver.apply_crash(CrashRestartFault("ghost", crash_at_ms=1.0))


def test_churned_member_is_not_resurrected_by_stale_pushes():
    stack = FaultStack()
    stack.add_server("s-1", service_time=Constant(10.0))
    stack.add_server("s-2", service_time=Constant(10.0))
    client = stack.add_client("c-1", deadline_ms=100.0)
    driver = stack.make_driver()
    event = stack.invoke("c-1", 0)
    # s-2 leaves the view while its reply (and perf push) is still being
    # produced: the late data must not re-create its repository record.
    stack.sim.call_at(3.0, lambda: driver.leave_now("s-2"))
    stack.sim.run()
    assert not event.value.timed_out
    assert "s-2" not in client.repository
    assert client._members == ["s-1"]
    stack.auditor.assert_clean()
