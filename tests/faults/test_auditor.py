"""Unit tests for the drain-time LifecycleAuditor."""

import pytest

from repro.faultinject import (
    LifecycleViolation,
    SubmissionRecord,
)
from repro.gateway.handlers.timing_fault import ReplyOutcome

from .conftest import FaultStack


def _outcome(timed_out, replica):
    return ReplyOutcome(
        value=None,
        response_time_ms=5.0,
        timely=not timed_out,
        timed_out=timed_out,
        replica=replica,
        redundancy=1,
        request_id=1,
    )


def test_clean_run_audits_clean():
    stack = FaultStack()
    stack.add_server("s-1")
    stack.add_server("s-2")
    stack.add_client("c-1")
    for i in range(3):
        stack.invoke("c-1", i)
    stack.sim.run()
    report = stack.auditor.assert_clean()
    assert report.submitted == 3
    assert report.replies == 3
    assert report.timeouts == 0
    assert report.completed == 3
    assert "clean" in str(report)


def test_timeout_counts_as_completion():
    stack = FaultStack()
    stack.add_server("s-1")
    client = stack.add_client("c-1", response_timeout_factor=2.0)
    driver = stack.make_driver()
    driver.crash_now("s-1")  # down before the request hits the wire
    event = stack.invoke("c-1")
    stack.sim.run()
    assert event.value.timed_out
    report = stack.auditor.assert_clean()
    assert report.replies == 0
    assert report.timeouts == 1
    assert client._pending == {}


def test_leaked_pending_entry_is_reported():
    stack = FaultStack()
    stack.add_server("s-1")
    client = stack.add_client("c-1")
    stack.invoke("c-1")
    stack.sim.run()
    client._pending[999] = None  # seed a leak behind the handler's back
    report = stack.auditor.audit()
    assert not report.clean
    assert any("pending" in v and "999" in v for v in report.violations)
    with pytest.raises(LifecycleViolation):
        stack.auditor.assert_clean()


def test_leaked_probe_entry_is_reported():
    stack = FaultStack()
    stack.add_server("s-1")
    client = stack.add_client("c-1")
    stack.invoke("c-1")
    stack.sim.run()
    client._probes_in_flight[123] = 0.0
    report = stack.auditor.audit()
    assert any("probes_in_flight" in v for v in report.violations)


def test_resurrected_replica_is_reported():
    stack = FaultStack()
    stack.add_server("s-1")
    client = stack.add_client("c-1")
    stack.invoke("c-1")
    stack.sim.run()
    # The repository still models s-1 but the view no longer has it.
    client._members = []
    report = stack.auditor.audit()
    assert any("resurrected_replicas" in v for v in report.violations)


def test_unfinished_request_is_a_leak():
    stack = FaultStack()
    stack.add_server("s-1")
    stack.add_client("c-1")
    stack.invoke("c-1")  # never run the simulation: the event cannot fire
    report = stack.auditor.audit()
    assert any("never completed" in v for v in report.violations)


def test_double_completion_is_a_violation():
    stack = FaultStack()
    stack.add_server("s-1")
    stack.add_client("c-1")
    stack.invoke("c-1")
    stack.sim.run()
    record = stack.auditor.records[0]
    record.outcomes.append(record.outcomes[0])
    report = stack.auditor.audit()
    assert any("completed 2 times" in v for v in report.violations)


def test_reply_xor_timeout_violations():
    stack = FaultStack()
    for timed_out, replica in ((True, "r1"), (False, None)):
        event = stack.sim.event()
        outcome = _outcome(timed_out, replica)
        stack.auditor.records.append(
            SubmissionRecord(
                client="c",
                method="process",
                submitted_at_ms=0.0,
                event=event,
                outcomes=[outcome],
            )
        )
        event.succeed(outcome)
    stack.sim.run()
    report = stack.auditor.audit()
    assert any("reply AND timeout" in v for v in report.violations)
    assert any("neither reply nor timeout" in v for v in report.violations)


def test_watch_client_is_idempotent():
    stack = FaultStack()
    stack.add_server("s-1")
    client = stack.add_client("c-1")
    stack.auditor.watch_client(client)  # second watch must not double-wrap
    stack.invoke("c-1")
    stack.sim.run()
    assert len(stack.auditor.records) == 1
    stack.auditor.watch_server(stack.servers["s-1"])  # also idempotent
    stack.auditor.assert_clean()


def test_experiment_harness_runs_the_audit():
    # The §6 harness audits by default: a short two-client run must pass.
    from repro.experiments.harness import run_two_client_experiment

    result = run_two_client_experiment(
        deadline_ms=200.0,
        min_probability=0.0,
        num_requests=3,
        num_replicas=3,
    )
    assert result.client1.requests == 3
    assert result.client2.requests == 3
