"""The chaos-campaign engine (ISSUE 9 tentpole, experiment A17).

Four contracts:

* **seed discipline** — every scenario (schedule, deployment, wire
  draws) is a pure function of ``(base_seed, index)``, so outcomes are
  deterministic and the campaign digest is bit-identical for any worker
  count;
* **auditing** — a campaign over composed randomized schedules checks
  lifecycle invariants plus QoS floors, and failures carry a one-line
  replay recipe;
* **minimization** — ``shrink_schedule`` is classic ddmin: the result
  still fails and is 1-minimal;
* **bug capture** — a deliberately seeded lifecycle bug (a client that
  leaks its pending record on timeout) is caught by the campaign and
  shrunk to a handful of fault windows.
"""

from typing import Optional

import pytest

from repro.faultinject.campaign import (
    CampaignConfig,
    draw_composed_schedule,
    flatten_schedule,
    rebuild_schedule,
    run_campaign,
    run_scenario,
    schedule_digest,
    shrink_schedule,
)
from repro.faultinject.schedule import (
    DelayRule,
    DropRule,
    FaultSchedule,
    PartitionFault,
)
from repro.experiments import chaos_campaign
from repro.gateway.handlers.timing_fault import TimingFaultClientHandler

#: Small-but-composed campaign used across the tests (seconds, not
#: minutes; the full 200-schedule campaign is experiment A17).
SMALL = CampaignConfig(schedules=8, base_seed=0)

#: SMALL with the opt-in clock family enabled.  The default stays 0 so
#: historic campaign digests are untouched; composing clock windows into
#: the mix is ISSUE 10's chaos acceptance surface.
CLOCKED = CampaignConfig(schedules=8, base_seed=0, max_clock_windows=2)


class LeakyTimeoutClient(TimingFaultClientHandler):
    """Deliberately buggy client: timeout expiry leaks the request record.

    ``_expire`` pops the pending record and completes it; this subclass
    puts the record back afterwards, so any request that *times out* (a
    replica addressed under a partition, crash or drop window never
    replies) stays in ``_pending`` forever.  Clean scenarios never
    trigger it — the record is already forgotten by reply time — which
    is exactly what makes it a good seeded bug: only the campaign's
    fault schedules expose it, and only via the auditor's leak invariant.
    """

    def _expire(self, msg_id: int) -> None:
        pending = self._pending.get(msg_id)
        super()._expire(msg_id)
        if pending is not None and msg_id not in self._pending:
            self._pending[msg_id] = pending


class ClockTrustingClient(TimingFaultClientHandler):
    """Deliberately buggy client: it trusts replica send timestamps.

    Every reply's ``sent_at_ms`` — an absolute reading of the *replica's*
    clock — ratchets a freshness watermark, and a request record is only
    forgotten once the local clock has passed that watermark ("a fresher
    reply might still be in flight").  Pristine replicas always stamp in
    the past, so clean scenarios never trigger it; one forward-stepped or
    positively-skewed replica pushes the watermark ahead of the local
    clock and every record dropped in that interval leaks — the
    cross-clock trust bug the clock plane's auditor invariants catch.
    """

    _watermark_ms = 0.0

    def _admit_perf_sample(self, perf):
        self._watermark_ms = max(self._watermark_ms, perf.sent_at_ms)
        return super()._admit_perf_sample(perf)

    def _forget(self, msg_id):
        if self.clock.now < self._watermark_ms:
            return None  # "a fresher reply is still in flight" — the bug
        return super()._forget(msg_id)


class TestCampaignConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="schedules"):
            CampaignConfig(schedules=0)
        with pytest.raises(ValueError, match="replicas"):
            CampaignConfig(replicas=1)
        with pytest.raises(ValueError, match="clients"):
            CampaignConfig(clients=0)
        with pytest.raises(ValueError, match="horizon_ms"):
            CampaignConfig(horizon_ms=0.0)

    def test_deployment_host_names(self):
        cfg = CampaignConfig(replicas=3, clients=2)
        assert cfg.replica_hosts == ("s-1", "s-2", "s-3")
        assert cfg.client_hosts == ("client-1", "client-2")

    def test_scenario_seeds_differ_per_index_and_purpose(self):
        cfg = SMALL
        seeds = {
            cfg.scenario_seed(0), cfg.scenario_seed(1),
            cfg.wire_seed(0), cfg.wire_seed(1),
            cfg.schedule_seed(0), cfg.schedule_seed(1),
        }
        assert len(seeds) == 6

    def test_replay_line_is_the_cli_recipe(self):
        line = CampaignConfig(base_seed=9).replay_line(4, "abcdef0123456789")
        assert line == (
            "python -m repro.experiments.chaos_campaign "
            "--replay 9:4:abcdef012345"
        )

    def test_replay_line_carries_the_clock_knob(self):
        # A non-default schedule knob must ride along in the recipe or
        # the replay redraws a different schedule and dies on the digest
        # check.  The default-0 line above stays byte-identical.
        line = CLOCKED.replay_line(4, "abcdef0123456789")
        assert line == (
            "python -m repro.experiments.chaos_campaign "
            "--replay 0:4:abcdef012345 --clock-windows 2"
        )


class TestComposedSchedules:
    def test_drawing_is_deterministic(self):
        assert draw_composed_schedule(SMALL, 3) == draw_composed_schedule(
            SMALL, 3
        )

    def test_indices_draw_distinct_schedules(self):
        digests = {
            schedule_digest(draw_composed_schedule(SMALL, i))
            for i in range(8)
        }
        assert len(digests) == 8

    @pytest.mark.parametrize("index", range(8))
    def test_family_counts_respect_the_config_bounds(self, index):
        cfg = SMALL
        schedule = draw_composed_schedule(cfg, index)
        assert len(schedule.drops) <= cfg.max_drop_windows
        assert len(schedule.delays) <= cfg.max_delay_windows
        assert len(schedule.duplicates) <= cfg.max_duplicate_windows
        assert len(schedule.crashes) <= cfg.max_crash_restarts
        assert len(schedule.churn) <= cfg.max_churn_events
        assert len(schedule.degradations) <= cfg.max_degradations
        assert len(schedule.overloads) <= cfg.max_overload_windows
        assert len(schedule.partitions) <= cfg.max_partition_windows
        assert len(schedule.clocks) <= cfg.max_clock_windows

    def test_some_scenario_draws_a_partition(self):
        # The composed mix must actually exercise the new family.
        assert any(
            draw_composed_schedule(SMALL, i).partitions for i in range(8)
        )

    def test_some_scenario_draws_a_clock_fault(self):
        assert any(
            draw_composed_schedule(CLOCKED, i).clocks for i in range(8)
        )

    def test_clock_family_is_opt_in_and_perturbs_nothing(self):
        # max_clock_windows defaults to 0 (schedule digests are frozen
        # history), and enabling it must leave every other family of the
        # same scenario byte-identical — the clock count is the LAST mix
        # draw and the windows come from their own named substreams.
        for index in range(4):
            plain = draw_composed_schedule(SMALL, index)
            clocked = draw_composed_schedule(CLOCKED, index)
            assert plain.clocks == ()
            for family in (
                "drops",
                "delays",
                "duplicates",
                "crashes",
                "churn",
                "degradations",
                "overloads",
                "partitions",
            ):
                assert getattr(clocked, family) == getattr(plain, family)

    def test_flatten_rebuild_round_trips_clock_windows(self):
        schedule = next(
            draw_composed_schedule(CLOCKED, i)
            for i in range(8)
            if draw_composed_schedule(CLOCKED, i).clocks
        )
        assert rebuild_schedule(flatten_schedule(schedule)) == schedule

    @pytest.mark.parametrize("index", range(4))
    def test_flatten_rebuild_round_trip(self, index):
        schedule = draw_composed_schedule(SMALL, index)
        assert rebuild_schedule(flatten_schedule(schedule)) == schedule


class TestScenarioRuns:
    def test_scenario_is_deterministic(self):
        assert run_scenario(SMALL, 5) == run_scenario(SMALL, 5)

    def test_outcome_carries_the_replay_recipe(self):
        outcome = run_scenario(SMALL, 2)
        assert outcome.replay.startswith(
            "python -m repro.experiments.chaos_campaign --replay 0:2:"
        )
        assert outcome.digest.startswith(outcome.replay.rsplit(":", 1)[-1])

    def test_schedule_override_is_the_shrinker_entry_point(self):
        outcome = run_scenario(SMALL, 0, schedule=FaultSchedule())
        assert outcome.digest == schedule_digest(FaultSchedule())
        assert not outcome.failed
        assert outcome.replies == outcome.submitted


class TestCampaign:
    def test_small_campaign_is_clean_and_digest_stable(self):
        one = run_campaign(SMALL, workers=1)
        assert one.clean
        assert len(one.outcomes) == SMALL.schedules
        assert [o.index for o in one.outcomes] == list(range(SMALL.schedules))
        again = run_campaign(SMALL, workers=1)
        assert again.digest == one.digest

    def test_digest_is_worker_count_invariant(self):
        # The acceptance contract: 1-vs-N worker bit-identical merge.
        serial = run_campaign(SMALL, workers=1)
        fanned = run_campaign(SMALL, workers=2)
        assert fanned.workers == 2
        assert fanned.digest == serial.digest
        assert fanned.outcomes == serial.outcomes

    def test_clocked_campaign_is_clean_and_worker_count_invariant(self):
        # ISSUE 10 acceptance: with clock windows composed into the mix
        # the campaign still merges 1-vs-N bit-identically, and the
        # skew-tolerant stack rides the clock faults without tripping a
        # single invariant or QoS floor.
        serial = run_campaign(CLOCKED, workers=1)
        assert serial.clean
        fanned = run_campaign(CLOCKED, workers=2)
        assert fanned.digest == serial.digest
        assert fanned.outcomes == serial.outcomes


def _failing_predicate(wanted):
    """A predicate failing iff every schedule in ``wanted`` is present."""

    def fails(candidate: FaultSchedule) -> bool:
        present = set(flatten_schedule(candidate))
        return wanted <= present

    return fails


class TestShrinker:
    DROP = DropRule(start_ms=10.0, end_ms=20.0)
    DELAY = DelayRule(start_ms=30.0, end_ms=40.0, extra_ms=5.0)
    CUT = PartitionFault(side=("s-1",), start_ms=50.0, end_ms=60.0)

    def _noise(self) -> FaultSchedule:
        return FaultSchedule(
            drops=(
                self.DROP,
                DropRule(start_ms=100.0, end_ms=110.0),
                DropRule(start_ms=200.0, end_ms=210.0),
            ),
            delays=(self.DELAY,),
            partitions=(
                self.CUT,
                PartitionFault(side=("s-2",), start_ms=70.0, end_ms=80.0),
            ),
        )

    def test_refuses_a_passing_schedule(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_schedule(self._noise(), lambda candidate: False)

    def test_shrinks_to_the_exact_failure_inducing_subset(self):
        wanted = {("drops", self.DROP), ("partitions", self.CUT)}
        minimal = shrink_schedule(self._noise(), _failing_predicate(wanted))
        assert set(flatten_schedule(minimal)) == wanted

    def test_result_is_one_minimal(self):
        wanted = {
            ("drops", self.DROP),
            ("delays", self.DELAY),
            ("partitions", self.CUT),
        }
        fails = _failing_predicate(wanted)
        minimal = shrink_schedule(self._noise(), fails)
        items = flatten_schedule(minimal)
        assert fails(minimal)
        for leave_out in range(len(items)):
            thinner = items[:leave_out] + items[leave_out + 1:]
            assert not fails(rebuild_schedule(thinner))


def _first_leaky_failure(cfg: CampaignConfig) -> Optional[int]:
    """Index of the first scenario the seeded bug fails, else ``None``."""
    for index in range(cfg.schedules):
        outcome = run_scenario(cfg, index, handler_cls=LeakyTimeoutClient)
        if any("leaked pending" in v for v in outcome.violations):
            return index
    return None


class TestSeededBugCapture:
    """End-to-end acceptance: the campaign catches and shrinks a real bug."""

    def test_campaign_catches_the_leak_and_shrinks_it(self):
        cfg = SMALL
        index = _first_leaky_failure(cfg)
        assert index is not None, "no scenario tripped the seeded bug"
        outcome = run_scenario(cfg, index, handler_cls=LeakyTimeoutClient)
        assert outcome.failed
        assert "--replay" in outcome.replay
        # The same schedules are clean under the correct client: the
        # failures are the bug's, not the campaign's.
        assert not run_scenario(cfg, index).failed

        def fails(candidate: FaultSchedule) -> bool:
            rerun = run_scenario(
                cfg, index, handler_cls=LeakyTimeoutClient, schedule=candidate
            )
            return any("leaked pending" in v for v in rerun.violations)

        drawn = draw_composed_schedule(cfg, index)
        minimal = shrink_schedule(drawn, fails)
        remaining = flatten_schedule(minimal)
        assert len(remaining) <= 3
        assert len(remaining) < len(flatten_schedule(drawn))
        assert fails(minimal)


def _first_clock_trust_failure(cfg: CampaignConfig) -> Optional[int]:
    """Index of the first scenario the clock-trust bug fails, else ``None``."""
    for index in range(cfg.schedules):
        outcome = run_scenario(cfg, index, handler_cls=ClockTrustingClient)
        if any("leaked pending" in v for v in outcome.violations):
            return index
    return None


class TestSeededClockBugCapture:
    """ISSUE 10 acceptance: a clock-trust bug is caught and ddmin-shrunk."""

    def test_campaign_catches_the_clock_bug_and_shrinks_it(self):
        cfg = CLOCKED
        index = _first_clock_trust_failure(cfg)
        assert index is not None, "no scenario tripped the seeded clock bug"
        outcome = run_scenario(cfg, index, handler_cls=ClockTrustingClient)
        assert outcome.failed
        assert "--replay" in outcome.replay
        assert "--clock-windows 2" in outcome.replay
        # The same schedule is clean under the correct client: the
        # failure is the bug's, not the campaign's.
        assert not run_scenario(cfg, index).failed

        def fails(candidate: FaultSchedule) -> bool:
            rerun = run_scenario(
                cfg,
                index,
                handler_cls=ClockTrustingClient,
                schedule=candidate,
            )
            return any("leaked pending" in v for v in rerun.violations)

        drawn = draw_composed_schedule(cfg, index)
        minimal = shrink_schedule(drawn, fails)
        remaining = flatten_schedule(minimal)
        assert len(remaining) <= 3
        assert fails(minimal)
        # The 1-minimal reproducer keeps a clock window: the trigger is
        # the clock fault, not the ambient network faults around it.
        assert minimal.clocks


class TestCli:
    def test_replay_of_a_clean_scenario_exits_zero(self, capsys):
        assert chaos_campaign.main(["--replay", "0:3"]) == 0
        out = capsys.readouterr().out
        assert "schedule #3" in out
        assert "nothing to shrink" in out

    def test_replay_digest_mismatch_exits_nonzero(self, capsys):
        assert chaos_campaign.main(["--replay", "0:3:000000000000"]) == 1
        assert "digest mismatch" in capsys.readouterr().out

    def test_campaign_cli_writes_the_json_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "campaign.json"
        code = chaos_campaign.main(
            ["--schedules", "4", "--json", str(artifact)]
        )
        assert code == 0
        import json

        payload = json.loads(artifact.read_text())
        assert len(payload["schedules"]) == 4
        assert payload["digest"]
        assert all(
            s["replay"].startswith("python -m") for s in payload["schedules"]
        )
