"""The clock-fault plane: HostClock, ClockFault windows, and the driver.

Covers the three layers of ISSUE 10's clock plane:

* :class:`HostClock` — the pristine fast path (bit-identical kernel
  reads until the first manipulation), the piecewise-linear mapping
  under step/drift/freeze/jitter, and ``resync`` restoring pristineness;
* :class:`ClockFault` as pure data — validation per kind, the drift
  ``rate`` property, window activity;
* :class:`ClockDriver` — scheduled engage/resync transitions on live
  clocks, idempotence, overlap composition, and counters — plus the
  drain-time auditor invariants the plane feeds (no negative response
  times, no future-stamped repository records).
"""

import numpy as np
import pytest

from repro.faultinject import ClockDriver, ClockFault, FaultSchedule, SubmissionRecord
from repro.gateway.handlers.timing_fault import ReplyOutcome
from repro.sim.hostclock import ClockRegistry, HostClock
from repro.sim.kernel import Simulator

from .conftest import FaultStack


class TestHostClock:
    def test_pristine_reads_are_bit_identical_to_kernel(self):
        sim = Simulator()
        clock = HostClock(sim, host="h")
        sim.call_at(123.456789, lambda: None)
        sim.run()
        assert clock.now == sim.now  # exact, no float residue
        assert not clock.faulted

    def test_pristine_elapsed_is_the_kernel_interval_exactly(self):
        sim = Simulator()
        clock = HostClock(sim)
        assert clock.elapsed_since(10.0, 3.3) == 3.3

    def test_step_jumps_the_local_reading(self):
        sim = Simulator()
        clock = HostClock(sim)
        sim.call_at(100.0, lambda: clock.step(50.0))
        sim.run()
        assert clock.now == pytest.approx(150.0)
        assert clock.faulted

    def test_drift_scales_elapsed_time(self):
        sim = Simulator()
        clock = HostClock(sim)
        clock.set_rate(1.5)
        started = clock.now
        sim.call_at(100.0, lambda: None)
        sim.run()
        assert clock.now - started == pytest.approx(150.0)
        assert clock.elapsed_since(started, 100.0) == pytest.approx(150.0)

    def test_freeze_stops_and_unfreeze_resumes(self):
        sim = Simulator()
        clock = HostClock(sim)
        sim.call_at(10.0, clock.freeze)
        sim.call_at(30.0, lambda: None)
        sim.run()
        assert clock.now == pytest.approx(10.0)  # frozen at the freeze instant
        clock.unfreeze()
        sim.call_at(40.0, lambda: None)
        sim.run()
        # Resumes from the frozen reading: the 20ms pause is lost.
        assert clock.now == pytest.approx(20.0)

    def test_jitter_is_bounded_and_needs_an_rng(self):
        sim = Simulator()
        clock = HostClock(sim)
        clock.set_jitter(2.0, np.random.default_rng(0))
        sim.call_at(100.0, lambda: None)
        sim.run()
        readings = [clock.now for _ in range(50)]
        assert all(98.0 <= r <= 102.0 for r in readings)
        assert len(set(readings)) > 1  # per-read noise, not a constant

    def test_resync_restores_pristine_identity(self):
        sim = Simulator()
        clock = HostClock(sim)
        clock.step(500.0)
        clock.set_rate(2.0)
        clock.resync()
        sim.call_at(77.7, lambda: None)
        sim.run()
        assert clock.now == sim.now  # exact again
        assert not clock.faulted
        assert clock.elapsed_since(0.0, 77.7) == 77.7

    def test_rate_must_be_non_negative(self):
        with pytest.raises(ValueError):
            HostClock(Simulator()).set_rate(-0.1)

    def test_registry_returns_one_clock_per_host(self):
        registry = ClockRegistry(Simulator())
        assert registry.clock("a") is registry.clock("a")
        assert registry.clock("a") is not registry.clock("b")
        assert "a" in registry and len(registry) == 2
        assert set(registry.clocks()) == {"a", "b"}


class TestClockFaultValidation:
    def test_needs_a_host_and_an_ordered_window(self):
        with pytest.raises(ValueError):
            ClockFault(host="", start_ms=0.0, end_ms=10.0, kind="freeze")
        with pytest.raises(ValueError):
            ClockFault(host="h", start_ms=10.0, end_ms=10.0, kind="freeze")
        with pytest.raises(ValueError):
            ClockFault(host="h", start_ms=-1.0, end_ms=10.0, kind="freeze")

    def test_kind_is_a_closed_set(self):
        with pytest.raises(ValueError):
            ClockFault(host="h", start_ms=0.0, end_ms=10.0, kind="warp")

    @pytest.mark.parametrize(
        "kind,kwargs",
        [
            ("skew", {}),
            ("drift", {}),
            ("step", {}),
            ("jitter", {"jitter_ms": 0.0}),
        ],
    )
    def test_each_kind_needs_its_magnitude(self, kind, kwargs):
        with pytest.raises(ValueError):
            ClockFault(host="h", start_ms=0.0, end_ms=10.0, kind=kind, **kwargs)

    def test_drift_rate_property(self):
        fault = ClockFault(
            host="h", start_ms=0.0, end_ms=10.0, kind="drift", drift_ppm=500.0
        )
        assert fault.rate == pytest.approx(1.0005)

    def test_active_window(self):
        fault = ClockFault(
            host="h", start_ms=10.0, end_ms=20.0, kind="freeze"
        )
        assert not fault.active(9.9)
        assert fault.active(10.0)
        assert fault.active(19.9)
        assert not fault.active(20.0)


def _driver(sim, hosts=("h-1", "h-2")):
    registry = ClockRegistry(sim)
    clocks = {host: registry.clock(host) for host in hosts}
    return ClockDriver(sim, clocks), clocks


class TestClockDriver:
    def test_window_engages_then_resyncs(self):
        sim = Simulator()
        driver, clocks = _driver(sim)
        fault = ClockFault(
            host="h-1", start_ms=100.0, end_ms=200.0, kind="step",
            step_ms=50.0,
        )
        driver.apply(FaultSchedule(clocks=(fault,)))
        readings = {}
        sim.call_at(150.0, lambda: readings.update(mid=clocks["h-1"].now))
        sim.call_at(250.0, lambda: readings.update(after=clocks["h-1"].now))
        sim.run()
        assert readings["mid"] == pytest.approx(200.0)  # stepped +50
        assert readings["after"] == 250.0  # resynced, pristine again
        assert driver.engagements == 1
        assert driver.resyncs == 1

    def test_engage_is_idempotent(self):
        sim = Simulator()
        driver, clocks = _driver(sim)
        fault = ClockFault(
            host="h-1", start_ms=0.0, end_ms=10.0, kind="step", step_ms=5.0
        )
        driver.engage_now(fault)
        driver.engage_now(fault)
        assert driver.engagements == 1
        assert clocks["h-1"].now == pytest.approx(5.0)  # stepped once

    def test_unknown_host_is_ignored(self):
        sim = Simulator()
        driver, _clocks = _driver(sim)
        driver.apply_fault(
            ClockFault(host="elsewhere", start_ms=0.0, end_ms=10.0,
                       kind="freeze")
        )
        sim.run()
        assert driver.engagements == 0

    def test_overlap_reengages_the_survivor_after_resync(self):
        # drift [0, 300) overlapping freeze [100, 200): when the freeze
        # window ends the clock is resynced and the still-active drift
        # re-engages, so the clock keeps drifting until 300.
        sim = Simulator()
        driver, clocks = _driver(sim)
        drift = ClockFault(
            host="h-1", start_ms=0.0, end_ms=300.0, kind="drift",
            drift_ppm=100_000.0,  # 1.1x: visible over a 100ms span
        )
        freeze = ClockFault(
            host="h-1", start_ms=100.0, end_ms=200.0, kind="freeze"
        )
        driver.apply(FaultSchedule(clocks=(drift, freeze)))
        readings = {}
        sim.call_at(150.0, lambda: readings.update(frozen=clocks["h-1"].now))
        sim.call_at(250.0, lambda: readings.update(drifting=clocks["h-1"].now))
        sim.call_at(350.0, lambda: readings.update(after=clocks["h-1"].now))
        sim.run()
        frozen = readings["frozen"]
        assert clocks["h-1"].faulted is False  # drained run ends pristine
        # While frozen the reading holds; after the freeze resync the
        # survivor re-engages from kernel time, so the clock drifts
        # +10% over [200, 250] and is pristine after 300.
        assert frozen == pytest.approx(110.0)  # drifted to 110 by t=100
        assert readings["drifting"] == pytest.approx(255.0)
        assert readings["after"] == 350.0
        assert driver.resyncs == 2


class TestAuditorClockInvariants:
    def test_negative_response_time_is_a_violation(self):
        stack = FaultStack()
        event = stack.sim.event()
        outcome = ReplyOutcome(
            value=None,
            response_time_ms=-4.2,  # a raw cross-clock subtraction
            timely=True,
            timed_out=False,
            replica="r1",
            redundancy=1,
            request_id=1,
        )
        stack.auditor.records.append(
            SubmissionRecord(
                client="c",
                method="process",
                submitted_at_ms=0.0,
                event=event,
                outcomes=[outcome],
            )
        )
        event.succeed(outcome)
        stack.sim.run()
        report = stack.auditor.audit()
        assert any("negative response time" in v for v in report.violations)

    def test_future_stamped_record_is_a_leak(self):
        stack = FaultStack()
        stack.add_server("s-1")
        client = stack.add_client("c-1")
        stack.invoke("c-1")
        stack.sim.run()
        # Stamp s-1's record beyond the client clock's current reading —
        # what admitting a replica's absolute timestamp would do.
        client.repository.record_performance(
            "s-1", 1.0, 0.0, 0, client.clock.now + 10_000.0
        )
        leaks = client.lifecycle_leaks()
        assert leaks["future_stamped_records"] == ["s-1"]
        report = stack.auditor.audit()
        assert any("future_stamped_records" in v for v in report.violations)
