"""ISSUE 9 acceptance scenario: a 30 s asymmetric cut of the best replica.

The paper's pitch is that dynamic selection keeps meeting deadlines when
individual replicas go bad.  Here the *best* replica (lowest service
time) is one-way partitioned for thirty simulated seconds — its requests
arrive, its replies vanish, and the LAN still reports it up, so only the
health subsystem's omission streak (``unreachable_after``) can notice.
The contract:

* the connected majority keeps serving — the in-window timely fraction
  stays at or above 0.95;
* the partitioned replica is re-admitted after the heal and serves again;
* the drain-time audit is clean: no leaked requests, no resurrections,
  and no acks from the dark side of the cut.
"""

from repro.faultinject import FaultSchedule, PartitionDriver, PartitionFault
from repro.health import HealthConfig
from repro.sim.random import Constant

from .conftest import SERVICE, FaultStack

CUT_START_MS = 2_000.0
CUT_END_MS = 32_000.0
HORIZON_MS = 40_000.0


def _build():
    schedule = FaultSchedule(
        partitions=(
            PartitionFault(
                side=("s-1",),
                start_ms=CUT_START_MS,
                end_ms=CUT_END_MS,
                mode="outbound",
            ),
        ),
    )
    stack = FaultStack(schedule=schedule)
    stack.add_server("s-1", service_time=Constant(4.0))  # the best replica
    stack.add_server("s-2", service_time=Constant(10.0))
    stack.add_server("s-3", service_time=Constant(10.0))
    stack.add_client(
        "client-1",
        deadline_ms=100.0,
        response_timeout_factor=3.0,
        probe_interval_ms=50.0,
        health_config=HealthConfig(
            suspect_after=2,
            quarantine_after=1,
            recover_after=2,
            probation_after=2,
            backoff_initial_ms=200.0,
            backoff_factor=2.0,
            backoff_max_ms=1600.0,
            unreachable_after=3,
        ),
    )
    driver = PartitionDriver(
        sim=stack.sim,
        lan=stack.lan,
        group_comm=stack.group_comm,
        service=SERVICE,
        replicas=("s-1", "s-2", "s-3"),
    )
    driver.apply(schedule)
    return stack, driver


def _closed_loop(stack, outcomes, think_ms=4.0, until_ms=HORIZON_MS):
    for i in range(100_000):
        t0 = stack.sim.now
        if t0 >= until_ms:
            return
        event = stack.invoke("client-1", i)
        yield event
        if event.ok:
            outcomes.append((t0, event.value))
        yield stack.sim.timeout(think_ms)


def _replies(stack, host):
    return stack.servers[host].metrics.counter(
        "server.replies", labels={"replica": host}
    )


def test_majority_rides_out_a_30s_cut_of_the_best_replica():
    stack, driver = _build()
    outcomes = []
    stack.sim.spawn(_closed_loop(stack, outcomes), name="load")
    stack.sim.run(until=HORIZON_MS)
    served_mid_cut = _replies(stack, "s-2") + _replies(stack, "s-3")
    stack.sim.run(until=HORIZON_MS + 10_000.0)

    # The one-way cut really was one-way: the dark replica kept receiving
    # (and serving) requests whose replies died on the wire.
    assert driver.cuts_applied == 1
    assert driver.heals_applied == 1
    assert stack.transport.injected_partition_drops > 0
    assert served_mid_cut > 0

    # QoS floor: the connected majority keeps the paper's promise for
    # requests submitted while the cut is active.
    in_window = [
        value
        for t0, value in outcomes
        if CUT_START_MS <= t0 < CUT_END_MS and not value.shed
    ]
    assert len(in_window) > 1_000  # the loop really ran through the cut
    timely_fraction = sum(v.timely for v in in_window) / len(in_window)
    assert timely_fraction >= 0.95

    # Post-heal: the best replica is re-admitted and serves fresh load.
    healed_baseline = _replies(stack, "s-1")
    late_outcomes = []
    stack.sim.spawn(
        _closed_loop(
            stack,
            late_outcomes,
            think_ms=1.0,
            until_ms=HORIZON_MS + 11_000.0,
        ),
        name="late-load",
    )
    stack.sim.run(until=HORIZON_MS + 12_000.0)

    # Drain-time audit: every request completed exactly once, nothing
    # leaked, and no reply was acknowledged from the dark side.
    for client in stack.clients.values():
        client.quiesce_probes()
    stack.auditor.set_schedule(stack.transport.schedule)
    stack.auditor.assert_clean()
    assert _replies(stack, "s-1") >= healed_baseline
