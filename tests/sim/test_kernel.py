"""Unit tests for the simulation kernel (clock, heap, daemon events)."""

import pytest

from repro.sim.events import SimulationError
from repro.sim.kernel import Simulator


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=100.0).now == 100.0

    def test_time_advances_to_event_instants(self, sim):
        sim.timeout(3.0)
        sim.timeout(7.0)
        sim.step()
        assert sim.now == 3.0
        sim.step()
        assert sim.now == 7.0

    def test_same_instant_events_fire_fifo(self, sim):
        order = []
        first = sim.timeout(5.0)
        second = sim.timeout(5.0)
        first.add_callback(lambda e: order.append("first"))
        second.add_callback(lambda e: order.append("second"))
        sim.run()
        assert order == ["first", "second"]


class TestRun:
    def test_run_drains_the_heap(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.processed_events == 2

    def test_run_until_stops_at_horizon(self, sim):
        fired = []
        sim.call_in(5.0, lambda: fired.append(5))
        sim.call_in(15.0, lambda: fired.append(15))
        sim.run(until=10.0)
        assert fired == [5]
        assert sim.now == 10.0

    def test_run_until_composes(self, sim):
        fired = []
        sim.call_in(5.0, lambda: fired.append(5))
        sim.call_in(15.0, lambda: fired.append(15))
        sim.run(until=10.0)
        sim.run(until=20.0)
        assert fired == [5, 15]
        assert sim.now == 20.0

    def test_run_until_in_the_past_raises(self, sim):
        sim.call_in(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_step_on_empty_heap_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_reports_next_instant(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0


class TestDaemonEvents:
    def test_daemon_alone_does_not_keep_run_alive(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.call_in(10.0, tick, daemon=True)

        sim.call_in(10.0, tick, daemon=True)
        sim.run()  # must terminate despite the endless daemon chain
        assert ticks == []

    def test_daemon_fires_while_live_work_remains(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.call_in(10.0, tick, daemon=True)

        sim.call_in(10.0, tick, daemon=True)
        sim.timeout(35.0)  # live work until t=35
        sim.run()
        assert ticks == [10.0, 20.0, 30.0]

    def test_daemon_fires_up_to_bounded_horizon(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.call_in(10.0, tick, daemon=True)

        sim.call_in(10.0, tick, daemon=True)
        sim.run(until=45.0)
        assert ticks == [10.0, 20.0, 30.0, 40.0]
        assert sim.now == 45.0

    def test_pending_live_counts_only_live_events(self, sim):
        sim.call_in(5.0, lambda: None, daemon=True)
        assert sim.pending_live == 0
        sim.timeout(1.0)
        assert sim.pending_live == 1


class TestCallHelpers:
    def test_call_at_runs_at_absolute_time(self, sim):
        seen = []
        sim.call_at(12.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.5]

    def test_call_at_in_past_raises(self, sim):
        sim.timeout(10.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_run_until_event_returns_value(self, sim):
        event = sim.timeout(3.0, "payload")
        sim.timeout(100.0)  # later noise
        assert sim.run_until_event(event) == "payload"
        assert sim.now == 3.0

    def test_run_until_event_raises_event_exception(self, sim):
        event = sim.event().fail(ValueError("bad"), delay=1.0)
        with pytest.raises(ValueError):
            sim.run_until_event(event)

    def test_run_until_event_without_source_raises(self, sim):
        event = sim.event()  # never triggered
        sim.timeout(1.0)
        with pytest.raises(SimulationError):
            sim.run_until_event(event)

    def test_run_until_event_respects_limit(self, sim):
        event = sim.timeout(100.0)
        with pytest.raises(SimulationError):
            sim.run_until_event(event, limit=10.0)
