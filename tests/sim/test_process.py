"""Unit tests for generator-based processes."""

import pytest

from repro.sim.events import Interrupt, SimulationError
from repro.sim.kernel import Simulator


def test_process_returns_generator_return_value(sim):
    def worker(sim):
        yield sim.timeout(5.0)
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done"
    assert not proc.alive


def test_process_receives_event_values(sim):
    def worker(sim):
        value = yield sim.timeout(1.0, "tick")
        return value

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "tick"


def test_process_sees_failed_event_as_exception(sim):
    def worker(sim):
        try:
            yield sim.event().fail(ValueError("bad"), delay=1.0)
        except ValueError as exc:
            return f"caught {exc}"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "caught bad"


def test_uncaught_exception_fails_the_process(sim):
    def worker(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("crash")

    proc = sim.spawn(worker(sim))
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, RuntimeError)


def test_joining_another_process(sim):
    def child(sim):
        yield sim.timeout(3.0)
        return 7

    def parent(sim):
        result = yield sim.spawn(child(sim))
        return result * 2

    proc = sim.spawn(parent(sim))
    sim.run()
    assert proc.value == 14


def test_spawn_requires_generator(sim):
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_yielding_non_event_raises_inside_process(sim):
    def worker(sim):
        yield 42

    proc = sim.spawn(worker(sim))
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_yielding_foreign_event_raises(sim):
    other = Simulator()

    def worker(sim):
        yield other.timeout(1.0)

    proc = sim.spawn(worker(sim))
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


class TestInterrupt:
    def test_interrupt_wakes_waiting_process(self, sim):
        def worker(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                return f"interrupted: {interrupt.cause}"

        proc = sim.spawn(worker(sim))
        sim.call_in(5.0, lambda: proc.interrupt("crash"))
        finished_at = []
        proc.add_callback(lambda e: finished_at.append(sim.now))
        sim.run()
        assert proc.value == "interrupted: crash"
        # The process finished at the interrupt instant, not the timeout's.
        assert finished_at == [5.0]

    def test_unhandled_interrupt_fails_process(self, sim):
        def worker(sim):
            yield sim.timeout(100.0)

        proc = sim.spawn(worker(sim))
        sim.call_in(1.0, lambda: proc.interrupt())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, Interrupt)

    def test_interrupting_finished_process_raises(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)

        proc = sim.spawn(worker(sim))
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupted_wait_does_not_resume_twice(self, sim):
        resumptions = []

        def worker(sim):
            try:
                yield sim.timeout(10.0)
                resumptions.append("timeout")
            except Interrupt:
                resumptions.append("interrupt")
            # Wait past the original timeout to catch a double resume.
            yield sim.timeout(50.0)
            resumptions.append("after")

        proc = sim.spawn(worker(sim))
        sim.call_in(5.0, lambda: proc.interrupt())
        sim.run()
        assert resumptions == ["interrupt", "after"]
        assert proc.ok


def test_two_processes_interleave_by_time(sim):
    log = []

    def worker(sim, name, delay):
        for _ in range(3):
            yield sim.timeout(delay)
            log.append((name, sim.now))

    sim.spawn(worker(sim, "fast", 1.0))
    sim.spawn(worker(sim, "slow", 2.5))
    sim.run()
    assert log == [
        ("fast", 1.0),
        ("fast", 2.0),
        ("slow", 2.5),
        ("fast", 3.0),
        ("slow", 5.0),
        ("slow", 7.5),
    ]
