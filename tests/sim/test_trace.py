"""Unit tests for structured tracing."""

from repro.sim.trace import NullTracer, Tracer


def test_emit_records_fields():
    tracer = Tracer()
    tracer.emit(1.5, "client-1", "request.sent", msg_id=7)
    record = tracer.records[0]
    assert record.time == 1.5
    assert record.source == "client-1"
    assert record.kind == "request.sent"
    assert record.data == {"msg_id": 7}


def test_of_kind_and_from_source_filter():
    tracer = Tracer()
    tracer.emit(1.0, "a", "x")
    tracer.emit(2.0, "b", "x")
    tracer.emit(3.0, "a", "y")
    assert len(tracer.of_kind("x")) == 2
    assert len(tracer.from_source("a")) == 2


def test_select_time_window():
    tracer = Tracer()
    for t in (1.0, 5.0, 9.0):
        tracer.emit(t, "s", "k")
    selected = list(tracer.select(kind="k", since=2.0, until=8.0))
    assert [r.time for r in selected] == [5.0]


def test_listeners_get_records_synchronously():
    tracer = Tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit(0.0, "s", "k")
    assert len(seen) == 1


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(0.0, "s", "k")
    assert len(tracer) == 0


def test_null_tracer_is_inert():
    tracer = NullTracer()
    tracer.emit(0.0, "s", "k")
    assert len(tracer) == 0


def test_clear_keeps_listeners():
    tracer = Tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit(0.0, "s", "k")
    tracer.clear()
    assert len(tracer) == 0
    tracer.emit(1.0, "s", "k")
    assert len(seen) == 2
