"""Unit tests for random streams and distributions."""

import math

import numpy as np
import pytest

from repro.sim.random import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    MarkovModulated,
    Mixture,
    Normal,
    Pareto,
    RandomStreams,
    TruncatedNormal,
    Uniform,
)


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_reproducible_across_instances(self):
        a = RandomStreams(seed=7).stream("x").random(5)
        b = RandomStreams(seed=7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_sequences(self):
        a = RandomStreams(seed=1).stream("x").random(5)
        b = RandomStreams(seed=2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_fork_is_independent_of_parent(self):
        parent = RandomStreams(seed=1)
        child = parent.fork("child")
        a = parent.stream("x").random(5)
        b = child.stream("x").random(5)
        assert not np.array_equal(a, b)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDistributions:
    def test_constant(self, rng):
        dist = Constant(5.0)
        assert dist.sample(rng) == 5.0
        assert dist.mean() == 5.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            Constant(-1.0)

    def test_uniform_bounds(self, rng):
        dist = Uniform(2.0, 4.0)
        samples = [dist.sample(rng) for _ in range(200)]
        assert all(2.0 <= s < 4.0 for s in samples)
        assert dist.mean() == 3.0

    def test_exponential_mean(self, rng):
        dist = Exponential(10.0)
        samples = dist.sample_many(rng, 20_000)
        assert samples.mean() == pytest.approx(10.0, rel=0.05)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_normal_is_clipped_at_zero(self, rng):
        dist = Normal(1.0, 10.0)
        samples = dist.sample_many(rng, 1000)
        assert (samples >= 0).all()

    def test_normal_clipped_mean_formula(self, rng):
        dist = Normal(100.0, 50.0)
        samples = dist.sample_many(rng, 50_000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.02)

    def test_truncated_normal_respects_bounds(self, rng):
        dist = TruncatedNormal(0.0, 1.0, low=-0.5, high=0.5)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(-0.5 <= s <= 0.5 for s in samples)

    def test_truncated_normal_mean(self, rng):
        dist = TruncatedNormal(100.0, 50.0, low=0.0)
        samples = np.array([dist.sample(rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.02)

    def test_lognormal_from_mean_cv(self, rng):
        dist = LogNormal.from_mean_cv(mean=100.0, cv=0.5)
        assert dist.mean() == pytest.approx(100.0)
        samples = dist.sample_many(rng, 50_000)
        assert samples.mean() == pytest.approx(100.0, rel=0.05)

    def test_pareto_mean(self, rng):
        dist = Pareto(xm=10.0, alpha=3.0)
        assert dist.mean() == pytest.approx(15.0)
        samples = np.array([dist.sample(rng) for _ in range(20_000)])
        assert (samples >= 10.0).all()
        assert samples.mean() == pytest.approx(15.0, rel=0.1)

    def test_pareto_infinite_mean_for_small_alpha(self):
        assert math.isinf(Pareto(xm=1.0, alpha=0.9).mean())

    def test_empirical_resamples_only_observed_values(self, rng):
        dist = Empirical([1.0, 2.0, 3.0])
        samples = {dist.sample(rng) for _ in range(100)}
        assert samples <= {1.0, 2.0, 3.0}
        assert dist.mean() == 2.0

    def test_empirical_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_mixture_mean_is_weighted(self, rng):
        dist = Mixture([Constant(0.0), Constant(10.0)], weights=[3, 1])
        assert dist.mean() == pytest.approx(2.5)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(2.5, abs=0.5)

    def test_mixture_validates_lengths(self):
        with pytest.raises(ValueError):
            Mixture([Constant(1.0)], weights=[1, 2])


class TestMarkovModulated:
    def test_stationary_mean(self, rng):
        dist = MarkovModulated(
            Constant(1.0), Constant(10.0), p_enter_burst=0.1, p_exit_burst=0.3
        )
        # pi_burst = 0.1 / 0.4 = 0.25 -> mean = 0.75*1 + 0.25*10 = 3.25
        assert dist.mean() == pytest.approx(3.25)
        samples = [dist.sample(rng) for _ in range(50_000)]
        assert sum(samples) / len(samples) == pytest.approx(3.25, rel=0.1)

    def test_burst_state_produces_burst_samples(self, rng):
        dist = MarkovModulated(
            Constant(1.0), Constant(10.0), p_enter_burst=1.0, p_exit_burst=0.0
        )
        dist.sample(rng)  # enters burst on the first draw
        assert dist.in_burst
        assert dist.sample(rng) == 10.0

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            MarkovModulated(Constant(1), Constant(2), p_enter_burst=1.5)
