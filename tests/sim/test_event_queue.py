"""Regression tests for the slotted :class:`EventQueue` (ISSUE 7).

The queue replaced a plain ``heapq`` of ``(when, seq, daemon, event)``
tuples.  Its ordering contract is *bit-for-bit* compatibility with that
heap: pops come out in ascending ``(when, seq)``, with the sequence
number assigned in push order — so events scheduled for the same instant
dispatch strictly FIFO, exactly as before.  The tests here replay dense
same-tick schedules against an inline tuple-heap reference to lock that
contract down.
"""

import heapq
import random

import pytest

from repro.sim.events import Event, SimulationError
from repro.sim.kernel import EventQueue, Simulator, _time_key


class _StubEvent:
    """Minimal stand-in: the queue only touches ``_queue_slot``."""

    __slots__ = ("label", "_queue_slot")

    def __init__(self, label):
        self.label = label
        self._queue_slot = -1


class _ReferenceQueue:
    """The historic tuple heap the slotted queue must reproduce."""

    def __init__(self):
        self._heap = []
        self._seq = 0

    def push(self, when, event, daemon=False):
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, daemon, event))

    def pop(self):
        when, _seq, daemon, event = heapq.heappop(self._heap)
        return when, event, daemon

    def __len__(self):
        return len(self._heap)


def test_time_key_preserves_float_order():
    instants = [
        0.0, -0.0, 1e-12, 0.1, 0.1 + 1e-16, 1.0, 1.5, 2.0, 1e9, 1e300,
        -1e-12, -1.0, -1e9, float("inf"), float("-inf"),
    ]
    for a in instants:
        for b in instants:
            assert (_time_key(a) < _time_key(b)) == (a < b), (a, b)
            assert (_time_key(a) == _time_key(b)) == (a == b), (a, b)


def test_fifo_on_identical_timestamps():
    queue = EventQueue()
    events = [_StubEvent(i) for i in range(100)]
    for event in events:
        queue.push(5.0, event)
    popped = [queue.pop()[1].label for _ in range(len(events))]
    assert popped == list(range(100))


def test_dense_same_tick_schedule_matches_heapq_reference():
    """Replay a dense schedule with many tied instants against heapq.

    Timestamps are drawn from a tiny set so nearly every push ties with
    earlier ones — the regime where only the FIFO sequence number decides
    the order and any tie-break drift shows immediately.
    """
    rng = random.Random(0xC0FFEE)
    queue = EventQueue()
    reference = _ReferenceQueue()
    ticks = [0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 7.25]
    counter = 0
    for _round in range(2000):
        action = rng.random()
        if action < 0.6 or not len(queue):
            when = rng.choice(ticks)
            daemon = rng.random() < 0.3
            event = _StubEvent(counter)
            counter += 1
            queue.push(when, event, daemon)
            reference.push(when, event, daemon)
        else:
            assert queue.pop() == reference.pop()
    while len(reference):
        assert queue.pop() == reference.pop()
    assert len(queue) == 0


def test_randomized_program_with_demotion_matches_reference():
    """Interleaved push/pop/demote runs, checked pop-for-pop.

    The reference heap cannot demote in place (that is the point of the
    slot table), so demotions are mirrored by rebuilding the reference's
    tuples — the surviving order must still match exactly.
    """
    rng = random.Random(20260808)
    queue = EventQueue()
    reference = _ReferenceQueue()
    live = []
    counter = 0
    for _round in range(3000):
        action = rng.random()
        if action < 0.55 or not len(queue):
            when = rng.choice([0.0, 0.5, 0.5, 1.0, 3.0])
            event = _StubEvent(counter)
            counter += 1
            queue.push(when, event)
            reference.push(when, event)
            live.append(event)
        elif action < 0.75 and live:
            victim = rng.choice(live)
            flipped = queue.demote(victim)
            if flipped:
                reference._heap = [
                    (w, s, True if e is victim else d, e)
                    for (w, s, d, e) in reference._heap
                ]
                heapq.heapify(reference._heap)
        else:
            got = queue.pop()
            expected = reference.pop()
            assert got == expected
            live = [e for e in live if e is not got[1]]
    while len(reference):
        assert queue.pop() == reference.pop()


def test_demote_is_single_shot_and_slot_safe():
    queue = EventQueue()
    scheduled = _StubEvent("scheduled")
    never = _StubEvent("never-scheduled")
    queue.push(1.0, scheduled)
    assert queue.demote(never) is False
    assert queue.demote(scheduled) is True
    assert queue.demote(scheduled) is False  # already daemon
    when, event, daemon = queue.pop()
    assert (when, event.label, daemon) == (1.0, "scheduled", True)
    # After the pop the slot is recycled; a stale demote must not flip
    # the slot's new occupant.
    replacement = _StubEvent("replacement")
    queue.push(2.0, replacement)
    assert queue.demote(scheduled) is False
    assert queue.pop() == (2.0, replacement, False)


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_peek_when_tracks_heap_top():
    queue = EventQueue()
    assert queue.peek_when() == float("inf")
    queue.push(3.0, _StubEvent("late"))
    queue.push(1.0, _StubEvent("early"))
    assert queue.peek_when() == 1.0
    queue.pop()
    assert queue.peek_when() == 3.0


def test_simulator_same_instant_fifo_with_nested_scheduling():
    """End-to-end: same-tick callbacks fire in scheduling order, even
    when callbacks schedule more work *at the current instant*."""
    sim = Simulator()
    order = []

    def nested():
        order.append("nested")

    def first():
        order.append("first")
        sim.call_in(0.0, nested)  # lands behind 'second' (later seq)

    def second():
        order.append("second")

    sim.call_in(1.0, first)
    sim.call_in(1.0, second)
    sim.run()
    assert order == ["first", "second", "nested"]


def test_simulator_event_slot_reset_after_dispatch():
    sim = Simulator()
    event = sim.timeout(1.0)
    assert isinstance(event, Event)
    assert event._queue_slot >= 0
    sim.run()
    assert event._queue_slot == -1
