"""Unit tests for the event primitives."""

import pytest

from repro.sim.events import SimulationError
from repro.sim.kernel import Simulator


class TestEventLifecycle:
    def test_new_event_is_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_ok_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_carries_value(self, sim):
        event = sim.event().succeed(42)
        sim.run()
        assert event.processed
        assert event.ok
        assert event.value == 42

    def test_fail_carries_exception(self, sim):
        boom = RuntimeError("boom")
        event = sim.event().fail(boom)
        sim.run()
        assert not event.ok
        assert event.value is boom

    def test_fail_with_non_exception_raises_typeerror(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_double_trigger_raises(self, sim):
        event = sim.event().succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.event().succeed(1, delay=-1.0)

    def test_succeed_with_delay_fires_later(self, sim):
        event = sim.event().succeed("late", delay=10.0)
        sim.run()
        assert sim.now == 10.0
        assert event.value == "late"


class TestCallbacks:
    def test_callback_runs_on_processing(self, sim):
        seen = []
        event = sim.event()
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("x")
        sim.run()
        assert seen == ["x"]

    def test_callback_after_processed_runs_immediately(self, sim):
        event = sim.event().succeed("y")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["y"]

    def test_callbacks_run_in_registration_order(self, sim):
        order = []
        event = sim.event()
        event.add_callback(lambda e: order.append(1))
        event.add_callback(lambda e: order.append(2))
        event.succeed(None)
        sim.run()
        assert order == [1, 2]


class TestTimeout:
    def test_fires_at_the_right_instant(self, sim):
        timeout = sim.timeout(25.0, "tick")
        sim.run()
        assert sim.now == 25.0
        assert timeout.value == "tick"

    def test_zero_delay_is_allowed(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.processed
        assert sim.now == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-0.1)


class TestComposites:
    def test_any_of_fires_with_first_value(self, sim):
        slow = sim.timeout(10.0, "slow")
        fast = sim.timeout(2.0, "fast")
        first = sim.any_of([slow, fast])
        sim.run()
        assert first.value == "fast"

    def test_all_of_collects_values_in_child_order(self, sim):
        a = sim.timeout(5.0, "a")
        b = sim.timeout(1.0, "b")
        both = sim.all_of([a, b])
        sim.run()
        assert both.value == ["a", "b"]

    def test_any_of_empty_succeeds_immediately(self, sim):
        empty = sim.any_of([])
        sim.run()
        assert empty.processed
        assert empty.value == []

    def test_all_of_propagates_failure(self, sim):
        good = sim.timeout(5.0)
        bad = sim.event().fail(ValueError("no"), delay=1.0)
        both = sim.all_of([good, bad])
        sim.run()
        assert not both.ok
        assert isinstance(both.value, ValueError)

    def test_cross_simulator_composite_rejected(self, sim):
        other = Simulator()
        foreign = other.timeout(1.0)
        with pytest.raises(SimulationError):
            sim.any_of([foreign])
