"""Unit tests for fault injection."""

import pytest

from repro.replica.faults import CrashSchedule, FaultInjector


class TestCrashSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashSchedule("h", crash_at_ms=-1.0)
        with pytest.raises(ValueError):
            CrashSchedule("h", crash_at_ms=10.0, recover_at_ms=10.0)

    def test_recovery_optional(self):
        schedule = CrashSchedule("h", crash_at_ms=10.0)
        assert schedule.recover_at_ms is None


class TestFaultInjector:
    def test_scheduled_crash_marks_host_down(self, sim, lan):
        injector = FaultInjector(sim, lan)
        injector.schedule(CrashSchedule("server-1", crash_at_ms=50.0))
        sim.run(until=40.0)
        assert lan.is_up("server-1")
        sim.run(until=60.0)
        assert not lan.is_up("server-1")
        assert injector.crashes_injected == 1

    def test_recovery_brings_host_back(self, sim, lan):
        injector = FaultInjector(sim, lan)
        injector.schedule(
            CrashSchedule("server-1", crash_at_ms=10.0, recover_at_ms=30.0)
        )
        sim.run(until=20.0)
        assert not lan.is_up("server-1")
        sim.run(until=40.0)
        assert lan.is_up("server-1")
        assert injector.recoveries_injected == 1

    def test_hooks_run_at_crash_and_recovery(self, sim, lan):
        injector = FaultInjector(sim, lan)
        events = []
        injector.on_crash("server-1", lambda: events.append(("crash", sim.now)))
        injector.on_recover("server-1", lambda: events.append(("recover", sim.now)))
        injector.schedule(
            CrashSchedule("server-1", crash_at_ms=10.0, recover_at_ms=30.0)
        )
        sim.run(until=50.0)
        assert events == [("crash", 10.0), ("recover", 30.0)]

    def test_crash_is_idempotent(self, sim, lan):
        injector = FaultInjector(sim, lan)
        injector.crash_now("server-1")
        injector.crash_now("server-1")
        assert injector.crashes_injected == 1

    def test_recover_without_crash_is_noop(self, sim, lan):
        injector = FaultInjector(sim, lan)
        injector.recover_now("server-1")
        assert injector.recoveries_injected == 0

    def test_unknown_host_rejected_at_schedule_time(self, sim, lan):
        injector = FaultInjector(sim, lan)
        with pytest.raises(KeyError):
            injector.schedule(CrashSchedule("ghost", crash_at_ms=1.0))

    def test_schedule_all(self, sim, lan):
        injector = FaultInjector(sim, lan)
        injector.schedule_all(
            [
                CrashSchedule("server-1", crash_at_ms=10.0),
                CrashSchedule("server-2", crash_at_ms=20.0),
            ]
        )
        sim.run(until=30.0)
        assert injector.crashes_injected == 2
