"""Unit tests for load models and service profiles."""

import numpy as np
import pytest

from repro.replica.load import (
    ConstantLoad,
    PeriodicLoad,
    ServiceProfile,
    StepLoad,
    paper_service_model,
)
from repro.sim.random import Constant, Normal


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestConstantLoad:
    def test_fixed_factor(self):
        assert ConstantLoad(2.0).factor(0.0) == 2.0
        assert ConstantLoad(2.0).factor(1e9) == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLoad(-1.0)


class TestStepLoad:
    def test_initial_factor_before_first_step(self):
        load = StepLoad([(100.0, 3.0)], initial=1.0)
        assert load.factor(50.0) == 1.0

    def test_step_applies_from_start_time(self):
        load = StepLoad([(100.0, 3.0)], initial=1.0)
        assert load.factor(100.0) == 3.0
        assert load.factor(500.0) == 3.0

    def test_multiple_steps_pick_latest(self):
        load = StepLoad([(100.0, 3.0), (200.0, 0.5)])
        assert load.factor(150.0) == 3.0
        assert load.factor(250.0) == 0.5

    def test_unsorted_steps_are_sorted(self):
        load = StepLoad([(200.0, 0.5), (100.0, 3.0)])
        assert load.factor(150.0) == 3.0

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            StepLoad([(0.0, -1.0)])


class TestPeriodicLoad:
    def test_oscillates_around_mean(self):
        load = PeriodicLoad(mean=1.0, amplitude=0.5, period_ms=1000.0)
        quarter = load.factor(250.0)  # sin peak
        three_quarter = load.factor(750.0)  # sin trough
        assert quarter == pytest.approx(1.5)
        assert three_quarter == pytest.approx(0.5)

    def test_clipped_at_zero(self):
        load = PeriodicLoad(mean=0.1, amplitude=1.0, period_ms=1000.0)
        assert load.factor(750.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicLoad(period_ms=0.0)


class TestServiceProfile:
    def test_default_distribution_used(self, rng):
        profile = ServiceProfile(default=Constant(10.0))
        assert profile.sample_duration("anything", 0.0, rng) == 10.0

    def test_per_method_override(self, rng):
        profile = ServiceProfile(
            default=Constant(10.0), per_method={"heavy": Constant(100.0)}
        )
        assert profile.sample_duration("light", 0.0, rng) == 10.0
        assert profile.sample_duration("heavy", 0.0, rng) == 100.0

    def test_load_factor_scales_duration(self, rng):
        profile = ServiceProfile(
            default=Constant(10.0), load=StepLoad([(100.0, 3.0)])
        )
        assert profile.sample_duration("m", 0.0, rng) == 10.0
        assert profile.sample_duration("m", 200.0, rng) == 30.0

    def test_duration_never_negative(self, rng):
        profile = ServiceProfile(default=Normal(0.0, 10.0))
        for _ in range(100):
            assert profile.sample_duration("m", 0.0, rng) >= 0.0


class TestPaperServiceModel:
    def test_defaults_match_paper(self, rng):
        profile = paper_service_model()
        dist = profile.distribution_for("process")
        assert dist.mu == 100.0
        assert dist.sigma == 50.0

    def test_sampled_mean_is_near_paper_mean(self, rng):
        profile = paper_service_model()
        samples = [profile.sample_duration("m", 0.0, rng) for _ in range(20_000)]
        # Clipping at zero pulls the mean slightly above 100.
        assert np.mean(samples) == pytest.approx(101.9, abs=1.5)
