"""Unit tests for the replica application."""

import pytest

from repro.orb.dii import InvocationError
from repro.orb.object import MethodRequest
from repro.replica.load import ServiceProfile, StepLoad
from repro.replica.server import ReplicaApplication
from repro.sim.random import Constant, RandomStreams
from repro.workload.scenarios import IntegerServant, make_interface


@pytest.fixture
def app(streams):
    interface = make_interface("search", "process")
    return ReplicaApplication(
        host="replica-1",
        servant=IntegerServant(interface, "process"),
        profile=ServiceProfile(default=Constant(10.0)),
        streams=streams,
    )


def test_service_name_comes_from_interface(app):
    assert app.service == "search"


def test_execute_dispatches_and_counts(app):
    value = app.execute(MethodRequest("search", "process", (7,)))
    assert value == 7
    assert app.requests_served == 1


def test_execute_wrong_service_raises(app):
    with pytest.raises(InvocationError):
        app.execute(MethodRequest("other", "process", (1,)))


def test_service_duration_uses_profile(app):
    assert app.service_duration("process", now_ms=0.0) == 10.0


def test_service_duration_reflects_load(streams):
    interface = make_interface()
    app = ReplicaApplication(
        host="replica-1",
        servant=IntegerServant(interface),
        profile=ServiceProfile(
            default=Constant(10.0), load=StepLoad([(50.0, 2.0)])
        ),
        streams=streams,
    )
    assert app.service_duration("process", now_ms=0.0) == 10.0
    assert app.service_duration("process", now_ms=100.0) == 20.0


def test_replicas_draw_from_distinct_streams():
    from repro.sim.random import Normal

    streams = RandomStreams(seed=5)
    interface = make_interface()

    def build(host):
        return ReplicaApplication(
            host=host,
            servant=IntegerServant(interface),
            profile=ServiceProfile(default=Normal(100.0, 50.0)),
            streams=streams,
        )

    a, b = build("replica-a"), build("replica-b")
    samples_a = [a.service_duration("process", 0.0) for _ in range(10)]
    samples_b = [b.service_duration("process", 0.0) for _ in range(10)]
    assert samples_a != samples_b
