"""Unit tests for the metrics collector."""


from repro.metrics.collector import MetricsCollector


def test_observe_and_stats():
    collector = MetricsCollector()
    collector.observe_many("latency", [10.0, 20.0, 30.0])
    stats = collector.stats("latency")
    assert stats.count == 3
    assert stats.mean == 20.0


def test_unseen_metric_has_empty_stats():
    collector = MetricsCollector()
    assert collector.stats("nope").count == 0


def test_labels_partition_observations():
    collector = MetricsCollector()
    collector.observe("latency", 10.0, labels={"client": "a"})
    collector.observe("latency", 30.0, labels={"client": "b"})
    assert collector.stats("latency", {"client": "a"}).mean == 10.0
    assert collector.stats("latency", {"client": "b"}).mean == 30.0
    assert collector.stats("latency").count == 0  # unlabeled is separate


def test_label_order_does_not_matter():
    collector = MetricsCollector()
    collector.observe("m", 1.0, labels={"a": "1", "b": "2"})
    assert collector.stats("m", {"b": "2", "a": "1"}).count == 1


def test_counters():
    collector = MetricsCollector()
    collector.increment("failures")
    collector.increment("failures", 2)
    assert collector.counter("failures") == 3
    assert collector.counter("unseen") == 0


def test_samples_retained_by_default():
    collector = MetricsCollector()
    collector.observe_many("m", [1.0, 2.0])
    assert collector.samples("m") == [1.0, 2.0]
    assert collector.summary("m").count == 2


def test_samples_dropped_when_disabled():
    collector = MetricsCollector(keep_samples=False)
    collector.observe("m", 1.0)
    assert collector.samples("m") == []
    assert collector.stats("m").count == 1  # running stats still work


def test_metric_names_cover_observations_and_counters():
    collector = MetricsCollector()
    collector.observe("b-metric", 1.0)
    collector.increment("a-counter")
    assert collector.metric_names() == ["a-counter", "b-metric"]


def test_label_sets():
    collector = MetricsCollector()
    collector.observe("m", 1.0, labels={"x": "1"})
    collector.observe("m", 2.0, labels={"x": "2"})
    label_sets = collector.label_sets("m")
    assert {"x": "1"} in label_sets
    assert {"x": "2"} in label_sets


def test_clear():
    collector = MetricsCollector()
    collector.observe("m", 1.0)
    collector.increment("c")
    collector.clear()
    assert collector.stats("m").count == 0
    assert collector.counter("c") == 0
