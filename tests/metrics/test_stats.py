"""Unit tests for streaming statistics and confidence intervals."""


import numpy as np
import pytest

from repro.metrics.stats import (
    RunningStats,
    mean_confidence_interval,
    percentile,
    proportion_confidence_interval,
    summarize,
)


class TestRunningStats:
    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_matches_numpy(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))
        assert stats.minimum == 1.0
        assert stats.maximum == 9.0

    def test_single_value_has_zero_variance(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0
        assert stats.stdev == 0.0

    def test_merge_equals_concatenation(self):
        a_vals = [1.0, 2.0, 3.0]
        b_vals = [10.0, 20.0]
        a, b = RunningStats(), RunningStats()
        a.extend(a_vals)
        b.extend(b_vals)
        merged = a.merge(b)
        assert merged.count == 5
        assert merged.mean == pytest.approx(np.mean(a_vals + b_vals))
        assert merged.variance == pytest.approx(np.var(a_vals + b_vals, ddof=1))

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == 1.5


class TestSummarize:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_fields(self):
        values = list(range(1, 101))
        summary = summarize(values)
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == pytest.approx(50.5)
        assert summary.minimum == 1
        assert summary.maximum == 100
        assert summary.p90 > summary.p50

    def test_row_has_eight_fields(self):
        assert len(summarize([1.0, 2.0]).row()) == 8


class TestPercentile:
    def test_basic(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)


class TestConfidenceIntervals:
    def test_mean_ci_brackets_mean(self):
        values = [10.0, 12.0, 9.0, 11.0, 10.5]
        mean, low, high = mean_confidence_interval(values)
        assert low <= mean <= high
        assert mean == pytest.approx(np.mean(values))

    def test_mean_ci_single_value_collapses(self):
        mean, low, high = mean_confidence_interval([5.0])
        assert mean == low == high == 5.0

    def test_mean_ci_wider_at_higher_confidence(self):
        values = list(np.linspace(0, 10, 30))
        _m, low95, high95 = mean_confidence_interval(values, 0.95)
        _m, low99, high99 = mean_confidence_interval(values, 0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_mean_ci_rejects_unknown_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=0.42)

    def test_proportion_ci_bounds(self):
        p, low, high = proportion_confidence_interval(8, 10)
        assert p == pytest.approx(0.8)
        assert 0.0 <= low < p < high <= 1.0

    def test_proportion_ci_extremes_stay_in_unit_interval(self):
        _p, low, high = proportion_confidence_interval(0, 10)
        assert low == 0.0
        _p, low, high = proportion_confidence_interval(10, 10)
        assert high == 1.0

    def test_proportion_ci_validation(self):
        with pytest.raises(ValueError):
            proportion_confidence_interval(5, 0)
        with pytest.raises(ValueError):
            proportion_confidence_interval(11, 10)
