"""Tests for multi-method scenarios and method choosers."""


from repro.core.qos import QoSSpec
from repro.sim.random import Constant
from repro.replica.load import ServiceProfile
from repro.workload.scenarios import Scenario, ScenarioConfig


def _config(**overrides):
    base = dict(
        seed=0,
        num_replicas=2,
        service_distribution_factory=lambda host: Constant(10.0),
        extra_methods={"analyze": Constant(50.0)},
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def test_extra_methods_join_the_interface():
    scenario = Scenario(_config())
    assert "analyze" in scenario.interface
    assert "process" in scenario.interface


def test_extra_methods_get_their_own_service_times():
    scenario = Scenario(_config())
    client = scenario.add_client(
        "c1",
        QoSSpec(scenario.config.service, 500.0, 0.0),
        num_requests=6,
        think_time=Constant(10.0),
        method_chooser=lambda i: "analyze" if i % 2 else "process",
    )
    scenario.run_to_completion()
    cheap = [o.response_time_ms for o in client.outcomes[0::2]]
    heavy = [o.response_time_ms for o in client.outcomes[1::2]]
    assert max(cheap) < 30.0
    assert min(heavy) > 50.0


def test_method_chooser_default_is_config_method():
    scenario = Scenario(_config())
    client = scenario.add_client(
        "c1",
        QoSSpec(scenario.config.service, 500.0, 0.0),
        num_requests=3,
        think_time=Constant(10.0),
    )
    scenario.run_to_completion()
    # All requests used the cheap default method.
    assert all(o.response_time_ms < 30.0 for o in client.outcomes)


def test_profile_factory_overrides_everything():
    def profile_factory(host):
        if host == "replica-1":
            return ServiceProfile(default=Constant(5.0))
        return ServiceProfile(default=Constant(400.0))

    scenario = Scenario(
        ScenarioConfig(seed=0, num_replicas=2, profile_factory=profile_factory)
    )
    client = scenario.add_client(
        "c1",
        QoSSpec(scenario.config.service, 100.0, 0.5),
        num_requests=10,
        think_time=Constant(10.0),
    )
    scenario.run_to_completion()
    # After bootstrap, the model should route to the fast replica only.
    late = client.outcomes[2:]
    assert all(o.replica == "replica-1" for o in late if o.replica)


def test_handler_kwargs_reach_the_handler():
    scenario = Scenario(_config())
    scenario.add_client(
        "c1",
        QoSSpec(scenario.config.service, 500.0, 0.0),
        num_requests=1,
        handler_kwargs={"gateway_window_size": 7},
    )
    handler = scenario.handlers["c1"]
    assert handler.gateway_window_size == 7
    assert handler.repository.gateway_window_size == 7
