"""Unit tests for the scenario builder."""

import pytest

from repro.core.qos import QoSSpec
from repro.sim.random import Constant
from repro.workload.scenarios import (
    IntegerServant,
    Scenario,
    ScenarioConfig,
    make_interface,
)


def test_make_interface_single_method():
    interface = make_interface("svc", "go", request_bytes=10, reply_bytes=20)
    assert interface.name == "svc"
    signature = interface.method("go")
    assert signature.request_bytes == 10
    assert signature.reply_bytes == 20


def test_integer_servant_echoes_index():
    interface = make_interface()
    servant = IntegerServant(interface)
    assert servant.dispatch("process", (41,)) == 41
    with pytest.raises(KeyError):
        servant.dispatch("other", ())


def test_default_config_matches_paper():
    config = ScenarioConfig()
    assert config.num_replicas == 7
    assert config.service_mean_ms == 100.0
    assert config.service_sigma_ms == 50.0
    assert config.window_size == 5
    assert config.replica_hosts() == [f"replica-{i}" for i in range(1, 8)]


def test_scenario_deploys_all_replicas():
    scenario = Scenario(ScenarioConfig(seed=0, num_replicas=4))
    view = scenario.group_comm.view("search")
    assert len(view) == 4


def test_qos_service_must_match(recwarn):
    scenario = Scenario(ScenarioConfig(seed=0, num_replicas=2))
    with pytest.raises(ValueError):
        scenario.add_client("c1", QoSSpec("wrong-service", 100.0, 0.5))


def test_custom_service_distribution_factory():
    config = ScenarioConfig(
        seed=0,
        num_replicas=2,
        service_distribution_factory=lambda host: Constant(5.0),
    )
    scenario = Scenario(config)
    client = scenario.add_client(
        "c1",
        QoSSpec(config.service, 500.0, 0.0),
        num_requests=3,
        think_time=Constant(10.0),
    )
    scenario.run_to_completion()
    # All responses ~ 5 ms service + small network/marshalling overhead.
    assert all(o.response_time_ms < 20.0 for o in client.outcomes)


def test_run_to_completion_finishes_all_clients():
    scenario = Scenario(ScenarioConfig(seed=0, num_replicas=2))
    clients = [
        scenario.add_client(
            f"c{i}",
            QoSSpec(scenario.config.service, 300.0, 0.0),
            num_requests=4,
            think_time=Constant(50.0),
        )
        for i in range(3)
    ]
    scenario.run_to_completion()
    assert all(client.done for client in clients)


def test_same_seed_reproduces_results():
    def run_once():
        scenario = Scenario(ScenarioConfig(seed=42, num_replicas=3))
        client = scenario.add_client(
            "c1",
            QoSSpec(scenario.config.service, 150.0, 0.5),
            num_requests=10,
        )
        scenario.run_to_completion()
        return [round(o.response_time_ms, 6) for o in client.outcomes]

    assert run_once() == run_once()


def test_different_seeds_differ():
    def run_once(seed):
        scenario = Scenario(ScenarioConfig(seed=seed, num_replicas=3))
        client = scenario.add_client(
            "c1",
            QoSSpec(scenario.config.service, 150.0, 0.5),
            num_requests=10,
        )
        scenario.run_to_completion()
        return [o.response_time_ms for o in client.outcomes]

    assert run_once(1) != run_once(2)


def test_scheduled_crash_reduces_view():
    scenario = Scenario(ScenarioConfig(seed=0, num_replicas=3))
    scenario.add_client(
        "c1",
        QoSSpec(scenario.config.service, 300.0, 0.0),
        num_requests=5,
        think_time=Constant(500.0),
    )
    scenario.schedule_crash("replica-2", at_ms=100.0)
    scenario.run_to_completion()
    assert "replica-2" not in scenario.group_comm.view("search")
