"""Unit tests for client behaviours (closed- and open-loop)."""

import pytest

from repro.core.qos import QoSSpec
from repro.sim.random import Constant
from repro.workload.client import ClientSummary
from repro.workload.scenarios import Scenario, ScenarioConfig


@pytest.fixture
def scenario():
    return Scenario(ScenarioConfig(seed=0, num_replicas=3))


def _qos(scenario, deadline=500.0, probability=0.0):
    return QoSSpec(scenario.config.service, deadline, probability)


class TestClosedLoopClient:
    def test_issues_exactly_num_requests(self, scenario):
        client = scenario.add_client(
            "c1", _qos(scenario), num_requests=7, think_time=Constant(10.0)
        )
        scenario.run_to_completion()
        assert len(client.outcomes) == 7
        assert client.done

    def test_think_time_spaces_requests(self, scenario):
        client = scenario.add_client(
            "c1", _qos(scenario), num_requests=3, think_time=Constant(1000.0)
        )
        scenario.run_to_completion()
        # Three requests, two think gaps of 1 s plus service time each.
        assert scenario.sim.now >= 2000.0

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            scenario.add_client("c1", _qos(scenario), num_requests=0)

    def test_summary_counts_failures(self, scenario):
        client = scenario.add_client(
            "c1",
            _qos(scenario, deadline=60.0),  # tighter than mean service
            num_requests=10,
            think_time=Constant(10.0),
        )
        scenario.run_to_completion()
        summary = client.summary()
        assert summary.requests == 10
        assert summary.timing_failures >= 1
        assert summary.failure_probability == pytest.approx(
            summary.timing_failures / 10
        )

    def test_process_returns_summary(self, scenario):
        client = scenario.add_client(
            "c1", _qos(scenario), num_requests=2, think_time=Constant(1.0)
        )
        scenario.run_to_completion()
        assert isinstance(client.process.value, ClientSummary)


class TestOpenLoopClient:
    def test_all_requests_complete(self, scenario):
        client = scenario.add_open_loop_client(
            "c1", _qos(scenario), interarrival=Constant(20.0), num_requests=10
        )
        scenario.run_to_completion()
        assert client.issued == 10
        assert len(client.outcomes) == 10

    def test_arrivals_do_not_wait_for_replies(self, scenario):
        # Interarrival 20 ms << ~100 ms service: requests overlap.  A
        # closed loop would need at least the sum of the response times;
        # the open loop finishes roughly when the slowest overlapping
        # request does.
        client = scenario.add_open_loop_client(
            "c1", _qos(scenario), interarrival=Constant(20.0), num_requests=5
        )
        scenario.run_to_completion()
        total_response = sum(o.response_time_ms for o in client.outcomes)
        assert client.completed_at_ms is not None
        assert client.completed_at_ms < total_response

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            scenario.add_open_loop_client(
                "c1", _qos(scenario), interarrival=Constant(1.0), num_requests=0
            )


class TestClientSummary:
    def test_empty_summary(self):
        summary = ClientSummary(0, 0, 0, 0.0, 0.0)
        assert summary.failure_probability == 0.0
