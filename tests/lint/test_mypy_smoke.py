"""Smoke test: ``mypy --strict`` passes on the typed-core packages.

Runs only where mypy is installed (the ``dev`` extra, as in CI); on a
bare interpreter the test skips rather than fails, so the tier-1 suite
stays runnable without any static-analysis toolchain.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

import pytest

from .conftest import REPO_ROOT

STRICT_PACKAGES = [
    "repro.core",
    "repro.sim",
    "repro.rng",
    "repro.gateway",
    "repro.overload",
    "repro.health",
    "repro.faultinject",
]

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy is not installed (pip install -e '.[dev]')",
)


@pytest.mark.timeout(600)
def test_mypy_strict_is_clean():
    command = [sys.executable, "-m", "mypy", "--strict"]
    for package in STRICT_PACKAGES:
        command += ["-p", package]
    result = subprocess.run(
        command,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert result.returncode == 0, f"\n{result.stdout}\n{result.stderr}"
