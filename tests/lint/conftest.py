"""Path setup for the repro-lint self-tests.

The lint pack lives in ``tools/`` (outside the installed package) so it
can lint the package without importing it; the tests put ``tools/`` on
``sys.path`` exactly like the CI job's ``PYTHONPATH=tools`` does.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = REPO_ROOT / "tools"
FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"

if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
