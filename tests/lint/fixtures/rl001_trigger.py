"""RL001 trigger: ad-hoc RNG construction outside ``src/repro/rng/``."""

import random

import numpy as np


def draw() -> float:
    np.random.seed(7)
    rng = np.random.default_rng(1)
    return random.random() + float(rng.random())
