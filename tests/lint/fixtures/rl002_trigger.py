"""RL002 trigger: wall-clock reads inside a simulation layer."""

import time
from datetime import datetime


def stamp() -> float:
    started = datetime.now().timestamp()
    return time.time() - started
