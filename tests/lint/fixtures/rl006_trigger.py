"""RL006 trigger: kernel time leaking into a host-level handler."""


class Handler:
    def __init__(self, sim, clock):
        self.sim = sim
        self.clock = clock

    def stamp(self) -> float:
        return self.sim.now

    def age(self, sim, started: float) -> float:
        return sim.now - started
