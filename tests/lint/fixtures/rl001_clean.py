"""RL001 clean: named streams and safe ``numpy.random`` type names only."""

import numpy as np

from repro.rng import RNGManager


def draw(streams: RNGManager) -> float:
    rng: np.random.Generator = streams.stream("workload")
    return float(rng.random())
