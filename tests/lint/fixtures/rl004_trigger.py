"""RL004 trigger: lifecycle book mutations outside ``gateway/handlers/``."""


class Meddler:
    def reset(self, handler) -> None:
        handler._pending.clear()
        del handler._aliases[0]
        handler._copies = {}
