"""RL005 clean: hot-path dataclass declaring ``slots=True``."""

from dataclasses import dataclass


@dataclass(slots=True, frozen=True)
class Pending:
    when: float
    seq: int
