"""RL006 clean: host clock for stamps, kernel only via the escape."""


class Handler:
    def __init__(self, sim, clock):
        self.sim = sim
        self.clock = clock

    def stamp(self) -> float:
        return self.clock.now

    def trace_time(self) -> float:
        # Physical (kernel) time, via the sanctioned escape hatch.
        return self.clock.kernel_now

    def arm(self, delay_ms: float) -> None:
        # Scheduling stays on the kernel; only `.now` reads are banned.
        self.sim.call_in(delay_ms, self.stamp)
