"""RL005 trigger: hot-path dataclass without ``slots=True``."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Pending:
    when: float
    seq: int
