"""RL003 trigger: bare float equality on pmf/time values."""


def same(deadline_ms: float, probability: float) -> bool:
    if probability == 1.0:
        return True
    return deadline_ms != 0.25
