"""RL003 clean: tolerance-based comparison of pmf/time values."""

import math


def same(deadline_ms: float, probability: float, count: int) -> bool:
    return (
        math.isclose(probability, 1.0)
        and math.isclose(deadline_ms, 0.0, abs_tol=1e-9)
        and count == 3
    )
