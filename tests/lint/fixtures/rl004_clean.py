"""RL004 clean: read-only inspection of the lifecycle books."""


def leak_count(handler) -> int:
    pending = len(handler._pending)
    copies = sorted(handler._copies)
    return pending + len(copies)
