"""RL002 clean: sim clock plus the sanctioned ``perf_counter`` exemption."""

import time


def overhead(sim) -> float:
    t0 = time.perf_counter()
    _ = sim.now
    return time.perf_counter() - t0
