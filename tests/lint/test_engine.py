"""Engine behavior: suppressions, file walking, and the CLI contract."""

from __future__ import annotations

from repro_lint.__main__ import main
from repro_lint.engine import check_source, run_paths
from repro_lint.rules import ALL_RULES, rule_by_id

from .conftest import FIXTURES_DIR

VIRTUAL = "src/repro/core/x.py"


class TestSuppressions:
    def test_line_suppression_silences_one_line(self):
        source = (
            "import random  # repro-lint: disable=RL001 (fixture rationale)\n"
            "import random\n"
        )
        findings = check_source(
            source, path="x.py", rules=[rule_by_id("RL001")], virtual_path=VIRTUAL
        )
        assert [f.line for f in findings] == [2]

    def test_file_suppression_silences_whole_file(self):
        source = (
            "# repro-lint: disable-file=RL001\n"
            "import random\n"
            "import random\n"
        )
        findings = check_source(
            source, path="x.py", rules=[rule_by_id("RL001")], virtual_path=VIRTUAL
        )
        assert findings == []

    def test_suppression_is_rule_specific(self):
        source = "import random  # repro-lint: disable=RL002\n"
        findings = check_source(
            source, path="x.py", rules=[rule_by_id("RL001")], virtual_path=VIRTUAL
        )
        assert [f.rule_id for f in findings] == ["RL001"]

    def test_comma_separated_rule_list(self):
        source = "import random  # repro-lint: disable=RL002, RL001\n"
        findings = check_source(
            source, path="x.py", rules=[rule_by_id("RL001")], virtual_path=VIRTUAL
        )
        assert findings == []


class TestCli:
    def _bad_tree(self, tmp_path):
        """A throwaway tree whose path puts the file in RL001's scope."""
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        target = pkg / "bad.py"
        target.write_text(
            (FIXTURES_DIR / "rl001_trigger.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        return tmp_path / "src"

    def test_exit_zero_on_clean_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
        assert main([str(tmp_path / "src")]) == 0

    def test_exit_one_on_violations(self, tmp_path):
        assert main([str(self._bad_tree(tmp_path))]) == 1

    def test_exit_one_on_parse_error(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def oops(:\n", encoding="utf-8")
        assert main([str(tmp_path / "src")]) == 1

    def test_exit_two_on_unknown_rule(self, tmp_path):
        assert main(["--select", "RL999", str(tmp_path)]) == 2

    def test_exit_two_when_no_files_found(self, tmp_path):
        assert main([str(tmp_path)]) == 2

    def test_select_limits_rules(self, tmp_path):
        # The RL001 trigger is clean under RL005 alone.
        assert main(["--select", "RL005", str(self._bad_tree(tmp_path))]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out


def test_run_paths_counts_files(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "a.py").write_text("A = 1\n", encoding="utf-8")
    (pkg / "b.py").write_text("B = 2\n", encoding="utf-8")
    report = run_paths([str(tmp_path)], ALL_RULES)
    assert report.files_checked == 2
    assert report.clean
