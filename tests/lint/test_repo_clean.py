"""Acceptance: the real tree is violation-free under the full rule pack.

This is the pytest twin of the CI gate ``python -m repro_lint src/`` —
if it fails, either a real invariant violation slipped in (fix the code)
or a rule is over-broad (fix the rule, with a fixture proving the false
positive).
"""

from __future__ import annotations

from repro_lint.__main__ import main
from repro_lint.engine import run_paths
from repro_lint.rules import ALL_RULES

from .conftest import REPO_ROOT


def test_src_tree_has_zero_violations():
    report = run_paths([str(REPO_ROOT / "src")], ALL_RULES)
    assert report.parse_errors == []
    assert report.files_checked > 50  # the whole package, not a subset
    assert [v.render() for v in report.violations] == []


def test_cli_gate_matches_ci_invocation():
    assert main([str(REPO_ROOT / "src")]) == 0
