"""Per-rule fixture tests: every rule proven by a trigger and a clean twin.

Each fixture is linted through ``check_source`` with a ``virtual_path``
inside the rule's scope (the fixtures live under ``tests/lint/fixtures``,
where no rule applies by path), so the assertions exercise exactly the
rule logic, not the directory layout.
"""

from __future__ import annotations

import pytest
from repro_lint.engine import check_source
from repro_lint.rules import ALL_RULES, rule_by_id

from .conftest import FIXTURES_DIR

# (rule id, trigger fixture, clean fixture, in-scope virtual path,
#  minimum violations the trigger must raise)
CASES = [
    ("RL001", "rl001_trigger.py", "rl001_clean.py", "src/repro/core/sampler.py", 3),
    ("RL002", "rl002_trigger.py", "rl002_clean.py", "src/repro/sim/clocked.py", 2),
    ("RL003", "rl003_trigger.py", "rl003_clean.py", "src/repro/core/compare.py", 2),
    ("RL004", "rl004_trigger.py", "rl004_clean.py", "src/repro/overload/meddler.py", 3),
    ("RL005", "rl005_trigger.py", "rl005_clean.py", "src/repro/sim/events.py", 1),
    ("RL006", "rl006_trigger.py", "rl006_clean.py", "src/repro/gateway/handlers/sample.py", 2),
]


def _lint(fixture: str, rule_id: str, virtual_path: str):
    source = (FIXTURES_DIR / fixture).read_text(encoding="utf-8")
    return check_source(
        source,
        path=fixture,
        rules=[rule_by_id(rule_id)],
        virtual_path=virtual_path,
    )


@pytest.mark.parametrize("rule_id,trigger,clean,virtual,minimum", CASES)
class TestFixturePairs:
    def test_trigger_fixture_fails(self, rule_id, trigger, clean, virtual, minimum):
        findings = _lint(trigger, rule_id, virtual)
        assert len(findings) >= minimum
        assert {f.rule_id for f in findings} == {rule_id}
        assert all(f.line > 0 for f in findings)

    def test_clean_fixture_passes(self, rule_id, trigger, clean, virtual, minimum):
        assert _lint(clean, rule_id, virtual) == []


class TestScoping:
    """Rules fire only inside the paths their invariants cover."""

    def test_rl001_exempt_inside_rng(self):
        assert _lint("rl001_trigger.py", "RL001", "src/repro/rng/streams.py") == []

    def test_rl002_exempt_outside_sim_layers(self):
        assert _lint("rl002_trigger.py", "RL002", "src/repro/workload/client.py") == []

    def test_rl003_exempt_in_distribution_module(self):
        assert _lint("rl003_trigger.py", "RL003", "src/repro/core/distribution.py") == []

    def test_rl004_allowed_inside_gateway_handlers(self):
        assert (
            _lint(
                "rl004_trigger.py",
                "RL004",
                "src/repro/gateway/handlers/timing_fault.py",
            )
            == []
        )

    def test_rl005_scoped_to_hot_files(self):
        assert _lint("rl005_trigger.py", "RL005", "src/repro/core/selection.py") == []

    def test_rl006_exempt_outside_gateway_handlers(self):
        # The kernel itself (and drivers, experiments, ...) read
        # `sim.now` legitimately — only host-level handler code is held
        # to the host-clock discipline.
        assert _lint("rl006_trigger.py", "RL006", "src/repro/sim/kernel.py") == []


def test_every_rule_has_a_fixture_pair():
    covered = {case[0] for case in CASES}
    assert covered == {rule.rule_id for rule in ALL_RULES}
