"""Tests for the calibration analysis."""

import pytest

from repro.analysis.calibration import brier_score, calibration_table
from repro.gateway.handlers.timing_fault import ReplyOutcome


def _outcome(prediction, timely, bootstrap=False):
    meta = {"bootstrap": bootstrap}
    if prediction is not None:
        meta["full_probability"] = prediction
    return ReplyOutcome(
        value=0,
        response_time_ms=100.0,
        timely=timely,
        timed_out=False,
        replica="r1",
        redundancy=2,
        request_id=1,
        decision_meta=meta,
    )


class TestCalibrationTable:
    def test_buckets_by_prediction(self):
        outcomes = (
            [_outcome(0.95, True)] * 9
            + [_outcome(0.95, False)]
            + [_outcome(0.15, False)] * 8
            + [_outcome(0.15, True)] * 2
        )
        buckets = calibration_table(outcomes, num_buckets=10)
        assert len(buckets) == 2
        low, high = buckets
        assert low.low == pytest.approx(0.1)
        assert low.observed_timely == pytest.approx(0.2)
        assert high.observed_timely == pytest.approx(0.9)

    def test_prediction_of_one_lands_in_top_bucket(self):
        buckets = calibration_table([_outcome(1.0, True)], num_buckets=10)
        assert len(buckets) == 1
        assert buckets[0].high == pytest.approx(1.0)

    def test_bootstrap_outcomes_skipped(self):
        outcomes = [_outcome(0.9, True, bootstrap=True)]
        assert calibration_table(outcomes) == []

    def test_missing_prediction_skipped(self):
        assert calibration_table([_outcome(None, True)]) == []

    def test_overconfidence_sign(self):
        bucket = calibration_table(
            [_outcome(0.95, False)] * 3 + [_outcome(0.95, True)]
        )[0]
        assert bucket.overconfidence > 0  # promised 0.95, delivered 0.25

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            calibration_table([], num_buckets=0)


class TestBrierScore:
    def test_perfect_predictions(self):
        outcomes = [_outcome(1.0, True), _outcome(0.0, False)]
        assert brier_score(outcomes) == pytest.approx(0.0)

    def test_coin_flip_predictions(self):
        outcomes = [_outcome(0.5, True), _outcome(0.5, False)]
        assert brier_score(outcomes) == pytest.approx(0.25)

    def test_no_scorable_outcomes_raises(self):
        with pytest.raises(ValueError):
            brier_score([_outcome(None, True)])
