"""Tests for the stage-decomposition analysis."""

import pytest

from repro.analysis.stages import extract_stages, stage_summaries
from repro.core.qos import QoSSpec
from repro.sim.random import Constant
from repro.workload.scenarios import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def traced_run():
    config = ScenarioConfig(
        seed=0,
        num_replicas=3,
        trace=True,
        service_distribution_factory=lambda host: Constant(40.0),
    )
    scenario = Scenario(config)
    client = scenario.add_client(
        "client-1",
        QoSSpec(config.service, 500.0, 0.5),
        num_requests=10,
        think_time=Constant(50.0),
    )
    scenario.run_to_completion()
    return scenario, client


def test_every_completed_request_is_decomposed(traced_run):
    scenario, client = traced_run
    stages = extract_stages(scenario.tracer)
    assert len(stages) == len(client.outcomes)


def test_stage_sum_matches_total(traced_run):
    scenario, _client = traced_run
    for s in extract_stages(scenario.tracer):
        parts = (
            s.client_ms + s.request_ms + s.queue_ms + s.service_ms + s.reply_ms
        )
        # Server-side demarshal/marshal live between the stages; the sum
        # must match the total up to those small gateway costs.
        assert parts <= s.total_ms + 1e-9
        assert s.total_ms - parts < 2.0


def test_service_stage_matches_configured_time(traced_run):
    scenario, _client = traced_run
    for s in extract_stages(scenario.tracer):
        assert s.service_ms == pytest.approx(40.0)


def test_decomposition_follows_winning_replica(traced_run):
    scenario, client = traced_run
    stages = {s.msg_id: s for s in extract_stages(scenario.tracer)}
    replies = [o for o in client.outcomes if o.replica]
    winners = {o.replica for o in replies}
    assert all(s.replica in winners for s in stages.values())


def test_network_share_is_small_on_lan(traced_run):
    scenario, _client = traced_run
    for s in extract_stages(scenario.tracer):
        assert 0.0 <= s.network_share() < 0.4


def test_summaries_cover_all_stages(traced_run):
    scenario, _client = traced_run
    summaries = stage_summaries(extract_stages(scenario.tracer))
    assert set(summaries) == {
        "client", "request-net", "queueing", "service", "reply-net", "total"
    }
    assert summaries["total"].mean > summaries["service"].mean


def test_empty_trace_raises():
    with pytest.raises(ValueError):
        stage_summaries([])
