"""Run the doctest examples embedded in module docstrings.

Keeps the documentation honest: if a docstring example drifts from the
API, this fails.
"""

import doctest

import pytest

import repro.sim.process
import repro.sim.random

MODULES_WITH_EXAMPLES = [
    repro.sim.process,
    repro.sim.random,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, (
        f"{module.__name__} lost its doctest examples"
    )
    assert results.failed == 0
