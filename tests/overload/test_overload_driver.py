"""The flash-crowd driver and the OverloadFault schedule family."""

import dataclasses

import numpy as np
import pytest

from repro.faultinject import (
    FaultSchedule,
    OverloadDriver,
    OverloadFault,
    random_fault_schedule,
)
from repro.overload import AdmissionConfig, LoadConfig, OverloadConfig
from repro.sim.random import Constant

from ..faults.conftest import FaultStack

REPLICAS = [f"s-{i + 1}" for i in range(5)]


def test_overload_fault_validation():
    with pytest.raises(ValueError):
        OverloadFault(start_ms=10.0, end_ms=10.0)
    with pytest.raises(ValueError):
        OverloadFault(start_ms=0.0, end_ms=10.0, surge_interarrival_ms=0.0)


def test_driver_requires_known_submitters():
    stack = FaultStack()
    with pytest.raises(ValueError):
        OverloadDriver(stack.sim, {})
    driver = OverloadDriver(stack.sim, {"c-1": lambda arg: None})
    with pytest.raises(KeyError):
        driver.apply_overload(
            OverloadFault(start_ms=0.0, end_ms=10.0, clients=("nope",))
        )


def test_surge_requests_flow_through_the_real_client_path():
    stack = FaultStack(seed=4)
    for host in REPLICAS[:3]:
        stack.add_server(host, service_time=Constant(8.0))
    stack.add_client("c-1", deadline_ms=100.0, response_timeout_factor=3.0)
    driver = OverloadDriver(
        stack.sim, {"c-1": lambda arg: stack.invoke("c-1", arg)}
    )
    schedule = FaultSchedule(
        overloads=(
            OverloadFault(start_ms=10.0, end_ms=60.0, surge_interarrival_ms=5.0),
        )
    )
    driver.apply(schedule)
    stack.sim.run()

    assert driver.surges_applied == 1
    assert driver.surge_requests == 10  # 10, 15, ..., 55
    assert driver.drained()
    # Every surge request was booked by the auditor (it went through the
    # wrapped submit) and completed exactly once.
    report = stack.auditor.assert_clean()
    assert report.submitted == driver.surge_requests
    assert report.replies == driver.surge_requests


def test_overload_windows_draw_after_existing_families():
    # Adding overload windows to a randomized schedule must not disturb
    # any previously drawn fault: same seed, same drops/delays/crashes.
    base = random_fault_schedule(
        np.random.default_rng(7), horizon_ms=4000.0, replicas=REPLICAS
    )
    extended = random_fault_schedule(
        np.random.default_rng(7),
        horizon_ms=4000.0,
        replicas=REPLICAS,
        overload_windows=2,
    )
    assert len(extended.overloads) == 2
    for field in dataclasses.fields(FaultSchedule):
        if field.name == "overloads":
            continue
        assert getattr(extended, field.name) == getattr(base, field.name), (
            field.name
        )
    for fault in extended.overloads:
        assert 0.0 <= fault.start_ms < fault.end_ms <= 4000.0 * 0.85


def test_randomized_schedule_with_surges_and_shedding_audits_clean():
    """The ISSUE's composition check: flash crowds + message faults +
    crash/churn + an aggressively shedding client all drain to a clean
    audit with reply XOR timeout XOR shed accounting."""
    stack = FaultStack(seed=6, fault_seed=17)
    for host in REPLICAS:
        stack.add_server(host, service_time=Constant(8.0))
    stack.add_client(
        "c-1",
        deadline_ms=9.0,  # barely attainable: sheds once engaged
        response_timeout_factor=4.0,
        overload_config=OverloadConfig(
            load=LoadConfig(target_queue_depth=2.0, ewma_alpha=0.6),
            governor=None,
            admission=AdmissionConfig(
                floor_probability=0.99,
                engage_load=0.0,
                hedge_suppress_load=0.0,
            ),
        ),
    )
    schedule = random_fault_schedule(
        np.random.default_rng(29),
        horizon_ms=2000.0,
        replicas=REPLICAS,
        overload_windows=2,
    )
    stack.transport.schedule = schedule
    stack.make_driver().apply(schedule)
    surge = OverloadDriver(
        stack.sim, {"c-1": lambda arg: stack.invoke("c-1", arg)}
    )
    surge.apply(schedule)

    def load():
        for i in range(120):
            yield stack.invoke("c-1", i)
            yield stack.sim.timeout(5.0)

    stack.sim.spawn(load(), name="load")
    stack.sim.run()

    assert surge.surge_requests > 0
    assert surge.drained()
    report = stack.auditor.assert_clean()
    assert report.submitted == 120 + surge.surge_requests
    assert report.completed == report.submitted
    assert report.sheds > 0  # the admission controller actually engaged
    assert report.replies > 0  # bootstrap / modelless requests got through
    assert stack.clients["c-1"].sheds == report.sheds
