"""Unit tests for the admission controller (repro.overload.admission)."""

import pytest

from repro.overload import AdmissionConfig, AdmissionController


def test_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(floor_probability=1.5)
    with pytest.raises(ValueError):
        AdmissionConfig(floor_probability=-0.1)
    with pytest.raises(ValueError):
        AdmissionConfig(engage_load=-1.0)
    with pytest.raises(ValueError):
        # Hedges must be cut before fresh work is rejected.
        AdmissionConfig(engage_load=0.5, hedge_suppress_load=0.9)
    AdmissionConfig(engage_load=0.5, hedge_suppress_load=0.5)


def test_best_probability_reads_the_decision_annotations():
    best = AdmissionController.best_probability
    assert best({"probabilities": {"s-1": 0.2, "s-2": 0.7}}) == 0.7
    assert best({"probabilities": {}}) is None
    assert best({"bootstrap": True}) is None
    assert best({"probabilities": "garbage"}) is None


def test_admits_everything_below_the_engage_load():
    controller = AdmissionController(
        AdmissionConfig(floor_probability=0.9, engage_load=1.0,
                        hedge_suppress_load=0.8)
    )
    meta = {"probabilities": {"s-1": 0.01}}  # hopeless, but not engaged
    assert controller.should_shed(meta, load=0.99) is False
    assert controller.admitted == 1
    assert controller.sheds == 0


def test_sheds_hopeless_requests_once_engaged():
    controller = AdmissionController(
        AdmissionConfig(floor_probability=0.5, engage_load=1.0,
                        hedge_suppress_load=0.8)
    )
    doomed = {"probabilities": {"s-1": 0.1, "s-2": 0.4}}
    viable = {"probabilities": {"s-1": 0.1, "s-2": 0.6}}
    assert controller.should_shed(doomed, load=1.0) is True
    assert controller.should_shed(viable, load=1.0) is False
    assert (controller.admitted, controller.sheds) == (1, 1)


def test_modelless_decisions_are_always_admitted():
    controller = AdmissionController(
        AdmissionConfig(floor_probability=0.99, engage_load=0.0,
                        hedge_suppress_load=0.0)
    )
    # Bootstrap / static-fallback decisions carry no probabilities:
    # without evidence of hopelessness, shedding would be guessing.
    assert controller.should_shed({"bootstrap": True}, load=10.0) is False
    assert controller.admitted == 1


def test_hedge_suppression_engages_below_the_shed_threshold():
    controller = AdmissionController(
        AdmissionConfig(floor_probability=0.5, engage_load=1.0,
                        hedge_suppress_load=0.8)
    )
    assert controller.suppress_hedging(0.7) is False
    assert controller.suppress_hedging(0.8) is True
    assert controller.hedges_suppressed == 1
