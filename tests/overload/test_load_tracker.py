"""Unit tests for the load tracker (repro.overload.load)."""

import pytest

from repro.overload import LoadConfig, LoadTracker


def test_config_validation():
    with pytest.raises(ValueError):
        LoadConfig(target_queue_depth=0.0)
    with pytest.raises(ValueError):
        LoadConfig(ewma_alpha=0.0)
    with pytest.raises(ValueError):
        LoadConfig(ewma_alpha=1.5)
    with pytest.raises(ValueError):
        LoadConfig(inflight_weight=-0.1)
    LoadConfig(ewma_alpha=1.0)  # no smoothing is a legal edge


def test_unseen_replica_and_empty_pool_read_idle():
    tracker = LoadTracker()
    assert tracker.replica_load("s-1") == 0.0
    assert tracker.system_load() == 0.0
    assert tracker.system_load([]) == 0.0
    # Cold start: known names but no observations must read idle too.
    assert tracker.system_load(["s-1", "s-2"]) == 0.0


def test_reply_folds_ewma_of_the_implied_depth():
    tracker = LoadTracker(LoadConfig(target_queue_depth=4.0, ewma_alpha=0.5))
    tracker.observe_reply("s-1", queue_length=4, now_ms=1.0)
    assert tracker.replica_load("s-1") == pytest.approx(1.0)
    tracker.observe_reply("s-1", queue_length=0, now_ms=2.0)
    # EWMA: 0.5 * 0 + 0.5 * 4 = 2 -> 2 / 4 = 0.5
    assert tracker.replica_load("s-1") == pytest.approx(0.5)
    assert tracker.observations == 2


def test_implied_depth_is_max_of_queue_length_and_tq_over_ts():
    tracker = LoadTracker(LoadConfig(target_queue_depth=2.0, ewma_alpha=1.0))
    # Queue reads short but the request waited 6 service times: load.
    tracker.observe_reply(
        "s-1", queue_length=1, queue_delay_ms=30.0, service_time_ms=5.0
    )
    assert tracker.replica_load("s-1") == pytest.approx(6.0 / 2.0)
    # Unknown service time falls back to the queue length alone.
    tracker.observe_reply(
        "s-2", queue_length=3, queue_delay_ms=30.0, service_time_ms=0.0
    )
    assert tracker.replica_load("s-2") == pytest.approx(3.0 / 2.0)


def test_probe_observation_feeds_the_same_index():
    tracker = LoadTracker(LoadConfig(target_queue_depth=4.0, ewma_alpha=1.0))
    tracker.observe_probe("s-1", queue_length=8, now_ms=10.0)
    assert tracker.replica_load("s-1") == pytest.approx(2.0)


def test_system_load_averages_over_the_given_pool():
    tracker = LoadTracker(LoadConfig(target_queue_depth=4.0, ewma_alpha=1.0))
    tracker.observe_reply("s-1", queue_length=4)
    tracker.observe_reply("s-2", queue_length=0)
    assert tracker.system_load(["s-1", "s-2"]) == pytest.approx(0.5)
    # An idle third replica dilutes the mean.
    assert tracker.system_load(["s-1", "s-2", "s-3"]) == pytest.approx(1 / 3)


def test_inflight_component_and_quarantine_concentration():
    calls = {"n": 8}
    tracker = LoadTracker(
        LoadConfig(target_queue_depth=4.0, ewma_alpha=1.0, inflight_weight=1.0),
        inflight_provider=lambda: calls["n"],
    )
    # 8 copies over 2 replicas x depth 4 = a full target's worth of work.
    assert tracker.system_load(["s-1", "s-2"]) == pytest.approx(1.0)
    # The same in-flight work over a *shrunken* active set (quarantine)
    # reads as higher load — the governor tightens, not re-amplifies.
    assert tracker.system_load(["s-1"]) == pytest.approx(2.0)
    calls["n"] = 0
    assert tracker.system_load(["s-1", "s-2"]) == 0.0


def test_inflight_weight_zero_ignores_inflight():
    tracker = LoadTracker(
        LoadConfig(inflight_weight=0.0), inflight_provider=lambda: 100
    )
    assert tracker.system_load(["s-1"]) == 0.0


def test_sync_members_drops_departed_state():
    tracker = LoadTracker(LoadConfig(ewma_alpha=1.0))
    tracker.observe_reply("s-1", queue_length=4)
    tracker.observe_reply("s-2", queue_length=4)
    tracker.sync_members(["s-2"])
    assert tracker.replica_load("s-1") == 0.0  # rejoin starts fresh
    assert tracker.replica_load("s-2") > 0.0


def test_negative_implied_depth_rejected():
    tracker = LoadTracker()
    with pytest.raises(ValueError):
        tracker.observe_reply("s-1", queue_length=-1)
