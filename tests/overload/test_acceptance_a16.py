"""The ISSUE's A16 acceptance criterion, runnable in CI.

At the flash-crowd knee (eight closed-loop clients against five
replicas) the ungoverned paper stack collapses — its in-deadline
fraction drops below 0.5 as select-all hedging amplifies the very load
that caused it — while the governed stack keeps the admitted in-deadline
fraction at or above 0.9 with a bounded, metered shed fraction.

``FAULT_ACCEPTANCE_SCALE`` (the nightly job sets 5) widens the seed set
and unlocks the confound check that queue-scaled estimation alone — the
estimator the governed stack pairs with — does *not* avert the collapse.
"""

import os

import pytest

from repro.experiments.overload_collapse import run_one

SCALE = max(1, int(os.environ.get("FAULT_ACCEPTANCE_SCALE", "1")))
SEEDS = (0,) if SCALE == 1 else (0, 1)


@pytest.mark.parametrize("seed", SEEDS)
def test_ungoverned_collapses_at_the_knee(seed):
    timely, _adm, shed, redundancy, _resp = run_one(
        governed=False, num_clients=8, seed=seed
    )
    assert timely < 0.5, f"expected collapse, got timely={timely:.3f}"
    assert shed == 0.0  # nothing sheds without the subsystem
    # The collapse mechanism on display: hedging escalated to select-all.
    assert redundancy > 4.5


@pytest.mark.parametrize("seed", SEEDS)
def test_governed_sustains_admitted_timeliness(seed):
    timely, admitted_timely, shed, redundancy, _resp = run_one(
        governed=True, num_clients=8, seed=seed
    )
    assert admitted_timely >= 0.9, (
        f"governed admitted timeliness {admitted_timely:.3f} < 0.9"
    )
    assert shed <= 0.2, f"shed fraction {shed:.3f} unbounded"
    # Sheds are metered, so the issued-requests view stays honest:
    # timely = admitted_timely * (1 - shed).
    assert timely == pytest.approx(admitted_timely * (1.0 - shed), abs=1e-9)
    assert redundancy < 3.0  # the governor held hedging down


@pytest.mark.skipif(
    SCALE < 2, reason="confound check runs in the nightly acceptance job"
)
def test_queue_scaled_estimation_alone_does_not_avert_collapse():
    """The governed variant pairs the governor with the A11 queue-scaled
    estimator; this pins down that the *governor* is the load-bearing
    part: the same estimator without governor/admission still collapses
    past the knee."""
    from repro.core.estimator import QueueScaledEstimator
    from repro.core.qos import QoSSpec
    from repro.experiments.overload_collapse import (
        DEADLINE_MS,
        NUM_REPLICAS,
        SERVICE_MEAN_MS,
        SERVICE_SIGMA_MS,
        THINK_MS,
    )
    from repro.sim.random import Exponential, Normal
    from repro.workload.scenarios import Scenario, ScenarioConfig

    scenario = Scenario(
        ScenarioConfig(
            seed=0,
            num_replicas=NUM_REPLICAS,
            service_mean_ms=SERVICE_MEAN_MS,
            service_sigma_ms=SERVICE_SIGMA_MS,
            service_distribution_factory=lambda host: Normal(
                SERVICE_MEAN_MS, SERVICE_SIGMA_MS
            ),
            response_timeout_factor=3.0,
            keep_samples=False,
        )
    )
    clients = [
        scenario.add_client(
            f"client-{i + 1}",
            QoSSpec(
                scenario.config.service,
                deadline_ms=DEADLINE_MS,
                min_probability=0.9,
            ),
            num_requests=40,
            think_time=Exponential(THINK_MS),
            handler_kwargs={
                "estimator_factory": lambda repo: QueueScaledEstimator(
                    repo, bin_width_ms=1.0
                )
            },
        )
        for i in range(16)
    ]
    scenario.run_to_completion()
    scenario.audit_lifecycle()
    summaries = [c.summary() for c in clients]
    requests = sum(s.requests for s in summaries)
    failures = sum(s.timing_failures for s in summaries)
    timely = (requests - failures) / requests
    assert timely < 0.5, (
        f"queue scaling alone sustained timely={timely:.3f}; the A16 "
        "narrative (governor is load-bearing) no longer holds"
    )
