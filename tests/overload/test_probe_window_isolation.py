"""Probe replies must never pollute the ``W_i`` performance windows.

A probe is answered by the *gateway* (it bypasses the FIFO queue), so it
measures the network round-trip and samples the queue depth — it carries
no service time and no queuing delay.  Folding it into the service-time /
queuing-delay windows would corrupt the very model the probes exist to
keep fresh.  The regression: run traffic, snapshot every window, let a
burst of staleness probes fire over an idle period, and require the
windows — values, versions, and the cached pmf objects — bit-identical.
"""

from repro.sim.random import Constant

from ..faults.conftest import FaultStack

REPLICAS = ["s-1", "s-2", "s-3"]
BIN_WIDTH = 1.0


def _window_state(handler):
    state = {}
    for name in handler.repository.replicas():
        record = handler.repository.record(name)
        state[name] = (
            tuple(record.service_times.values()),
            tuple(record.queue_delays.values()),
            record.service_times.version,
            record.queue_delays.version,
            record.service_times.pmf(BIN_WIDTH),
            record.queue_delays.pmf(BIN_WIDTH),
        )
    return state


def test_probe_burst_leaves_window_pmfs_bit_identical():
    stack = FaultStack(seed=3)
    for host in REPLICAS:
        stack.add_server(host, service_time=Constant(8.0))
    stack.add_client(
        "c-1",
        deadline_ms=100.0,
        response_timeout_factor=3.0,
        probe_staleness_ms=30.0,
        probe_interval_ms=10.0,
    )
    handler = stack.clients["c-1"]

    def load():
        for i in range(5):
            yield stack.invoke("c-1", i)
            yield stack.sim.timeout(3.0)

    stack.sim.spawn(load(), name="load")
    stack.sim.run()
    before = _window_state(handler)
    assert before  # traffic actually filled the windows
    probes_before = handler.probes_sent

    # An idle stretch many staleness thresholds long: every record goes
    # stale and the probe tick fires a burst of probes, whose replies
    # arrive while nothing else is running.
    def hold():
        yield stack.sim.timeout(300.0)

    stack.sim.spawn(hold(), name="hold")
    stack.sim.run()

    assert handler.probes_sent > probes_before  # the burst happened
    assert handler.probes_expired == 0  # every probe was answered
    after = _window_state(handler)
    assert set(after) == set(before)
    for name, (values_s, values_q, ver_s, ver_q, pmf_s, pmf_q) in before.items():
        assert after[name][0] == values_s, name
        assert after[name][1] == values_q, name
        assert after[name][2] == ver_s, name
        assert after[name][3] == ver_q, name
        # Unchanged version means the cached pmf object itself survives:
        # bit-identical is literal.
        assert after[name][4] is pmf_s, name
        assert after[name][5] is pmf_q, name
    stack.auditor.assert_clean()


def test_probe_replies_do_refresh_queue_length_and_load_index():
    from repro.overload import OverloadConfig

    stack = FaultStack(seed=3)
    for host in REPLICAS:
        stack.add_server(host, service_time=Constant(8.0))
    stack.add_client(
        "c-1",
        deadline_ms=100.0,
        response_timeout_factor=3.0,
        probe_staleness_ms=30.0,
        probe_interval_ms=10.0,
        overload_config=OverloadConfig(governor=None, admission=None),
    )
    handler = stack.clients["c-1"]
    stack.invoke("c-1", 1)
    stack.sim.run()

    def hold():
        yield stack.sim.timeout(100.0)

    stack.sim.spawn(hold(), name="hold")
    stack.sim.run()
    assert handler.probes_sent > 0
    # The probe's legitimate outputs: the repository's queue-length field
    # and the load tracker both saw the sampled (idle) depth.
    assert handler.load_tracker.observations > 0
    for name in REPLICAS:
        assert handler.repository.record(name).queue_length == 0
