"""The shed path through the client handler and the lifecycle auditor.

A shed is the third completion outcome (reply XOR timeout XOR shed): the
client's event fires immediately, no copy hits the wire, no ``_pending``
record exists, and the response-time statistics stay untouched — load
control is not a timing fault.
"""

from repro.gateway.handlers.retransmit import RetransmittingClientHandler
from repro.overload import (
    AdmissionConfig,
    LoadConfig,
    OverloadConfig,
)
from repro.sim.random import Constant

from ..faults.conftest import FaultStack

REPLICAS = ["s-1", "s-2", "s-3"]


def shed_everything_config() -> OverloadConfig:
    """Always engaged, impossible floor: every modeled request sheds."""
    return OverloadConfig(
        load=LoadConfig(target_queue_depth=1.0, ewma_alpha=1.0),
        governor=None,
        admission=AdmissionConfig(
            floor_probability=0.99, engage_load=0.0, hedge_suppress_load=0.0
        ),
    )


def make_stack(**client_kwargs) -> FaultStack:
    stack = FaultStack(seed=1)
    for host in REPLICAS:
        stack.add_server(host, service_time=Constant(8.0))
    stack.add_client(
        "c-1",
        deadline_ms=5.0,  # unattainable: service alone takes 8 ms
        response_timeout_factor=4.0,
        **client_kwargs,
    )
    return stack


def test_shed_outcome_is_failfast_and_audited():
    stack = make_stack(overload_config=shed_everything_config())
    handler = stack.clients["c-1"]

    # Request 1 bootstraps (no model yet -> always admitted) and seeds
    # the windows with evidence that the deadline is hopeless.
    first = stack.invoke("c-1", 1)
    stack.sim.run()
    assert first.value.shed is False

    second = stack.invoke("c-1", 2)
    stack.sim.run()
    outcome = second.value
    assert outcome.shed is True
    assert outcome.timed_out is False
    assert outcome.replica is None
    assert outcome.value is None
    assert outcome.redundancy == 0
    assert outcome.request_id == -1
    assert "shed_load" in outcome.decision_meta

    assert handler.sheds == 1
    assert handler.admission.sheds == 1
    assert handler._pending == {}  # never registered: nothing to leak
    # Sheds stay out of the QoS statistics (only request 1 was served).
    assert handler.stats.responses == 1
    assert (
        handler.metrics.counter(
            "tf.sheds", labels={"client": "c-1", "service": "search"}
        )
        == 1
    )

    report = stack.auditor.assert_clean()
    assert (report.submitted, report.replies, report.sheds) == (2, 1, 1)
    assert report.timeouts == 0
    assert report.completed == 2
    assert "1 sheds" in str(report)


def test_without_admission_nothing_sheds():
    stack = make_stack(
        overload_config=OverloadConfig(governor=None, admission=None)
    )
    for i in range(3):
        stack.invoke("c-1", i)
        stack.sim.run()
    assert stack.clients["c-1"].sheds == 0
    assert stack.auditor.assert_clean().sheds == 0


def test_auditor_flags_contradictory_shed_outcomes():
    from repro.faultinject.auditor import LifecycleAuditor

    stack = make_stack(overload_config=shed_everything_config())
    stack.invoke("c-1", 1)
    stack.sim.run()  # request 1 seeds the model...
    stack.invoke("c-1", 2)
    stack.sim.run()  # ...so request 2 is shed
    auditor: LifecycleAuditor = stack.auditor
    shed_records = [
        r for r in auditor.records
        if r.outcomes and getattr(r.outcomes[0], "shed", False)
    ]
    assert shed_records  # request 2 shed
    # Corrupt the outcome: a shed that also claims a timeout must be a
    # violation, as must a shed that names a replica.
    from dataclasses import replace

    record = shed_records[0]
    record.outcomes[0] = replace(record.outcomes[0], timed_out=True)
    report = auditor.audit()
    assert any("shed AND timeout" in v for v in report.violations)
    record.outcomes[0] = replace(
        record.outcomes[0], timed_out=False, replica="s-1"
    )
    report = auditor.audit()
    assert any("shed AND reply" in v for v in report.violations)


def test_hedged_retransmissions_are_suppressed_first():
    def build(config):
        stack = FaultStack(seed=2)
        for host in REPLICAS:
            stack.add_server(host, service_time=Constant(30.0))
        stack.add_client(
            "c-1",
            deadline_ms=100.0,
            handler_cls=RetransmittingClientHandler,
            retry_timeout_ms=5.0,
            max_retries=2,
            response_timeout_factor=3.0,
            overload_config=config,
        )
        for i in range(4):
            stack.invoke("c-1", i)
            stack.sim.run()
        stack.auditor.assert_clean()
        return stack.clients["c-1"]

    # Floor 0.0 never sheds; hedge_suppress_load 0.0 always suppresses.
    suppressing = OverloadConfig(
        governor=None,
        admission=AdmissionConfig(
            floor_probability=0.0, engage_load=0.0, hedge_suppress_load=0.0
        ),
    )
    baseline = build(None)
    governed = build(suppressing)
    assert baseline.retransmissions > 0  # 30 ms service vs 5 ms retry
    assert governed.retransmissions == 0
    assert governed.admission.hedges_suppressed > 0
    assert governed.sheds == 0
