"""Unit tests for the redundancy governor (repro.overload.governor)."""

import numpy as np
import pytest

from repro.core.qos import QoSSpec
from repro.core.selection import (
    DynamicSelectionPolicy,
    SelectionContext,
    SelectionDecision,
    SelectionPolicy,
)
from repro.overload import GovernorConfig, GovernedSelectionPolicy, LoadTracker

REPLICAS = [f"s-{i + 1}" for i in range(5)]


class StubTracker:
    """A tracker whose system load is set directly by the test."""

    def __init__(self, load=0.0):
        self.load = load
        self.seen_names = None

    def system_load(self, names=None):
        self.seen_names = list(names) if names is not None else None
        return self.load


class FixedEstimator:
    """Maps replica name -> F_{R_i}(t), ignoring the deadline."""

    def __init__(self, probabilities):
        self.probabilities = probabilities

    def probability_by(self, replica, deadline_ms):
        return self.probabilities[replica]


class RecordingPolicy(SelectionPolicy):
    """Cap-blind inner policy that records the context it was handed."""

    name = "recording"
    crash_tolerance = 1

    def __init__(self, selected):
        self.selected = tuple(selected)
        self.contexts = []

    def decide(self, ctx):
        self.contexts.append(ctx)
        return SelectionDecision(selected=self.selected, meta={"inner": True})


def make_ctx(probabilities, min_probability=0.9, max_redundancy=None,
             health=None):
    names = sorted(probabilities)
    return SelectionContext(
        replicas=names,
        estimator=FixedEstimator(probabilities),
        qos=QoSSpec("search", 100.0, min_probability),
        now_ms=0.0,
        rng=np.random.default_rng(0),
        health=health,
        max_redundancy=max_redundancy,
    )


def test_config_validation():
    with pytest.raises(ValueError):
        GovernorConfig(engage_load=-0.1)
    with pytest.raises(ValueError):
        GovernorConfig(engage_load=1.0, saturate_load=1.0)
    with pytest.raises(ValueError):
        GovernorConfig(min_redundancy=0)


def test_cap_ladder_endpoints_and_interpolation():
    policy = GovernedSelectionPolicy(
        RecordingPolicy(REPLICAS),
        StubTracker(),
        GovernorConfig(engage_load=0.5, saturate_load=1.5),
    )
    assert policy.floor_redundancy() == 2  # crash_tolerance + 1
    assert policy.cap_for(0.0, 5) == 5  # idle: full hedging
    assert policy.cap_for(0.5, 5) == 5  # at engage: still uncapped
    assert policy.cap_for(1.5, 5) == 2  # at saturate: the floor
    assert policy.cap_for(9.9, 5) == 2  # beyond: never below the floor
    assert policy.cap_for(1.0, 5) == 4  # midpoint: ceil(0.5 * 3) above floor
    # Monotone non-increasing along the ladder.
    caps = [policy.cap_for(load, 5) for load in np.linspace(0.0, 2.0, 41)]
    assert all(a >= b for a, b in zip(caps, caps[1:]))
    # Floor clamps to the available count when the pool is tiny.
    assert policy.cap_for(9.9, 1) == 1
    assert policy.cap_for(0.0, 0) == 0


def test_min_redundancy_overrides_the_derived_floor():
    policy = GovernedSelectionPolicy(
        RecordingPolicy(REPLICAS),
        StubTracker(),
        GovernorConfig(min_redundancy=3),
    )
    assert policy.floor_redundancy() == 3
    assert policy.cap_for(99.0, 5) == 3


def test_inert_governor_passes_the_context_through_untouched():
    inner = RecordingPolicy(REPLICAS)
    policy = GovernedSelectionPolicy(
        inner, StubTracker(load=0.0), GovernorConfig()
    )
    ctx = make_ctx({name: 0.9 for name in REPLICAS})
    decision = policy.decide(ctx)
    # The very same object: zero-load decisions are bit-for-bit the
    # un-wrapped policy's.
    assert inner.contexts[0] is ctx
    assert decision.selected == tuple(REPLICAS)
    assert decision.meta["governor"]["engaged"] is False
    assert policy.engagements == 0


def test_engaged_governor_caps_via_the_context_and_trims_blind_policies():
    inner = RecordingPolicy(REPLICAS)  # ignores max_redundancy entirely
    policy = GovernedSelectionPolicy(
        inner,
        StubTracker(load=5.0),
        GovernorConfig(engage_load=0.5, saturate_load=1.5),
    )
    decision = policy.decide(make_ctx({name: 0.9 for name in REPLICAS}))
    assert inner.contexts[0].max_redundancy == 2
    assert decision.selected == tuple(REPLICAS[:2])  # post-hoc trim
    assert decision.meta["governor"] == {
        "load": 5.0,
        "cap": 2,
        "available": 5,
        "engaged": True,
    }
    assert policy.engagements == 1
    assert policy.last_load == 5.0


def test_existing_context_cap_is_respected():
    inner = RecordingPolicy(REPLICAS)
    policy = GovernedSelectionPolicy(inner, StubTracker(load=0.0))
    policy.decide(make_ctx({n: 0.9 for n in REPLICAS}, max_redundancy=3))
    # An upstream cap tighter than the governor's still reaches the inner
    # policy even while the governor itself is inert.
    assert inner.contexts[0].max_redundancy == 3


def test_quarantine_shrinks_the_capacity_the_load_is_computed_over():
    class Health:
        def is_quarantined(self, name):
            return name in {"s-4", "s-5"}

        def discount(self, name):
            return 1.0

    tracker = StubTracker(load=0.0)
    policy = GovernedSelectionPolicy(RecordingPolicy(REPLICAS), tracker)
    policy.decide(make_ctx({n: 0.9 for n in REPLICAS}, health=Health()))
    assert tracker.seen_names == ["s-1", "s-2", "s-3"]


def test_governed_dynamic_selection_stays_capped_under_load():
    tracker = LoadTracker()
    for name in REPLICAS:
        tracker.observe_reply(name, queue_length=40)  # way past saturate
    policy = GovernedSelectionPolicy(
        DynamicSelectionPolicy(crash_tolerance=1, compensate_overhead=False),
        tracker,
        GovernorConfig(engage_load=0.5, saturate_load=1.5),
    )
    # Hopeless probabilities would make ungoverned Algorithm 1 fall back
    # to selecting all five replicas; the governor holds it at the floor.
    ctx = make_ctx({name: 0.05 for name in REPLICAS}, min_probability=0.99)
    decision = policy.decide(ctx)
    assert len(decision.selected) == 2
    assert decision.meta["capped"] is True
    assert decision.meta["fallback"] is True
    assert policy.name == "governed-dynamic"
