"""Drain-time lifecycle auditing for the request path.

The :class:`LifecycleAuditor` wraps every watched client handler's
``submit`` so each intercepted request is tracked from submission to its
outcome event, then — once the simulation has drained — checks the
invariants that must hold no matter what faults were injected:

1. **Exactly-once completion**: every submitted request's outcome event
   fired exactly once, with a reply XOR a timeout XOR a shed (never two
   of them, never none).
2. **No leaked bookkeeping**: each handler's ``lifecycle_leaks()`` is
   empty — no ``_pending`` records, no retransmission ``_aliases``, no
   ``_probes_in_flight`` entries survive the drain.
3. **No resurrection**: no client repository holds a replica that is not
   in the handler's current membership view (a stale performance push
   must not bring an evicted replica back).
4. **Idle servers**: every non-crashed server has an empty queue and no
   request in service.
5. **No acks from the dark side** (partition-aware, needs
   :meth:`LifecycleAuditor.set_schedule`): a request whose entire
   lifetime fell inside a blackout cut separating its client from the
   replying replica cannot have received that reply — a reply anyway
   means partition enforcement leaked.

``audit()`` returns an :class:`AuditReport`; ``assert_clean()`` raises
:class:`LifecycleViolation` with the full report when anything leaked.
When a replay recipe has been attached via
:meth:`LifecycleAuditor.set_replay`, the report (and therefore the
violation message) carries the one-line command that reproduces the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .._compat import assert_never
from ..gateway.handlers.timing_fault import OutcomeKind, ReplyOutcome
from ..orb.object import MethodRequest
from ..sim.events import Event
from .schedule import FaultSchedule

__all__ = [
    "SubmissionRecord",
    "AuditReport",
    "LifecycleViolation",
    "LifecycleAuditor",
]


class LifecycleViolation(AssertionError):
    """Raised by :meth:`LifecycleAuditor.assert_clean` on a dirty audit."""


@dataclass
class SubmissionRecord:
    """One intercepted request and everything its event delivered."""

    client: str
    method: str
    submitted_at_ms: float
    event: Event
    outcomes: List[ReplyOutcome] = field(default_factory=list)
    failures: List[BaseException] = field(default_factory=list)


@dataclass
class AuditReport:
    """Result of one drain-time audit."""

    submitted: int
    replies: int
    timeouts: int
    violations: List[str]
    sheds: int = 0
    replay: Optional[str] = None

    @property
    def clean(self) -> bool:
        """Whether every invariant held."""
        return not self.violations

    @property
    def completed(self) -> int:
        """Requests that delivered exactly one outcome."""
        return self.replies + self.timeouts + self.sheds

    def __str__(self) -> str:
        head = (
            f"lifecycle audit: {self.submitted} submitted, "
            f"{self.replies} replies, {self.timeouts} timeouts, "
            f"{self.sheds} sheds"
        )
        if self.clean:
            return head + ", clean"
        lines = [head + f", {len(self.violations)} violation(s):"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        if self.replay is not None:
            lines.append(f"  replay: {self.replay}")
        return "\n".join(lines)


class LifecycleAuditor:
    """Tracks submissions and audits handler state at drain time."""

    def __init__(self) -> None:
        self._clients: List[Any] = []
        self._servers: List[Any] = []
        self.records: List[SubmissionRecord] = []
        self._schedule: Optional[FaultSchedule] = None
        self._replay: Optional[str] = None

    # -- wiring --------------------------------------------------------------
    def set_schedule(self, schedule: FaultSchedule) -> None:
        """Attach the injected fault schedule, enabling the
        partition-aware invariants (no acks from the dark side)."""
        self._schedule = schedule

    def set_replay(self, replay: str) -> None:
        """Attach a one-line replay recipe embedded in dirty reports."""
        self._replay = replay

    def watch_client(self, handler: Any) -> None:
        """Track every request submitted through ``handler``.

        The handler's ``submit`` is wrapped in place, so the auditor must
        be attached before traffic starts.
        """
        if any(existing is handler for existing in self._clients):
            return
        self._clients.append(handler)
        original = handler.submit
        records = self.records

        def audited_submit(request: MethodRequest) -> Event:
            event = original(request)
            record = SubmissionRecord(
                client=handler.host,
                method=request.method,
                submitted_at_ms=handler.sim.now,
                event=event,
            )
            event.add_callback(
                lambda e: (
                    record.outcomes.append(e.value)
                    if e.ok
                    else record.failures.append(e.value)
                )
            )
            records.append(record)
            return event

        handler.submit = audited_submit

    def watch_server(self, handler: Any) -> None:
        """Register a server handler for drain-time state checks."""
        if any(existing is handler for existing in self._servers):
            return
        self._servers.append(handler)

    # -- auditing --------------------------------------------------------------
    def audit(self) -> AuditReport:
        """Check every invariant; call only once the simulation drained."""
        violations: List[str] = []
        replies = 0
        timeouts = 0
        sheds = 0
        for index, record in enumerate(self.records):
            label = (
                f"request #{index} ({record.client}.{record.method} "
                f"@{record.submitted_at_ms:.1f}ms)"
            )
            if record.failures:
                violations.append(
                    f"{label}: outcome event failed with {record.failures[0]!r}"
                )
                continue
            if not record.event.processed:
                violations.append(f"{label}: never completed (leaked request)")
                continue
            if len(record.outcomes) != 1:
                violations.append(
                    f"{label}: completed {len(record.outcomes)} times, "
                    "expected exactly once"
                )
                continue
            outcome = record.outcomes[0]
            if outcome.response_time_ms < 0.0:
                # Response times are measured on the gateway's own clock;
                # even a faulted clock must never yield a negative span
                # (the handler clamps).  A negative here means a raw
                # cross-clock subtraction leaked into the measurement.
                violations.append(
                    f"{label}: negative response time "
                    f"{outcome.response_time_ms:.3f}ms (cross-clock "
                    "measurement leaked)"
                )
            # Branch on the closed OutcomeKind enum; the assert_never arm
            # makes the checker prove a new outcome kind cannot slip past
            # the audit unhandled.  The cross-flag checks below still read
            # the raw booleans: `kind` prioritizes SHED, so a corrupt
            # shed-AND-timeout outcome only shows up there.
            kind = outcome.kind
            if kind is OutcomeKind.SHED:
                sheds += 1
                if outcome.timed_out:
                    violations.append(
                        f"{label}: shed yet marked timed out (shed AND timeout)"
                    )
                if outcome.replica is not None:
                    violations.append(
                        f"{label}: shed yet names replica "
                        f"{outcome.replica!r} (shed AND reply)"
                    )
            elif kind is OutcomeKind.TIMEOUT:
                timeouts += 1
                if outcome.replica is not None:
                    violations.append(
                        f"{label}: timed out yet names replica "
                        f"{outcome.replica!r} (reply AND timeout)"
                    )
            elif kind is OutcomeKind.REPLY:
                replies += 1
                if outcome.replica is None:
                    violations.append(
                        f"{label}: replied without a replica "
                        "(neither reply nor timeout)"
                    )
                else:
                    violations.extend(
                        self._dark_side_violations(label, record, outcome)
                    )
            else:
                assert_never(kind)
        for handler in self._clients:
            violations.extend(self._handler_leaks("client", handler))
        for handler in self._servers:
            violations.extend(self._handler_leaks("server", handler))
        return AuditReport(
            submitted=len(self.records),
            replies=replies,
            timeouts=timeouts,
            violations=violations,
            sheds=sheds,
            replay=self._replay,
        )

    def _dark_side_violations(
        self, label: str, record: SubmissionRecord, outcome: ReplyOutcome
    ) -> List[str]:
        """Invariant 5: a reply across a total steady cut is impossible.

        Only *blackout* cuts (total, exemption-free, non-flapping) are
        checked — lossy, flapping or probe-exempt partitions legitimately
        let the odd message through, so convicting on them would be a
        false positive.
        """
        if self._schedule is None:
            return []
        assert outcome.replica is not None
        submitted = record.submitted_at_ms
        completed = submitted + outcome.response_time_ms
        violations: List[str] = []
        for fault in self._schedule.partitions:
            if not fault.blackout:
                continue
            if not fault.separates(record.client, outcome.replica):
                continue
            if fault.start_ms <= submitted and completed <= fault.end_ms:
                violations.append(
                    f"{label}: acknowledged by {outcome.replica!r} from the "
                    f"dark side of a blackout cut "
                    f"[{fault.start_ms:.1f}, {fault.end_ms:.1f}]ms "
                    "(partition enforcement leaked)"
                )
        return violations

    @staticmethod
    def _handler_leaks(role: str, handler: Any) -> List[str]:
        leaks: Dict[str, List[Any]] = handler.lifecycle_leaks()
        return [
            f"{role} {handler.host!r}: leaked {name} = {entries}"
            for name, entries in sorted(leaks.items())
        ]

    def assert_clean(self) -> AuditReport:
        """Audit and raise :class:`LifecycleViolation` on any violation."""
        report = self.audit()
        if not report.clean:
            raise LifecycleViolation(str(report))
        return report

    def __repr__(self) -> str:
        return (
            f"<LifecycleAuditor clients={len(self._clients)} "
            f"servers={len(self._servers)} records={len(self.records)}>"
        )
