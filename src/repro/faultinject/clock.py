"""The clock-fault plane: de-synchronize per-host virtual clocks.

The paper's protocol never assumes synchronized clocks — every interval
is measured on a single host — but an *implementation* can break that
discipline in many quiet ways (comparing a replica's absolute timestamp
with the gateway's, trusting a frozen clock's zero durations).  This
module injects the faults that expose such bugs, as declarative windows
over the :class:`~repro.sim.hostclock.HostClock` plane:

* ``skew``   — a constant offset for the window (bad initial sync);
* ``drift``  — the clock runs fast/slow by ``drift_ppm`` parts per
  million (oscillator error; ±500 ppm is a realistic bound);
* ``step``   — an NTP-style jump by ``step_ms`` at window start;
* ``freeze`` — the clock stops advancing (lost timer interrupts, VM
  pause); every duration measured across the freeze reads as zero;
* ``jitter`` — per-read uniform noise of ±``jitter_ms`` (failing timer
  hardware); readings are no longer monotone.

Every window ends with a ``resync()`` — an external time service
correcting the host — so a drained run finishes on healthy clocks.

:class:`ClockDriver` arms the windows on a running deployment, mirroring
the :class:`~repro.faultinject.partition.PartitionDriver` idiom: pure
data in the schedule, ``call_at`` transitions in the driver, counters
and trace events for the audits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from ..rng import RNGManager
from ..sim.hostclock import HostClock
from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .schedule import FaultSchedule

__all__ = ["CLOCK_FAULT_KINDS", "ClockFault", "ClockDriver"]

#: The declarative clock-fault family, in drawing order.
CLOCK_FAULT_KINDS = ("skew", "drift", "step", "freeze", "jitter")


@dataclass(frozen=True)
class ClockFault:
    """De-synchronize ``host``'s clock during ``[start_ms, end_ms)``.

    Exactly one magnitude parameter is meaningful per ``kind`` (see the
    module docstring); the others keep their defaults.  ``offset_ms``
    serves both ``skew`` (held for the window) and — via ``step_ms`` —
    the NTP-style jump; they share mechanics but model different
    operational events, so they stay distinct kinds in the family.
    """

    host: str
    start_ms: float
    end_ms: float
    kind: str = "skew"
    offset_ms: float = 0.0
    drift_ppm: float = 0.0
    step_ms: float = 0.0
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("a clock fault needs a host")
        if self.start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {self.start_ms}")
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"end_ms must exceed start_ms, got [{self.start_ms}, {self.end_ms}]"
            )
        if self.kind not in CLOCK_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {CLOCK_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.kind == "skew" and self.offset_ms == 0.0:  # repro-lint: disable=RL003 (config default detection)
            raise ValueError("a skew fault needs a non-zero offset_ms")
        if self.kind == "drift" and self.drift_ppm == 0.0:  # repro-lint: disable=RL003 (config default detection)
            raise ValueError("a drift fault needs a non-zero drift_ppm")
        if self.kind == "step" and self.step_ms == 0.0:  # repro-lint: disable=RL003 (config default detection)
            raise ValueError("a step fault needs a non-zero step_ms")
        if self.kind == "jitter" and self.jitter_ms <= 0.0:
            raise ValueError("a jitter fault needs a positive jitter_ms")
        if self.drift_ppm <= -1_000_000.0:
            raise ValueError(
                "drift_ppm must exceed -1e6 (a clock cannot run backward "
                f"continuously), got {self.drift_ppm}"
            )

    @property
    def rate(self) -> float:
        """The drift kind's clock rate (local ms per kernel ms)."""
        return 1.0 + self.drift_ppm / 1_000_000.0

    def active(self, now_ms: float) -> bool:
        """Whether the window covers ``now_ms``."""
        return self.start_ms <= now_ms < self.end_ms


class ClockDriver:
    """Applies :class:`ClockFault` windows to live :class:`HostClock` s.

    ``clocks`` maps host name to that host's clock (typically a
    :class:`~repro.sim.hostclock.ClockRegistry` snapshot); faults naming
    unknown hosts are ignored, mirroring the other drivers' tolerance of
    schedules drawn against a larger fleet.

    Overlapping windows on one host compose approximately: when one
    window ends, the clock is resynced and every still-active window is
    re-engaged (a re-engaged ``step`` jumps again).  Randomized
    schedules draw at most a few windows per run, so in practice the
    windows are disjoint and the semantics exact.
    """

    def __init__(
        self,
        sim: Simulator,
        clocks: Mapping[str, HostClock],
        tracer: Optional[Tracer] = None,
        streams: Optional[RNGManager] = None,
    ) -> None:
        self.sim = sim
        self.clocks = dict(clocks)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.streams = streams
        self.engagements = 0
        self.resyncs = 0
        self._active: Dict[str, List[ClockFault]] = {}

    # -- scheduling ----------------------------------------------------------
    def apply(self, schedule: "FaultSchedule") -> None:
        """Arm every clock window of ``schedule``."""
        for fault in schedule.clocks:
            self.apply_fault(fault)

    def apply_fault(self, fault: ClockFault) -> None:
        """Arm one window's engage/resync transitions."""
        if fault.host not in self.clocks:
            return
        self.sim.call_at(fault.start_ms, lambda: self.engage_now(fault))
        self.sim.call_at(fault.end_ms, lambda: self.disengage_now(fault))

    # -- transitions ---------------------------------------------------------
    def _engage(self, clock: HostClock, fault: ClockFault) -> None:
        if fault.kind == "skew":
            clock.step(fault.offset_ms)
        elif fault.kind == "drift":
            clock.set_rate(fault.rate)
        elif fault.kind == "step":
            clock.step(fault.step_ms)
        elif fault.kind == "freeze":
            clock.freeze()
        else:  # jitter
            streams = self.streams if self.streams is not None else RNGManager(0)
            clock.set_jitter(
                fault.jitter_ms,
                streams.stream(f"faultinject.clock.{fault.host}"),
            )

    def engage_now(self, fault: ClockFault) -> None:
        """Apply ``fault`` to its host's clock at the current instant."""
        clock = self.clocks.get(fault.host)
        if clock is None:
            return
        active = self._active.setdefault(fault.host, [])
        if fault in active:
            return  # idempotent: already engaged
        active.append(fault)
        self._engage(clock, fault)
        self.engagements += 1
        self.tracer.emit(
            self.sim.now, "faultinject", "fault.clock-engage",
            host=fault.host, fault_kind=fault.kind,
        )

    def disengage_now(self, fault: ClockFault) -> None:
        """End ``fault``'s window: resync, then re-engage survivors."""
        clock = self.clocks.get(fault.host)
        active = self._active.get(fault.host)
        if clock is None or active is None or fault not in active:
            return
        active.remove(fault)
        clock.resync()
        for survivor in active:
            self._engage(clock, survivor)
        if not active:
            self._active.pop(fault.host, None)
        self.resyncs += 1
        self.tracer.emit(
            self.sim.now, "faultinject", "fault.clock-resync",
            host=fault.host, fault_kind=fault.kind,
        )

    def __repr__(self) -> str:
        return (
            f"<ClockDriver engagements={self.engagements} "
            f"resyncs={self.resyncs} active={sum(map(len, self._active.values()))}>"
        )
