"""The flash-crowd driver: turns :class:`OverloadFault` windows into traffic.

Synthetic surge traffic must behave exactly like real traffic — enter
through a registered client handler (so the LAN validates the hosts and
the lifecycle auditor books every surge request), carry real arguments,
and complete through the normal reply/timeout/shed paths.  The driver
therefore takes *submitters*: per-client callables that fire one request
through that client's handler and return its outcome event.

During each fault window every surging client fires open-loop — a new
request every ``surge_interarrival_ms`` regardless of outstanding ones —
which is the arrival pattern that triggers the redundancy→load feedback
loop the overload subsystem exists to break.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..sim.events import Event
from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer
from .schedule import FaultSchedule, OverloadFault

__all__ = ["OverloadDriver"]

#: A submitter fires one request with the given argument index through a
#: client handler and returns the request's outcome event.
Submitter = Callable[[int], Event]


class OverloadDriver:
    """Applies :class:`OverloadFault` arrival surges to a deployment."""

    def __init__(
        self,
        sim: Simulator,
        submitters: Dict[str, Submitter],
        first_arg: int = 900_000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not submitters:
            raise ValueError("OverloadDriver needs at least one submitter")
        self.sim = sim
        self.submitters = dict(submitters)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.surges_applied = 0
        self.surge_requests = 0
        #: Outcome events of every surge request (drain bookkeeping).
        self.events: List[Event] = []
        # Distinct argument range so surge requests are recognizable in
        # traces next to the regular workload's indices.
        self._next_arg = int(first_arg)

    # -- scheduling ------------------------------------------------------------
    def apply(self, schedule: FaultSchedule) -> None:
        """Arm every overload window of ``schedule``."""
        for fault in schedule.overloads:
            self.apply_overload(fault)

    def apply_overload(self, fault: OverloadFault) -> None:
        clients = fault.clients or tuple(sorted(self.submitters))
        for client in clients:
            if client not in self.submitters:
                raise KeyError(f"no submitter for surge client {client!r}")
        self.sim.call_at(fault.start_ms, lambda: self._start(fault, clients))

    def _start(self, fault: OverloadFault, clients: Tuple[str, ...]) -> None:
        self.surges_applied += 1
        self.tracer.emit(
            self.sim.now, "faultinject", "fault.surge",
            clients=list(clients), until=fault.end_ms,
        )
        for client in clients:
            self.sim.spawn(
                self._surge(fault, client), name=f"overload.{client}"
            )

    def _surge(
        self, fault: OverloadFault, client: str
    ) -> Generator[Event, Any, None]:
        submit = self.submitters[client]
        while self.sim.now < fault.end_ms:
            self.events.append(submit(self._next_arg))
            self._next_arg += 1
            self.surge_requests += 1
            yield self.sim.timeout(fault.surge_interarrival_ms)

    # -- drain bookkeeping -------------------------------------------------------
    def drained(self) -> bool:
        """Whether every surge request has completed (any outcome)."""
        return all(event.processed for event in self.events)

    def __repr__(self) -> str:
        return (
            f"<OverloadDriver surges={self.surges_applied} "
            f"requests={self.surge_requests}>"
        )
