"""The chaos-campaign engine: randomized composed schedules at scale.

One scenario of the ``tests/faults`` suite scripts a handful of faults by
hand.  A *campaign* instead draws hundreds of randomized **composed**
schedules — partitions × crashes × degradations × overload surges, each
family from its own disjoint RNG substream — runs every schedule against
a fresh deployment, and checks two things per scenario:

* the drain-time lifecycle invariants of
  :class:`~repro.faultinject.auditor.LifecycleAuditor` (exactly-once
  completion, no leaks, no resurrection, idle servers, no acks from the
  dark side of a cut), and
* campaign-level QoS floors (a minimum reply fraction and a minimum
  timely fraction) that catch silent service collapse the invariants
  cannot see.

Scenarios fan out across worker processes through
:func:`repro.experiments.parallel.run_sweep`, inheriting its 1-vs-N
worker bit-identical merge.  Every scenario's randomness is a pure
function of ``(campaign base seed, scenario index)``, so any failure is
replayable from the one-line recipe embedded in its report — and
:func:`shrink_schedule` (classic ddmin) minimizes a failing schedule to
the smallest fault subset that still reproduces the failure.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.qos import QoSSpec
from ..gateway.gateway import Gateway
from ..gateway.handlers.timing_fault import (
    TimingFaultClientHandler,
    TimingFaultServerHandler,
)
from ..group.ensemble import GroupCommunication
from ..group.failure_detector import FailureDetector
from ..health import HealthConfig
from ..net.lan import LanModel, LinkProfile
from ..net.message import reset_message_ids
from ..net.transport import Transport
from ..orb.iiop import MarshallingModel
from ..orb.orb import Orb
from ..replica.load import ServiceProfile
from ..replica.server import ReplicaApplication
from ..rng import RNGManager, derive_entity_seed
from ..sim.hostclock import ClockRegistry
from ..sim.kernel import Simulator
from ..sim.random import Constant, RandomStreams
from .auditor import LifecycleAuditor
from .clock import ClockDriver
from .drivers import LifecycleFaultDriver
from .overload import OverloadDriver
from .partition import PartitionDriver
from .schedule import FaultSchedule, random_fault_schedule
from .transport import FaultyTransport

__all__ = [
    "CampaignConfig",
    "ScheduleOutcome",
    "CampaignResult",
    "schedule_digest",
    "draw_composed_schedule",
    "run_scenario",
    "run_campaign",
    "flatten_schedule",
    "rebuild_schedule",
    "shrink_schedule",
]

SERVICE = "search"
METHOD = "process"

#: Every schedule family ddmin shrinks over, in FaultSchedule order.
_FAMILIES = (
    "drops",
    "delays",
    "duplicates",
    "crashes",
    "churn",
    "degradations",
    "overloads",
    "partitions",
    "clocks",
)


@dataclass(frozen=True)
class CampaignConfig:
    """Every knob of one chaos campaign (pure data, picklable).

    The per-family ``max_*`` counts bound the *composed* schedule drawn
    for each scenario; the actual counts are drawn uniformly in
    ``[0, max]`` from the scenario's own ``campaign.mix`` substream, so
    scenarios range from calm to everything-at-once.  ``min_reply_fraction``
    and ``min_timely_fraction`` are the campaign-level QoS floors; a
    scenario below either floor counts as failed even when every
    lifecycle invariant held.
    """

    schedules: int = 200
    base_seed: int = 0
    horizon_ms: float = 3000.0
    replicas: int = 5
    clients: int = 2
    requests_per_client: int = 25
    think_ms: float = 4.0
    deadline_ms: float = 100.0
    min_probability: float = 0.0
    service_ms: float = 8.0
    max_drop_windows: int = 2
    max_delay_windows: int = 2
    max_duplicate_windows: int = 2
    max_crash_restarts: int = 2
    max_churn_events: int = 1
    max_degradations: int = 1
    max_overload_windows: int = 1
    max_partition_windows: int = 2
    max_clock_windows: int = 0
    drop_probability: float = 0.3
    surge_interarrival_ms: float = 10.0
    min_reply_fraction: float = 0.3
    min_timely_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.schedules < 1:
            raise ValueError(f"schedules must be >= 1, got {self.schedules}")
        if self.replicas < 2:
            raise ValueError(f"replicas must be >= 2, got {self.replicas}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.horizon_ms <= 0:
            raise ValueError(f"horizon_ms must be > 0, got {self.horizon_ms}")

    @property
    def replica_hosts(self) -> Tuple[str, ...]:
        """The replica host names of every scenario deployment."""
        return tuple(f"s-{i + 1}" for i in range(self.replicas))

    @property
    def client_hosts(self) -> Tuple[str, ...]:
        """The client host names of every scenario deployment."""
        return tuple(f"client-{i + 1}" for i in range(self.clients))

    # -- per-scenario seed derivation ---------------------------------------
    def scenario_seed(self, index: int) -> int:
        """Seed for scenario ``index``'s deployment streams."""
        return derive_entity_seed(self.base_seed, "chaos.scenario", index, 0)

    def wire_seed(self, index: int) -> int:
        """Seed for scenario ``index``'s fault-injection draws."""
        return derive_entity_seed(self.base_seed, "chaos.wire", index, 0)

    def schedule_seed(self, index: int) -> int:
        """Seed for scenario ``index``'s composed-schedule drawing."""
        return derive_entity_seed(self.base_seed, "chaos.schedule", index, 0)

    def replay_line(self, index: int, digest: str) -> str:
        """The one-line recipe that reruns scenario ``index`` exactly.

        Non-default schedule knobs that change what the scenario seed
        draws must ride along, or the replay draws a different schedule
        and dies on the digest check: today that is only the opt-in
        clock-fault family.
        """
        line = (
            "python -m repro.experiments.chaos_campaign "
            f"--replay {self.base_seed}:{index}:{digest[:12]}"
        )
        if self.max_clock_windows:
            line += f" --clock-windows {self.max_clock_windows}"
        return line


def schedule_digest(schedule: FaultSchedule) -> str:
    """Content hash of a schedule (its repr is canonical pure data)."""
    return hashlib.sha256(repr(schedule).encode("utf-8")).hexdigest()


def draw_composed_schedule(cfg: CampaignConfig, index: int) -> FaultSchedule:
    """Draw scenario ``index``'s composed randomized schedule.

    Family counts come from the dedicated ``campaign.mix`` substream;
    the windows themselves from :func:`random_fault_schedule`'s
    per-family ``("faults.<family>", i)`` substreams.  Everything is a
    pure function of ``(cfg.base_seed, index)``.
    """
    manager = RNGManager(cfg.schedule_seed(index))
    mix = manager.substream("campaign.mix", 0)
    return random_fault_schedule(
        manager,
        horizon_ms=cfg.horizon_ms,
        replicas=cfg.replica_hosts,
        drop_windows=int(mix.integers(0, cfg.max_drop_windows + 1)),
        drop_probability=cfg.drop_probability,
        delay_windows=int(mix.integers(0, cfg.max_delay_windows + 1)),
        duplicate_windows=int(mix.integers(0, cfg.max_duplicate_windows + 1)),
        crash_restarts=int(mix.integers(0, cfg.max_crash_restarts + 1)),
        churn_events=int(mix.integers(0, cfg.max_churn_events + 1)),
        degradations=int(mix.integers(0, cfg.max_degradations + 1)),
        overload_windows=int(mix.integers(0, cfg.max_overload_windows + 1)),
        surge_interarrival_ms=cfg.surge_interarrival_ms,
        partition_windows=int(mix.integers(0, cfg.max_partition_windows + 1)),
        clock_windows=int(mix.integers(0, cfg.max_clock_windows + 1)),
    )


@dataclass(frozen=True)
class ScheduleOutcome:
    """Everything one scenario run produced (digest-stable pure data)."""

    index: int
    scenario_seed: int
    wire_seed: int
    digest: str
    submitted: int
    replies: int
    timeouts: int
    sheds: int
    reply_fraction: float
    timely_fraction: float
    violations: Tuple[str, ...]
    replay: str

    @property
    def failed(self) -> bool:
        """Whether the scenario violated an invariant or a QoS floor."""
        return bool(self.violations)


@dataclass(frozen=True)
class CampaignResult:
    """Merged outcome of a whole campaign."""

    config: CampaignConfig
    outcomes: Tuple[ScheduleOutcome, ...]
    digest: str
    workers: int
    elapsed_s: float

    @property
    def failures(self) -> Tuple[ScheduleOutcome, ...]:
        """The failed scenarios, in index order."""
        return tuple(o for o in self.outcomes if o.failed)

    @property
    def clean(self) -> bool:
        """Whether every scenario passed."""
        return not self.failures


class _ChaosStack:
    """One scenario's deployment: mini AQuA stack + every fault driver."""

    def __init__(
        self,
        cfg: CampaignConfig,
        schedule: FaultSchedule,
        scenario_seed: int,
        wire_seed: int,
        handler_cls: type = TimingFaultClientHandler,
    ) -> None:
        # Imported here, not at module scope: workload.scenarios itself
        # imports the auditor, and a module-level import would close an
        # import cycle through the faultinject package __init__.
        from ..workload.scenarios import IntegerServant, make_interface

        self.cfg = cfg
        self.sim = Simulator()
        self.clock_registry = ClockRegistry(self.sim)
        self.streams = RandomStreams(seed=scenario_seed)
        profile = LinkProfile(
            stack_ms=1.0, per_kb_ms=0.0, per_member_ms=0.0, jitter=Constant(0.0)
        )
        self.lan = LanModel(self.streams, default_profile=profile)
        self.transport = FaultyTransport(
            Transport(self.sim, self.lan),
            schedule=schedule,
            streams=RNGManager(wire_seed),
        )
        detector = FailureDetector(
            self.sim,
            self.lan,
            poll_interval_ms=10.0,
            confirm_polls=2,
            vantage=cfg.client_hosts[0],
        )
        self.group_comm = GroupCommunication(
            self.sim,
            self.lan,
            self.transport,
            notify_delay_ms=1.0,
            failure_detector=detector,
        )
        marshalling = MarshallingModel(
            base_ms=0.0, per_kb_ms=0.0, envelope_bytes=0
        )
        interface = make_interface(SERVICE, METHOD)
        self.auditor = LifecycleAuditor()
        self.auditor.set_schedule(schedule)
        self.servers: Dict[str, TimingFaultServerHandler] = {}
        for host in cfg.replica_hosts:
            self.lan.add_host(host)
            app = ReplicaApplication(
                host=host,
                servant=IntegerServant(interface, METHOD),
                profile=ServiceProfile(default=Constant(cfg.service_ms)),
                streams=self.streams,
            )
            server = TimingFaultServerHandler(
                sim=self.sim,
                app=app,
                transport=self.transport,
                marshalling=marshalling,
                clock=self.clock_registry.clock(host),
            )
            Gateway(host, self.sim, self.transport).load_handler(server)
            self.group_comm.join(SERVICE, host, watch=True)
            self.servers[host] = server
            self.auditor.watch_server(server)

        health = HealthConfig(
            suspect_after=2,
            quarantine_after=1,
            recover_after=2,
            probation_after=2,
            backoff_initial_ms=200.0,
            backoff_factor=2.0,
            backoff_max_ms=1600.0,
            unreachable_after=3,
            clock_anomaly_after=3,
        )
        self.stubs: Dict[str, Any] = {}
        self.clients: Dict[str, TimingFaultClientHandler] = {}
        for host in cfg.client_hosts:
            self.lan.add_host(host)
            client = handler_cls(
                sim=self.sim,
                host=host,
                transport=self.transport,
                group_comm=self.group_comm,
                interface=interface,
                qos=QoSSpec(SERVICE, cfg.deadline_ms, cfg.min_probability),
                marshalling=marshalling,
                selection_charge_ms=0.0,
                rng=self.streams.stream(f"client.{host}.policy"),
                response_timeout_factor=3.0,
                probe_interval_ms=50.0,
                health_config=health,
                clock=self.clock_registry.clock(host),
            )
            Gateway(host, self.sim, self.transport).load_handler(client)
            self.auditor.watch_client(client)
            self.clients[host] = client
            orb = Orb()
            orb.register_interface(interface)
            orb.bind_interceptor(SERVICE, client)
            self.stubs[host] = orb.stub(SERVICE)

        self.lifecycle_driver = LifecycleFaultDriver(
            sim=self.sim,
            lan=self.lan,
            group_comm=self.group_comm,
            service=SERVICE,
            servers=self.servers,
        )
        self.partition_driver = PartitionDriver(
            sim=self.sim,
            lan=self.lan,
            group_comm=self.group_comm,
            service=SERVICE,
            replicas=cfg.replica_hosts,
        )
        self.overload_driver = OverloadDriver(
            sim=self.sim,
            submitters={
                host: (
                    lambda arg, stub=self.stubs[host]: stub.invoke(METHOD, arg)
                )
                for host in cfg.client_hosts
            },
        )
        self.clock_driver = ClockDriver(
            sim=self.sim,
            clocks=self.clock_registry.clocks(),
            streams=RNGManager(derive_entity_seed(wire_seed, "chaos.clock", 0, 0)),
        )
        self.lifecycle_driver.apply(schedule)
        self.partition_driver.apply(schedule)
        self.overload_driver.apply(schedule)
        self.clock_driver.apply(schedule)


def _closed_loop(
    stack: _ChaosStack, host: str, outcomes: List[Tuple[float, Any]]
) -> Any:
    cfg = stack.cfg
    stub = stack.stubs[host]
    for i in range(cfg.requests_per_client):
        t0 = stack.sim.now
        event = stub.invoke(METHOD, i)
        yield event
        if event.ok:
            outcomes.append((t0, event.value))
        yield stack.sim.timeout(cfg.think_ms)


def run_scenario(
    cfg: CampaignConfig,
    index: int,
    handler_cls: type = TimingFaultClientHandler,
    schedule: Optional[FaultSchedule] = None,
) -> ScheduleOutcome:
    """Run scenario ``index`` of a campaign and audit it.

    ``schedule`` overrides the drawn schedule (the shrinker's entry
    point); everything else — deployment seeds, workload, floors — stays
    exactly as the campaign would have run it.
    """
    # Message ids restart per scenario so every id a report mentions is a
    # pure function of (base_seed, index) — never of which worker process
    # (or how many earlier scenarios) produced the run.
    reset_message_ids()
    if schedule is None:
        schedule = draw_composed_schedule(cfg, index)
    digest = schedule_digest(schedule)
    replay = cfg.replay_line(index, digest)
    stack = _ChaosStack(
        cfg,
        schedule,
        scenario_seed=cfg.scenario_seed(index),
        wire_seed=cfg.wire_seed(index),
        handler_cls=handler_cls,
    )
    stack.auditor.set_replay(replay)
    outcomes: List[Tuple[float, Any]] = []
    for host in cfg.client_hosts:
        stack.sim.spawn(
            _closed_loop(stack, host, outcomes), name=f"load.{host}"
        )
    stack.sim.run()
    # Let detector polls / re-admission probes settle past the horizon so
    # every fault window has healed before the audit, then expire probes
    # still in flight (staleness probing never stops, so an arbitrary
    # cutoff would otherwise race the daemon expiry timers).
    stack.sim.run(until=max(stack.sim.now, cfg.horizon_ms * 2.0))
    for host in cfg.client_hosts:
        stack.clients[host].quiesce_probes()
    report = stack.auditor.audit()

    violations = list(report.violations)
    served = report.submitted - report.sheds
    reply_fraction = report.replies / served if served else 1.0
    timely = [v.timely for _t0, v in outcomes if not v.shed]
    timely_fraction = (
        sum(timely) / len(timely) if timely else 1.0
    )
    if reply_fraction < cfg.min_reply_fraction:
        violations.append(
            f"qos floor: reply fraction {reply_fraction:.3f} < "
            f"{cfg.min_reply_fraction} ({replay})"
        )
    if timely_fraction < cfg.min_timely_fraction:
        violations.append(
            f"qos floor: timely fraction {timely_fraction:.3f} < "
            f"{cfg.min_timely_fraction} ({replay})"
        )
    return ScheduleOutcome(
        index=index,
        scenario_seed=cfg.scenario_seed(index),
        wire_seed=cfg.wire_seed(index),
        digest=digest,
        submitted=report.submitted,
        replies=report.replies,
        timeouts=report.timeouts,
        sheds=report.sheds,
        reply_fraction=reply_fraction,
        timely_fraction=timely_fraction,
        violations=tuple(violations),
        replay=replay,
    )


def _campaign_point(params: Any, seed: int, repetition: int) -> ScheduleOutcome:
    """Sweep task: one scenario (module-level for worker pickling).

    The sweep's derived ``seed`` is deliberately unused — every draw of a
    scenario is a pure function of ``(cfg.base_seed, repetition)`` so the
    standalone ``--replay`` path reproduces it without the sweep engine.
    """
    cfg, handler_cls = params
    return run_scenario(cfg, repetition, handler_cls=handler_cls)


def run_campaign(
    cfg: CampaignConfig,
    workers: int = 1,
    handler_cls: type = TimingFaultClientHandler,
) -> CampaignResult:
    """Run the whole campaign, fanned across ``workers`` processes.

    The result digest is bit-identical for any worker count (the
    parallel engine's invariance contract).
    """
    from ..experiments.parallel import run_sweep

    sweep = run_sweep(
        _campaign_point,
        points=[(cfg, handler_cls)],
        repetitions=cfg.schedules,
        base_seed=cfg.base_seed,
        workers=workers,
        stream_name="chaos.campaign",
    )
    outcomes = tuple(sweep.results[i].value for i in range(cfg.schedules))
    return CampaignResult(
        config=cfg,
        outcomes=outcomes,
        digest=sweep.digest(),
        workers=sweep.workers,
        elapsed_s=sweep.elapsed_s,
    )


# -- schedule minimization (delta debugging) --------------------------------

def flatten_schedule(schedule: FaultSchedule) -> List[Tuple[str, Any]]:
    """The schedule as a flat ``(family, fault)`` list, family-ordered."""
    items: List[Tuple[str, Any]] = []
    for family in _FAMILIES:
        items.extend((family, fault) for fault in getattr(schedule, family))
    return items


def rebuild_schedule(items: Sequence[Tuple[str, Any]]) -> FaultSchedule:
    """Reassemble a :class:`FaultSchedule` from ``flatten_schedule`` items."""
    grouped: Dict[str, List[Any]] = {family: [] for family in _FAMILIES}
    for family, fault in items:
        grouped[family].append(fault)
    return FaultSchedule(
        **{family: tuple(grouped[family]) for family in _FAMILIES}
    )


def shrink_schedule(
    schedule: FaultSchedule,
    fails: Callable[[FaultSchedule], bool],
    max_probes: int = 512,
) -> FaultSchedule:
    """Minimize ``schedule`` to a 1-minimal failing subset (ddmin).

    ``fails(candidate)`` must rerun the scenario under ``candidate`` and
    report whether the failure still reproduces; it is assumed
    deterministic (the campaign's seed discipline guarantees that).  The
    returned schedule still fails, and removing any single remaining
    fault makes it pass (1-minimality), which is exactly the "minimal
    reproducer" the failure report should point at.  ``max_probes``
    bounds the rerun budget for pathological schedules.
    """
    items = flatten_schedule(schedule)
    if not fails(rebuild_schedule(items)):
        raise ValueError("schedule does not fail; nothing to shrink")
    probes = 0
    granularity = 2
    while len(items) >= 2 and probes < max_probes:
        chunk = max(1, -(-len(items) // granularity))  # ceil division
        reduced = False
        # Try each chunk alone, then each complement.
        for start in range(0, len(items), chunk):
            subset = items[start:start + chunk]
            if len(subset) == len(items):
                continue
            probes += 1
            if fails(rebuild_schedule(subset)):
                items = subset
                granularity = 2
                reduced = True
                break
        if not reduced:
            for start in range(0, len(items), chunk):
                complement = items[:start] + items[start + chunk:]
                if len(complement) == len(items):
                    continue
                probes += 1
                if fails(rebuild_schedule(complement)):
                    items = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if chunk <= 1:
                break
            granularity = min(len(items), granularity * 2)
    return rebuild_schedule(items)
