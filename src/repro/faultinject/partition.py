"""Partition faults: declarative connectivity cuts and their driver.

The paper treats a timing fault as a *late* response, but the most
hostile timing fault a LAN can produce is a partition: delay that is
effectively infinite, often asymmetric (requests arrive, replies
vanish), and correlated across replicas.  :class:`PartitionFault`
describes one connectivity cut as pure data:

* **symmetric split-brain** — no traffic crosses the cut in either
  direction (``mode="symmetric"``);
* **one-way link loss** — only one direction is severed:
  ``mode="outbound"`` loses traffic *originating from* the dark side
  (requests arrive, replies vanish), ``mode="inbound"`` loses traffic
  *toward* it (the dark side keeps talking into the void);
* **flapping links** — ``flap_period_ms`` re-cuts and heals the link on
  a duty cycle inside the window, the regime that breeds stale
  suspicion in failure detectors;
* **grey failure** — ``exempt_kinds`` lets selected message kinds (in
  practice the health probes) through while data traffic is dropped, so
  the cut *passes probes but loses work*.

Enforcement is layered.  :class:`~repro.faultinject.transport
.FaultyTransport` interprets the rules message-by-message (including
grey and probabilistic cuts).  :class:`PartitionDriver` additionally
makes *blackout* cuts visible at the :class:`~repro.net.lan.LanModel`
layer — severing the ordered host pairs so delayed/duplicated copies
die on the wire too and the :class:`~repro.group.failure_detector
.FailureDetector`'s vantage host observes the dark side as unreachable,
which is what finally exercises view churn under partial connectivity.
On every heal the driver reconciles: cut-declared "crashes" are
forgotten (a heal is a fresh sighting), and evicted-but-alive replicas
rejoin their service group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..gateway.handlers.timing_fault import MSG_PROBE, MSG_PROBE_REPLY
from ..net.lan import LanModel
from ..net.message import Message
from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (schedule imports us)
    from ..group.ensemble import GroupCommunication
    from .schedule import FaultSchedule

__all__ = [
    "PROBE_EXEMPT_KINDS",
    "PartitionFault",
    "PartitionDriver",
    "grey_partition",
]

#: Message kinds a grey-failure cut lets through: the health-probe
#: round trip.  Everything else — requests, replies, perf pushes — dies.
PROBE_EXEMPT_KINDS: Tuple[str, ...] = (MSG_PROBE, MSG_PROBE_REPLY)

_MODES = ("symmetric", "outbound", "inbound")


@dataclass(frozen=True)
class PartitionFault:
    """One connectivity cut between two host sets over a time window.

    Attributes
    ----------
    side:
        The cut-off ("dark") host set.
    start_ms / end_ms:
        The cut's window; the link is healed at ``end_ms``.
    far:
        Explicit far side of the cut; empty means *every other host* —
        the common case of a replica subset isolated from the world.
    mode:
        ``"symmetric"`` severs both directions; ``"outbound"`` loses
        messages sent *by* ``side``; ``"inbound"`` loses messages sent
        *to* it.
    drop_probability:
        Probability a crossing message dies (1.0 = full cut; lower
        values model a lossy brownout and stay wire-level only).
    flap_period_ms / flap_duty:
        If set, the cut is only active for the first ``flap_duty``
        fraction of every ``flap_period_ms`` cycle inside the window —
        a link that heals and re-partitions repeatedly.
    exempt_kinds:
        Message kinds that always pass (grey failure; see
        :data:`PROBE_EXEMPT_KINDS`).
    """

    side: Tuple[str, ...]
    start_ms: float
    end_ms: float
    far: Tuple[str, ...] = ()
    mode: str = "symmetric"
    drop_probability: float = 1.0
    flap_period_ms: Optional[float] = None
    flap_duty: float = 0.5
    exempt_kinds: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.side:
            raise ValueError("a partition needs at least one dark-side host")
        if self.start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {self.start_ms}")
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"end_ms must exceed start_ms, got [{self.start_ms}, {self.end_ms}]"
            )
        if set(self.side) & set(self.far):
            raise ValueError("side and far must be disjoint host sets")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if not 0.0 < self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in (0, 1], got {self.drop_probability}"
            )
        if self.flap_period_ms is not None and self.flap_period_ms <= 0:
            raise ValueError(
                f"flap_period_ms must be > 0, got {self.flap_period_ms}"
            )
        if not 0.0 < self.flap_duty <= 1.0:
            raise ValueError(
                f"flap_duty must be in (0, 1], got {self.flap_duty}"
            )

    # -- activity -----------------------------------------------------------
    def active(self, now_ms: float) -> bool:
        """Whether the cut is live at ``now_ms`` (flap phase included)."""
        if not self.start_ms <= now_ms < self.end_ms:
            return False
        if self.flap_period_ms is None:
            return True
        phase = (now_ms - self.start_ms) % self.flap_period_ms
        return phase < self.flap_period_ms * self.flap_duty

    def cut_intervals(self) -> List[Tuple[float, float]]:
        """The ``[cut_at, heal_at)`` sub-intervals the window decomposes into.

        One interval for a steady cut; one per duty cycle for a flapping
        link.  Every interval ends by ``end_ms`` — a schedule never
        leaves a link severed after its window.
        """
        if self.flap_period_ms is None:
            return [(self.start_ms, self.end_ms)]
        intervals: List[Tuple[float, float]] = []
        t = self.start_ms
        while t < self.end_ms:
            heal_at = min(t + self.flap_period_ms * self.flap_duty, self.end_ms)
            if heal_at > t:
                intervals.append((t, heal_at))
            t += self.flap_period_ms
        return intervals

    # -- message matching ---------------------------------------------------
    def _crossing(self, sender: str, destination: str) -> Optional[str]:
        """``"out"``/``"in"`` if the ordered pair crosses the cut, else None."""
        sender_dark = sender in self.side
        destination_dark = destination in self.side
        if self.far:
            if sender_dark and destination in self.far:
                return "out"
            if destination_dark and sender in self.far:
                return "in"
            return None
        if sender_dark and not destination_dark:
            return "out"
        if destination_dark and not sender_dark:
            return "in"
        return None

    def separates(self, a: str, b: str) -> bool:
        """Whether a request/reply round trip between ``a`` and ``b`` is
        impossible while the cut is active (any crossing direction severed
        kills one leg of the round trip, whatever the mode)."""
        return self._crossing(a, b) is not None

    def severs(self, now_ms: float, message: Message) -> bool:
        """Whether ``message`` sent at ``now_ms`` dies on this cut.

        Deterministic part only; the transport applies
        ``drop_probability`` on top for lossy cuts.
        """
        if not self.active(now_ms):
            return False
        if message.kind in self.exempt_kinds:
            return False
        direction = self._crossing(message.sender, message.destination)
        if direction is None:
            return False
        if self.mode == "symmetric":
            return True
        return direction == ("out" if self.mode == "outbound" else "in")

    # -- classification ------------------------------------------------------
    @property
    def lan_visible(self) -> bool:
        """Whether the cut is total per direction — a full link severance
        the :class:`PartitionDriver` mirrors into the LAN's reachability
        map.  Grey (kind-exempting) and lossy cuts stay wire-level."""
        return self.drop_probability >= 1.0 and not self.exempt_kinds

    @property
    def blackout(self) -> bool:
        """A steady, total, exemption-free cut: while it is active no
        round trip across it can complete — the premise of the auditor's
        "no acks from the dark side" invariant."""
        return self.lan_visible and self.flap_period_ms is None


def grey_partition(
    side: Tuple[str, ...],
    start_ms: float,
    end_ms: float,
    far: Tuple[str, ...] = (),
    mode: str = "symmetric",
) -> PartitionFault:
    """A slow-partition "grey failure": probes pass, data traffic dies."""
    return PartitionFault(
        side=side,
        start_ms=start_ms,
        end_ms=end_ms,
        far=far,
        mode=mode,
        exempt_kinds=PROBE_EXEMPT_KINDS,
    )


class PartitionDriver:
    """Arms a schedule's partitions against the LAN and membership layer.

    Message-level enforcement happens in
    :class:`~repro.faultinject.transport.FaultyTransport` regardless;
    this driver adds the two effects only a stateful interpreter can
    provide for :attr:`PartitionFault.lan_visible` cuts:

    * the severed ordered pairs are mirrored into the
      :class:`~repro.net.lan.LanModel` (so deliveries scheduled before
      the cut die too, and the failure detector's vantage host observes
      the dark side as down — producing the eviction/view-churn the
      group layer must survive);
    * on each heal, cut-declared "crashes" are forgotten (fresh
      sighting) and evicted-but-alive replicas rejoin ``service``.

    Parameters
    ----------
    sim, lan:
        Simulation substrate.
    group_comm, service, replicas:
        Optional membership reconciliation: when all three are given, a
        heal rejoins replicas the detector evicted during the cut.
    """

    def __init__(
        self,
        sim: Simulator,
        lan: LanModel,
        group_comm: Optional["GroupCommunication"] = None,
        service: Optional[str] = None,
        replicas: Optional[Sequence[str]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.lan = lan
        self.group_comm = group_comm
        self.service = service
        self._replicas = tuple(replicas) if replicas is not None else ()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.cuts_applied = 0
        self.heals_applied = 0
        self.sightings_applied = 0
        self.rejoins_applied = 0
        # Per fault, a stack of severed pair lists (flaps nest naturally).
        self._active: Dict[PartitionFault, List[List[Tuple[str, str]]]] = {}

    # -- scheduling ----------------------------------------------------------
    def apply(self, schedule: "FaultSchedule") -> None:
        """Arm every LAN-visible partition of ``schedule``."""
        for fault in schedule.partitions:
            self.apply_partition(fault)

    def apply_partition(self, fault: PartitionFault) -> None:
        """Arm one partition's cut/heal transitions (no-op for wire-only
        cuts — grey and lossy partitions never touch the LAN map)."""
        if not fault.lan_visible:
            return
        for cut_at, heal_at in fault.cut_intervals():
            self.sim.call_at(cut_at, lambda f=fault: self.cut_now(f))
            self.sim.call_at(heal_at, lambda f=fault: self.heal_now(f))

    # -- transitions ---------------------------------------------------------
    def _pairs(self, fault: PartitionFault) -> List[Tuple[str, str]]:
        side = [h for h in fault.side if self.lan.has_host(h)]
        if fault.far:
            far = [h for h in fault.far if self.lan.has_host(h)]
        else:
            far = [
                h.name for h in self.lan.hosts() if h.name not in fault.side
            ]
        pairs: List[Tuple[str, str]] = []
        for a in side:
            for b in far:
                if fault.mode in ("symmetric", "outbound"):
                    pairs.append((a, b))
                if fault.mode in ("symmetric", "inbound"):
                    pairs.append((b, a))
        return pairs

    def cut_now(self, fault: PartitionFault) -> None:
        """Sever the fault's ordered pairs at the current instant."""
        pairs = self._pairs(fault)
        for src, dst in pairs:
            self.lan.sever_link(src, dst)
        self._active.setdefault(fault, []).append(pairs)
        self.cuts_applied += 1
        self.tracer.emit(
            self.sim.now, "faultinject", "fault.partition-cut",
            side=list(fault.side), mode=fault.mode, links=len(pairs),
        )

    def heal_now(self, fault: PartitionFault) -> None:
        """Heal the most recent cut of ``fault`` and reconcile membership."""
        stack = self._active.get(fault)
        if not stack:
            return
        for src, dst in stack.pop():
            self.lan.heal_link(src, dst)
        if not stack:
            self._active.pop(fault, None)
        self.heals_applied += 1
        self.tracer.emit(
            self.sim.now, "faultinject", "fault.partition-heal",
            side=list(fault.side), mode=fault.mode,
        )
        self._reconcile(fault)

    def _reconcile(self, fault: PartitionFault) -> None:
        # A heal is a fresh sighting: clear cut-induced crash declarations
        # and rejoin replicas that were evicted while unreachable.  Hosts
        # still severed by an overlapping cut, or genuinely down (real
        # crash — the restart path owns those), are left alone.
        if self.group_comm is None:
            return
        detector = self.group_comm.failure_detector
        for host in sorted(set(fault.side) | set(fault.far)):
            if not self.lan.has_host(host) or not self.lan.is_up(host):
                continue
            if any(host in pair for pair in self.lan.severed_links()):
                continue
            if not detector.is_declared_crashed(host):
                continue
            detector.sight(host)
            self.sightings_applied += 1
            if (
                self.service is not None
                and host in self._replicas
                and host not in self.group_comm.view(self.service)
            ):
                self.group_comm.join(self.service, host, watch=True)
                self.rejoins_applied += 1
                self.tracer.emit(
                    self.sim.now, "faultinject", "fault.partition-rejoin",
                    member=host,
                )

    def __repr__(self) -> str:
        return (
            f"<PartitionDriver cuts={self.cuts_applied} "
            f"heals={self.heals_applied} rejoins={self.rejoins_applied}>"
        )
