"""Fault schedules: declarative descriptions of hostile conditions.

A :class:`FaultSchedule` bundles the five fault families the request path
must survive (ISSUE 2 / paper §3's "occasional periods of high traffic"
plus the crash and churn behaviours of §5.3.2):

* **message drops** (:class:`DropRule`) — omission faults on the wire,
* **delay spikes** (:class:`DelayRule`) — transient congestion,
* **duplicated / late replies** (:class:`DuplicateRule`) — retransmitting
  networks and slow paths,
* **crash + restart** (:class:`CrashRestartFault`) — fail-stop replicas,
  optionally coming back as a fresh incarnation,
* **view churn** (:class:`ChurnFault`) — graceful leaves/rejoins that
  reshape the membership view under traffic,
* **network partitions** (:class:`~repro.faultinject.partition.PartitionFault`)
  — split-brain, one-way and grey connectivity cuts,
* **clock faults** (:class:`~repro.faultinject.clock.ClockFault`) —
  skew/drift/step/freeze/jitter on a host's virtual clock.

Rules are pure data; :class:`~repro.faultinject.transport.FaultyTransport`
interprets the message-level rules,
:class:`~repro.faultinject.drivers.LifecycleFaultDriver` the host-level
ones and :class:`~repro.faultinject.partition.PartitionDriver` the
connectivity cuts.  :func:`random_fault_schedule` draws a randomized schedule from a
``numpy`` generator — the workhorse of the ``tests/faults`` suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..net.message import Message
from ..rng import RNGManager
from .clock import CLOCK_FAULT_KINDS, ClockFault
from .partition import PROBE_EXEMPT_KINDS, PartitionFault

__all__ = [
    "DropRule",
    "DelayRule",
    "DuplicateRule",
    "CrashRestartFault",
    "ChurnFault",
    "DegradationFault",
    "OverloadFault",
    "PartitionFault",
    "ClockFault",
    "FaultSchedule",
    "random_fault_schedule",
]


def _window_ok(start_ms: float, end_ms: float) -> None:
    if start_ms < 0:
        raise ValueError(f"start_ms must be >= 0, got {start_ms}")
    if end_ms <= start_ms:
        raise ValueError(
            f"end_ms must exceed start_ms, got [{start_ms}, {end_ms}]"
        )


@dataclass(frozen=True)
class _MessageRule:
    """Shared shape of the message-level rules: a time window plus filters.

    ``kinds``/``src``/``dst`` of ``None`` match everything; otherwise the
    message's kind / sender / destination must match exactly.
    """

    start_ms: float
    end_ms: float
    kinds: Optional[Tuple[str, ...]] = None
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        _window_ok(self.start_ms, self.end_ms)

    def matches(self, now_ms: float, message: Message) -> bool:
        """Whether the rule applies to ``message`` sent at ``now_ms``."""
        if not self.start_ms <= now_ms < self.end_ms:
            return False
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.src is not None and message.sender != self.src:
            return False
        if self.dst is not None and message.destination != self.dst:
            return False
        return True


@dataclass(frozen=True)
class DropRule(_MessageRule):
    """Silently lose matching messages with ``probability``."""

    probability: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class DelayRule(_MessageRule):
    """Hold matching messages back by ``extra_ms`` before transmission."""

    extra_ms: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_ms < 0:
            raise ValueError(f"extra_ms must be >= 0, got {self.extra_ms}")


@dataclass(frozen=True)
class DuplicateRule(_MessageRule):
    """Deliver ``copies`` extra copies of matching messages, each sent
    ``late_by_ms`` after the original (a late duplicate models both a
    retransmitting network and a reply outliving its request)."""

    probability: float = 1.0
    copies: int = 1
    late_by_ms: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1, got {self.copies}")
        if self.late_by_ms < 0:
            raise ValueError(f"late_by_ms must be >= 0, got {self.late_by_ms}")


@dataclass(frozen=True)
class CrashRestartFault:
    """Fail-stop ``host`` at ``crash_at_ms``; restart it if requested."""

    host: str
    crash_at_ms: float
    restart_at_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.crash_at_ms < 0:
            raise ValueError(f"crash_at_ms must be >= 0, got {self.crash_at_ms}")
        if self.restart_at_ms is not None and self.restart_at_ms <= self.crash_at_ms:
            raise ValueError("restart must come strictly after the crash")


@dataclass(frozen=True)
class ChurnFault:
    """Gracefully remove ``member`` from the view; rejoin it if requested."""

    member: str
    leave_at_ms: float
    rejoin_at_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.leave_at_ms < 0:
            raise ValueError(f"leave_at_ms must be >= 0, got {self.leave_at_ms}")
        if self.rejoin_at_ms is not None and self.rejoin_at_ms <= self.leave_at_ms:
            raise ValueError("rejoin must come strictly after the leave")


@dataclass(frozen=True)
class DegradationFault:
    """Persistently degrade ``host`` over a time window (not fail-stop).

    The replica keeps running but gets worse — the health subsystem's
    nemesis: a crashed host is evicted by the failure detector, while a
    degraded one stays in the view and keeps poisoning the model.

    * ``slow_factor`` multiplies its service durations (load/overheat);
      the :class:`~repro.faultinject.drivers.LifecycleFaultDriver` applies
      it by wrapping the replica's service profile.
    * ``omission_probability`` drops messages to/from the host on the
      wire (dying NIC); interpreted by
      :class:`~repro.faultinject.transport.FaultyTransport`.
    """

    host: str
    start_ms: float
    end_ms: float
    slow_factor: float = 1.0
    omission_probability: float = 0.0

    def __post_init__(self) -> None:
        _window_ok(self.start_ms, self.end_ms)
        if self.slow_factor < 1.0:
            raise ValueError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )
        if not 0.0 <= self.omission_probability <= 1.0:
            raise ValueError(
                "omission_probability must be in [0, 1], got "
                f"{self.omission_probability}"
            )
        # Default-detection on user-set config values, never on computed
        # floats — exact equality is the point.
        if self.slow_factor == 1.0 and self.omission_probability == 0.0:  # repro-lint: disable=RL003 (config default detection)
            raise ValueError(
                "degradation must slow the host or drop its messages"
            )

    def active(self, now_ms: float) -> bool:
        """Whether the window covers ``now_ms``."""
        return self.start_ms <= now_ms < self.end_ms


@dataclass(frozen=True)
class OverloadFault:
    """A flash crowd: an arrival surge over a time window (paper §3's
    "occasional periods of high traffic", turned hostile).

    During ``[start_ms, end_ms)`` the
    :class:`~repro.faultinject.overload.OverloadDriver` fires extra
    requests through the registered client handlers every
    ``surge_interarrival_ms`` — open-loop, so the offered load does not
    shrink when the service slows down (the condition that triggers the
    redundancy→load feedback loop the overload subsystem must break).

    ``clients`` limits the surge to those client hosts; empty means every
    client registered with the driver surges.
    """

    start_ms: float
    end_ms: float
    surge_interarrival_ms: float = 5.0
    clients: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _window_ok(self.start_ms, self.end_ms)
        if self.surge_interarrival_ms <= 0:
            raise ValueError(
                "surge_interarrival_ms must be > 0, got "
                f"{self.surge_interarrival_ms}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """A full scripted fault scenario; all families default to empty."""

    drops: Tuple[DropRule, ...] = ()
    delays: Tuple[DelayRule, ...] = ()
    duplicates: Tuple[DuplicateRule, ...] = ()
    crashes: Tuple[CrashRestartFault, ...] = ()
    churn: Tuple[ChurnFault, ...] = ()
    degradations: Tuple[DegradationFault, ...] = ()
    overloads: Tuple[OverloadFault, ...] = ()
    partitions: Tuple[PartitionFault, ...] = ()
    clocks: Tuple[ClockFault, ...] = ()

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """Union of two schedules (composable scenarios)."""
        return FaultSchedule(
            drops=self.drops + other.drops,
            delays=self.delays + other.delays,
            duplicates=self.duplicates + other.duplicates,
            crashes=self.crashes + other.crashes,
            churn=self.churn + other.churn,
            degradations=self.degradations + other.degradations,
            overloads=self.overloads + other.overloads,
            partitions=self.partitions + other.partitions,
            clocks=self.clocks + other.clocks,
        )

    def __len__(self) -> int:
        return (
            len(self.drops)
            + len(self.delays)
            + len(self.duplicates)
            + len(self.crashes)
            + len(self.churn)
            + len(self.degradations)
            + len(self.overloads)
            + len(self.partitions)
            + len(self.clocks)
        )

    def __repr__(self) -> str:
        # Hand-rolled to stay byte-identical with the pre-partition
        # dataclass repr when the partition family is empty: the frozen
        # legacy schedule digests (tests/faults/test_schedule_streams.py)
        # are sha256 over this repr.
        fields = [
            f"drops={self.drops!r}",
            f"delays={self.delays!r}",
            f"duplicates={self.duplicates!r}",
            f"crashes={self.crashes!r}",
            f"churn={self.churn!r}",
            f"degradations={self.degradations!r}",
            f"overloads={self.overloads!r}",
        ]
        if self.partitions:
            fields.append(f"partitions={self.partitions!r}")
        if self.clocks:
            fields.append(f"clocks={self.clocks!r}")
        return f"FaultSchedule({', '.join(fields)})"


def _draw_window(
    rng: np.random.Generator, horizon_ms: float, window_fraction: float
) -> Tuple[float, float]:
    length = max(1.0, window_fraction * horizon_ms * rng.uniform(0.5, 1.5))
    start = rng.uniform(0.0, max(1.0, horizon_ms - length))
    return start, start + length


def _draw_drained_window(
    rng: np.random.Generator, horizon_ms: float, window_fraction: float
) -> Tuple[float, float]:
    # A window guaranteed to end by 85% of the horizon, so the run can
    # recover/drain before the lifecycle audit.
    start, end = _draw_window(rng, horizon_ms, window_fraction)
    end = min(end, horizon_ms * 0.85)
    if end <= start:
        start = max(0.0, end - max(1.0, window_fraction * horizon_ms))
    return start, end


def _draw_host_window(
    rng: np.random.Generator,
    replicas: Sequence[str],
    horizon_ms: float,
) -> Tuple[str, float, float]:
    # Shared shape of crash and churn events: pick a host, a start in the
    # first 80% of the horizon, and a recovery 5–15% of the horizon later.
    host = str(rng.choice(list(replicas)))
    at = rng.uniform(0.0, horizon_ms * 0.8)
    back_at = at + rng.uniform(horizon_ms * 0.05, horizon_ms * 0.15)
    return host, at, back_at


def _draw_partition(
    rng: np.random.Generator,
    replicas: Sequence[str],
    horizon_ms: float,
    window_fraction: float,
    flap_probability: float,
    grey_probability: float,
) -> PartitionFault:
    # One randomized cut: a replica subset goes dark from everyone else.
    # Drained window — every cut heals by 85% of the horizon.
    start, end = _draw_drained_window(rng, horizon_ms, window_fraction)
    pool = list(replicas)
    size = int(rng.integers(1, max(2, len(pool) // 2 + 1)))
    side = tuple(
        str(h) for h in rng.choice(pool, size=size, replace=False)
    )
    modes = ("symmetric", "outbound", "inbound")
    mode = modes[int(rng.integers(0, 3))]
    flap_period: Optional[float] = None
    if rng.random() < flap_probability:
        flap_period = float(
            rng.uniform(horizon_ms * 0.02, horizon_ms * 0.08)
        )
    exempt = PROBE_EXEMPT_KINDS if rng.random() < grey_probability else ()
    return PartitionFault(
        side=side,
        start_ms=start,
        end_ms=end,
        mode=mode,
        flap_period_ms=flap_period,
        exempt_kinds=exempt,
    )


def _draw_clock_fault(
    rng: np.random.Generator,
    replicas: Sequence[str],
    horizon_ms: float,
    window_fraction: float,
    max_skew_ms: float,
    max_drift_ppm: float,
) -> ClockFault:
    # One randomized clock window: pick a host, a drained window, a kind
    # and a signed magnitude.  The sign is drawn for every kind so the
    # per-window draw sequence stays uniform across kinds.
    host = str(rng.choice(list(replicas)))
    start, end = _draw_drained_window(rng, horizon_ms, window_fraction)
    kind = CLOCK_FAULT_KINDS[int(rng.integers(0, len(CLOCK_FAULT_KINDS)))]
    sign = 1.0 if rng.random() < 0.5 else -1.0
    if kind == "skew":
        return ClockFault(
            host=host, start_ms=start, end_ms=end, kind=kind,
            offset_ms=sign * float(rng.uniform(1.0, max_skew_ms)),
        )
    if kind == "drift":
        return ClockFault(
            host=host, start_ms=start, end_ms=end, kind=kind,
            drift_ppm=sign * float(rng.uniform(50.0, max_drift_ppm)),
        )
    if kind == "step":
        return ClockFault(
            host=host, start_ms=start, end_ms=end, kind=kind,
            step_ms=sign * float(rng.uniform(1.0, max_skew_ms)),
        )
    if kind == "freeze":
        return ClockFault(host=host, start_ms=start, end_ms=end, kind=kind)
    return ClockFault(
        host=host, start_ms=start, end_ms=end, kind="jitter",
        jitter_ms=float(rng.uniform(0.5, max(1.0, max_skew_ms / 4.0))),
    )


def random_fault_schedule(
    rng: Union[np.random.Generator, RNGManager],
    horizon_ms: float,
    replicas: Sequence[str],
    drop_windows: int = 3,
    drop_probability: float = 0.3,
    delay_windows: int = 2,
    max_extra_ms: float = 40.0,
    duplicate_windows: int = 2,
    duplicate_probability: float = 0.5,
    max_late_by_ms: float = 60.0,
    crash_restarts: int = 2,
    churn_events: int = 2,
    window_fraction: float = 0.15,
    degradations: int = 0,
    max_slow_factor: float = 4.0,
    degradation_omission_probability: float = 0.7,
    overload_windows: int = 0,
    surge_interarrival_ms: float = 5.0,
    partition_windows: int = 0,
    partition_flap_probability: float = 0.25,
    partition_grey_probability: float = 0.2,
    clock_windows: int = 0,
    max_clock_skew_ms: float = 200.0,
    max_clock_drift_ppm: float = 800.0,
) -> FaultSchedule:
    """Draw a randomized schedule over ``[0, horizon_ms)``.

    Message-level windows cover about ``window_fraction`` of the horizon
    each; crashes always restart and churned members always rejoin, so a
    long-enough run converges back to the full view (the property the
    lifecycle auditor's drain-time invariants rely on).  Degradation and
    overload windows always end by 85% of the horizon, so a drained run
    has recovered.

    ``rng`` selects one of two seeding disciplines:

    * an :class:`~repro.rng.RNGManager` (preferred) draws each fault
      window from its own named substream — ``("faults.<family>", i)``
      for window ``i`` of ``<family>`` — so every window is independent
      of every other: changing any family's window count, or adding an
      entirely new fault family, never perturbs the windows other
      families draw (docs/REPRODUCIBILITY.md);
    * a plain :class:`numpy.random.Generator` reproduces the **legacy
      sequential path** bit-for-bit: families draw in fixed order from
      the single generator, with ``degradations`` and then
      ``overload_windows`` drawn last so historic schedules with the
      default counts stay byte-identical for a given seed.  This path is
      frozen — new fault families must draw via the manager discipline,
      and the legacy order is pinned by a regression test.
    """
    if horizon_ms <= 0:
        raise ValueError(f"horizon_ms must be > 0, got {horizon_ms}")
    if not replicas:
        raise ValueError("need at least one replica to inject faults into")

    if isinstance(rng, RNGManager):
        # Named-substream discipline: one independent generator per
        # (family, window index) key; draw order is irrelevant.
        drops = []
        for i in range(drop_windows):
            g = rng.substream("faults.drops", i)
            start, end = _draw_window(g, horizon_ms, window_fraction)
            drops.append(
                DropRule(
                    start_ms=start, end_ms=end, probability=drop_probability
                )
            )
        delays = []
        for i in range(delay_windows):
            g = rng.substream("faults.delays", i)
            start, end = _draw_window(g, horizon_ms, window_fraction)
            delays.append(
                DelayRule(
                    start_ms=start,
                    end_ms=end,
                    extra_ms=g.uniform(1.0, max_extra_ms),
                )
            )
        duplicates = []
        for i in range(duplicate_windows):
            g = rng.substream("faults.duplicates", i)
            start, end = _draw_window(g, horizon_ms, window_fraction)
            duplicates.append(
                DuplicateRule(
                    start_ms=start,
                    end_ms=end,
                    probability=duplicate_probability,
                    copies=int(g.integers(1, 3)),
                    late_by_ms=g.uniform(0.0, max_late_by_ms),
                )
            )
        crashes = []
        for i in range(crash_restarts):
            g = rng.substream("faults.crashes", i)
            host, crash_at, restart_at = _draw_host_window(
                g, replicas, horizon_ms
            )
            crashes.append(
                CrashRestartFault(
                    host=host, crash_at_ms=crash_at, restart_at_ms=restart_at
                )
            )
        churn = []
        for i in range(churn_events):
            g = rng.substream("faults.churn", i)
            member, leave_at, rejoin_at = _draw_host_window(
                g, replicas, horizon_ms
            )
            churn.append(
                ChurnFault(
                    member=member, leave_at_ms=leave_at, rejoin_at_ms=rejoin_at
                )
            )
        degraded = []
        for i in range(degradations):
            g = rng.substream("faults.degradations", i)
            host = str(g.choice(list(replicas)))
            start, end = _draw_drained_window(g, horizon_ms, window_fraction)
            degraded.append(
                DegradationFault(
                    host=host,
                    start_ms=start,
                    end_ms=end,
                    slow_factor=float(g.uniform(1.5, max_slow_factor)),
                    omission_probability=degradation_omission_probability,
                )
            )
        overloads = []
        for i in range(overload_windows):
            g = rng.substream("faults.overloads", i)
            start, end = _draw_drained_window(g, horizon_ms, window_fraction)
            overloads.append(
                OverloadFault(
                    start_ms=start,
                    end_ms=end,
                    surge_interarrival_ms=surge_interarrival_ms,
                )
            )
        partitions = []
        for i in range(partition_windows):
            g = rng.substream("faults.partition", i)
            partitions.append(
                _draw_partition(
                    g,
                    replicas,
                    horizon_ms,
                    window_fraction,
                    partition_flap_probability,
                    partition_grey_probability,
                )
            )
        clocks = []
        for i in range(clock_windows):
            g = rng.substream("faults.clock", i)
            clocks.append(
                _draw_clock_fault(
                    g,
                    replicas,
                    horizon_ms,
                    window_fraction,
                    max_clock_skew_ms,
                    max_clock_drift_ppm,
                )
            )
        return FaultSchedule(
            drops=tuple(drops),
            delays=tuple(delays),
            duplicates=tuple(duplicates),
            crashes=tuple(crashes),
            churn=tuple(churn),
            degradations=tuple(degraded),
            overloads=tuple(overloads),
            partitions=tuple(partitions),
            clocks=tuple(clocks),
        )

    # Legacy sequential path: one generator, fixed family order.  Frozen;
    # pinned bit-for-bit by tests/faults/test_schedule_streams.py.
    drops = []
    for _ in range(drop_windows):
        start, end = _draw_window(rng, horizon_ms, window_fraction)
        drops.append(
            DropRule(start_ms=start, end_ms=end, probability=drop_probability)
        )
    delays = []
    for _ in range(delay_windows):
        start, end = _draw_window(rng, horizon_ms, window_fraction)
        delays.append(
            DelayRule(
                start_ms=start,
                end_ms=end,
                extra_ms=rng.uniform(1.0, max_extra_ms),
            )
        )
    duplicates = []
    for _ in range(duplicate_windows):
        start, end = _draw_window(rng, horizon_ms, window_fraction)
        duplicates.append(
            DuplicateRule(
                start_ms=start,
                end_ms=end,
                probability=duplicate_probability,
                copies=int(rng.integers(1, 3)),
                late_by_ms=rng.uniform(0.0, max_late_by_ms),
            )
        )
    crashes = []
    for _ in range(crash_restarts):
        host, crash_at, restart_at = _draw_host_window(
            rng, replicas, horizon_ms
        )
        crashes.append(
            CrashRestartFault(
                host=host, crash_at_ms=crash_at, restart_at_ms=restart_at
            )
        )
    churn = []
    for _ in range(churn_events):
        member, leave_at, rejoin_at = _draw_host_window(
            rng, replicas, horizon_ms
        )
        churn.append(
            ChurnFault(member=member, leave_at_ms=leave_at, rejoin_at_ms=rejoin_at)
        )
    degraded = []
    # Drawn last so degradations=0 reproduces historic schedules exactly.
    for _ in range(degradations):
        host = str(rng.choice(list(replicas)))
        start, end = _draw_drained_window(rng, horizon_ms, window_fraction)
        degraded.append(
            DegradationFault(
                host=host,
                start_ms=start,
                end_ms=end,
                slow_factor=float(rng.uniform(1.5, max_slow_factor)),
                omission_probability=degradation_omission_probability,
            )
        )
    overloads = []
    # Also drawn last, after degradations, for the same determinism.
    for _ in range(overload_windows):
        start, end = _draw_drained_window(rng, horizon_ms, window_fraction)
        overloads.append(
            OverloadFault(
                start_ms=start,
                end_ms=end,
                surge_interarrival_ms=surge_interarrival_ms,
            )
        )
    partitions = []
    # Appended after every earlier family so partition_windows=0 keeps
    # historic schedules byte-identical.
    for _ in range(partition_windows):
        partitions.append(
            _draw_partition(
                rng,
                replicas,
                horizon_ms,
                window_fraction,
                partition_flap_probability,
                partition_grey_probability,
            )
        )
    clocks = []
    # Newest family, appended after *everything* (partitions included)
    # so clock_windows=0 keeps historic schedules byte-identical.
    for _ in range(clock_windows):
        clocks.append(
            _draw_clock_fault(
                rng,
                replicas,
                horizon_ms,
                window_fraction,
                max_clock_skew_ms,
                max_clock_drift_ppm,
            )
        )
    return FaultSchedule(
        drops=tuple(drops),
        delays=tuple(delays),
        duplicates=tuple(duplicates),
        crashes=tuple(crashes),
        churn=tuple(churn),
        degradations=tuple(degraded),
        overloads=tuple(overloads),
        partitions=tuple(partitions),
        clocks=tuple(clocks),
    )
