"""Host-level fault drivers: crash-mid-service + restart, and view churn.

Message-level faults live in :class:`~repro.faultinject.transport
.FaultyTransport`; this module applies the two fault families that touch
hosts and membership instead of messages:

* :class:`CrashRestartFault` — the host drops off the LAN (in-flight
  deliveries to it are lost), its server handler's queue is cleared and
  its service loop interrupted (crash-mid-service), and — if a restart is
  scheduled — the host comes back as a fresh incarnation, the failure
  detector's declaration is cleared and the member rejoins its group.
* :class:`ChurnFault` — a graceful leave (the member stays up but
  vanishes from the view) followed by an optional rejoin, exercising the
  client handlers' view-tracking and repository eviction under traffic.

Both are idempotent against racing membership changes: a churned member
that was concurrently evicted by the failure detector is simply skipped.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..gateway.handlers.timing_fault import TimingFaultServerHandler
from ..group.ensemble import GroupCommunication
from ..net.lan import LanModel
from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer
from .schedule import (
    ChurnFault,
    CrashRestartFault,
    DegradationFault,
    FaultSchedule,
)

__all__ = ["LifecycleFaultDriver"]


class _SlowedProfile:
    """A service profile proxy multiplying every sampled duration.

    Delegates everything else to the wrapped profile, so CoupledLoad
    coupling and per-method distributions keep working while degraded.
    """

    def __init__(self, inner: Any, slow_factor: float) -> None:
        self._inner = inner
        self._slow_factor = float(slow_factor)

    def sample_duration(
        self, method: str, now_ms: float, rng: np.random.Generator
    ) -> float:
        return float(
            self._slow_factor
            * self._inner.sample_duration(method, now_ms, rng)
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class LifecycleFaultDriver:
    """Applies crash/restart and churn faults to a running deployment.

    Parameters
    ----------
    sim, lan, group_comm:
        Simulation substrate the deployment runs on.
    service:
        Group name the replicas belong to.
    servers:
        Host name -> server handler, for queue clearing and restart.
    """

    def __init__(
        self,
        sim: Simulator,
        lan: LanModel,
        group_comm: GroupCommunication,
        service: str,
        servers: Dict[str, TimingFaultServerHandler],
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.lan = lan
        self.group_comm = group_comm
        self.service = service
        self.servers = servers
        self.tracer = tracer if tracer is not None else NullTracer()
        self.crashes_applied = 0
        self.restarts_applied = 0
        self.leaves_applied = 0
        self.rejoins_applied = 0
        self.degradations_applied = 0
        self.degradations_lifted = 0

    # -- scheduling ------------------------------------------------------------
    def apply(self, schedule: FaultSchedule) -> None:
        """Arm every host-level fault of ``schedule``."""
        for fault in schedule.crashes:
            self.apply_crash(fault)
        for fault in schedule.churn:
            self.apply_churn(fault)
        for fault in schedule.degradations:
            self.apply_degradation(fault)

    def apply_crash(self, fault: CrashRestartFault) -> None:
        if fault.host not in self.servers:
            raise KeyError(f"no server handler for host {fault.host!r}")
        self.sim.call_at(fault.crash_at_ms, lambda: self.crash_now(fault.host))
        if fault.restart_at_ms is not None:
            self.sim.call_at(
                fault.restart_at_ms, lambda: self.restart_now(fault.host)
            )

    def apply_churn(self, fault: ChurnFault) -> None:
        self.sim.call_at(fault.leave_at_ms, lambda: self.leave_now(fault.member))
        if fault.rejoin_at_ms is not None:
            self.sim.call_at(
                fault.rejoin_at_ms, lambda: self.rejoin_now(fault.member)
            )

    def apply_degradation(self, fault: DegradationFault) -> None:
        """Arm the slow-factor half of a degradation window.

        The omission half is interpreted on the wire by
        :class:`~repro.faultinject.transport.FaultyTransport` (the same
        schedule object must be handed to both).
        """
        if fault.host not in self.servers:
            raise KeyError(f"no server handler for host {fault.host!r}")
        if fault.slow_factor > 1.0:
            self.sim.call_at(
                fault.start_ms, lambda: self.degrade_now(fault)
            )
            self.sim.call_at(fault.end_ms, lambda: self.recover_now(fault))

    # -- crash / restart -------------------------------------------------------
    def crash_now(self, host: str) -> None:
        """Fail-stop ``host`` at the current instant (idempotent)."""
        if not self.lan.is_up(host):
            return
        self.lan.mark_down(host)
        self.servers[host].crash()
        self.crashes_applied += 1
        self.tracer.emit(self.sim.now, "faultinject", "fault.crash", host=host)

    def restart_now(self, host: str) -> None:
        """Bring ``host`` back as a fresh incarnation (idempotent)."""
        if self.lan.is_up(host):
            return
        self.lan.mark_up(host)
        self.servers[host].restart()
        detector = self.group_comm.failure_detector
        detector.forget(host)
        if host not in self.group_comm.view(self.service):
            self.group_comm.join(self.service, host, watch=True)
        self.restarts_applied += 1
        self.tracer.emit(self.sim.now, "faultinject", "fault.restart", host=host)

    # -- degradation -----------------------------------------------------------
    def degrade_now(self, fault: DegradationFault) -> None:
        """Wrap the host's service profile with the slow factor."""
        app = self.servers[fault.host].app
        app.profile = _SlowedProfile(app.profile, fault.slow_factor)
        self.degradations_applied += 1
        self.tracer.emit(
            self.sim.now, "faultinject", "fault.degrade",
            host=fault.host, slow_factor=fault.slow_factor,
        )

    def recover_now(self, fault: DegradationFault) -> None:
        """Unwrap one layer of slowdown (overlapping windows nest)."""
        app = self.servers[fault.host].app
        if isinstance(app.profile, _SlowedProfile):
            app.profile = app.profile._inner
            self.degradations_lifted += 1
            self.tracer.emit(
                self.sim.now, "faultinject", "fault.degrade-end",
                host=fault.host,
            )

    # -- view churn ------------------------------------------------------------
    def leave_now(self, member: str) -> None:
        """Remove a live member from the view (skipped if already gone)."""
        if member not in self.group_comm.view(self.service):
            return
        self.group_comm.leave(self.service, member)
        self.leaves_applied += 1
        self.tracer.emit(
            self.sim.now, "faultinject", "fault.leave", member=member
        )

    def rejoin_now(self, member: str) -> None:
        """Rejoin a previously churned member (skipped if down/present)."""
        if not self.lan.is_up(member):
            return  # crashed in the meantime; the restart path rejoins it
        if member in self.group_comm.view(self.service):
            return
        self.group_comm.join(self.service, member, watch=True)
        self.rejoins_applied += 1
        self.tracer.emit(
            self.sim.now, "faultinject", "fault.rejoin", member=member
        )

    def __repr__(self) -> str:
        return (
            f"<LifecycleFaultDriver crashes={self.crashes_applied} "
            f"restarts={self.restarts_applied} leaves={self.leaves_applied} "
            f"rejoins={self.rejoins_applied}>"
        )
