"""Fault injection and lifecycle auditing for the request path.

Three composable layers:

* :mod:`~repro.faultinject.schedule` — declarative fault schedules
  (drops, delay spikes, duplicated/late replies, crash+restart, view
  churn, persistent degradation) plus a randomized-schedule generator;
* :mod:`~repro.faultinject.transport` /
  :mod:`~repro.faultinject.drivers` — interpreters that apply a schedule
  to a running deployment (message level and host level respectively);
* :mod:`~repro.faultinject.auditor` — the drain-time
  :class:`LifecycleAuditor` asserting the request-lifecycle invariants
  (exactly-once completion, no leaked bookkeeping, no resurrected
  replicas, idle servers).

See docs/ARCHITECTURE.md ("Fault injection and lifecycle invariants").
"""

from .auditor import (
    AuditReport,
    LifecycleAuditor,
    LifecycleViolation,
    SubmissionRecord,
)
from .drivers import LifecycleFaultDriver
from .overload import OverloadDriver
from .schedule import (
    ChurnFault,
    CrashRestartFault,
    DegradationFault,
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultSchedule,
    OverloadFault,
    random_fault_schedule,
)
from .transport import FaultyTransport

__all__ = [
    "AuditReport",
    "ChurnFault",
    "CrashRestartFault",
    "DegradationFault",
    "DelayRule",
    "DropRule",
    "DuplicateRule",
    "FaultSchedule",
    "FaultyTransport",
    "LifecycleAuditor",
    "LifecycleFaultDriver",
    "LifecycleViolation",
    "OverloadDriver",
    "OverloadFault",
    "SubmissionRecord",
    "random_fault_schedule",
]
