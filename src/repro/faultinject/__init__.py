"""Fault injection and lifecycle auditing for the request path.

Three composable layers:

* :mod:`~repro.faultinject.schedule` — declarative fault schedules
  (drops, delay spikes, duplicated/late replies, crash+restart, view
  churn, persistent degradation, network partitions, clock faults) plus
  a randomized-schedule generator;
* :mod:`~repro.faultinject.transport` /
  :mod:`~repro.faultinject.drivers` /
  :mod:`~repro.faultinject.partition` /
  :mod:`~repro.faultinject.clock` — interpreters that apply a schedule
  to a running deployment (message level, host level, connectivity
  level and clock level respectively);
* :mod:`~repro.faultinject.auditor` — the drain-time
  :class:`LifecycleAuditor` asserting the request-lifecycle invariants
  (exactly-once completion, no leaked bookkeeping, no resurrected
  replicas, idle servers, no acks from the dark side of a cut);
* :mod:`~repro.faultinject.campaign` — the randomized chaos-campaign
  engine: composed schedules fanned over the parallel sweep runner,
  audited per scenario, with a delta-debugging shrinker that minimizes
  failing schedules to a replayable reproducer.

See docs/ARCHITECTURE.md ("Fault injection and lifecycle invariants").
"""

from .auditor import (
    AuditReport,
    LifecycleAuditor,
    LifecycleViolation,
    SubmissionRecord,
)
from .campaign import (
    CampaignConfig,
    CampaignResult,
    ScheduleOutcome,
    flatten_schedule,
    rebuild_schedule,
    run_campaign,
    run_scenario,
    shrink_schedule,
)
from .clock import CLOCK_FAULT_KINDS, ClockDriver, ClockFault
from .drivers import LifecycleFaultDriver
from .overload import OverloadDriver
from .partition import (
    PROBE_EXEMPT_KINDS,
    PartitionDriver,
    PartitionFault,
    grey_partition,
)
from .schedule import (
    ChurnFault,
    CrashRestartFault,
    DegradationFault,
    DelayRule,
    DropRule,
    DuplicateRule,
    FaultSchedule,
    OverloadFault,
    random_fault_schedule,
)
from .transport import FaultyTransport

__all__ = [
    "AuditReport",
    "CLOCK_FAULT_KINDS",
    "CampaignConfig",
    "CampaignResult",
    "ChurnFault",
    "ClockDriver",
    "ClockFault",
    "CrashRestartFault",
    "DegradationFault",
    "DelayRule",
    "DropRule",
    "DuplicateRule",
    "FaultSchedule",
    "FaultyTransport",
    "LifecycleAuditor",
    "LifecycleFaultDriver",
    "LifecycleViolation",
    "OverloadDriver",
    "OverloadFault",
    "PROBE_EXEMPT_KINDS",
    "PartitionDriver",
    "PartitionFault",
    "ScheduleOutcome",
    "SubmissionRecord",
    "grey_partition",
    "flatten_schedule",
    "random_fault_schedule",
    "rebuild_schedule",
    "run_campaign",
    "run_scenario",
    "shrink_schedule",
]
