"""A fault-injecting decorator around :class:`repro.net.transport.Transport`.

:class:`FaultyTransport` exposes the same surface as the transport it
wraps (``bind``/``unbind``/``send``/``multicast`` plus the delivery
counters), so it can be handed to gateways, handlers and the group layer
in place of the real one.  Every outbound message is checked against the
message-level rules of a :class:`~repro.faultinject.schedule.FaultSchedule`:

* a matching :class:`DropRule` loses the message before it reaches the
  wire (the inner transport never sees it),
* matching :class:`DelayRule` extra delays are summed and the transmission
  itself is postponed by that much,
* matching :class:`DuplicateRule` entries schedule extra transmissions of
  the *same* message (same ``msg_id``) — the receiver sees duplicated,
  possibly late, copies.

Faults compose: a message can be delayed and duplicated by one schedule.
Drops win over everything (a message that was never sent cannot be late).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..net.message import Message
from ..net.transport import Receiver, Transport
from ..rng import RNGManager, seeded_generator
from ..sim.trace import NullTracer, Tracer
from .schedule import FaultSchedule

__all__ = ["FaultyTransport"]


class FaultyTransport:
    """Drop/delay/duplicate injector wrapping an inner transport.

    Parameters
    ----------
    inner:
        The real transport; performs all actual deliveries.
    schedule:
        Message-level fault rules (host-level faults are applied by
        :class:`~repro.faultinject.drivers.LifecycleFaultDriver`).
    rng:
        Generator for the probabilistic rules; deterministic by default.
    streams:
        Alternative to ``rng``: an :class:`~repro.rng.RNGManager` whose
        ``"faultinject.wire"`` stream supplies the injection draws —
        the preferred form, keeping fault randomness on a named
        substream independent of every other component's draws
        (docs/REPRODUCIBILITY.md).  Mutually exclusive with ``rng``.
    """

    #: Named stream the wire-level injection draws come from.
    STREAM_NAME = "faultinject.wire"

    def __init__(
        self,
        inner: Transport,
        schedule: Optional[FaultSchedule] = None,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        streams: Optional["RNGManager"] = None,
    ) -> None:
        if rng is not None and streams is not None:
            raise ValueError("pass either rng or streams, not both")
        self.inner = inner
        self.sim = inner.sim
        self.lan = inner.lan
        self.schedule = schedule or FaultSchedule()
        if streams is not None:
            self.rng = streams.stream(self.STREAM_NAME)
        else:
            self.rng = rng if rng is not None else seeded_generator(0)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.injected_drops = 0
        self.injected_delays = 0
        self.injected_duplicates = 0
        self.injected_degradation_drops = 0
        self.injected_partition_drops = 0

    # -- wiring (delegated) ----------------------------------------------------
    def bind(self, host_name: str, receiver: Receiver) -> None:
        self.inner.bind(host_name, receiver)

    def unbind(self, host_name: str) -> None:
        self.inner.unbind(host_name)

    def is_bound(self, host_name: str) -> bool:
        return self.inner.is_bound(host_name)

    # -- counters (delegated) --------------------------------------------------
    @property
    def sent_count(self) -> int:
        return self.inner.sent_count

    @property
    def delivered_count(self) -> int:
        return self.inner.delivered_count

    @property
    def dropped_count(self) -> int:
        return self.inner.dropped_count

    @property
    def lost_count(self) -> int:
        return self.inner.lost_count

    # -- sending -------------------------------------------------------------
    def send(self, message: Message, group_size: int = 1) -> float:
        """Send through the schedule; returns the injected delay (ms).

        The return value is the *extra* injected delay (0.0 for a clean
        pass-through or a drop), not the LAN's sampled one-way delay —
        callers that depend on the exact delay should not be running under
        fault injection.
        """
        now = self.sim.now
        # Partitions outrank every message-level rule: traffic that
        # cannot cross the cut is lost before drops/delays/duplicates
        # get a say.  Lossy partitions (drop_probability < 1) draw from
        # the wire stream; total cuts stay draw-free so adding a clean
        # blackout never perturbs the other injection draws.
        for fault in self.schedule.partitions:
            if fault.severs(now, message) and (
                fault.drop_probability >= 1.0
                or self.rng.random() < fault.drop_probability
            ):
                self.injected_partition_drops += 1
                self.tracer.emit(
                    now, "faultinject", "fault.partition-drop",
                    mode=fault.mode, **message.describe(),
                )
                return 0.0

        for rule in self.schedule.drops:
            if rule.matches(now, message) and (
                rule.probability >= 1.0 or self.rng.random() < rule.probability
            ):
                self.injected_drops += 1
                self.tracer.emit(
                    now, "faultinject", "fault.drop", **message.describe()
                )
                return 0.0

        # Degradation omissions: a degraded host's NIC loses traffic in
        # both directions — messages it sends and messages sent to it.
        for fault in self.schedule.degradations:
            if fault.omission_probability <= 0.0 or not fault.active(now):
                continue
            if message.sender != fault.host and message.destination != fault.host:
                continue
            if (
                fault.omission_probability >= 1.0
                or self.rng.random() < fault.omission_probability
            ):
                self.injected_degradation_drops += 1
                self.tracer.emit(
                    now, "faultinject", "fault.degradation-drop",
                    host=fault.host, **message.describe(),
                )
                return 0.0

        extra = 0.0
        for rule in self.schedule.delays:
            if rule.matches(now, message):
                extra += rule.extra_ms
        if extra > 0.0:
            self.injected_delays += 1
            self.tracer.emit(
                now, "faultinject", "fault.delay", extra=extra,
                **message.describe(),
            )

        for rule in self.schedule.duplicates:
            if rule.matches(now, message) and (
                rule.probability >= 1.0 or self.rng.random() < rule.probability
            ):
                for _ in range(rule.copies):
                    self.injected_duplicates += 1
                    self.sim.call_in(
                        extra + rule.late_by_ms,
                        lambda m=message, g=group_size: self.inner.send(m, g),
                    )
                self.tracer.emit(
                    now, "faultinject", "fault.duplicate",
                    copies=rule.copies, late_by=rule.late_by_ms,
                    **message.describe(),
                )

        if extra > 0.0:
            self.sim.call_in(
                extra,
                lambda m=message, g=group_size: self.inner.send(m, g),
            )
            return extra
        self.inner.send(message, group_size=group_size)
        return 0.0

    def multicast(
        self, message: Message, destinations: Sequence[str]
    ) -> List[float]:
        """Per-destination send through the fault rules (same msg_id)."""
        if not destinations:
            raise ValueError("multicast needs at least one destination")
        group_size = len(destinations)
        return [
            self.send(message.with_destination(dst), group_size=group_size)
            for dst in destinations
        ]

    def __repr__(self) -> str:
        return (
            f"<FaultyTransport drops={self.injected_drops} "
            f"delays={self.injected_delays} "
            f"duplicates={self.injected_duplicates} inner={self.inner!r}>"
        )
