"""Named-stream RNG manager with order-invariant per-entity substreams.

The derivation scheme (documented normatively in docs/REPRODUCIBILITY.md)
is a keyed hash in the style of :meth:`numpy.random.SeedSequence.spawn`,
but with *stable, human-readable keys* instead of spawn counters — spawn
counters depend on spawn order, which is exactly the fragility this
module exists to remove:

``derive_seed(base_seed, *parts)`` joins ``base_seed`` and the key parts
with ``":"``, SHA-256 hashes the string, and takes the first 8 digest
bytes (little-endian) as a 64-bit seed.  A stream's generator is
``numpy.random.default_rng(derived)`` — equivalent to seeding a
``SeedSequence`` with the derived entropy.  Because the seed is a pure
function of the key:

* two streams with different names are statistically independent;
* the order in which streams are first touched is irrelevant;
* interleaving draws across entity substreams never changes the
  sequence any single entity sees.

The single-part form ``derive_seed(s, name)`` hashes ``f"{s}:{name}"`` —
byte-identical to the historic ``repro.sim.random`` derivation, so
rebasing :class:`~repro.sim.random.RandomStreams` on
:class:`RNGManager` changed no simulation result.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple, Union

import numpy as np

__all__ = [
    "RNGManager",
    "RNGRegistry",
    "derive_seed",
    "derive_entity_seed",
    "derive_repetition_seed",
    "seed_sequence",
]

#: Types accepted as key parts: anything with a stable ``str()``.
KeyPart = Union[str, int]


def derive_seed(base_seed: int, *parts: KeyPart) -> int:
    """Derive a 64-bit child seed from ``base_seed`` and a key tuple.

    The key is canonicalized as ``f"{base_seed}:{part1}:{part2}:..."``,
    SHA-256 hashed, and truncated to the first 8 bytes (little-endian).
    Deterministic across processes, platforms and Python versions
    (``PYTHONHASHSEED`` does not apply to hashlib).
    """
    if not parts:
        raise ValueError("derive_seed needs at least one key part")
    label = ":".join([str(int(base_seed))] + [str(p) for p in parts])
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_entity_seed(
    base_seed: int,
    stream_name: str,
    entity_id: Optional[KeyPart] = None,
    repetition: Optional[int] = None,
) -> int:
    """Seed for the ``(base_seed, stream_name, entity_id, repetition)`` key.

    ``entity_id`` and ``repetition`` are optional refinements; omitting
    them yields the plain named-stream seed.  The canonical key encodes
    them as ``entity=<id>`` and ``rep=<n>`` parts, so an entity substream
    can never collide with a literal stream name.
    """
    parts: Tuple[KeyPart, ...] = (stream_name,)
    if entity_id is not None:
        parts += (f"entity={entity_id}",)
    if repetition is not None:
        parts += (f"rep={int(repetition)}",)
    return derive_seed(base_seed, *parts)


def derive_repetition_seed(base_seed: int, repetition: int) -> int:
    """A stable per-repetition scenario seed from one experiment seed.

    This is the seed handed to repetition ``repetition`` of a sweep when
    the caller does not enumerate seeds explicitly — the parallel runner
    records it next to the merged metrics so any single repetition can be
    replayed in isolation.
    """
    if repetition < 0:
        raise ValueError(f"repetition must be >= 0, got {repetition}")
    return derive_seed(base_seed, "rep", int(repetition))


def seed_sequence(base_seed: int, *parts: KeyPart) -> np.random.SeedSequence:
    """A :class:`numpy.random.SeedSequence` over the derived entropy.

    For callers that want to keep spawning numpy-style (e.g. to seed a
    third-party library expecting a ``SeedSequence``); streams created
    from it match ``np.random.default_rng(derive_seed(...))``.
    """
    return np.random.SeedSequence(derive_seed(base_seed, *parts))


def seeded_generator(seed: int = 0) -> np.random.Generator:
    """A bare generator seeded directly with ``seed`` (no key derivation).

    The sanctioned escape hatch for components that accept an explicit
    ``rng`` parameter and need a deterministic default when the caller
    passes none.  Bit-identical to ``np.random.default_rng(seed)`` —
    this helper exists so that construction happens inside the seeding
    authority, where repro-lint's RL001 can see every stream is
    accounted for.  Prefer :class:`RNGManager` named streams whenever a
    manager is in reach.
    """
    return np.random.default_rng(seed)


class RNGManager:
    """Provides deterministic, named child streams from one base seed.

    Streams are memoized: the same name always returns the same
    :class:`numpy.random.Generator` instance, whose state advances with
    use.  Seeds are derived from the name alone (:func:`derive_seed`),
    so creation order is irrelevant.

    >>> manager = RNGManager(base_seed=42)
    >>> manager.stream("lan.a->b") is manager.stream("lan.a->b")
    True
    """

    def __init__(self, base_seed: int = 0) -> None:
        """Root every stream this manager hands out at ``base_seed``."""
        self.base_seed = int(base_seed)
        self._streams: Dict[Tuple[KeyPart, ...], np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The base seed (legacy alias used by the sim layer)."""
        return self.base_seed

    def child_seed(
        self,
        name: str,
        entity_id: Optional[KeyPart] = None,
        repetition: Optional[int] = None,
    ) -> int:
        """The derived seed for a named (sub)stream, without creating it."""
        if not name:
            raise ValueError("stream name must be non-empty")
        return derive_entity_seed(
            self.base_seed, name, entity_id=entity_id, repetition=repetition
        )

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the named substream ``name``."""
        return self._get((name,), self.child_seed(name))

    def substream(
        self,
        name: str,
        entity_id: KeyPart,
        repetition: Optional[int] = None,
    ) -> np.random.Generator:
        """A per-entity substream of ``name``, order-invariant across entities.

        Each ``(name, entity_id[, repetition])`` key owns an independent
        generator; interleaving draws across entities never changes the
        sequence any one entity sees.
        """
        key: Tuple[KeyPart, ...] = (name, f"entity={entity_id}")
        if repetition is not None:
            key += (f"rep={int(repetition)}",)
        return self._get(
            key, self.child_seed(name, entity_id=entity_id, repetition=repetition)
        )

    def _get(
        self, key: Tuple[KeyPart, ...], seed: int
    ) -> np.random.Generator:
        """Memoized generator lookup for a fully derived key/seed pair."""
        rng = self._streams.get(key)
        if rng is None:
            rng = np.random.default_rng(seed)
            self._streams[key] = rng
        return rng

    def fork(self, name: str) -> "RNGManager":
        """A child manager whose streams are independent of this one's."""
        return type(self)(derive_seed(self.base_seed, f"fork:{name}"))

    def reset(self) -> None:
        """Drop all stream state; the same names replay identically."""
        self._streams.clear()

    def __repr__(self) -> str:
        """Short debugging form: base seed plus live stream count."""
        return (
            f"<{type(self).__name__} base_seed={self.base_seed} "
            f"streams={len(self._streams)}>"
        )


class RNGRegistry(RNGManager):
    """An :class:`RNGManager` scoped to a scenario / worker / repetition.

    The scope parts fold into the effective base seed, giving each
    ``(scenario, worker, repetition)`` combination a disjoint stream
    shard: two registries with different scopes share *no* variates,
    while equal scopes reproduce each other exactly.

    The parallel sweep runner deliberately does **not** key task
    randomness on ``worker`` — task streams derive from the task's own
    ``(base_seed, point, repetition)`` so results cannot depend on which
    worker ran the task.  The ``worker`` scope exists for worker-local
    auxiliary randomness (e.g. jittered polling in a live gateway) that
    must be disjoint across shards without being part of any result.
    """

    def __init__(
        self,
        base_seed: int,
        scenario: Optional[str] = None,
        worker: Optional[int] = None,
        repetition: Optional[int] = None,
    ) -> None:
        """Fold the ``(scenario, worker, repetition)`` scope into the seed."""
        self.scenario = scenario
        self.worker = worker
        self.repetition = repetition
        parts: Tuple[KeyPart, ...] = ()
        if scenario is not None:
            parts += (f"scenario={scenario}",)
        if worker is not None:
            parts += (f"worker={int(worker)}",)
        if repetition is not None:
            parts += (f"rep={int(repetition)}",)
        effective = derive_seed(base_seed, *parts) if parts else int(base_seed)
        super().__init__(effective)
        #: The unscoped seed the scope was folded into (for provenance).
        self.root_seed = int(base_seed)

    def __repr__(self) -> str:
        """Debugging form carrying the scope triple."""
        return (
            f"<RNGRegistry root_seed={self.root_seed} "
            f"scenario={self.scenario!r} worker={self.worker} "
            f"repetition={self.repetition}>"
        )
