"""Hierarchical, named random-number streams for reproducible experiments.

This package is the single seeding authority for the repository.  Every
stochastic component — simulated links, client think times, fault
schedules, experiment repetitions — draws from a *named stream* whose
seed is a pure function of a key, never of creation order or draw
interleaving.  That discipline buys three properties the experiment
matrix depends on (docs/REPRODUCIBILITY.md spells out the contract):

* **reproducibility** — any run is replayable from its recorded
  ``(base_seed, params)`` alone;
* **order-invariance** — adding a component, or reordering when
  components first draw, never perturbs the variates any *other*
  component sees (the classic common-random-numbers discipline);
* **shardability** — repetitions and parameter points can be fanned out
  across worker processes (``repro.experiments.parallel``) and merged
  into results bit-identical to a serial run, because no stream depends
  on which worker executed it.

Key derivation is ``numpy.random.SeedSequence``-style keyed hashing:
the key tuple ``(base_seed, stream_name, entity_id, repetition)`` is
canonically joined and SHA-256 hashed down to 64 bits of entropy (see
:func:`derive_seed`).  :class:`RNGManager` memoizes named streams over
one base seed; :class:`RNGRegistry` adds scenario/worker/repetition
scoping with disjoint shards.
"""

from .manager import (
    RNGManager,
    RNGRegistry,
    derive_entity_seed,
    derive_repetition_seed,
    derive_seed,
    seed_sequence,
    seeded_generator,
)

__all__ = [
    "RNGManager",
    "RNGRegistry",
    "derive_seed",
    "derive_entity_seed",
    "derive_repetition_seed",
    "seed_sequence",
    "seeded_generator",
]
