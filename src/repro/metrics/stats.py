"""Summary statistics used across experiments and tests.

Small, dependency-light helpers: streaming mean/variance (Welford),
percentiles, and normal-approximation confidence intervals for means and
proportions.  The experiment harness reports these in its tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "RunningStats",
    "Summary",
    "summarize",
    "percentile",
    "mean_confidence_interval",
    "proportion_confidence_interval",
]

# Two-sided z critical values for the confidence levels we report.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    try:
        return _Z_VALUES[round(confidence, 2)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence level {confidence}; "
            f"choose one of {sorted(_Z_VALUES)}"
        ) from None


class RunningStats:
    """Streaming count/mean/variance/min/max via Welford's algorithm."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with < 2 observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two independent statistics (Chan et al. parallel merge)."""
        merged = RunningStats()
        if self.count == 0:
            merged.count = other.count
            merged._mean = other._mean
            merged._m2 = other._m2
        elif other.count == 0:
            merged.count = self.count
            merged._mean = self._mean
            merged._m2 = self._m2
        else:
            total = self.count + other.count
            delta = other._mean - self._mean
            merged.count = total
            merged._mean = self._mean + delta * other.count / total
            merged._m2 = (
                self._m2
                + other._m2
                + delta * delta * self.count * other.count / total
            )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:
        return (
            f"<RunningStats n={self.count} mean={self.mean:.4g} "
            f"sd={self.stdev:.4g}>"
        )


@dataclass(frozen=True)
class Summary:
    """One-shot summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    def row(self) -> Tuple[int, float, float, float, float, float, float, float]:
        """Tuple form for table printers."""
        return (
            self.count,
            self.mean,
            self.stdev,
            self.minimum,
            self.maximum,
            self.p50,
            self.p90,
            self.p99,
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values`` (raises on empty input)."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        stdev=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values``."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(values) == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` normal-approximation CI for the mean."""
    if len(values) == 0:
        raise ValueError("cannot compute a CI on an empty sample")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, mean, mean
    half = _z_for(confidence) * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return mean, mean - half, mean + half


def proportion_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(p, low, high)`` Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError(f"trials must be > 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    z = _z_for(confidence)
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return p, max(0.0, center - half), min(1.0, center + half)
