"""Measurement utilities: streaming statistics and metric collection."""

from .collector import MetricsCollector
from .stats import (
    RunningStats,
    Summary,
    mean_confidence_interval,
    percentile,
    proportion_confidence_interval,
    summarize,
)

__all__ = [
    "MetricsCollector",
    "RunningStats",
    "Summary",
    "summarize",
    "percentile",
    "mean_confidence_interval",
    "proportion_confidence_interval",
]
