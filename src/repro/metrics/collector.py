"""Metric collection keyed by name and optional labels.

A :class:`MetricsCollector` is the run-wide sink for scalar observations
(latencies, redundancy levels, queue lengths) and counters (timing
failures, crashes).  It is intentionally simple — a dict of
:class:`~repro.metrics.stats.RunningStats` plus raw sample retention for
percentile computation — because experiments post-process everything.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .stats import RunningStats, Summary, summarize

__all__ = ["MetricsCollector"]

LabelSet = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class MetricsCollector:
    """Accumulates named observations and counters during a run."""

    def __init__(self, keep_samples: bool = True):
        self.keep_samples = keep_samples
        self._stats: Dict[Tuple[str, LabelSet], RunningStats] = {}
        self._samples: Dict[Tuple[str, LabelSet], List[float]] = {}
        self._counters: Dict[Tuple[str, LabelSet], int] = {}

    # -- observations ------------------------------------------------------
    def observe(
        self, name: str, value: float, labels: Optional[Dict[str, str]] = None
    ) -> None:
        """Record one scalar observation of metric ``name``."""
        key = (name, _labels_key(labels))
        stats = self._stats.get(key)
        if stats is None:
            stats = RunningStats()
            self._stats[key] = stats
        stats.add(value)
        if self.keep_samples:
            self._samples.setdefault(key, []).append(value)

    def observe_many(
        self,
        name: str,
        values: Iterable[float],
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Record several observations of metric ``name``."""
        for value in values:
            self.observe(name, value, labels)

    # -- counters ---------------------------------------------------------
    def increment(
        self, name: str, amount: int = 1, labels: Optional[Dict[str, str]] = None
    ) -> None:
        """Bump counter ``name`` by ``amount``."""
        key = (name, _labels_key(labels))
        self._counters[key] = self._counters.get(key, 0) + amount

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get((name, _labels_key(labels)), 0)

    # -- queries ----------------------------------------------------------
    def stats(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> RunningStats:
        """Running statistics for metric ``name`` (empty stats if unseen)."""
        return self._stats.get((name, _labels_key(labels)), RunningStats())

    def samples(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> List[float]:
        """Raw retained samples (empty when ``keep_samples=False``)."""
        return list(self._samples.get((name, _labels_key(labels)), []))

    def summary(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Summary:
        """Percentile summary of the retained samples for ``name``."""
        return summarize(self.samples(name, labels))

    def metric_names(self) -> List[str]:
        """Sorted distinct metric names with at least one observation."""
        names = {name for name, _labels in self._stats}
        names.update(name for name, _labels in self._counters)
        return sorted(names)

    def label_sets(self, name: str) -> List[Dict[str, str]]:
        """All label combinations observed for metric ``name``."""
        found = []
        for metric, labels in list(self._stats) + list(self._counters):
            if metric == name and dict(labels) not in found:
                found.append(dict(labels))
        return found

    def clear(self) -> None:
        """Drop everything collected so far."""
        self._stats.clear()
        self._samples.clear()
        self._counters.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsCollector metrics={len(self._stats)} "
            f"counters={len(self._counters)}>"
        )
