"""Proteus-style dependability manager.

In AQuA, "the Proteus dependability manager manages the replication level
for different applications based on their dependability requirements"
(paper §2).  Here the manager deploys replicas of a service onto hosts
(building the per-host gateway, application and server handler, and
joining the service's group), wires crash/recovery hooks to a
:class:`~repro.replica.faults.FaultInjector`, and can optionally maintain
the replication level by starting replicas on spare hosts after members
are evicted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..gateway.gateway import Gateway
from ..gateway.handlers.timing_fault import TimingFaultServerHandler
from ..group.ensemble import GroupCommunication
from ..group.membership import GroupView
from ..metrics.collector import MetricsCollector
from ..net.lan import LanModel
from ..net.transport import Transport
from ..orb.iiop import MarshallingModel
from ..orb.object import Servant
from ..replica.faults import FaultInjector
from ..replica.load import HostActivity, ServiceProfile
from ..replica.server import ReplicaApplication
from ..sim.hostclock import ClockRegistry
from ..sim.kernel import Simulator
from ..sim.random import RandomStreams
from ..sim.trace import NullTracer, Tracer

__all__ = ["ServiceSpec", "DependabilityManager"]


@dataclass
class ServiceSpec:
    """What the manager needs to know to deploy one replicated service.

    Attributes
    ----------
    service:
        Service (and group) name.
    servant_factory:
        Builds a fresh servant per replica.
    profile_factory:
        Builds the service-time profile for a replica, given its host name
        (lets scenarios give each host its own load).
    replication_level:
        Target number of live replicas.
    """

    service: str
    servant_factory: Callable[[], Servant]
    profile_factory: Callable[[str], ServiceProfile]
    replication_level: int = 1

    def __post_init__(self) -> None:
        if self.replication_level < 1:
            raise ValueError(
                f"replication_level must be >= 1, got {self.replication_level}"
            )


class DependabilityManager:
    """Deploys and maintains replicated services."""

    def __init__(
        self,
        sim: Simulator,
        lan: LanModel,
        transport: Transport,
        group_comm: GroupCommunication,
        streams: RandomStreams,
        marshalling: Optional[MarshallingModel] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsCollector] = None,
        clocks: Optional[ClockRegistry] = None,
    ):
        self.sim = sim
        # Per-host virtual clocks; replicas started later (including
        # spares promoted by maintain_replication) stamp on the same
        # clock objects the clock-fault drivers manipulate.
        self.clocks = clocks if clocks is not None else ClockRegistry(sim)
        self.lan = lan
        self.transport = transport
        self.group_comm = group_comm
        self.streams = streams
        self.marshalling = marshalling or MarshallingModel()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics or MetricsCollector(keep_samples=False)
        self._gateways: Dict[str, Gateway] = {}
        self._specs: Dict[str, ServiceSpec] = {}
        # (service, host) -> handler; a host may run replicas of several
        # services (paper §3: "a machine may host multiple replicas").
        self._handlers: Dict[tuple, TimingFaultServerHandler] = {}
        self._spares: Dict[str, List[str]] = {}
        self._injector: Optional[FaultInjector] = None
        # Shared co-location activity, consumed by CoupledLoad profiles.
        self.host_activity = HostActivity()
        self.replicas_started = 0
        # Health transitions reported by client handlers, as
        # (service, HealthEvent) in arrival order — AQuA's fault
        # notification path: gateways observe, Proteus aggregates.
        self.health_reports: List[tuple] = []

    # -- infrastructure ------------------------------------------------------
    def gateway_for(self, host: str) -> Gateway:
        """The gateway of ``host``, creating (and binding) it if needed."""
        gateway = self._gateways.get(host)
        if gateway is None:
            gateway = Gateway(host, self.sim, self.transport, tracer=self.tracer)
            self._gateways[host] = gateway
        return gateway

    def attach_injector(self, injector: FaultInjector) -> None:
        """Wire crash/recovery hooks for all current and future replicas."""
        self._injector = injector
        for key in self._handlers:
            self._wire_faults(key)

    # -- deployment ------------------------------------------------------------
    def deploy(self, spec: ServiceSpec, hosts: List[str]) -> List[str]:
        """Deploy ``spec`` onto the first ``replication_level`` hosts.

        Remaining hosts become spares for :meth:`maintain_replication`.
        Returns the hosts that now run replicas.
        """
        if len(hosts) < spec.replication_level:
            raise ValueError(
                f"need at least {spec.replication_level} hosts, got {len(hosts)}"
            )
        if spec.service in self._specs:
            raise ValueError(f"service {spec.service!r} already deployed")
        self._specs[spec.service] = spec
        active = hosts[: spec.replication_level]
        self._spares[spec.service] = list(hosts[spec.replication_level:])
        for host in active:
            self.start_replica(spec.service, host)
        return active

    def start_replica(self, service: str, host: str) -> TimingFaultServerHandler:
        """Start one replica of ``service`` on ``host`` and join its group.

        A host may run replicas of several *different* services (the
        gateway routes by service); two replicas of the *same* service on
        one host are rejected — they would share a fate the selection
        algorithm assumes independent.
        """
        spec = self._specs[service]
        key = (service, host)
        if key in self._handlers:
            raise ValueError(
                f"host {host!r} already runs a replica of {service!r}"
            )
        app = ReplicaApplication(
            host=host,
            servant=spec.servant_factory(),
            profile=spec.profile_factory(host),
            streams=self.streams,
            activity=self.host_activity,
        )
        if app.service != service:
            raise ValueError(
                f"servant implements {app.service!r}, expected {service!r}"
            )
        handler = TimingFaultServerHandler(
            sim=self.sim,
            app=app,
            transport=self.transport,
            marshalling=self.marshalling,
            tracer=self.tracer,
            metrics=self.metrics,
            clock=self.clocks.clock(host),
        )
        self.gateway_for(host).load_handler(handler)
        self._handlers[key] = handler
        self.group_comm.join(service, host, watch=True)
        self.replicas_started += 1
        self.tracer.emit(
            self.sim.now, "proteus", "proteus.start", service=service, host=host
        )
        if self._injector is not None:
            self._wire_faults(key)
        return handler

    def handler_on(
        self, host: str, service: Optional[str] = None
    ) -> TimingFaultServerHandler:
        """The server handler of ``service`` on ``host``.

        ``service`` may be omitted when the host runs exactly one replica.
        """
        if service is not None:
            return self._handlers[(service, host)]
        matches = [
            handler
            for (_svc, handler_host), handler in self._handlers.items()
            if handler_host == host
        ]
        if not matches:
            raise KeyError(f"no replica on host {host!r}")
        if len(matches) > 1:
            raise KeyError(
                f"host {host!r} runs several replicas; pass service="
            )
        return matches[0]

    def hosts_of(self, service: str) -> List[str]:
        """Hosts currently running replicas of ``service`` (live view)."""
        return list(self.group_comm.view(service).members)

    def all_handlers(self) -> List[TimingFaultServerHandler]:
        """Every server handler ever started, in start order.

        Includes evicted/crashed replicas — exactly what a drain-time
        lifecycle audit needs to inspect.
        """
        return list(self._handlers.values())

    # -- health notifications ------------------------------------------------
    def report_health_event(self, service: str, event) -> None:
        """Accept a :class:`~repro.health.HealthEvent` from a client handler.

        The manager records it (``health_reports``), traces it, and counts
        it per transition — giving experiments and operators one place to
        see every suspicion/quarantine/re-admission across all clients.
        """
        self.health_reports.append((service, event))
        self.tracer.emit(
            self.sim.now, "proteus", "proteus.health",
            service=service, replica=event.replica,
            old=event.old_state.value, new=event.new_state.value,
            reason=event.reason,
        )
        self.metrics.increment(
            "proteus.health_transitions",
            labels={
                "service": service,
                "replica": event.replica,
                "to": event.new_state.value,
            },
        )

    def health_listener(self, service: str):
        """A per-service callback suitable for ``health_listener=``."""
        return lambda event: self.report_health_event(service, event)

    # -- fault wiring --------------------------------------------------------
    def _wire_faults(self, key: tuple) -> None:
        assert self._injector is not None
        service, host = key
        handler = self._handlers[key]
        self._injector.on_crash(host, handler.crash)
        self._injector.on_recover(host, lambda: self._recover(key))

    def _recover(self, key: tuple) -> None:
        handler = self._handlers.get(key)
        if handler is None:
            return
        service, host = key
        handler.restart()
        self.group_comm.failure_detector.forget(host)
        if host not in self.group_comm.view(service):
            self.group_comm.join(service, host, watch=True)
        self.tracer.emit(
            self.sim.now, "proteus", "proteus.recover", service=service, host=host
        )

    # -- replication maintenance ---------------------------------------------
    def maintain_replication(
        self, service: str, start_delay_ms: float = 500.0
    ) -> None:
        """Keep the service at its target level using spare hosts.

        After a member eviction drops the view below ``replication_level``,
        a replica is started on the next spare ``start_delay_ms`` later
        (modeling Proteus's restart latency).
        """
        if start_delay_ms < 0:
            raise ValueError(f"start_delay_ms must be >= 0, got {start_delay_ms}")
        spec = self._specs[service]

        def on_view(view: GroupView) -> None:
            missing = spec.replication_level - len(view.members)
            spares = self._spares[service]
            while missing > 0 and spares:
                spare = spares.pop(0)
                missing -= 1
                self.sim.call_in(
                    start_delay_ms,
                    lambda host=spare: self._start_if_absent(service, host),
                )

        self.group_comm.on_view_change(service, "proteus-manager", on_view)

    def _start_if_absent(self, service: str, host: str) -> None:
        if (service, host) in self._handlers or not self.lan.is_up(host):
            return
        self.start_replica(service, host)

    def __repr__(self) -> str:
        return (
            f"<DependabilityManager services={sorted(self._specs)} "
            f"replicas={len(self._handlers)}>"
        )
