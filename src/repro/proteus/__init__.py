"""Proteus analog: dependability management for replicated services."""

from .manager import DependabilityManager, ServiceSpec

__all__ = ["DependabilityManager", "ServiceSpec"]
