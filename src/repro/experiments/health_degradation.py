"""Ablation A15 — the health subsystem under persistent degradation.

A five-replica deployment serves one closed-loop client while one replica
silently drops every message for a two-second window (a persistent
degradation, not a crash: the failure detector never fires).  Without the
health subsystem the selection model starves — the degraded replica's
window never refreshes, its stale-good F(t) keeps winning the tie-break,
and every in-window request burns the full response timeout.  With the
health subsystem the replica is suspected, quarantined, routed around,
and re-admitted through probation probes once the window lifts.

The table reports the timely fraction inside the degradation window, the
overall timely fraction, and the number of quarantine transitions.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.qos import QoSSpec
from ..core.selection import DynamicSelectionPolicy
from ..faultinject import DegradationFault, FaultSchedule, FaultyTransport
from ..gateway.gateway import Gateway
from ..gateway.handlers.timing_fault import (
    TimingFaultClientHandler,
    TimingFaultServerHandler,
)
from ..group.ensemble import GroupCommunication
from ..group.failure_detector import FailureDetector
from ..health import HealthConfig, HealthState
from ..net.lan import LanModel, LinkProfile
from ..net.transport import Transport
from ..orb.iiop import MarshallingModel
from ..orb.orb import Orb
from ..replica.load import ServiceProfile
from ..replica.server import ReplicaApplication
from ..sim.kernel import Simulator
from ..rng import RNGManager
from ..sim.random import Constant, RandomStreams
from ..workload.scenarios import IntegerServant, make_interface
from .harness import average, print_table
from .parallel import run_sweep

__all__ = ["DegradationPoint", "run_one", "run", "main"]

#: run_all passes ``--workers`` through to :func:`main`.
PARALLEL_CAPABLE = True

SERVICE = "search"
METHOD = "process"
REPLICAS = tuple(f"s-{i + 1}" for i in range(5))
WINDOW_START, WINDOW_END = 500.0, 2500.0


@dataclass(frozen=True)
class DegradationPoint:
    """Averaged metrics for one (variant) row of the comparison."""

    variant: str
    window_timely_fraction: float
    overall_timely_fraction: float
    quarantine_transitions: float
    runs: int


def _build_stack(seed: int, fault_seed: int, with_health: bool):
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    profile = LinkProfile(
        stack_ms=1.0, per_kb_ms=0.0, per_member_ms=0.0, jitter=Constant(0.0)
    )
    lan = LanModel(streams, default_profile=profile)
    schedule = FaultSchedule(
        degradations=(
            DegradationFault(
                host=REPLICAS[0],
                start_ms=WINDOW_START,
                end_ms=WINDOW_END,
                omission_probability=1.0,
            ),
        )
    )
    transport = FaultyTransport(
        Transport(sim, lan),
        schedule=schedule,
        streams=RNGManager(fault_seed),
    )
    detector = FailureDetector(sim, lan, poll_interval_ms=10.0, confirm_polls=2)
    group_comm = GroupCommunication(
        sim, lan, transport, notify_delay_ms=1.0, failure_detector=detector
    )
    marshalling = MarshallingModel(base_ms=0.0, per_kb_ms=0.0, envelope_bytes=0)
    interface = make_interface(SERVICE, METHOD)

    for host in REPLICAS:
        lan.add_host(host)
        app = ReplicaApplication(
            host=host,
            servant=IntegerServant(interface, METHOD),
            profile=ServiceProfile(default=Constant(8.0)),
            streams=streams,
        )
        server = TimingFaultServerHandler(
            sim=sim, app=app, transport=transport, marshalling=marshalling
        )
        Gateway(host, sim, transport).load_handler(server)
        group_comm.join(SERVICE, host, watch=True)

    lan.add_host("client-1")
    kwargs = {}
    if with_health:
        kwargs["health_config"] = HealthConfig(
            suspect_after=2,
            quarantine_after=1,
            probation_after=2,
            backoff_initial_ms=400.0,
            backoff_factor=2.0,
            backoff_max_ms=3200.0,
        )
    client = TimingFaultClientHandler(
        sim=sim,
        host="client-1",
        transport=transport,
        group_comm=group_comm,
        interface=interface,
        qos=QoSSpec(SERVICE, 100.0, 0.9),
        marshalling=marshalling,
        selection_charge_ms=0.0,
        rng=streams.stream("client-1.policy"),
        policy=DynamicSelectionPolicy(crash_tolerance=0),
        response_timeout_factor=3.0,
        probe_interval_ms=200.0,
        **kwargs,
    )
    Gateway("client-1", sim, transport).load_handler(client)
    orb = Orb()
    orb.register_interface(interface)
    orb.bind_interceptor(SERVICE, client)
    return sim, client, orb.stub(SERVICE)


def run_one(
    with_health: bool,
    seed: int,
    fault_seed: int = 11,
    num_requests: int = 150,
):
    """One run; returns (window fraction, overall fraction, transitions)."""
    sim, client, stub = _build_stack(seed, fault_seed, with_health)
    outcomes = []

    def load():
        for i in range(num_requests):
            t0 = sim.now
            event = stub.invoke(METHOD, i)
            yield event
            outcomes.append((t0, event.value))
            yield sim.timeout(5.0)

    sim.spawn(load(), name="load.client-1")
    sim.run()
    sim.run(until=6000.0)  # let re-admission probes finish

    in_window = [
        v.timely for t0, v in outcomes if WINDOW_START <= t0 < WINDOW_END
    ]
    overall = [v.timely for _t0, v in outcomes]
    transitions = 0
    if client.health is not None:
        transitions = sum(
            1
            for e in client.health.events
            if e.new_state is HealthState.QUARANTINED
        )
    return (
        sum(in_window) / max(len(in_window), 1),
        sum(overall) / max(len(overall), 1),
        transitions,
    )


def _degradation_point(params, seed: int, repetition: int):
    """Parallel-runner task: one variant run at one scenario seed."""
    with_health, num_requests = params
    return run_one(with_health, seed, num_requests=num_requests)


def run(
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 150,
    workers: int = 1,
) -> List[DegradationPoint]:
    """Compare the health-enabled client against the no-health baseline.

    ``workers`` fans the ``(variant, seed)`` grid across processes via
    :mod:`repro.experiments.parallel`; repetition-ordered merging keeps
    the averaged table bit-identical for any worker count.
    """
    grid = [
        (with_health, num_requests)
        for with_health, _name in ((True, "health"), (False, "no-health"))
    ]
    sweep = run_sweep(_degradation_point, grid, seeds=seeds, workers=workers)
    points = []
    for (_, name), values in zip(
        ((True, "health"), (False, "no-health")), sweep.by_point()
    ):
        window, overall, transitions = zip(*values)
        points.append(
            DegradationPoint(
                variant=name,
                window_timely_fraction=average(window),
                overall_timely_fraction=average(overall),
                quarantine_transitions=average(transitions),
                runs=len(seeds),
            )
        )
    return points


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the persistent-degradation comparison table.

    ``--workers N`` runs the sweep through the parallel engine (the
    nightly A15 acceptance invocation uses ``--workers 2``); the table
    is bit-identical to the serial run.
    """
    parser = argparse.ArgumentParser(description="A15 health degradation")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1 = serial)",
    )
    args = parser.parse_args(argv)
    started = time.perf_counter()
    points = run(workers=args.workers)
    rows = [
        (
            p.variant,
            p.window_timely_fraction,
            p.overall_timely_fraction,
            p.quarantine_transitions,
        )
        for p in points
    ]
    print_table(
        "Persistent degradation: s-1 drops all traffic in [500, 2500) ms "
        "(deadline 100 ms, Pc = 0.9)",
        ["variant", "window timely", "overall timely", "quarantines"],
        rows,
    )
    print(
        f"[A15 sweep: {time.perf_counter() - started:.1f}s "
        f"with {max(args.workers, 1)} worker(s)]"
    )


if __name__ == "__main__":
    main()
