"""Export figure data series as CSV files.

``python -m repro.experiments.export [outdir]`` regenerates the data
behind every paper figure (and the headline ablations) as plain CSV, so
downstream users can plot them with whatever tooling they like without
rerunning the harnesses.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Iterable, List, Sequence

from . import fig3_overhead, fig45_selection, min_response, policy_comparison

__all__ = ["export_all", "write_csv", "main"]


def write_csv(
    path: Path, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> int:
    """Write one CSV file; returns the number of data rows."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_all(outdir: Path, quick: bool = False) -> List[Path]:
    """Regenerate and write every figure's data; returns written paths."""
    outdir.mkdir(parents=True, exist_ok=True)
    written = []

    iterations = 30 if quick else 200
    points = fig3_overhead.run(iterations=iterations)
    path = outdir / "fig3_overhead.csv"
    write_csv(
        path,
        ["window_size", "num_replicas", "total_us", "distribution_us",
         "selection_us"],
        [
            (p.window_size, p.num_replicas, round(p.total_us, 3),
             round(p.distribution_us, 3), round(p.selection_us, 3))
            for p in points
        ],
    )
    written.append(path)

    seeds = (0,) if quick else (0, 1, 2)
    sweep = fig45_selection.run(seeds=seeds)
    path = outdir / "fig4_replicas_selected.csv"
    write_csv(
        path,
        ["min_probability", "deadline_ms", "avg_replicas_selected"],
        [
            (p.min_probability, p.deadline_ms,
             round(p.avg_replicas_selected, 4))
            for p in sweep
        ],
    )
    written.append(path)

    path = outdir / "fig5_timing_failures.csv"
    write_csv(
        path,
        ["min_probability", "deadline_ms", "observed_failure_probability",
         "tolerated_failure_probability"],
        [
            (p.min_probability, p.deadline_ms,
             round(p.failure_probability, 4),
             round(p.tolerated_failure_probability, 4))
            for p in sweep
        ],
    )
    written.append(path)

    floor = min_response.run(num_requests=50 if quick else 100)
    path = outdir / "min_response.csv"
    write_csv(
        path,
        ["min_response_ms", "mean_response_ms", "paper_floor_ms"],
        [(round(floor.min_response_ms, 3), round(floor.mean_response_ms, 3),
          3.5)],
    )
    written.append(path)

    comparison = policy_comparison.run(seeds=seeds)
    path = outdir / "policy_comparison.csv"
    write_csv(
        path,
        ["policy", "failure_probability", "mean_redundancy",
         "mean_response_ms"],
        [
            (r.policy, round(r.failure_probability, 4),
             round(r.mean_redundancy, 4), round(r.mean_response_ms, 3))
            for r in comparison
        ],
    )
    written.append(path)
    return written


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Export paper-figure data series as CSV files"
    )
    parser.add_argument(
        "outdir", nargs="?", default="figure_data",
        help="output directory (default: ./figure_data)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps"
    )
    args = parser.parse_args(argv)
    written = export_all(Path(args.outdir), quick=args.quick)
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
