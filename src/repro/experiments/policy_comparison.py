"""Ablation A1 — the dynamic policy vs. related-work baselines.

Runs the Fig. 4 workload (deadline 140 ms, Pc = 0.9 for client 2) under
every selection policy the paper's §1/§7 survey implies, plus the paper's
own, and reports observed failure probability, mean redundancy and mean
response time.  Expected shape: the dynamic policy meets the failure
budget with far less redundancy than send-to-all, while single-replica
policies (fastest / nearest / probe / random) blow the budget at tight
deadlines.

Also includes ablation A4: the dynamic policy with overhead compensation
disabled (selection against ``t`` instead of ``t − δ``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.baselines import (
    AllReplicasPolicy,
    FixedRedundancyPolicy,
    LowestMeanPolicy,
    NearestPolicy,
    ProbeEstimatePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SingleFastestPolicy,
)
from ..core.selection import DynamicSelectionPolicy, SelectionPolicy
from ..gateway.handlers.passive import PrimaryBackupPolicy
from .harness import average, print_table, run_two_client_experiment

__all__ = ["PolicyResult", "POLICY_FACTORIES", "run", "main"]


def _dynamic() -> SelectionPolicy:
    return DynamicSelectionPolicy(
        crash_tolerance=1, compensate_overhead=True, fixed_overhead_ms=0.3
    )


def _dynamic_uncompensated() -> SelectionPolicy:
    return DynamicSelectionPolicy(crash_tolerance=1, compensate_overhead=False)


#: Name → zero-argument factory for every policy in the comparison.
POLICY_FACTORIES: Dict[str, Callable[[], SelectionPolicy]] = {
    "dynamic (paper)": _dynamic,
    "dynamic, no t-delta": _dynamic_uncompensated,
    "all-replicas": AllReplicasPolicy,
    "single-fastest": SingleFastestPolicy,
    "lowest-mean": LowestMeanPolicy,
    "nearest": NearestPolicy,
    "probe-estimate": ProbeEstimatePolicy,
    "random-1": lambda: RandomPolicy(redundancy=1),
    "round-robin-1": lambda: RoundRobinPolicy(redundancy=1),
    "fixed-2": lambda: FixedRedundancyPolicy(redundancy=2),
    "primary-backup": PrimaryBackupPolicy,
}


@dataclass(frozen=True)
class PolicyResult:
    """Averaged metrics for one policy."""

    policy: str
    failure_probability: float
    mean_redundancy: float
    mean_response_ms: float
    runs: int


def run(
    deadline_ms: float = 140.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2),
    policies: Optional[Dict[str, Callable[[], SelectionPolicy]]] = None,
    num_requests: int = 50,
) -> List[PolicyResult]:
    """Compare all policies on the same workload and seeds."""
    chosen = policies if policies is not None else POLICY_FACTORIES
    results = []
    for name, factory in chosen.items():
        per_seed = [
            run_two_client_experiment(
                deadline_ms=deadline_ms,
                min_probability=min_probability,
                seed=seed,
                num_requests=num_requests,
                policy_factory=factory,
            )
            for seed in seeds
        ]
        results.append(
            PolicyResult(
                policy=name,
                failure_probability=average(
                    [r.failure_probability for r in per_seed]
                ),
                mean_redundancy=average(
                    [r.client2.mean_redundancy for r in per_seed]
                ),
                mean_response_ms=average(
                    [r.client2.mean_response_ms for r in per_seed]
                ),
                runs=len(per_seed),
            )
        )
    return results


def main() -> None:
    """Print the policy-comparison table."""
    results = run()
    budget = 1.0 - 0.9
    rows = [
        (
            r.policy,
            r.failure_probability,
            "yes" if r.failure_probability <= budget else "NO",
            r.mean_redundancy,
            r.mean_response_ms,
        )
        for r in sorted(results, key=lambda r: r.failure_probability)
    ]
    print_table(
        "Policy comparison (deadline 140 ms, Pc = 0.9, budget 0.10)",
        ["policy", "failure prob", "meets budget", "mean redundancy",
         "mean response ms"],
        rows,
    )


if __name__ == "__main__":
    main()
