"""Ablation A16 — flash-crowd collapse vs. the overload governor.

Algorithm 1's hedging is self-amplifying under load: queues build, every
``W_i`` pmf widens, every ``F_{R_i}(t)`` drops below ``Pc``, the
algorithm falls back to selecting *all* replicas, and the extra copies
build the queues further — the metastable feedback loop the paper (two
clients on an idle LAN) never encounters.

The sweep drives an increasing number of closed-loop clients with a
short think time at a five-replica deployment, once with the plain
dynamic policy and once with the overload subsystem enabled (load
tracker + redundancy governor + deadline-based admission control).  The
headline comparison, exported to ``BENCH_overload.json``:

* **ungoverned** — the in-deadline fraction collapses as clients are
  added (past the knee, more than half of all requests miss);
* **governed** — admitted requests keep a high in-deadline fraction
  while a bounded, metered fraction of requests is shed fail-fast.

The governed stack pairs the overload subsystem with the A11
queue-scaled estimator so the admission controller's ``F_{R_m0}(t - δ)``
tracks *live* queue depth rather than the historic window — otherwise
stale pmfs stay optimistic during a burst and doomed requests are
admitted.  The estimator is not the fix on its own: queue-scaling
without the governor still falls into the select-all feedback loop and
collapses past the knee (the confound check in the A16 tests).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.estimator import QueueScaledEstimator
from ..core.qos import QoSSpec
from ..overload import (
    AdmissionConfig,
    GovernorConfig,
    LoadConfig,
    OverloadConfig,
)
from ..sim.random import Exponential, Normal
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table
from .parallel import run_sweep

__all__ = [
    "OverloadPoint",
    "default_overload_config",
    "run_one",
    "run",
    "export_overload_bench",
    "main",
]

#: run_all passes ``--workers`` through to :func:`main`.
PARALLEL_CAPABLE = True

NUM_REPLICAS = 5
DEADLINE_MS = 60.0
SERVICE_MEAN_MS = 8.0
SERVICE_SIGMA_MS = 2.0
THINK_MS = 5.0


@dataclass(frozen=True)
class OverloadPoint:
    """Averaged metrics for one (variant, client count) cell."""

    variant: str
    num_clients: int
    #: In-deadline fraction over every *issued* request (sheds count as
    #: not-in-deadline here — honesty against gaming the headline).
    timely_fraction: float
    #: In-deadline fraction over *admitted* requests only.
    admitted_timely_fraction: float
    shed_fraction: float
    mean_redundancy: float
    mean_response_ms: float
    runs: int


def default_overload_config() -> OverloadConfig:
    """The governed variant's knobs (shared with the acceptance tests)."""
    return OverloadConfig(
        load=LoadConfig(target_queue_depth=3.0, ewma_alpha=0.4),
        governor=GovernorConfig(engage_load=0.4, saturate_load=1.2),
        admission=AdmissionConfig(
            floor_probability=0.5,
            engage_load=0.9,
            hedge_suppress_load=0.7,
        ),
    )


def run_one(
    governed: bool,
    num_clients: int,
    seed: int,
    num_requests: int = 40,
    overload_config: Optional[OverloadConfig] = None,
):
    """One run; returns (timely, admitted-timely, shed, redundancy, resp)."""
    config = ScenarioConfig(
        seed=seed,
        num_replicas=NUM_REPLICAS,
        service_mean_ms=SERVICE_MEAN_MS,
        service_sigma_ms=SERVICE_SIGMA_MS,
        service_distribution_factory=lambda host: Normal(
            SERVICE_MEAN_MS, SERVICE_SIGMA_MS
        ),
        response_timeout_factor=3.0,
        keep_samples=False,
        overload_config=(
            (overload_config or default_overload_config()) if governed else None
        ),
    )
    scenario = Scenario(config)
    # The governed stack needs queue-scaled F (see module docstring);
    # the ungoverned baseline is the paper's stack, untouched.
    handler_kwargs = (
        {
            "estimator_factory": lambda repo: QueueScaledEstimator(
                repo, bin_width_ms=1.0
            )
        }
        if governed
        else {}
    )
    clients = [
        scenario.add_client(
            f"client-{i + 1}",
            QoSSpec(
                config.service,
                deadline_ms=DEADLINE_MS,
                min_probability=0.9,
            ),
            num_requests=num_requests,
            think_time=Exponential(THINK_MS),
            handler_kwargs=handler_kwargs,
        )
        for i in range(num_clients)
    ]
    scenario.run_to_completion()
    scenario.audit_lifecycle()
    summaries = [c.summary() for c in clients]
    issued = sum(s.requests for s in summaries)
    sheds = sum(s.sheds for s in summaries)
    admitted = issued - sheds
    admitted_timely = sum(s.admitted - s.timing_failures for s in summaries)
    return (
        admitted_timely / issued,
        admitted_timely / max(admitted, 1),
        sheds / issued,
        sum(s.mean_redundancy * s.admitted for s in summaries)
        / max(admitted, 1),
        sum(s.mean_response_ms * s.admitted for s in summaries)
        / max(admitted, 1),
    )


def _overload_point(params, seed: int, repetition: int):
    """Parallel-runner task: one ``(variant, client count)`` cell run."""
    governed, _variant, count, num_requests = params
    return run_one(governed, count, seed, num_requests=num_requests)


def run(
    client_counts: Sequence[int] = (2, 8, 16, 24),
    seeds: Sequence[int] = (0, 1),
    num_requests: int = 40,
    workers: int = 1,
) -> List[OverloadPoint]:
    """The full collapse-vs-governed sweep.

    ``workers`` fans the ``(variant, clients, seed)`` grid across that
    many processes (:mod:`repro.experiments.parallel`); the averaged
    table is bit-identical for any worker count because the per-seed
    results are merged in repetition order.
    """
    grid = [
        (governed, variant, count, num_requests)
        for governed, variant in ((False, "ungoverned"), (True, "governed"))
        for count in client_counts
    ]
    sweep = run_sweep(
        _overload_point, grid, seeds=seeds, workers=workers
    )
    points = []
    for (_, variant, count, _), values in zip(grid, sweep.by_point()):
        timely, adm_timely, shed, redundancy, response = zip(*values)
        points.append(
            OverloadPoint(
                variant=variant,
                num_clients=count,
                timely_fraction=average(timely),
                admitted_timely_fraction=average(adm_timely),
                shed_fraction=average(shed),
                mean_redundancy=average(redundancy),
                mean_response_ms=average(response),
                runs=len(seeds),
            )
        )
    return points


def export_overload_bench(
    points: Sequence[OverloadPoint], path: str
) -> None:
    """Write ``BENCH_overload.json`` (format: docs/PERFORMANCE.md)."""
    payload = {
        "benchmark": "a16-overload-collapse",
        "unit": "fractions of issued/admitted requests",
        "description": (
            "Flash-crowd sweep over closed-loop client counts: the "
            "ungoverned dynamic policy's in-deadline fraction collapses "
            "past the knee, while the governed variant (redundancy cap + "
            "deadline-based admission control) sustains admitted "
            "timeliness by shedding a bounded, metered fraction."
        ),
        "points": [
            {
                "variant": p.variant,
                "num_clients": p.num_clients,
                "timely_fraction": round(p.timely_fraction, 4),
                "admitted_timely_fraction": round(
                    p.admitted_timely_fraction, 4
                ),
                "shed_fraction": round(p.shed_fraction, 4),
                "mean_redundancy": round(p.mean_redundancy, 3),
                "mean_response_ms": round(p.mean_response_ms, 2),
            }
            for p in points
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the collapse table and export ``BENCH_overload.json``.

    ``--workers N`` runs the sweep through the parallel engine; the
    table and the exported JSON are bit-identical to the serial run
    (the nightly A16 acceptance invocation uses ``--workers 2``).
    """
    parser = argparse.ArgumentParser(description="A16 overload collapse sweep")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1 = serial)",
    )
    args = parser.parse_args(argv)
    started = time.perf_counter()
    points = run(workers=args.workers)
    rows = [
        (
            p.variant,
            p.num_clients,
            p.timely_fraction,
            p.admitted_timely_fraction,
            p.shed_fraction,
            p.mean_redundancy,
            p.mean_response_ms,
        )
        for p in points
    ]
    print_table(
        f"Flash crowd: closed-loop clients vs {NUM_REPLICAS} replicas "
        f"(deadline {DEADLINE_MS:.0f} ms, service "
        f"~N({SERVICE_MEAN_MS:.0f}, {SERVICE_SIGMA_MS:.0f}) ms, "
        f"think {THINK_MS:.0f} ms)",
        ["variant", "clients", "timely", "admitted timely", "shed",
         "redundancy", "response ms"],
        rows,
    )
    export_overload_bench(points, "BENCH_overload.json")
    print(
        f"[A16 sweep: {time.perf_counter() - started:.1f}s "
        f"with {max(args.workers, 1)} worker(s)]"
    )


if __name__ == "__main__":
    main()
