"""Ablation A13 — concurrent redundancy vs. client retransmission (§1).

The paper dismisses the related work's recovery story in one sentence:
"such a simple retransmission strategy, however, may not be suitable for
clients with specific time constraints."  This ablation measures it.

Both strategies face the same workload — seven replicas, a mid-run crash
of the best replica — across a deadline sweep.  The retransmitting client
routes to the single best replica and retries after half the deadline
(up to 2 retries); the paper's client hedges concurrently via Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.qos import QoSSpec
from ..gateway.handlers.retransmit import RetransmittingClientHandler
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table

__all__ = ["RetransmissionPoint", "run_one", "run", "main"]

DEADLINES_MS = (140.0, 180.0, 240.0)


@dataclass(frozen=True)
class RetransmissionPoint:
    """Averaged metrics for one (strategy, deadline) cell."""

    strategy: str
    deadline_ms: float
    failure_probability: float
    timeout_fraction: float
    messages_per_request: float
    runs: int


def run_one(
    retransmitting: bool,
    deadline_ms: float,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 40,
    crash_at_ms: float = 8_000.0,
) -> RetransmissionPoint:
    """One strategy at one deadline, with the best replica crashing."""
    failures, timeouts, messages = [], [], []
    for seed in seeds:
        scenario = Scenario(
            ScenarioConfig(seed=seed, response_timeout_factor=4.0)
        )
        kwargs = {}
        if retransmitting:
            kwargs["handler_cls"] = RetransmittingClientHandler
        client = scenario.add_client(
            "client-1",
            QoSSpec(scenario.config.service, deadline_ms, min_probability),
            num_requests=num_requests,
            **kwargs,
        )
        scenario.schedule_crash("replica-1", at_ms=crash_at_ms)
        scenario.run_to_completion()
        summary = client.summary()
        failures.append(summary.failure_probability)
        timeouts.append(summary.timeouts / summary.requests)
        handler = scenario.handlers["client-1"]
        extra = getattr(handler, "retransmissions", 0)
        messages.append(
            (sum(o.redundancy for o in client.outcomes) + extra)
            / len(client.outcomes)
        )
    return RetransmissionPoint(
        strategy="retransmit (related work)" if retransmitting else "dynamic (paper)",
        deadline_ms=deadline_ms,
        failure_probability=average(failures),
        timeout_fraction=average(timeouts),
        messages_per_request=average(messages),
        runs=len(seeds),
    )


def run(
    deadlines_ms: Sequence[float] = DEADLINES_MS,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 40,
) -> List[RetransmissionPoint]:
    """Both strategies across the deadline sweep."""
    points = []
    for retransmitting in (False, True):
        for deadline in deadlines_ms:
            points.append(
                run_one(
                    retransmitting,
                    deadline,
                    seeds=seeds,
                    num_requests=num_requests,
                )
            )
    return points


def main() -> None:
    """Print the redundancy-vs-retransmission table."""
    points = run()
    rows = [
        (
            p.strategy,
            p.deadline_ms,
            p.failure_probability,
            p.timeout_fraction,
            p.messages_per_request,
        )
        for p in points
    ]
    print_table(
        "Concurrent redundancy vs. retransmission "
        "(best replica crashes at t=8 s; Pc = 0.9)",
        ["strategy", "deadline ms", "failure prob", "timeout frac",
         "msgs/request"],
        rows,
    )


if __name__ == "__main__":
    main()
