"""Ablation A8 — gateway-delay sliding window under bursty LAN traffic.

The paper keeps only the *most recent* gateway-to-gateway delay because
"the traffic in a LAN does not frequently fluctuate ... For environments
in which this observation is not true, it would be simple to extend our
approach to record the value of the gateway-to-gateway delay over a
sliding window as we do above for the service time and queuing delay"
(§5.3.1).

This experiment builds that other environment: the LAN jitter is
Markov-modulated with occasional multi-request bursts adding tens of
milliseconds.  We compare the paper's last-value ``T_i`` against the
windowed ``T_i`` distribution under a deadline with little slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.qos import QoSSpec
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table

__all__ = ["BurstyResult", "run_one", "run", "main"]


@dataclass(frozen=True)
class BurstyResult:
    """Averaged metrics for one T_i representation."""

    variant: str
    failure_probability: float
    mean_redundancy: float
    runs: int


def run_one(
    gateway_window: Optional[int],
    deadline_ms: float = 150.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2, 3),
    num_requests: int = 50,
) -> BurstyResult:
    """One variant averaged over seeds (window=None = paper base)."""
    failures, redundancy = [], []
    for seed in seeds:
        scenario = Scenario(
            ScenarioConfig(seed=seed, num_replicas=7, bursty_network=True)
        )
        handler_kwargs = (
            {"gateway_window_size": gateway_window}
            if gateway_window is not None
            else {}
        )
        client = scenario.add_client(
            "client-1",
            QoSSpec(scenario.config.service, deadline_ms, min_probability),
            num_requests=num_requests,
            handler_kwargs=handler_kwargs,
        )
        scenario.run_to_completion()
        summary = client.summary()
        failures.append(summary.failure_probability)
        redundancy.append(summary.mean_redundancy)
    variant = (
        "last value (paper base)"
        if gateway_window is None
        else f"window of {gateway_window}"
    )
    return BurstyResult(
        variant=variant,
        failure_probability=average(failures),
        mean_redundancy=average(redundancy),
        runs=len(seeds),
    )


def run(
    seeds: Sequence[int] = (0, 1, 2, 3), num_requests: int = 50
) -> List[BurstyResult]:
    """Paper's last-value T_i vs. windowed T_i on a bursty LAN."""
    return [
        run_one(None, seeds=seeds, num_requests=num_requests),
        run_one(5, seeds=seeds, num_requests=num_requests),
        run_one(10, seeds=seeds, num_requests=num_requests),
    ]


def main() -> None:
    """Print the bursty-network table."""
    results = run()
    rows = [
        (r.variant, r.failure_probability, r.mean_redundancy) for r in results
    ]
    print_table(
        "Gateway-delay representation under bursty LAN traffic "
        "(deadline 150 ms, Pc = 0.9)",
        ["T_i representation", "failure prob", "mean redundancy"],
        rows,
    )


if __name__ == "__main__":
    main()
