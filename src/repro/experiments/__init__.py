"""Experiment harnesses regenerating the paper's figures and the ablations.

Each module exposes ``run(...)`` returning structured results and
``main()`` printing a paper-style table; all are runnable as
``python -m repro.experiments.<module>``.

===================  =====================================================
Module               Reproduces
===================  =====================================================
``fig3_overhead``    Fig. 3 — selection overhead vs. n and l
``fig45_selection``  Fig. 4 (redundancy) and Fig. 5 (timing failures)
``min_response``     §6's ≈3.5 ms response-time floor
``policy_comparison`` Ablation A1/A4 — baselines + overhead compensation
``crash_tolerance``  Ablation A2 — single-crash guarantee of §5.3.2
``window_sensitivity`` Ablation A3 — sliding-window size ``l``
``scalability``      Ablation A5 — concurrent clients vs. redundancy
``probing``          Ablation A6 — §8 active probing of stale records
``method_classification`` Ablation A7 — §8 per-method performance models
``bursty_network``   Ablation A8 — §5.3.1 windowed gateway delays
``factors``          §5.1 — per-stage response-time decomposition
``calibration``      Ablation A9 — Eq. 1 calibration vs. correlated LAN
``omission_faults``  Ablation A10 — per-link message-loss sweep
``queue_scaling``    Ablation A11 — queue-depth-scaled estimation
``colocation``       Ablation A12 — routing around co-located load
``retransmission``   Ablation A13 — §1 redundancy vs. retry strategies
``adaptation_timeline`` Ablation A14 — transient through a crash window
``export``           CSV export of every figure's data series
``run_all``          run every harness in sequence
===================  =====================================================
"""

from . import (
    adaptation_timeline,
    bursty_network,
    calibration,
    colocation,
    crash_tolerance,
    export,
    factors,
    fig3_overhead,
    fig45_selection,
    harness,
    method_classification,
    min_response,
    omission_faults,
    policy_comparison,
    probing,
    queue_scaling,
    retransmission,
    scalability,
    window_sensitivity,
)
from .harness import TwoClientResult, run_two_client_experiment

__all__ = [
    "harness",
    "fig3_overhead",
    "fig45_selection",
    "min_response",
    "policy_comparison",
    "crash_tolerance",
    "window_sensitivity",
    "scalability",
    "probing",
    "method_classification",
    "bursty_network",
    "factors",
    "calibration",
    "omission_faults",
    "queue_scaling",
    "colocation",
    "retransmission",
    "adaptation_timeline",
    "export",
    "TwoClientResult",
    "run_two_client_experiment",
]
