"""Figure 3 — overhead of the selection algorithm.

The paper measures, per request, the time to (a) compute the response-time
distribution functions and (b) run Algorithm 1 over them, as the number of
replicas grows from 2 to 8, for sliding windows of 5, 10 and 20 entries.
Distribution computation dominates (~90 % of the total).

We measure the same two components of *our* implementation with
``time.perf_counter``.  Absolute microseconds differ from the paper's
hardware (they report 100–900 µs on year-2000 Linux boxes); the claims to
reproduce are the *shape*: cost grows with both n and l, and the
distribution computation dominates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.estimator import ResponseTimeEstimator
from ..core.repository import InformationRepository
from ..core.selection import ReplicaProbability, select_replicas
from .harness import print_table

__all__ = ["OverheadPoint", "build_loaded_repository", "measure_overhead", "run", "main"]


@dataclass(frozen=True)
class OverheadPoint:
    """One (n, l) measurement."""

    num_replicas: int
    window_size: int
    total_us: float
    distribution_us: float
    selection_us: float

    @property
    def distribution_fraction(self) -> float:
        """Share of the overhead spent computing distribution functions."""
        if self.total_us == 0:
            return 0.0
        return self.distribution_us / self.total_us


def build_loaded_repository(
    num_replicas: int, window_size: int, seed: int = 0
) -> InformationRepository:
    """A repository with full windows of realistic measurements."""
    rng = np.random.default_rng(seed)
    repository = InformationRepository(window_size=window_size)
    for index in range(num_replicas):
        name = f"replica-{index + 1}"
        repository.add_replica(name)
        for step in range(window_size):
            service = max(0.0, rng.normal(100.0, 50.0))
            queueing = max(0.0, rng.exponential(20.0))
            repository.record_performance(
                name, service, queueing, queue_length=int(rng.integers(0, 4)),
                now_ms=float(step),
            )
        repository.record_gateway_delay(
            name, max(0.0, rng.normal(3.0, 0.5)), now_ms=float(window_size)
        )
    return repository


def measure_overhead(
    num_replicas: int,
    window_size: int,
    deadline_ms: float = 150.0,
    min_probability: float = 0.9,
    iterations: int = 200,
    seed: int = 0,
) -> OverheadPoint:
    """Time the two phases of one selection over ``iterations`` repeats.

    Each iteration invalidates the estimator cache first: the paper's
    handler recomputes distributions on every request because fresh
    measurements arrive with every reply.
    """
    repository = build_loaded_repository(num_replicas, window_size, seed=seed)
    estimator = ResponseTimeEstimator(repository)

    distribution_s = 0.0
    selection_s = 0.0
    for _ in range(iterations):
        estimator.invalidate()
        started = time.perf_counter()
        probabilities = [
            ReplicaProbability(name, estimator.probability_by(name, deadline_ms))
            for name in repository.replicas()
        ]
        mid = time.perf_counter()
        select_replicas(probabilities, min_probability)
        ended = time.perf_counter()
        distribution_s += mid - started
        selection_s += ended - mid

    distribution_us = distribution_s / iterations * 1e6
    selection_us = selection_s / iterations * 1e6
    return OverheadPoint(
        num_replicas=num_replicas,
        window_size=window_size,
        total_us=distribution_us + selection_us,
        distribution_us=distribution_us,
        selection_us=selection_us,
    )


def run(
    replica_counts: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    window_sizes: Sequence[int] = (5, 10, 20),
    iterations: int = 200,
) -> List[OverheadPoint]:
    """All Figure 3 points (one per replica count per window size)."""
    points = []
    for window_size in window_sizes:
        for num_replicas in replica_counts:
            points.append(
                measure_overhead(
                    num_replicas, window_size, iterations=iterations
                )
            )
    return points


def main() -> None:
    """Print the Figure 3 table."""
    points = run()
    rows = [
        (
            p.window_size,
            p.num_replicas,
            p.total_us,
            p.distribution_us,
            p.selection_us,
            p.distribution_fraction,
        )
        for p in points
    ]
    print_table(
        "Figure 3: selection algorithm overhead (microseconds per request)",
        ["window l", "replicas n", "total us", "distribution us",
         "algorithm us", "distr. fraction"],
        rows,
    )


if __name__ == "__main__":
    main()
