"""Figure 3 — overhead of the selection algorithm.

The paper measures, per request, the time to (a) compute the response-time
distribution functions and (b) run Algorithm 1 over them, as the number of
replicas grows from 2 to 8, for sliding windows of 5, 10 and 20 entries.
Distribution computation dominates (~90 % of the total).

We measure the same two components of *our* implementation with
``time.perf_counter``.  Absolute microseconds differ from the paper's
hardware (they report 100–900 µs on year-2000 Linux boxes); the claims to
reproduce are the *shape*: cost grows with both n and l, and the
distribution computation dominates.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.estimator import ResponseTimeEstimator
from ..core.repository import InformationRepository
from ..core.selection import select_replicas_arrays
from ..rng import seeded_generator
from .harness import print_table

__all__ = [
    "OverheadPoint",
    "CachedComparison",
    "build_loaded_repository",
    "measure_overhead",
    "run",
    "run_cached_comparison",
    "export_estimator_bench",
    "main",
]


@dataclass(frozen=True)
class OverheadPoint:
    """One (n, l) measurement."""

    num_replicas: int
    window_size: int
    total_us: float
    distribution_us: float
    selection_us: float

    @property
    def distribution_fraction(self) -> float:
        """Share of the overhead spent computing distribution functions."""
        if self.total_us == 0:
            return 0.0
        return self.distribution_us / self.total_us


def build_loaded_repository(
    num_replicas: int, window_size: int, seed: int = 0
) -> InformationRepository:
    """A repository with full windows of realistic measurements."""
    rng = seeded_generator(seed)
    repository = InformationRepository(window_size=window_size)
    for index in range(num_replicas):
        name = f"replica-{index + 1}"
        repository.add_replica(name)
        for step in range(window_size):
            service = max(0.0, rng.normal(100.0, 50.0))
            queueing = max(0.0, rng.exponential(20.0))
            repository.record_performance(
                name, service, queueing, queue_length=int(rng.integers(0, 4)),
                now_ms=float(step),
            )
        repository.record_gateway_delay(
            name, max(0.0, rng.normal(3.0, 0.5)), now_ms=float(window_size)
        )
    return repository


def measure_overhead(
    num_replicas: int,
    window_size: int,
    deadline_ms: float = 150.0,
    min_probability: float = 0.9,
    iterations: int = 200,
    seed: int = 0,
    cached: bool = False,
) -> OverheadPoint:
    """Time the two phases of one selection over ``iterations`` repeats.

    With ``cached=False`` (the paper's cost model) each iteration rebuilds
    every distribution from the raw window samples: the handler recomputes
    on every request because fresh measurements arrive with every reply.
    With ``cached=True`` the incremental estimator pipeline is active and
    the windows are unchanged between iterations — the steady-state hot
    path of the cached handler, where a selection costs cache lookups plus
    one vectorized pass.
    """
    repository = build_loaded_repository(num_replicas, window_size, seed=seed)
    estimator = ResponseTimeEstimator(repository, incremental=cached)
    replicas = repository.replicas()
    names = np.asarray(replicas)
    if cached:
        estimator.batch_probability_by(replicas, deadline_ms)  # warm

    distribution_s = 0.0
    selection_s = 0.0
    for _ in range(iterations):
        if not cached:
            estimator.invalidate()
        started = time.perf_counter()
        probabilities = np.asarray(
            estimator.batch_probability_by(replicas, deadline_ms), dtype=float
        )
        mid = time.perf_counter()
        select_replicas_arrays(names, probabilities, min_probability)
        ended = time.perf_counter()
        distribution_s += mid - started
        selection_s += ended - mid

    distribution_us = distribution_s / iterations * 1e6
    selection_us = selection_s / iterations * 1e6
    return OverheadPoint(
        num_replicas=num_replicas,
        window_size=window_size,
        total_us=distribution_us + selection_us,
        distribution_us=distribution_us,
        selection_us=selection_us,
    )


@dataclass(frozen=True)
class CachedComparison:
    """Uncached vs cached selection overhead at one (n, l) point."""

    num_replicas: int
    window_size: int
    uncached: OverheadPoint
    cached: OverheadPoint

    @property
    def speedup(self) -> float:
        """How many times cheaper the cached steady-state selection is."""
        if self.cached.total_us == 0:
            return float("inf")
        return self.uncached.total_us / self.cached.total_us


def run_cached_comparison(
    replica_counts: Sequence[int] = (2, 4, 8),
    window_sizes: Sequence[int] = (5, 20, 60),
    iterations: int = 200,
) -> List[CachedComparison]:
    """Cached-vs-uncached overhead curves (the incremental-pipeline win)."""
    comparisons = []
    for window_size in window_sizes:
        for num_replicas in replica_counts:
            comparisons.append(
                CachedComparison(
                    num_replicas=num_replicas,
                    window_size=window_size,
                    uncached=measure_overhead(
                        num_replicas, window_size,
                        iterations=iterations, cached=False,
                    ),
                    cached=measure_overhead(
                        num_replicas, window_size,
                        iterations=iterations, cached=True,
                    ),
                )
            )
    return comparisons


def export_estimator_bench(
    comparisons: Sequence[CachedComparison], path: str
) -> None:
    """Write ``BENCH_estimator.json`` (format: docs/PERFORMANCE.md)."""
    payload = {
        "benchmark": "fig3-estimator-overhead",
        "unit": "microseconds per selection (mean over iterations)",
        "description": (
            "Per-request selection overhead delta: distributions + "
            "Algorithm 1, uncached rebuild-every-request vs the "
            "incremental versioned-window cache with unchanged windows."
        ),
        "points": [
            {
                "num_replicas": c.num_replicas,
                "window_size": c.window_size,
                "uncached_us": round(c.uncached.total_us, 3),
                "cached_us": round(c.cached.total_us, 3),
                "speedup": round(c.speedup, 2),
            }
            for c in comparisons
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def run(
    replica_counts: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    window_sizes: Sequence[int] = (5, 10, 20),
    iterations: int = 200,
) -> List[OverheadPoint]:
    """All Figure 3 points (one per replica count per window size)."""
    points = []
    for window_size in window_sizes:
        for num_replicas in replica_counts:
            points.append(
                measure_overhead(
                    num_replicas, window_size, iterations=iterations
                )
            )
    return points


def main() -> None:
    """Print the Figure 3 table and the cached-pipeline comparison."""
    points = run()
    rows = [
        (
            p.window_size,
            p.num_replicas,
            p.total_us,
            p.distribution_us,
            p.selection_us,
            p.distribution_fraction,
        )
        for p in points
    ]
    print_table(
        "Figure 3: selection algorithm overhead (microseconds per request)",
        ["window l", "replicas n", "total us", "distribution us",
         "algorithm us", "distr. fraction"],
        rows,
    )
    comparisons = run_cached_comparison()
    print_table(
        "Incremental pipeline: cached vs uncached selection overhead",
        ["window l", "replicas n", "uncached us", "cached us", "speedup"],
        [
            (
                c.window_size,
                c.num_replicas,
                c.uncached.total_us,
                c.cached.total_us,
                c.speedup,
            )
            for c in comparisons
        ],
    )


if __name__ == "__main__":
    main()
