"""§6 floor measurement — minimum achievable response time.

"For a minimum-sized request having negligible service time, the minimum
value we achieved for the response time ... was about 3.5 milliseconds."

We run one client against one replica whose service time is exactly zero
and report the minimum observed ``tr``.  The floor in our stack comes from
the same places as in AQuA: marshalling at both gateways, the protocol
stack/LAN on the request and reply paths, and the selection charge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.qos import QoSSpec
from ..sim.random import Constant
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import print_table

__all__ = ["MinResponseResult", "run", "main"]


@dataclass(frozen=True)
class MinResponseResult:
    """Floor statistics over one run."""

    min_response_ms: float
    mean_response_ms: float
    requests: int


def run(
    num_requests: int = 100,
    seed: int = 0,
) -> MinResponseResult:
    """Measure the response-time floor with zero service time."""
    config = ScenarioConfig(
        seed=seed,
        num_replicas=1,
        request_bytes=1,
        reply_bytes=1,
        service_distribution_factory=lambda host: Constant(0.0),
    )
    scenario = Scenario(config)
    client = scenario.add_client(
        "client-1",
        QoSSpec(config.service, deadline_ms=100.0, min_probability=0.0),
        num_requests=num_requests,
        think_time=Constant(10.0),
    )
    scenario.run_to_completion()
    times = [o.response_time_ms for o in client.outcomes]
    return MinResponseResult(
        min_response_ms=min(times),
        mean_response_ms=sum(times) / len(times),
        requests=len(times),
    )


def main() -> None:
    """Print the floor measurement."""
    result = run()
    print_table(
        "Minimum response time (minimum-sized request, zero service time)",
        ["requests", "min tr (ms)", "mean tr (ms)", "paper floor (ms)"],
        [(result.requests, result.min_response_ms, result.mean_response_ms, 3.5)],
    )


if __name__ == "__main__":
    main()
