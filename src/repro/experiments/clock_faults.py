"""Ablation A18 — clock faults: skew-tolerant vs absolute-timestamp estimation.

A five-replica deployment serves an open-loop Poisson workload (~48 %
fleet utilization when traffic spreads) while the clock plane
de-synchronizes the fleet: ``s-1``'s clock is stepped 10 s into the
future and then frozen (so it reports far-future absolute stamps and
zero durations), ``s-2``/``s-3`` drift at ±500 ppm, and ``s-4`` takes
an NTP-style ±200 ms step mid-window.  No service time actually
changes — every fault is in the *measurement* plane.

Three variants expose where the damage comes from:

* **naive** — an implementation that assumes synchronized clocks: it
  computes the gateway delay from the replica's absolute reply stamp and
  sanitizes impossible durations instead of rejecting the clock behind
  them (negatives clamped to zero, implausibly large ones discarded as
  outliers).  The frozen replica reports zero queue/service time and a
  far-future send stamp, so the naive estimator predicts R ≈ 0 for it,
  routes *everything* to it, and never learns better (even the
  queue-scaled extension is blind here: scaling a zero-valued delay pmf
  by the real queue depth still predicts zero): under the open-loop
  load the replica's FIFO queue grows without bound and the in-window
  timely fraction collapses.
* **same-clock** — the repository's estimation discipline (every trusted
  interval measured on the gateway's own clock; incoherent reports
  rejected) without the health subsystem.  Rejection alone is not
  enough: a rejected sample also carries the replica's honest queue
  report, so refusing every report from the frozen replica *starves*
  the model of the one signal that would steer traffic away — the
  variant avoids the collapse but keeps paying for mid-window detours
  onto the frozen replica.
* **tolerant** — same-clock estimation plus the clock-sanity health
  signal: incoherent reports accumulate into a quarantine (reason
  ``"clock_fault"``), so the replica whose *measurements* cannot be
  trusted is removed outright instead of being endlessly re-sampled,
  and probation re-admits it once its clock is resynced.

Drift at ±500 ppm stays inside the coherence slack and is tolerated by
every same-clock variant; only replicas with a real clock fault (the
frozen ``s-1`` persistently, the stepped ``s-4`` occasionally) ever
draw a ``"clock_fault"`` quarantine.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..core.estimator import QueueScaledEstimator
from ..core.qos import QoSSpec
from ..core.selection import DynamicSelectionPolicy
from ..faultinject import ClockDriver, ClockFault, FaultSchedule
from ..gateway.gateway import Gateway
from ..gateway.handlers.timing_fault import (
    PerformanceUpdate,
    TimingFaultClientHandler,
    TimingFaultServerHandler,
    _PendingRequest,
)
from ..group.ensemble import GroupCommunication
from ..group.failure_detector import FailureDetector
from ..health import HealthConfig, HealthState
from ..net.lan import LanModel, LinkProfile
from ..net.transport import Transport
from ..orb.iiop import MarshallingModel
from ..orb.orb import Orb
from ..replica.load import ServiceProfile
from ..replica.server import ReplicaApplication
from ..sim.hostclock import ClockRegistry
from ..sim.kernel import Simulator
from ..sim.random import Constant, RandomStreams
from ..workload.scenarios import IntegerServant, make_interface
from .harness import average, print_table
from .parallel import run_sweep

__all__ = [
    "ClockPoint",
    "NaiveAbsoluteTimestampClient",
    "clock_fault_schedule",
    "run_one",
    "run",
    "export_clock_bench",
    "main",
]

#: run_all passes ``--workers`` through to :func:`main`.
PARALLEL_CAPABLE = True

SERVICE = "search"
METHOD = "process"
REPLICAS = tuple(f"s-{i + 1}" for i in range(5))
WINDOW_START, WINDOW_END = 500.0, 2500.0
DEADLINE_MS = 100.0
SERVICE_MS = 8.0
#: Open-loop arrival gap: ~0.3 req/ms over five 8 ms servers is a 48 %
#: fleet utilization — comfortable when traffic spreads, hopeless
#: (utilization 2.4) when a naive estimator funnels it onto one replica.
INTERARRIVAL_MS = 3.3

#: The three comparison rows, in table order.
VARIANTS = ("naive", "same-clock", "tolerant")


@dataclass(frozen=True)
class ClockPoint:
    """Averaged metrics for one variant row of the comparison."""

    variant: str
    window_timely_fraction: float
    overall_timely_fraction: float
    clock_quarantines: float
    clock_rejections: float
    runs: int


class NaiveAbsoluteTimestampClient(TimingFaultClientHandler):
    """The A18 baseline: trusts replica-reported absolute timestamps.

    Three classic synchronized-clock assumptions, each a one-method
    departure from the tolerant handler:

    * the gateway delay is derived from the replica's absolute reply
      stamp (``t4 − sent_at``) — a cross-clock subtraction;
    * physically impossible durations are *sanitized* instead of
      rejected — negatives clamped to zero, implausibly large ones
      dropped as outliers — so a faulty clock's flattering reports
      still enter the windows while its one honest-looking giant
      sample (the duration straddling the 10 s step) is thrown away;
    * no coherence check at all — every surviving report is taken at
      face value.
    """

    #: Reports above this are discarded as "obvious outliers" — the
    #: sanitizer that looks responsible and is exactly what blinds the
    #: naive stack to the step it should have been alarmed by.
    OUTLIER_MS = 1_000.0

    def _admit_perf_sample(
        self, perf: PerformanceUpdate
    ) -> Optional[PerformanceUpdate]:
        if (
            perf.service_time_ms > self.OUTLIER_MS
            or perf.queue_delay_ms > self.OUTLIER_MS
        ):
            return None
        if perf.service_time_ms < 0.0 or perf.queue_delay_ms < 0.0:
            return replace(
                perf,
                service_time_ms=max(perf.service_time_ms, 0.0),
                queue_delay_ms=max(perf.queue_delay_ms, 0.0),
            )
        return perf

    def _reply_coherent(
        self, pending: _PendingRequest, perf: PerformanceUpdate, t4: float
    ) -> bool:
        return True

    def _gateway_delay_sample(
        self, pending: _PendingRequest, perf: PerformanceUpdate, t4: float
    ) -> float:
        # Cross-clock: the reply leg by the replica's own send stamp.  A
        # stepped/frozen replica clock makes this wildly wrong, and the
        # repository's non-negativity clamp turns "wrong" into "zero" —
        # the estimator then predicts an instant replica forever.
        return max(0.0, t4 - perf.sent_at_ms)


def clock_fault_schedule() -> FaultSchedule:
    """The A18 clock-fault windows (pure measurement-plane faults).

    ``s-1`` is stepped 10 s ahead and then frozen for the whole window:
    every duration it reports reads as zero and its reply stamps sit far
    in the future — the estimator's most seductive lie, because a frozen
    replica looks *instant*, so a trusting client keeps funneling
    traffic onto its silently growing queue.  ``s-2``/``s-3`` drift
    apart at ±500 ppm; ``s-4`` takes a 200 ms step for the middle of the
    window (its resync at 2000 ms also exercises the backwards-step →
    negative-duration rejection path).
    """
    return FaultSchedule(
        clocks=(
            ClockFault(
                host=REPLICAS[0], start_ms=WINDOW_START, end_ms=WINDOW_END,
                kind="step", step_ms=10_000.0,
            ),
            ClockFault(
                host=REPLICAS[0], start_ms=WINDOW_START + 1.0,
                end_ms=WINDOW_END, kind="freeze",
            ),
            ClockFault(
                host=REPLICAS[1], start_ms=WINDOW_START, end_ms=WINDOW_END,
                kind="drift", drift_ppm=500.0,
            ),
            ClockFault(
                host=REPLICAS[2], start_ms=WINDOW_START, end_ms=WINDOW_END,
                kind="drift", drift_ppm=-500.0,
            ),
            ClockFault(
                host=REPLICAS[3], start_ms=1000.0, end_ms=2000.0,
                kind="step", step_ms=200.0,
            ),
        )
    )


def _health_config(variant: str) -> Optional[HealthConfig]:
    if variant == "naive" or variant == "same-clock":
        return None
    return HealthConfig(
        suspect_after=2,
        quarantine_after=1,
        recover_after=2,
        probation_after=2,
        backoff_initial_ms=400.0,
        backoff_factor=2.0,
        backoff_max_ms=3200.0,
        adaptive_timeout_quantile=None,
        clock_anomaly_after=3,
        # On this jitter-free LAN the probed round trip is a tight
        # baseline, so a 3x ceiling catches a frozen clock's zero-duration
        # reports from the very first reply (before they can poison the
        # sliding windows).
        clock_deflation_factor=3.0,
    )


def _build_stack(seed: int, variant: str):
    sim = Simulator()
    clocks = ClockRegistry(sim)
    streams = RandomStreams(seed=seed)
    profile = LinkProfile(
        stack_ms=1.0, per_kb_ms=0.0, per_member_ms=0.0, jitter=Constant(0.0)
    )
    lan = LanModel(streams, default_profile=profile)
    transport = Transport(sim, lan)
    detector = FailureDetector(sim, lan, poll_interval_ms=10.0, confirm_polls=2)
    group_comm = GroupCommunication(
        sim, lan, transport, notify_delay_ms=1.0, failure_detector=detector
    )
    marshalling = MarshallingModel(base_ms=0.0, per_kb_ms=0.0, envelope_bytes=0)
    interface = make_interface(SERVICE, METHOD)

    for host in REPLICAS:
        lan.add_host(host)
        app = ReplicaApplication(
            host=host,
            servant=IntegerServant(interface, METHOD),
            profile=ServiceProfile(default=Constant(SERVICE_MS)),
            streams=streams,
        )
        server = TimingFaultServerHandler(
            sim=sim,
            app=app,
            transport=transport,
            marshalling=marshalling,
            clock=clocks.clock(host),
        )
        Gateway(host, sim, transport).load_handler(server)
        group_comm.join(SERVICE, host, watch=True)

    lan.add_host("client-1")
    handler_cls = (
        NaiveAbsoluteTimestampClient
        if variant == "naive"
        else TimingFaultClientHandler
    )
    kwargs = {}
    health = _health_config(variant)
    if health is not None:
        kwargs["health_config"] = health
    client = handler_cls(
        sim=sim,
        host="client-1",
        transport=transport,
        group_comm=group_comm,
        interface=interface,
        qos=QoSSpec(SERVICE, DEADLINE_MS, 0.9),
        marshalling=marshalling,
        selection_charge_ms=0.0,
        rng=streams.stream("client-1.policy"),
        # fixed_overhead_ms pins the §5.3.3 deadline compensation: the
        # default measures the previous decision's wall-clock cost, and
        # letting host timing noise shift the effective deadline makes
        # the run irreproducible bit-for-bit.
        policy=DynamicSelectionPolicy(crash_tolerance=0, fixed_overhead_ms=0.0),
        # Queue-scaled F keeps the open-loop load spread across the
        # fleet (A16's governed idiom); the naive variant gets the same
        # estimator, so its collapse is purely the clock-trust bug.
        estimator_factory=lambda repo: QueueScaledEstimator(
            repo, bin_width_ms=1.0
        ),
        response_timeout_factor=3.0,
        probe_interval_ms=200.0,
        # Staleness probes keep every variant's honest signals (probed
        # RTT, live queue length) fresh even for an avoided replica, so
        # nobody wins by accident of a stale record: the naive stack
        # re-admits the frozen replica on the strength of its zeroed
        # duration pmf — which also nullifies the queue scaling — while
        # the coherent stacks keep their pre-fault model of it.
        probe_staleness_ms=100.0,
        bootstrap_probes=True,
        clock=clocks.clock("client-1"),
        **kwargs,
    )
    Gateway("client-1", sim, transport).load_handler(client)
    driver = ClockDriver(sim, clocks.clocks())
    driver.apply(clock_fault_schedule())
    orb = Orb()
    orb.register_interface(interface)
    orb.bind_interceptor(SERVICE, client)
    return sim, client, orb.stub(SERVICE)


def run_one(
    variant: str,
    seed: int,
    num_requests: int = 900,
) -> Tuple[float, float, int, int]:
    """One run; returns (window timely, overall timely, clock
    quarantines, clock rejections)."""
    sim, client, stub = _build_stack(seed, variant)
    outcomes = []
    # Open-loop load: requests keep arriving whether or not earlier ones
    # returned, so a selection policy that funnels everything onto one
    # (measurement-faulty) replica builds a genuinely unbounded queue —
    # a closed loop would self-throttle and mask the collapse.
    arrival_rng = RandomStreams(seed=seed).stream("a18.arrivals")

    def waiter(t0: float, event):
        yield event
        outcomes.append((t0, event.value))

    def load():
        for i in range(num_requests):
            event = stub.invoke(METHOD, i)
            sim.spawn(waiter(sim.now, event), name=f"wait.{i}")
            yield sim.timeout(
                float(arrival_rng.exponential(INTERARRIVAL_MS))
            )

    sim.spawn(load(), name="load.open")
    sim.run()
    sim.run(until=max(sim.now, 6000.0))  # let re-admission probes settle

    in_window = [
        v.timely for t0, v in outcomes if WINDOW_START <= t0 < WINDOW_END
    ]
    overall = [v.timely for _t0, v in outcomes]
    quarantines = 0
    if client.health is not None:
        quarantines = sum(
            1
            for e in client.health.events
            if e.new_state is HealthState.QUARANTINED
            and e.reason == "clock_fault"
        )
    return (
        sum(in_window) / max(len(in_window), 1),
        sum(overall) / max(len(overall), 1),
        quarantines,
        client.clock_rejections,
    )


def _clock_point(params, seed: int, repetition: int):
    """Parallel-runner task: one variant run at one scenario seed."""
    variant, num_requests = params
    return run_one(variant, seed, num_requests=num_requests)


def run(
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 900,
    workers: int = 1,
) -> List[ClockPoint]:
    """Compare the three estimation disciplines under the clock schedule.

    ``workers`` fans the ``(variant, seed)`` grid across processes via
    :mod:`repro.experiments.parallel`; repetition-ordered merging keeps
    the averaged table bit-identical for any worker count.
    """
    grid = [(variant, num_requests) for variant in VARIANTS]
    sweep = run_sweep(_clock_point, grid, seeds=seeds, workers=workers)
    points = []
    for variant, values in zip(VARIANTS, sweep.by_point()):
        window, overall, quarantines, rejections = zip(*values)
        points.append(
            ClockPoint(
                variant=variant,
                window_timely_fraction=average(window),
                overall_timely_fraction=average(overall),
                clock_quarantines=average(quarantines),
                clock_rejections=average(rejections),
                runs=len(seeds),
            )
        )
    return points


def export_clock_bench(points: Sequence[ClockPoint], path: str) -> None:
    """Write ``BENCH_clock.json`` (format: docs/PERFORMANCE.md)."""
    payload = {
        "benchmark": "a18-clock-faults",
        "unit": "fractions of issued requests",
        "description": (
            "Per-host clock faults (10 s step + freeze on s-1, ±500 ppm "
            "drift on s-2/s-3, 200 ms step on s-4) against three "
            "estimation disciplines: naive absolute-timestamp, "
            "same-clock, and same-clock plus clock-health quarantine."
        ),
        "points": [
            {
                "variant": p.variant,
                "window_timely_fraction": round(p.window_timely_fraction, 4),
                "overall_timely_fraction": round(p.overall_timely_fraction, 4),
                "clock_quarantines": round(p.clock_quarantines, 3),
                "clock_rejections": round(p.clock_rejections, 3),
            }
            for p in points
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> None:
    """Print the clock-fault comparison table and export ``BENCH_clock.json``.

    ``--workers N`` runs the sweep through the parallel engine (the
    nightly A18 acceptance invocation uses ``--workers 2``); the table
    and the exported JSON are bit-identical to the serial run.
    """
    parser = argparse.ArgumentParser(description="A18 clock-fault tolerance")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1 = serial)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_clock.json",
        help="path of the exported benchmark artifact",
    )
    args = parser.parse_args(argv)
    started = time.perf_counter()
    points = run(workers=args.workers)
    rows = [
        (
            p.variant,
            p.window_timely_fraction,
            p.overall_timely_fraction,
            p.clock_quarantines,
            p.clock_rejections,
        )
        for p in points
    ]
    print_table(
        f"Clock faults in [{WINDOW_START:.0f}, {WINDOW_END:.0f}) ms: "
        "10 s step + freeze on s-1, ±500 ppm drift on s-2/s-3, 200 ms "
        f"step on s-4 (deadline {DEADLINE_MS:.0f} ms, Pc = 0.9)",
        ["variant", "window timely", "overall timely", "clock quarantines",
         "rejections"],
        rows,
    )
    export_clock_bench(points, args.json)
    print(f"wrote {args.json}")
    print(
        f"[A18 sweep: {time.perf_counter() - started:.1f}s "
        f"with {max(args.workers, 1)} worker(s)]"
    )


if __name__ == "__main__":
    main()
