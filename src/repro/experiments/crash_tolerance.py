"""Ablation A2 — single-crash tolerance of the selected set (§5.3.2).

Algorithm 1 always includes the individually best replica ``m0`` but
proves the client's probability *without* it, so the selected set absorbs
any single member crash.  We validate the end-to-end consequence: a
replica crashing mid-run (we crash ``replica-1``, frequently the best)
must not push the client's observed failure probability past its budget,
whereas a single-replica policy loses every request sent to the dead
replica until membership eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.baselines import SingleFastestPolicy
from ..core.qos import QoSSpec
from ..core.selection import DynamicSelectionPolicy, SelectionPolicy
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table

__all__ = ["CrashRunResult", "run_crash_experiment", "run", "main"]


@dataclass(frozen=True)
class CrashRunResult:
    """Averaged metrics for one policy under crash injection."""

    policy: str
    failure_probability: float
    timeout_fraction: float
    mean_redundancy: float
    runs: int


def run_crash_experiment(
    policy_factory: Optional[Callable[[], SelectionPolicy]],
    policy_name: str,
    crash_at_ms: float = 10_000.0,
    crash_host: str = "replica-1",
    deadline_ms: float = 160.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    num_requests: int = 50,
) -> CrashRunResult:
    """Average one policy's behaviour over seeds with a mid-run crash."""
    failure_probs = []
    timeout_fracs = []
    redundancies = []
    for seed in seeds:
        scenario = Scenario(ScenarioConfig(seed=seed))
        client = scenario.add_client(
            "client-1",
            QoSSpec(
                scenario.config.service,
                deadline_ms=deadline_ms,
                min_probability=min_probability,
            ),
            policy=policy_factory() if policy_factory else None,
            num_requests=num_requests,
        )
        scenario.schedule_crash(crash_host, at_ms=crash_at_ms)
        scenario.run_to_completion()
        summary = client.summary()
        failure_probs.append(summary.failure_probability)
        timeout_fracs.append(
            summary.timeouts / summary.requests if summary.requests else 0.0
        )
        redundancies.append(summary.mean_redundancy)
    return CrashRunResult(
        policy=policy_name,
        failure_probability=average(failure_probs),
        timeout_fraction=average(timeout_fracs),
        mean_redundancy=average(redundancies),
        runs=len(seeds),
    )


def run(
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    num_requests: int = 50,
) -> List[CrashRunResult]:
    """Crash-tolerance comparison: paper's policy vs. single-fastest."""
    return [
        run_crash_experiment(
            None, "dynamic (paper)", seeds=seeds, num_requests=num_requests
        ),
        run_crash_experiment(
            SingleFastestPolicy,
            "single-fastest",
            seeds=seeds,
            num_requests=num_requests,
        ),
        run_crash_experiment(
            lambda: DynamicSelectionPolicy(crash_tolerance=0),
            "dynamic, no crash hedge",
            seeds=seeds,
            num_requests=num_requests,
        ),
        run_crash_experiment(
            lambda: DynamicSelectionPolicy(crash_tolerance=2),
            "dynamic, 2-crash hedge",
            seeds=seeds,
            num_requests=num_requests,
        ),
    ]


def main() -> None:
    """Print the crash-tolerance table."""
    results = run()
    rows = [
        (
            r.policy,
            r.failure_probability,
            r.timeout_fraction,
            r.mean_redundancy,
            r.runs,
        )
        for r in results
    ]
    print_table(
        "Crash tolerance: replica-1 crashes at t=10 s "
        "(deadline 160 ms, Pc = 0.9, budget 0.10)",
        ["policy", "failure prob", "timeout frac", "mean redundancy", "runs"],
        rows,
    )


if __name__ == "__main__":
    main()
