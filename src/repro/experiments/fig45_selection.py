"""Figures 4 and 5 — redundancy level and observed timing failures.

The paper's headline experiment (§6): two clients, seven replicas, fifty
requests per run, one-second think time, service delay ~ Normal(100 ms,
50 ms).  Client 1 is fixed at (200 ms, Pc ≥ 0).  Client 2 sweeps its
deadline over 100–200 ms for requested probabilities 0.9, 0.5 and 0.

Reproduced claims:

* Fig. 4 — the average number of replicas selected for client 2 falls as
  the deadline grows and as the requested probability falls, bottoming
  out at 2 (Algorithm 1's minimum);
* Fig. 5 — the observed timing-failure probability stays below the
  1 − Pc the client tolerates (paper: max 0.08 for Pc=0.9, ≈0.32/0.36
  for Pc=0.5/0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .harness import average, print_table, run_two_client_experiment

__all__ = ["SweepPoint", "run", "main", "DEADLINES_MS", "PROBABILITIES"]

DEADLINES_MS = (100.0, 120.0, 140.0, 160.0, 180.0, 200.0)
PROBABILITIES = (0.9, 0.5, 0.0)


@dataclass(frozen=True)
class SweepPoint:
    """Averages over seeds for one (deadline, Pc) configuration."""

    deadline_ms: float
    min_probability: float
    avg_replicas_selected: float
    failure_probability: float
    mean_response_ms: float
    runs: int

    @property
    def tolerated_failure_probability(self) -> float:
        """The failure rate the client accepts (1 − Pc)."""
        return 1.0 - self.min_probability


def run(
    deadlines_ms: Sequence[float] = DEADLINES_MS,
    probabilities: Sequence[float] = PROBABILITIES,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 50,
    num_replicas: int = 7,
    window_size: int = 5,
) -> List[SweepPoint]:
    """The full two-dimensional sweep, averaged over ``seeds``."""
    points = []
    for min_probability in probabilities:
        for deadline in deadlines_ms:
            results = [
                run_two_client_experiment(
                    deadline_ms=deadline,
                    min_probability=min_probability,
                    seed=seed,
                    num_requests=num_requests,
                    num_replicas=num_replicas,
                    window_size=window_size,
                )
                for seed in seeds
            ]
            points.append(
                SweepPoint(
                    deadline_ms=deadline,
                    min_probability=min_probability,
                    avg_replicas_selected=average(
                        [r.avg_replicas_selected for r in results]
                    ),
                    failure_probability=average(
                        [r.failure_probability for r in results]
                    ),
                    mean_response_ms=average(
                        [r.client2.mean_response_ms for r in results]
                    ),
                    runs=len(results),
                )
            )
    return points


def main() -> None:
    """Print the Figure 4 and Figure 5 tables."""
    points = run()
    fig4_rows = [
        (p.min_probability, p.deadline_ms, p.avg_replicas_selected)
        for p in points
    ]
    print_table(
        "Figure 4: average number of replicas selected (client 2)",
        ["requested Pc", "deadline ms", "avg replicas"],
        fig4_rows,
    )
    fig5_rows = [
        (
            p.min_probability,
            p.deadline_ms,
            p.failure_probability,
            p.tolerated_failure_probability,
        )
        for p in points
    ]
    print_table(
        "Figure 5: observed probability of timing failures (client 2)",
        ["requested Pc", "deadline ms", "observed failures", "tolerated"],
        fig5_rows,
    )


if __name__ == "__main__":
    main()
