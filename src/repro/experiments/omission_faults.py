"""Ablation A10 — message loss (omission faults).

The paper's fault model is crash + load; its redundancy mechanism,
however, also masks *omission* faults for free: a lost request or reply
only matters if it happens on every selected replica's path.  We sweep
the per-link loss probability and compare the dynamic policy against
single-fastest (where any loss costs the full response-timeout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.baselines import SingleFastestPolicy
from ..core.qos import QoSSpec
from ..core.selection import SelectionPolicy
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table

__all__ = ["LossPoint", "run_one", "run", "main"]

LOSS_RATES = (0.0, 0.01, 0.02, 0.05, 0.10)


@dataclass(frozen=True)
class LossPoint:
    """Averaged metrics for one (policy, loss rate) cell."""

    policy: str
    loss_probability: float
    failure_probability: float
    timeout_fraction: float
    mean_redundancy: float
    runs: int


def run_one(
    policy_factory: Optional[Callable[[], SelectionPolicy]],
    policy_name: str,
    loss_probability: float,
    deadline_ms: float = 180.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 40,
) -> LossPoint:
    """One cell of the loss sweep."""
    failures, timeouts, redundancy = [], [], []
    for seed in seeds:
        scenario = Scenario(
            ScenarioConfig(
                seed=seed,
                loss_probability=loss_probability,
                response_timeout_factor=3.0,
            )
        )
        client = scenario.add_client(
            "client-1",
            QoSSpec(scenario.config.service, deadline_ms, min_probability),
            policy=policy_factory() if policy_factory else None,
            num_requests=num_requests,
        )
        scenario.run_to_completion()
        summary = client.summary()
        failures.append(summary.failure_probability)
        timeouts.append(summary.timeouts / summary.requests)
        redundancy.append(summary.mean_redundancy)
    return LossPoint(
        policy=policy_name,
        loss_probability=loss_probability,
        failure_probability=average(failures),
        timeout_fraction=average(timeouts),
        mean_redundancy=average(redundancy),
        runs=len(seeds),
    )


def run(
    loss_rates: Sequence[float] = LOSS_RATES,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 40,
) -> List[LossPoint]:
    """Loss sweep for the dynamic policy and single-fastest."""
    points = []
    for factory, name in (
        (None, "dynamic (paper)"),
        (SingleFastestPolicy, "single-fastest"),
    ):
        for loss in loss_rates:
            points.append(
                run_one(
                    factory, name, loss, seeds=seeds, num_requests=num_requests
                )
            )
    return points


def main() -> None:
    """Print the omission-fault table."""
    points = run()
    rows = [
        (
            p.policy,
            p.loss_probability,
            p.failure_probability,
            p.timeout_fraction,
            p.mean_redundancy,
        )
        for p in points
    ]
    print_table(
        "Omission faults: per-link loss sweep "
        "(deadline 180 ms, Pc = 0.9, budget 0.10)",
        ["policy", "link loss", "failure prob", "timeout frac", "redundancy"],
        rows,
    )


if __name__ == "__main__":
    main()
