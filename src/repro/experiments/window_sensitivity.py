"""Ablation A3 — sensitivity to the sliding-window size ``l`` (§5.2).

The paper chooses ``l`` "so that it includes a reasonable number of recent
requests but eliminates obsolete measurements" and uses l=5 for its
experiments.  We sweep l and report failure probability and redundancy on
the Fig. 4 workload, plus on a *non-stationary* variant where one replica's
load steps up mid-run — where a too-large window should visibly lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..replica.load import ConstantLoad, StepLoad
from ..workload.scenarios import ScenarioConfig
from .harness import average, print_table, run_two_client_experiment

__all__ = ["WindowResult", "run", "main", "WINDOW_SIZES"]

WINDOW_SIZES = (2, 5, 10, 20, 50)


@dataclass(frozen=True)
class WindowResult:
    """Averaged metrics for one window size."""

    window_size: int
    workload: str
    failure_probability: float
    mean_redundancy: float
    runs: int


def _step_load_config(seed: int, window_size: int) -> ScenarioConfig:
    """Fig. 4 workload but replicas 1-3 become 3x slower at t = 20 s."""

    def load_factory(host: str):
        if host in ("replica-1", "replica-2", "replica-3"):
            return StepLoad([(20_000.0, 3.0)], initial=1.0)
        return ConstantLoad(1.0)

    return ScenarioConfig(
        seed=seed, window_size=window_size, load_factory=load_factory
    )


def run(
    window_sizes: Sequence[int] = WINDOW_SIZES,
    deadline_ms: float = 140.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 50,
) -> List[WindowResult]:
    """Sweep l on the stationary and the load-step workloads."""
    results = []
    for workload in ("stationary", "load-step"):
        for window_size in window_sizes:
            per_seed = []
            for seed in seeds:
                config: Optional[ScenarioConfig]
                if workload == "load-step":
                    config = _step_load_config(seed, window_size)
                else:
                    config = ScenarioConfig(seed=seed, window_size=window_size)
                per_seed.append(
                    run_two_client_experiment(
                        deadline_ms=deadline_ms,
                        min_probability=min_probability,
                        seed=seed,
                        num_requests=num_requests,
                        window_size=window_size,
                        config=config,
                    )
                )
            results.append(
                WindowResult(
                    window_size=window_size,
                    workload=workload,
                    failure_probability=average(
                        [r.failure_probability for r in per_seed]
                    ),
                    mean_redundancy=average(
                        [r.client2.mean_redundancy for r in per_seed]
                    ),
                    runs=len(per_seed),
                )
            )
    return results


def main() -> None:
    """Print the window-sensitivity table."""
    results = run()
    rows = [
        (r.workload, r.window_size, r.failure_probability, r.mean_redundancy)
        for r in results
    ]
    print_table(
        "Sliding-window sensitivity (deadline 140 ms, Pc = 0.9)",
        ["workload", "window l", "failure prob", "mean redundancy"],
        rows,
    )


if __name__ == "__main__":
    main()
