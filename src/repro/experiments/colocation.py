"""Ablation A12 — routing around co-location interference.

The paper's system model allows "a machine may host multiple replicas"
(§3) and lists host load as a prime source of timing faults.  Here two
services share hosts: the measured service (`analytics`, replicated on
all four hosts) and a noisy neighbour (`batch`, co-located on hosts 1–2
only) hammered by an open-loop client.  CPU contention (a coupled load
model) slows the analytics replicas on the shared hosts.

The question: does the timing fault handler's measurement loop *find*
the quiet hosts?  We compare the paper's dynamic policy against a
load-blind random policy of the same redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.baselines import RandomPolicy
from ..core.qos import QoSSpec
from ..core.selection import SelectionPolicy
from ..proteus.manager import ServiceSpec
from ..replica.load import CoupledLoad, ServiceProfile
from ..sim.random import Constant, Exponential, Normal
from ..workload.scenarios import IntegerServant, Scenario, ScenarioConfig, make_interface
from .harness import average, print_table

__all__ = ["ColocationResult", "run_one", "run", "main"]

NOISY_HOSTS = ("replica-1", "replica-2")


@dataclass(frozen=True)
class ColocationResult:
    """Averaged metrics for one policy under co-location interference."""

    policy: str
    failure_probability: float
    noisy_host_share: float  # fraction of winning replies from noisy hosts
    mean_redundancy: float
    runs: int


def _build_scenario(seed: int) -> Scenario:
    activity_alpha = 2.0

    config = ScenarioConfig(
        seed=seed,
        num_replicas=4,
        service="analytics",
        service_mean_ms=80.0,
        service_sigma_ms=20.0,
    )
    scenario = Scenario(config)
    activity = scenario.manager.host_activity

    # Retrofit coupled load onto the analytics replicas: their profiles
    # were built by the Scenario; replace the load models in place.
    for host in config.replica_hosts():
        handler = scenario.manager.handler_on(host, service="analytics")
        handler.app.profile.load = CoupledLoad(activity, host, alpha=activity_alpha)

    # Deploy the noisy neighbour on the first two hosts.
    batch_interface = make_interface("batch", "crunch")
    spec = ServiceSpec(
        service="batch",
        servant_factory=lambda: IntegerServant(batch_interface, "crunch"),
        profile_factory=lambda host: ServiceProfile(
            default=Normal(60.0, 15.0),
            load=CoupledLoad(activity, host, alpha=activity_alpha),
        ),
        replication_level=len(NOISY_HOSTS),
    )
    scenario.manager.deploy(spec, list(NOISY_HOSTS))

    # An open-loop client hammers the batch service through a plain
    # broadcast handler (its QoS is irrelevant; its load is the point).
    from ..core.baselines import AllReplicasPolicy
    from ..gateway.handlers.timing_fault import TimingFaultClientHandler
    from ..orb.orb import Orb
    from ..workload.client import OpenLoopClient

    scenario.lan.add_host("batch-client")
    batch_handler = TimingFaultClientHandler(
        sim=scenario.sim,
        host="batch-client",
        transport=scenario.transport,
        group_comm=scenario.group_comm,
        interface=batch_interface,
        qos=QoSSpec("batch", 5_000.0, 0.0),
        policy=AllReplicasPolicy(),
        marshalling=scenario.marshalling,
        response_timeout_factor=2.0,
        rng=scenario.streams.stream("batch-client.policy"),
    )
    scenario.manager.gateway_for("batch-client").load_handler(batch_handler)
    batch_orb = Orb()
    batch_orb.register_interface(batch_interface)
    batch_orb.bind_interceptor("batch", batch_handler)
    OpenLoopClient(
        sim=scenario.sim,
        stub=batch_orb.stub("batch"),
        host="batch-client",
        streams=scenario.streams,
        interarrival=Exponential(120.0),
        method="crunch",
        num_requests=300,
    )
    return scenario


def run_one(
    policy_factory: Optional[Callable[[], SelectionPolicy]],
    policy_name: str,
    deadline_ms: float = 160.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 40,
) -> ColocationResult:
    """One policy for the analytics client, averaged over seeds."""
    failures, noisy_share, redundancy = [], [], []
    for seed in seeds:
        scenario = _build_scenario(seed)
        client = scenario.add_client(
            "analytics-client",
            QoSSpec("analytics", deadline_ms, min_probability),
            policy=policy_factory() if policy_factory else None,
            num_requests=num_requests,
            think_time=Constant(400.0),
        )
        scenario.run_to_completion()
        summary = client.summary()
        failures.append(summary.failure_probability)
        redundancy.append(summary.mean_redundancy)
        winners = [o.replica for o in client.outcomes if o.replica]
        noisy_share.append(
            sum(1 for replica in winners if replica in NOISY_HOSTS)
            / max(1, len(winners))
        )
    return ColocationResult(
        policy=policy_name,
        failure_probability=average(failures),
        noisy_host_share=average(noisy_share),
        mean_redundancy=average(redundancy),
        runs=len(seeds),
    )


def run(
    seeds: Sequence[int] = (0, 1, 2), num_requests: int = 40
) -> List[ColocationResult]:
    """Dynamic policy vs. load-blind random at equal redundancy."""
    return [
        run_one(None, "dynamic (paper)", seeds=seeds, num_requests=num_requests),
        run_one(
            lambda: RandomPolicy(redundancy=2),
            "random-2 (load-blind)",
            seeds=seeds,
            num_requests=num_requests,
        ),
    ]


def main() -> None:
    """Print the co-location interference table."""
    results = run()
    rows = [
        (r.policy, r.failure_probability, r.noisy_host_share, r.mean_redundancy)
        for r in results
    ]
    print_table(
        "Co-location interference: batch jobs share hosts 1-2 "
        "(deadline 160 ms, Pc = 0.9)",
        ["policy", "failure prob", "noisy-host replies", "redundancy"],
        rows,
    )


if __name__ == "__main__":
    main()
