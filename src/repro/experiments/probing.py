"""Ablation A6 — active probing of stale performance data (paper §8).

The paper's final extension: "our work can also be extended to use active
probes [5] when a replica's performance information is obsolete."

The workload that makes staleness bite: a sole client with long idle gaps
(5 s think time) on a LAN whose delay to the replicas *toggles* between a
fast and a congested regime while the client is idle.  Without probes,
the first request after each toggle is scheduled against a 5-second-old
``T_i``; with probes (staleness threshold 1 s), the repository is
refreshed during the gap and selection hedges correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.qos import QoSSpec
from ..net.lan import LinkProfile
from ..sim.random import Constant, Normal
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table

__all__ = ["ProbingResult", "run_one", "run", "main"]

# One-way extra delay during the congested regime, ms.  Two-way this eats
# most of the slack between the 100 ms mean service time and the deadline.
CONGESTED_EXTRA_MS = 35.0
TOGGLE_PERIOD_MS = 10_000.0


@dataclass(frozen=True)
class ProbingResult:
    """Averaged metrics for one variant."""

    variant: str
    failure_probability: float
    mean_redundancy: float
    probes_sent: float
    runs: int


def _install_toggling_network(scenario: Scenario, client_host: str) -> None:
    """Flip client<->replica links between fast and congested regimes."""
    fast = scenario.lan.default_profile
    congested = LinkProfile(
        stack_ms=fast.stack_ms + CONGESTED_EXTRA_MS,
        per_kb_ms=fast.per_kb_ms,
        per_member_ms=fast.per_member_ms,
        jitter=Normal(3.0, 1.5),
    )

    def set_profiles(profile: LinkProfile) -> None:
        for replica in scenario.config.replica_hosts():
            scenario.lan.set_link_profile(client_host, replica, profile)
            scenario.lan.set_link_profile(replica, client_host, profile)

    def toggle(congest: bool) -> None:
        set_profiles(congested if congest else fast)
        scenario.sim.call_in(
            TOGGLE_PERIOD_MS, lambda: toggle(not congest), daemon=True
        )

    # First toggle lands mid-first-idle-gap; the regime then alternates.
    scenario.sim.call_in(TOGGLE_PERIOD_MS / 2, lambda: toggle(True), daemon=True)


def run_one(
    probing: bool,
    deadline_ms: float = 165.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 40,
) -> ProbingResult:
    """One variant (probing on/off) averaged over seeds."""
    failures, redundancy, probes = [], [], []
    for seed in seeds:
        scenario = Scenario(ScenarioConfig(seed=seed, num_replicas=7))
        handler_kwargs = (
            {"probe_staleness_ms": 1_000.0, "probe_interval_ms": 500.0}
            if probing
            else {}
        )
        client = scenario.add_client(
            "client-1",
            QoSSpec(scenario.config.service, deadline_ms, min_probability),
            num_requests=num_requests,
            think_time=Constant(5_000.0),  # long idle gaps
            handler_kwargs=handler_kwargs,
        )
        _install_toggling_network(scenario, "client-1")
        scenario.run_to_completion()
        summary = client.summary()
        failures.append(summary.failure_probability)
        redundancy.append(summary.mean_redundancy)
        probes.append(scenario.handlers["client-1"].probes_sent)
    return ProbingResult(
        variant="with active probes" if probing else "without probes",
        failure_probability=average(failures),
        mean_redundancy=average(redundancy),
        probes_sent=average(probes),
        runs=len(seeds),
    )


def run(
    seeds: Sequence[int] = (0, 1, 2), num_requests: int = 40
) -> List[ProbingResult]:
    """Both variants on the toggling-network workload."""
    return [
        run_one(probing=False, seeds=seeds, num_requests=num_requests),
        run_one(probing=True, seeds=seeds, num_requests=num_requests),
    ]


def main() -> None:
    """Print the probing table."""
    results = run()
    rows = [
        (r.variant, r.failure_probability, r.mean_redundancy, r.probes_sent)
        for r in results
    ]
    print_table(
        "Active probing of stale records (idle client, toggling LAN, "
        "deadline 165 ms, Pc = 0.9)",
        ["variant", "failure prob", "mean redundancy", "probes sent"],
        rows,
    )


if __name__ == "__main__":
    main()
