"""Ablation A14 — the adaptation transient around a crash.

Figures 4/5 of the paper report run-level averages; this harness looks
*inside* a run: the timeline of timely/late replies around a crash of the
best replica, bucketed into time windows.  The interesting quantity is
the transient — the window between the crash and the membership eviction
— where the paper's concurrent redundancy keeps serving while a
single-replica policy drops requests.

The output is a time series (one row per bucket), i.e. the data behind a
figure the paper did not include but whose §5.3.2 argument predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.baselines import SingleFastestPolicy
from ..core.qos import QoSSpec
from ..core.selection import SelectionPolicy
from ..sim.random import Constant
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import print_table

__all__ = ["TimelineBucket", "run_one", "run", "main"]

CRASH_AT_MS = 10_000.0
BUCKET_MS = 2_500.0
RUN_REQUESTS = 100
THINK_MS = 250.0


@dataclass(frozen=True)
class TimelineBucket:
    """Reply statistics for one time window of the run."""

    policy: str
    start_ms: float
    end_ms: float
    requests: int
    failures: int
    timeouts: int

    @property
    def failure_rate(self) -> float:
        """Fraction of this bucket's requests that missed the deadline."""
        if self.requests == 0:
            return 0.0
        return self.failures / self.requests


def run_one(
    policy_factory: Optional[Callable[[], SelectionPolicy]],
    policy_name: str,
    deadline_ms: float = 170.0,
    min_probability: float = 0.9,
    seed: int = 0,
    horizon_ms: float = 30_000.0,
) -> List[TimelineBucket]:
    """One traced run; returns the reply timeline in buckets."""
    # A deliberately sluggish failure detector (~2 s to evict) widens the
    # window during which selection must survive on redundancy alone —
    # the regime §5.3.2's hedge exists for.
    scenario = Scenario(
        ScenarioConfig(
            seed=seed,
            trace=True,
            response_timeout_factor=3.0,
            fd_poll_interval_ms=1000.0,
            fd_confirm_polls=2,
        )
    )
    scenario.add_client(
        "client-1",
        QoSSpec(scenario.config.service, deadline_ms, min_probability),
        policy=policy_factory() if policy_factory else None,
        num_requests=RUN_REQUESTS,
        think_time=Constant(THINK_MS),
    )
    scenario.schedule_crash("replica-1", at_ms=CRASH_AT_MS)
    scenario.run_to_completion()

    # Reconstruct per-reply instants from the trace.
    events: List[tuple] = []  # (time, failed, timed_out)
    for record in scenario.tracer.records:
        if record.kind == "client.reply":
            events.append((record.time, not record.data["timely"], False))
        elif record.kind == "client.timeout":
            events.append((record.time, True, True))

    buckets = []
    start = 0.0
    while start < horizon_ms:
        end = start + BUCKET_MS
        members = [e for e in events if start <= e[0] < end]
        buckets.append(
            TimelineBucket(
                policy=policy_name,
                start_ms=start,
                end_ms=end,
                requests=len(members),
                failures=sum(1 for e in members if e[1]),
                timeouts=sum(1 for e in members if e[2]),
            )
        )
        start = end
    return buckets


def run(seed: int = 0) -> List[TimelineBucket]:
    """Timelines for the paper's policy and single-fastest."""
    rows = []
    rows.extend(run_one(None, "dynamic (paper)", seed=seed))
    rows.extend(run_one(SingleFastestPolicy, "single-fastest", seed=seed))
    return rows


def main() -> None:
    """Print the timeline table (crash at t = 10 s)."""
    buckets = run()
    rows = [
        (
            b.policy,
            f"{b.start_ms / 1000:.1f}-{b.end_ms / 1000:.1f}s",
            b.requests,
            b.failures,
            b.timeouts,
            b.failure_rate,
        )
        for b in buckets
        if b.requests
    ]
    print_table(
        "Adaptation timeline around a crash of the best replica at t=10 s "
        "(deadline 170 ms, Pc = 0.9)",
        ["policy", "window", "requests", "failures", "timeouts", "rate"],
        rows,
    )


if __name__ == "__main__":
    main()
