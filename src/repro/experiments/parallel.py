"""Sharded parallel experiment engine with deterministic merging.

The experiment matrix repeats stochastic scenario runs over parameter
points and seeds; every run is independent, so the sweep is
embarrassingly parallel — *if* seeding and merging are disciplined.
This module supplies that discipline on top of :mod:`repro.rng`:

* **Task seeding** — each task is one ``(parameter point, repetition)``
  cell.  Its scenario seed is either taken from an explicit ``seeds``
  tuple (the historic experiment tables) or derived as
  ``derive_entity_seed(base_seed, stream_name, point_index, repetition)``,
  a pure function of the task's coordinates.  No task's randomness
  depends on which worker executes it.
* **Disjoint worker shards** — tasks are assigned round-robin to
  ``workers`` processes (``tasks[w::workers]``); shards partition the
  task list, nothing is run twice and no draw is shared.
* **Order-independent reduction** — results are sorted by
  ``(point_index, repetition)`` before any aggregation, so the merged
  metrics are **bit-identical for 1, 2, or N workers** (the invariance
  contract of docs/REPRODUCIBILITY.md, enforced in CI by the digest
  smoke job and ``tests/experiments/test_parallel_runner.py``).

``python -m repro.experiments.parallel --workers 2`` runs a built-in
smoke sweep serially and with the requested worker count and fails if
the two digests differ.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..rng import derive_entity_seed
from ..workload.client import ClientSummary

__all__ = [
    "TaskSpec",
    "TaskResult",
    "SweepResult",
    "run_sweep",
    "merge_summaries",
    "sweep_digest",
    "canonical",
    "main",
]

#: A sweep worker: ``fn(params, seed, repetition) -> value``.  Must be a
#: module-level callable (pickled into worker processes), and
#: deterministic given its arguments — the whole invariance contract
#: rests on that.
SweepFn = Callable[[Any, int, int], Any]


@dataclass(frozen=True)
class TaskSpec:
    """One executable cell of a sweep: a parameter point × repetition."""

    point_index: int
    repetition: int
    params: Any
    seed: int


@dataclass(frozen=True)
class TaskResult:
    """The completed form of a :class:`TaskSpec` (seed kept for replay)."""

    point_index: int
    repetition: int
    seed: int
    value: Any


@dataclass(frozen=True)
class SweepResult:
    """Merged outcome of a sweep, sorted by ``(point_index, repetition)``.

    The task ordering — and therefore every aggregate computed from it,
    including the :meth:`digest` — is independent of worker count and
    completion order.
    """

    points: Tuple[Any, ...]
    results: Tuple[TaskResult, ...]
    workers: int
    elapsed_s: float

    def by_point(self) -> List[List[Any]]:
        """Task values grouped per parameter point, repetition-ordered."""
        grouped: List[List[Any]] = [[] for _ in self.points]
        for result in self.results:
            grouped[result.point_index].append(result.value)
        return grouped

    def digest(self) -> str:
        """Canonical SHA-256 over the merged results (see :func:`sweep_digest`)."""
        return sweep_digest(self.results)


def canonical(obj: Any) -> Any:
    """A JSON-encodable canonical form with bit-exact floats.

    Floats are rendered with :meth:`float.hex` (no rounding ambiguity),
    dataclasses become tagged field dicts, mappings get sorted keys.
    Two objects share a canonical form iff their observable metric
    content is bit-identical — the equality the 1-vs-N-workers contract
    is stated in.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj).hex()
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(obj[k]) for k in sorted(obj, key=str)}
    return repr(obj)


def sweep_digest(results: Sequence[TaskResult]) -> str:
    """SHA-256 hex digest of canonically encoded, coordinate-sorted results."""
    ordered = sorted(results, key=lambda r: (r.point_index, r.repetition))
    payload = json.dumps(
        canonical(list(ordered)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def merge_summaries(summaries: Sequence[ClientSummary]) -> ClientSummary:
    """Merge per-run :class:`ClientSummary` values into one aggregate.

    Counters add; the means recombine weighted by each run's admitted
    (served) request count, matching how the per-run means were formed.
    Reduction happens in the order given — callers pass
    repetition-sorted sequences (as :meth:`SweepResult.by_point`
    produces), which makes the floating-point result independent of
    worker count and completion order.
    """
    if not summaries:
        raise ValueError("cannot merge zero summaries")
    requests = sum(s.requests for s in summaries)
    sheds = sum(s.sheds for s in summaries)
    admitted = sum(s.admitted for s in summaries)
    response_weighted = sum(s.mean_response_ms * s.admitted for s in summaries)
    redundancy_weighted = sum(s.mean_redundancy * s.admitted for s in summaries)
    return ClientSummary(
        requests=requests,
        timing_failures=sum(s.timing_failures for s in summaries),
        timeouts=sum(s.timeouts for s in summaries),
        mean_response_ms=response_weighted / admitted if admitted else 0.0,
        mean_redundancy=redundancy_weighted / admitted if admitted else 0.0,
        sheds=sheds,
    )


def _build_tasks(
    points: Sequence[Any],
    repetitions: Optional[int],
    seeds: Optional[Sequence[int]],
    base_seed: int,
    stream_name: str,
) -> List[TaskSpec]:
    """Expand the sweep grid into per-cell tasks with derived seeds."""
    if (repetitions is None) == (seeds is None):
        raise ValueError("pass exactly one of repetitions or seeds")
    if seeds is not None:
        reps = list(enumerate(seeds))
    else:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        reps = [
            (
                r,
                derive_entity_seed(
                    base_seed, stream_name, entity_id=None, repetition=r
                ),
            )
            for r in range(repetitions)
        ]
    tasks = []
    for point_index, params in enumerate(points):
        for repetition, seed in reps:
            if seeds is None:
                seed = derive_entity_seed(
                    base_seed, stream_name, point_index, repetition
                )
            tasks.append(
                TaskSpec(
                    point_index=point_index,
                    repetition=repetition,
                    params=params,
                    seed=int(seed),
                )
            )
    return tasks


def _run_shard(payload: Tuple[SweepFn, List[TaskSpec]]) -> List[TaskResult]:
    """Execute one worker shard sequentially (runs inside a pool process)."""
    fn, shard = payload
    return [
        TaskResult(
            point_index=task.point_index,
            repetition=task.repetition,
            seed=task.seed,
            value=fn(task.params, task.seed, task.repetition),
        )
        for task in shard
    ]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (fast, Linux default); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sweep(
    fn: SweepFn,
    points: Sequence[Any],
    repetitions: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    base_seed: int = 0,
    workers: int = 1,
    stream_name: str = "sweep",
) -> SweepResult:
    """Run ``fn`` over every ``(point, repetition)`` cell of a sweep.

    Parameters
    ----------
    fn:
        Module-level callable ``fn(params, seed, repetition)``; must be
        picklable and deterministic given its arguments.
    points:
        Parameter points (any picklable values; passed through verbatim).
    repetitions / seeds:
        Exactly one must be given.  ``seeds`` pins explicit per-repetition
        scenario seeds (shared by every point — the historic experiment
        tables); ``repetitions`` derives per-cell seeds from
        ``(base_seed, stream_name, point_index, repetition)``.
    workers:
        Process count.  ``1`` runs inline (no pool); ``0``/negative means
        ``os.cpu_count()``.  Results are bit-identical for any value.

    Returns
    -------
    SweepResult
        Results sorted by ``(point_index, repetition)`` with provenance
        (per-task seeds, worker count, wall-clock).
    """
    tasks = _build_tasks(points, repetitions, seeds, base_seed, stream_name)
    if workers <= 0:
        workers = os.cpu_count() or 1
    workers = min(workers, len(tasks)) or 1
    started = time.perf_counter()
    if workers == 1:
        results = _run_shard((fn, tasks))
    else:
        shards = [tasks[w::workers] for w in range(workers)]
        ctx = _pool_context()
        with ctx.Pool(processes=workers) as pool:
            shard_results = pool.map(
                _run_shard, [(fn, shard) for shard in shards]
            )
        results = [result for shard in shard_results for result in shard]
    results.sort(key=lambda r: (r.point_index, r.repetition))
    return SweepResult(
        points=tuple(points),
        results=tuple(results),
        workers=workers,
        elapsed_s=time.perf_counter() - started,
    )


# -- digest smoke (CI entry point) -----------------------------------------

#: The built-in smoke sweep: two §6 two-client points, small enough for a
#: sub-minute CI job yet exercising the full scenario stack.
SMOKE_POINTS = (
    {
        "deadline_ms": 140.0,
        "min_probability": 0.9,
        "num_requests": 6,
        "num_replicas": 3,
    },
    {
        "deadline_ms": 160.0,
        "min_probability": 0.5,
        "num_requests": 6,
        "num_replicas": 3,
    },
)


def _smoke_sweep(workers: int) -> SweepResult:
    """The tiny built-in sweep the CI digest check runs at a worker count."""
    from .harness import two_client_point

    return run_sweep(
        two_client_point,
        SMOKE_POINTS,
        repetitions=2,
        base_seed=2001,
        workers=workers,
        stream_name="smoke",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI digest smoke: serial vs ``--workers`` must be bit-identical."""
    parser = argparse.ArgumentParser(
        description=(
            "Run the built-in smoke sweep serially and with --workers "
            "processes; fail unless the merged digests are bit-identical."
        )
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for the parallel leg (default 2)",
    )
    args = parser.parse_args(argv)

    serial = _smoke_sweep(workers=1)
    parallel = _smoke_sweep(workers=args.workers)
    lines = [
        f"serial   ({serial.workers} worker):  digest {serial.digest()} "
        f"in {serial.elapsed_s:.2f}s",
        f"parallel ({parallel.workers} workers): digest {parallel.digest()} "
        f"in {parallel.elapsed_s:.2f}s",
    ]
    ok = serial.digest() == parallel.digest()
    lines.append(
        "digests match — 1-vs-N invariance holds"
        if ok
        else "DIGEST MISMATCH — parallel merge is not deterministic"
    )
    report = "\n".join(lines)
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("### Parallel sweep digest smoke\n```\n")
            handle.write(report)
            handle.write("\n```\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
