"""Experiment A17 — the chaos campaign: randomized composed fault storms.

Hundreds of randomized schedules — partitions × crashes × degradations ×
overload surges, every family from its own disjoint RNG substream — each
run against a fresh five-replica deployment with the paper's dynamic
selection client (health subsystem on) and audited for the full
lifecycle invariant set plus campaign QoS floors.  Scenarios fan across
worker processes through the sharded sweep engine; the campaign digest
is bit-identical for any worker count.

Every failure report carries a one-line replay recipe, and ``--replay``
reruns exactly that scenario, delta-debugging its schedule down to a
1-minimal failing reproducer (``repro.faultinject.campaign
.shrink_schedule``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from ..faultinject.campaign import (
    CampaignConfig,
    CampaignResult,
    flatten_schedule,
    run_campaign,
    run_scenario,
    schedule_digest,
    shrink_schedule,
)
from .harness import print_table

__all__ = ["run", "main"]

#: run_all passes ``--workers`` through to :func:`main`.
PARALLEL_CAPABLE = True


def run(
    schedules: int = 20,
    base_seed: int = 0,
    workers: int = 1,
    clock_windows: int = 0,
) -> CampaignResult:
    """Run a (default: small) campaign; the CLI default is 200 schedules.

    ``clock_windows`` is the per-schedule cap on the opt-in clock-fault
    family (0, the default, keeps the legacy schedule draws and their
    published digests bit-identical).
    """
    cfg = CampaignConfig(
        schedules=schedules,
        base_seed=base_seed,
        max_clock_windows=clock_windows,
    )
    return run_campaign(cfg, workers=workers)


def _summarize(result: CampaignResult) -> List[str]:
    outcomes = result.outcomes
    n = len(outcomes)
    lines = [
        f"campaign: {n} schedules, {len(result.failures)} failed, "
        f"digest {result.digest[:16]}, {result.workers} worker(s), "
        f"{result.elapsed_s:.1f}s",
        f"submitted {sum(o.submitted for o in outcomes)}, "
        f"replies {sum(o.replies for o in outcomes)}, "
        f"timeouts {sum(o.timeouts for o in outcomes)}, "
        f"sheds {sum(o.sheds for o in outcomes)}",
    ]
    for outcome in result.failures:
        lines.append(f"FAILED schedule #{outcome.index}: {outcome.replay}")
        lines.extend(f"  - {v}" for v in outcome.violations)
    return lines


def _shrink_failure(cfg: CampaignConfig, index: int) -> List[str]:
    """Minimize a failing scenario's schedule; returns report lines."""
    from ..faultinject.campaign import draw_composed_schedule

    def fails(candidate) -> bool:
        return run_scenario(cfg, index, schedule=candidate).failed

    schedule = draw_composed_schedule(cfg, index)
    minimal = shrink_schedule(schedule, fails)
    items = flatten_schedule(minimal)
    lines = [
        f"shrunk schedule #{index}: {len(flatten_schedule(schedule))} -> "
        f"{len(items)} fault window(s), "
        f"digest {schedule_digest(minimal)[:12]}",
    ]
    lines.extend(f"  [{family}] {fault!r}" for family, fault in items)
    return lines


def _parse_replay(spec: str) -> tuple:
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            "replay spec must be BASE_SEED:INDEX[:DIGEST12]"
        )
    return int(parts[0]), int(parts[1]), parts[2] if len(parts) == 3 else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the campaign, or replay+shrink one scenario."""
    parser = argparse.ArgumentParser(description="A17 chaos campaign")
    parser.add_argument(
        "--schedules",
        type=int,
        default=200,
        help="number of randomized composed schedules (default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign base seed (default 0)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (default 1 = serial; digest-identical)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="20-schedule smoke campaign (overrides --schedules)",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the per-schedule outcome table as JSON",
    )
    parser.add_argument(
        "--replay",
        type=_parse_replay,
        default=None,
        metavar="SEED:INDEX[:DIGEST]",
        help=(
            "rerun one scenario from its failure report's replay line, "
            "then delta-debug its schedule to a minimal reproducer"
        ),
    )
    parser.add_argument(
        "--clock-windows",
        type=int,
        default=0,
        metavar="N",
        help=(
            "per-schedule cap on clock-fault windows (default 0 keeps "
            "the legacy campaign digest); replay lines from a clocked "
            "campaign carry this flag so --replay redraws identically"
        ),
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        base_seed, index, digest12 = args.replay
        cfg = CampaignConfig(
            schedules=max(index + 1, 1),
            base_seed=base_seed,
            max_clock_windows=args.clock_windows,
        )
        outcome = run_scenario(cfg, index)
        if digest12 is not None and not outcome.digest.startswith(digest12):
            print(
                f"digest mismatch: expected {digest12}, drew "
                f"{outcome.digest[:12]} — campaign knobs differ from the "
                "failing run"
            )
            return 1
        print(
            f"schedule #{index}: digest {outcome.digest[:12]}, "
            f"{outcome.submitted} submitted, {outcome.replies} replies, "
            f"{outcome.timeouts} timeouts, {outcome.sheds} sheds, "
            f"reply {outcome.reply_fraction:.3f}, "
            f"timely {outcome.timely_fraction:.3f}"
        )
        for violation in outcome.violations:
            print(f"  - {violation}")
        if outcome.failed:
            for line in _shrink_failure(cfg, index):
                print(line)
            return 1
        print("scenario is clean — nothing to shrink")
        return 0

    schedules = 20 if args.quick else args.schedules
    started = time.perf_counter()
    result = run(
        schedules=schedules,
        base_seed=args.seed,
        workers=args.workers,
        clock_windows=args.clock_windows,
    )
    report_lines = _summarize(result)
    print("\n".join(report_lines))

    rows = [
        (
            o.index,
            o.digest[:12],
            o.submitted,
            o.replies,
            o.timeouts,
            o.sheds,
            o.timely_fraction,
            len(o.violations),
        )
        for o in result.outcomes
        if o.failed
    ]
    if rows:
        print_table(
            "Failed schedules",
            [
                "index", "digest", "submitted", "replies",
                "timeouts", "sheds", "timely", "violations",
            ],
            rows,
        )
        for outcome in result.failures:
            print(f"\nminimizing schedule #{outcome.index} ...")
            for line in _shrink_failure(result.config, outcome.index):
                print(line)

    if args.json:
        payload = {
            "digest": result.digest,
            "workers": result.workers,
            "schedules": [
                {
                    "index": o.index,
                    "digest": o.digest,
                    "submitted": o.submitted,
                    "replies": o.replies,
                    "timeouts": o.timeouts,
                    "sheds": o.sheds,
                    "reply_fraction": o.reply_fraction,
                    "timely_fraction": o.timely_fraction,
                    "violations": list(o.violations),
                    "replay": o.replay,
                }
                for o in result.outcomes
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"[wrote {args.json}]")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("### A17 chaos campaign\n```\n")
            handle.write("\n".join(report_lines))
            handle.write("\n```\n")
            if result.failures:
                handle.write(
                    "\n**Reproduce locally** (each replay redraws the "
                    "exact schedule, checks its digest, then ddmin-"
                    "shrinks it to a 1-minimal reproducer):\n```\n"
                )
                for outcome in result.failures:
                    handle.write(f"{outcome.replay}\n")
                handle.write("```\n")
    print(
        f"[A17 campaign: {time.perf_counter() - started:.1f}s "
        f"with {result.workers} worker(s)]"
    )
    return 1 if result.failures else 0


if __name__ == "__main__":
    sys.exit(main())
