"""Ablation A11 — queue-scaled response-time estimation under load.

The paper's repository stores the replica's *current* queue length
(§5.2) but the base model predicts the queuing delay only from the
sliding window of *past* delays.  When many clients drive the queues,
the window lags the backlog: a replica can look attractive because its
last five serviced requests waited briefly, even though ten requests are
queued right now.

:class:`~repro.core.estimator.QueueScaledEstimator` is our implementation
of the obvious refinement — rescale the windowed queuing pmf by the
published queue depth.  This ablation measures what it buys at increasing
client counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.estimator import QueueScaledEstimator
from ..core.qos import QoSSpec
from ..sim.random import Exponential
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table

__all__ = ["QueueScalingPoint", "run_one", "run", "main"]


@dataclass(frozen=True)
class QueueScalingPoint:
    """Averaged metrics for one (estimator, client count) cell."""

    estimator: str
    num_clients: int
    failure_probability: float
    mean_redundancy: float
    mean_response_ms: float
    runs: int


def run_one(
    queue_scaled: bool,
    num_clients: int,
    deadline_ms: float = 160.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1),
    num_requests: int = 30,
    think_mean_ms: float = 700.0,
) -> QueueScalingPoint:
    """One cell: estimator variant at one client count."""
    handler_kwargs = {}
    if queue_scaled:
        handler_kwargs["estimator_factory"] = (
            lambda repo: QueueScaledEstimator(repo, bin_width_ms=1.0)
        )
    failures, redundancy, response = [], [], []
    for seed in seeds:
        scenario = Scenario(ScenarioConfig(seed=seed))
        clients = [
            scenario.add_client(
                f"client-{i + 1}",
                QoSSpec(scenario.config.service, deadline_ms, min_probability),
                num_requests=num_requests,
                think_time=Exponential(think_mean_ms),
                handler_kwargs=dict(handler_kwargs),
            )
            for i in range(num_clients)
        ]
        scenario.run_to_completion()
        summaries = [c.summary() for c in clients]
        total = sum(s.requests for s in summaries)
        failures.append(sum(s.timing_failures for s in summaries) / total)
        redundancy.append(
            sum(s.mean_redundancy * s.requests for s in summaries) / total
        )
        response.append(
            sum(s.mean_response_ms * s.requests for s in summaries) / total
        )
    return QueueScalingPoint(
        estimator="queue-scaled" if queue_scaled else "windowed (paper)",
        num_clients=num_clients,
        failure_probability=average(failures),
        mean_redundancy=average(redundancy),
        mean_response_ms=average(response),
        runs=len(seeds),
    )


def run(
    client_counts: Sequence[int] = (2, 6, 10),
    seeds: Sequence[int] = (0, 1),
    num_requests: int = 30,
) -> List[QueueScalingPoint]:
    """Both estimators across client counts."""
    points = []
    for queue_scaled in (False, True):
        for count in client_counts:
            points.append(
                run_one(
                    queue_scaled, count, seeds=seeds, num_requests=num_requests
                )
            )
    return points


def main() -> None:
    """Print the queue-scaling table."""
    points = run()
    rows = [
        (
            p.estimator,
            p.num_clients,
            p.failure_probability,
            p.mean_redundancy,
            p.mean_response_ms,
        )
        for p in points
    ]
    print_table(
        "Queue-scaled estimation under load (deadline 160 ms, Pc = 0.9)",
        ["estimator", "clients", "failure prob", "redundancy", "response ms"],
        rows,
    )


if __name__ == "__main__":
    main()
