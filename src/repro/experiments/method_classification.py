"""Ablation A7 — per-method performance classification (paper §8).

The paper assumes "the servers export a single method interface" and
sketches the extension: "modify the information repository to classify
performance data based on the method interfaces.  The selection algorithm
can then use the performance information appropriate to the method
invoked."

We build the case that motivates it: *specialist replicas*.  Half the
replicas serve ``process`` fast (40 ms) but ``analyze`` slowly (220 ms) —
say they hold the index in memory; the other half are the mirror image.
A client alternates the two methods under a 150 ms deadline.  The pooled
model mixes both methods' samples per replica, so every replica looks
mediocre and selection cannot tell the specialists apart; the classified
model routes each method to its specialists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.qos import QoSSpec
from ..gateway.handlers.timing_fault import method_classifier
from ..replica.load import ServiceProfile
from ..sim.random import Normal
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table

__all__ = ["ClassificationResult", "run_one", "run", "main"]

FAST = Normal(40.0, 10.0)
SLOW = Normal(220.0, 30.0)


@dataclass(frozen=True)
class ClassificationResult:
    """Averaged metrics for one model variant."""

    variant: str
    failure_probability: float
    heavy_failure_probability: float
    cheap_redundancy: float
    heavy_redundancy: float
    runs: int


def _specialist_profile(host: str) -> ServiceProfile:
    index = int(host.rsplit("-", 1)[1])
    if index % 2 == 1:
        # Odd replicas: process-specialists.
        return ServiceProfile(default=FAST, per_method={"analyze": SLOW})
    return ServiceProfile(default=SLOW, per_method={"analyze": FAST})


def _scenario(seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        seed=seed,
        num_replicas=6,  # three specialists per method
        extra_methods={"analyze": FAST},  # signature only; profiles rule
        profile_factory=_specialist_profile,
    )


def run_one(
    classified: bool,
    deadline_ms: float = 150.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 60,
) -> ClassificationResult:
    """One variant (classified or pooled) averaged over seeds."""
    failures, heavy_failures = [], []
    cheap_red, heavy_red = [], []
    for seed in seeds:
        scenario = Scenario(_scenario(seed))
        client = scenario.add_client(
            "client-1",
            QoSSpec(scenario.config.service, deadline_ms, min_probability),
            num_requests=num_requests,
            method_chooser=lambda i: "analyze" if i % 2 else "process",
            handler_kwargs=(
                {"classifier": method_classifier} if classified else {}
            ),
        )
        scenario.run_to_completion()
        outcomes = client.outcomes
        heavy = outcomes[1::2]  # odd indices invoked "analyze"
        cheap = outcomes[0::2]
        failures.append(
            sum(1 for o in outcomes if not o.timely) / len(outcomes)
        )
        heavy_failures.append(
            sum(1 for o in heavy if not o.timely) / len(heavy)
        )
        cheap_red.append(sum(o.redundancy for o in cheap) / len(cheap))
        heavy_red.append(sum(o.redundancy for o in heavy) / len(heavy))
    return ClassificationResult(
        variant="classified (per-method)" if classified else "pooled (paper base)",
        failure_probability=average(failures),
        heavy_failure_probability=average(heavy_failures),
        cheap_redundancy=average(cheap_red),
        heavy_redundancy=average(heavy_red),
        runs=len(seeds),
    )


def run(
    seeds: Sequence[int] = (0, 1, 2), num_requests: int = 60
) -> List[ClassificationResult]:
    """Both variants on the mixed-method workload."""
    return [
        run_one(classified=False, seeds=seeds, num_requests=num_requests),
        run_one(classified=True, seeds=seeds, num_requests=num_requests),
    ]


def main() -> None:
    """Print the method-classification table."""
    results = run()
    rows = [
        (
            r.variant,
            r.failure_probability,
            r.heavy_failure_probability,
            r.cheap_redundancy,
            r.heavy_redundancy,
        )
        for r in results
    ]
    print_table(
        "Per-method classification (specialist replicas, "
        "deadline 150 ms, Pc = 0.9)",
        ["model", "overall failures", "analyze-call failures",
         "process redundancy", "analyze redundancy"],
        rows,
    )


if __name__ == "__main__":
    main()
