"""§5.1 — the factors influencing the response time.

The paper's authors ran an off-line analysis and concluded that a
replica's response time in AQuA is "mainly affected by" the
gateway-to-gateway delay, the queuing delay and the service time — the
decomposition that becomes Equation 2 — and justified Equation 1's
independence assumption by noting "the network delay is usually a small
fraction of the replica's response time in a LAN environment".

This harness reruns that analysis on our stack: it traces the paper's
workload and prints the per-stage latency decomposition along the winning
reply path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.stages import extract_stages, stage_summaries
from ..core.qos import QoSSpec
from ..metrics.stats import Summary
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import print_table

__all__ = ["FactorRow", "run", "main"]


@dataclass(frozen=True)
class FactorRow:
    """One stage of the decomposition."""

    stage: str
    mean_ms: float
    p90_ms: float
    share_of_total: float


def run(
    seed: int = 0,
    num_requests: int = 100,
    num_clients: int = 2,
    deadline_ms: float = 200.0,
) -> List[FactorRow]:
    """Trace the paper's workload and decompose response times."""
    scenario = Scenario(ScenarioConfig(seed=seed, trace=True))
    for index in range(num_clients):
        scenario.add_client(
            f"client-{index + 1}",
            QoSSpec(scenario.config.service, deadline_ms, 0.5),
            num_requests=num_requests,
        )
    scenario.run_to_completion()
    stages = extract_stages(scenario.tracer)
    summaries = stage_summaries(stages)
    total_mean = summaries["total"].mean
    rows = []
    for stage in ("client", "request-net", "queueing", "service", "reply-net"):
        summary: Summary = summaries[stage]
        rows.append(
            FactorRow(
                stage=stage,
                mean_ms=summary.mean,
                p90_ms=summary.p90,
                share_of_total=summary.mean / total_mean if total_mean else 0.0,
            )
        )
    rows.append(
        FactorRow(
            stage="total",
            mean_ms=total_mean,
            p90_ms=summaries["total"].p90,
            share_of_total=1.0,
        )
    )
    return rows


def main() -> None:
    """Print the factor-decomposition table."""
    rows = run()
    print_table(
        "Factors influencing the response time (paper §5.1; winning-reply "
        "path, 2 clients x 100 requests)",
        ["stage", "mean ms", "p90 ms", "share of total"],
        [(r.stage, r.mean_ms, r.p90_ms, r.share_of_total) for r in rows],
    )
    network = sum(r.mean_ms for r in rows if r.stage.endswith("-net"))
    total = next(r.mean_ms for r in rows if r.stage == "total")
    print(
        f"\nNetwork share of the response time: {network / total:.1%} — "
        "'a small fraction' as the paper's independence argument requires."
    )


if __name__ == "__main__":
    main()
