"""Scale benchmark — selection and kernel throughput at fleet size.

ROADMAP item 2 ("vectorized event kernel + FFT convolution for 100–1000
replica fleets"): the Fig. 3 curves stop at the paper's n = 8, which
says nothing about whether the gateway can pick replicas out of a fleet.
This benchmark extends the measurement to n ∈ {64, 256, 1024} replicas
and windows up to l = 240, and adds an end-to-end event-kernel
throughput figure (events/sec through :class:`repro.sim.Simulator`'s
slotted queue), exported together as ``BENCH_scale.json`` so CI tracks
both numbers PR over PR.

Acceptance target (ISSUE 7): one cached selection over 1024 replicas in
under 1 ms.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..sim.kernel import Simulator
from .fig3_overhead import measure_overhead
from .harness import print_table

__all__ = [
    "ScalePoint",
    "KernelPoint",
    "measure_selection_scale",
    "measure_kernel_throughput",
    "export_scale_bench",
    "main",
]

#: Fleet sizes the scale benchmark sweeps (Fig. 3 stops at 8).
REPLICA_COUNTS = (64, 256, 1024)
#: Window sizes, up to the 240-entry ceiling of ISSUE 7.
WINDOW_SIZES = (60, 240)


@dataclass(frozen=True)
class ScalePoint:
    """Selection cost at one ``(n, l)`` fleet-scale point."""

    num_replicas: int
    window_size: int
    cached_us: float
    uncached_us: float

    @property
    def speedup(self) -> float:
        """Uncached-over-cached cost ratio at this point."""
        if self.cached_us == 0:
            return float("inf")
        return self.uncached_us / self.cached_us


@dataclass(frozen=True)
class KernelPoint:
    """Raw event-dispatch throughput at one pending-set size."""

    pending_timers: int
    events: int
    elapsed_s: float

    @property
    def events_per_sec(self) -> float:
        """Dispatched events per wall-clock second."""
        if self.elapsed_s == 0:
            return float("inf")
        return self.events / self.elapsed_s


def measure_selection_scale(
    replica_counts: Sequence[int] = REPLICA_COUNTS,
    window_sizes: Sequence[int] = WINDOW_SIZES,
    cached_iterations: int = 50,
    uncached_iterations: int = 3,
) -> List[ScalePoint]:
    """Cached and uncached selection cost over the fleet-scale grid.

    Reuses the Fig. 3 harness (same repository builder, same two-phase
    measurement) so the numbers are directly comparable with
    ``BENCH_estimator.json``; only the grid is larger.  The uncached arm
    rebuilds every distribution per request — with the lattice/FFT
    convolution that is now ``O(n · L log L)`` rather than ``O(n · L²)``
    — so a handful of iterations suffices for a stable mean.
    """
    points = []
    for window_size in window_sizes:
        for num_replicas in replica_counts:
            uncached = measure_overhead(
                num_replicas,
                window_size,
                iterations=uncached_iterations,
                cached=False,
            )
            cached = measure_overhead(
                num_replicas,
                window_size,
                iterations=cached_iterations,
                cached=True,
            )
            points.append(
                ScalePoint(
                    num_replicas=num_replicas,
                    window_size=window_size,
                    cached_us=cached.total_us,
                    uncached_us=uncached.total_us,
                )
            )
    return points


def measure_kernel_throughput(
    pending_timers: int = 512, target_events: int = 200_000
) -> KernelPoint:
    """Events/sec through the kernel with ``pending_timers`` live timers.

    Each timer perpetually reschedules itself with a 1 ms period from a
    staggered phase, so the pending set stays at ``pending_timers``
    entries while ``target_events`` dispatches stream through — the
    same push/pop pattern a running scenario produces, minus the model
    work, isolating the queue itself.
    """
    sim = Simulator()

    def make_timer() -> object:
        def tick() -> None:
            sim.call_in(1.0, tick)

        return tick

    for index in range(pending_timers):
        sim.call_in(index / pending_timers, make_timer())
    horizon = float(target_events) / pending_timers
    started = time.perf_counter()
    sim.run(until=horizon)
    elapsed = time.perf_counter() - started
    return KernelPoint(
        pending_timers=pending_timers,
        events=sim.processed_events,
        elapsed_s=elapsed,
    )


def export_scale_bench(
    selection: Sequence[ScalePoint],
    kernel: Sequence[KernelPoint],
    path: str,
) -> None:
    """Write ``BENCH_scale.json`` (format: docs/PERFORMANCE.md §7)."""
    payload: Dict[str, object] = {
        "benchmark": "scale-kernel",
        "description": (
            "Fleet-scale selection overhead (lattice/FFT convolution + "
            "batched refresh + padded-matrix CDF) and raw event-kernel "
            "dispatch throughput (slotted EventQueue)."
        ),
        "selection": {
            "unit": "microseconds per selection (mean over iterations)",
            "points": [
                {
                    "num_replicas": p.num_replicas,
                    "window_size": p.window_size,
                    "cached_us": round(p.cached_us, 3),
                    "uncached_us": round(p.uncached_us, 3),
                    "speedup": round(p.speedup, 2),
                }
                for p in selection
            ],
        },
        "kernel": {
            "unit": "events per wall-clock second",
            "points": [
                {
                    "pending_timers": p.pending_timers,
                    "events": p.events,
                    "events_per_sec": round(p.events_per_sec, 1),
                }
                for p in kernel
            ],
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def main() -> None:
    """Print the fleet-scale tables and export ``BENCH_scale.json``."""
    selection = measure_selection_scale()
    print_table(
        "Fleet-scale selection overhead (microseconds per selection)",
        ["window l", "replicas n", "cached us", "uncached us", "speedup"],
        [
            (p.window_size, p.num_replicas, p.cached_us, p.uncached_us, p.speedup)
            for p in selection
        ],
    )
    kernel = [
        measure_kernel_throughput(pending_timers=n) for n in (64, 512, 4096)
    ]
    print_table(
        "Event-kernel dispatch throughput",
        ["pending timers", "events", "events/sec"],
        [(p.pending_timers, p.events, p.events_per_sec) for p in kernel],
    )
    export_scale_bench(selection, kernel, "BENCH_scale.json")
    print("wrote BENCH_scale.json")


if __name__ == "__main__":
    main()
