"""Ablation A9 — calibration of the Equation 1 model.

The paper assumes replica response times are independent, arguing the
shared-network correlation is negligible on a LAN (§5.3).  This ablation
quantifies that argument: it compares the model's per-request predicted
probability ``P_K(t)`` against observed outcomes, on

* the paper's LAN (independent link jitter), and
* a LAN with *shared congestion* — a common switch adds the same
  Markov-modulated delay to every concurrent message, the situation where
  the first-reply race stops being a race of independents.

A calibrated model has observed ≈ predicted in every bucket; correlation
shows up as overconfidence (observed < predicted) in the high buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.calibration import CalibrationBucket, brier_score, calibration_table
from ..core.qos import QoSSpec
from ..sim.random import Constant, MarkovModulated, Normal
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import print_table

__all__ = ["CalibrationRun", "run_one", "run", "main"]


@dataclass(frozen=True)
class CalibrationRun:
    """Calibration results for one network regime."""

    regime: str
    buckets: List[CalibrationBucket]
    brier: float
    max_overconfidence: float


def _shared_congestion() -> MarkovModulated:
    """A shared switch that occasionally delays *everything* by ~30 ms."""
    return MarkovModulated(
        Constant(0.0),
        Normal(30.0, 8.0),
        p_enter_burst=0.02,
        p_exit_burst=0.10,
    )


def run_one(
    correlated: bool,
    deadlines_ms: Sequence[float] = (110.0, 130.0, 150.0, 180.0),
    min_probability: float = 0.5,
    seeds: Sequence[int] = (0, 1, 2),
    num_requests: int = 50,
) -> CalibrationRun:
    """Pool predictions over deadlines/seeds for one network regime."""
    outcomes = []
    for seed in seeds:
        for deadline in deadlines_ms:
            scenario = Scenario(
                ScenarioConfig(
                    seed=seed,
                    shared_congestion=(
                        _shared_congestion() if correlated else None
                    ),
                )
            )
            client = scenario.add_client(
                "client-1",
                QoSSpec(scenario.config.service, deadline, min_probability),
                num_requests=num_requests,
            )
            scenario.run_to_completion()
            outcomes.extend(client.outcomes)
    buckets = calibration_table(outcomes, num_buckets=10)
    return CalibrationRun(
        regime="correlated (shared switch)" if correlated else "independent (paper LAN)",
        buckets=buckets,
        brier=brier_score(outcomes),
        max_overconfidence=max(b.overconfidence for b in buckets),
    )


def run(
    seeds: Sequence[int] = (0, 1, 2), num_requests: int = 50
) -> List[CalibrationRun]:
    """Both network regimes."""
    return [
        run_one(correlated=False, seeds=seeds, num_requests=num_requests),
        run_one(correlated=True, seeds=seeds, num_requests=num_requests),
    ]


def main() -> None:
    """Print calibration tables for both regimes."""
    for result in run():
        rows = [
            (
                f"[{b.low:.1f}, {b.high:.1f})",
                b.count,
                b.mean_predicted,
                b.observed_timely,
                b.overconfidence,
            )
            for b in result.buckets
        ]
        print_table(
            f"Model calibration — {result.regime} "
            f"(Brier {result.brier:.4f})",
            ["predicted bucket", "n", "mean predicted", "observed timely",
             "overconfidence"],
            rows,
        )


if __name__ == "__main__":
    main()
