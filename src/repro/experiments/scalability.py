"""Ablation A5 — scalability with the number of concurrent clients (§1/§4).

The paper motivates adaptive redundancy with the fault-tolerance/
scalability trade-off: all-replicas service gives every client maximal
protection but loads every replica with every request; single-replica
service scales but cannot hedge crashes or slow servers.  We sweep the
number of closed-loop clients and report, per policy, the failure
probability and the mean per-replica load (requests serviced per replica
per issued client request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.baselines import AllReplicasPolicy, SingleFastestPolicy
from ..core.qos import QoSSpec
from ..core.selection import SelectionPolicy
from ..workload.scenarios import Scenario, ScenarioConfig
from .harness import average, print_table

__all__ = ["ScalabilityPoint", "run_client_count", "run", "main"]


@dataclass(frozen=True)
class ScalabilityPoint:
    """Averaged metrics for one (policy, client count) cell."""

    policy: str
    num_clients: int
    failure_probability: float
    mean_redundancy: float
    mean_response_ms: float
    #: Requests *serviced* per replica per issued request (the historic
    #: column): copies dropped on the wire or shed before dispatch never
    #: reach a servant, so this understates the offered load.
    server_load_amplification: float
    #: Copies *offered* to the server tier (multicast copies plus
    #: retransmitted copies) per admitted request (issued minus shed) —
    #: a shedding policy cannot game this one by dropping work.
    effective_load_amplification: float
    runs: int


def run_client_count(
    policy_factory: Optional[Callable[[], SelectionPolicy]],
    policy_name: str,
    num_clients: int,
    deadline_ms: float = 160.0,
    min_probability: float = 0.9,
    seeds: Sequence[int] = (0, 1),
    num_requests: int = 30,
    think_mean_ms: float = 1000.0,
) -> ScalabilityPoint:
    """One cell of the scalability sweep."""
    from ..sim.random import Exponential

    failures, redundancy, response, amplification = [], [], [], []
    effective = []
    for seed in seeds:
        scenario = Scenario(ScenarioConfig(seed=seed))
        clients = [
            scenario.add_client(
                f"client-{i + 1}",
                QoSSpec(
                    scenario.config.service,
                    deadline_ms=deadline_ms,
                    min_probability=min_probability,
                ),
                policy=policy_factory() if policy_factory else None,
                num_requests=num_requests,
                think_time=Exponential(think_mean_ms),
            )
            for i in range(num_clients)
        ]
        scenario.run_to_completion()
        summaries = [c.summary() for c in clients]
        total_requests = sum(s.requests for s in summaries)
        total_failures = sum(s.timing_failures for s in summaries)
        served = sum(
            scenario.manager.handler_on(host).app.requests_served
            for host in scenario.config.replica_hosts()
        )
        failures.append(total_failures / total_requests)
        redundancy.append(
            sum(s.mean_redundancy * s.requests for s in summaries) / total_requests
        )
        response.append(
            sum(s.mean_response_ms * s.requests for s in summaries) / total_requests
        )
        amplification.append(served / total_requests)
        # Offered copies: every multicast copy of every admitted request
        # (mean_redundancy is measured over non-shed outcomes) plus every
        # retransmitted copy, over the issued-minus-shed denominator.
        copies = sum(s.mean_redundancy * s.admitted for s in summaries)
        retransmitted = sum(
            getattr(handler, "retransmissions", 0)
            for handler in scenario.handlers.values()
        )
        admitted = sum(s.admitted for s in summaries)
        effective.append((copies + retransmitted) / max(admitted, 1))
    return ScalabilityPoint(
        policy=policy_name,
        num_clients=num_clients,
        failure_probability=average(failures),
        mean_redundancy=average(redundancy),
        mean_response_ms=average(response),
        server_load_amplification=average(amplification),
        effective_load_amplification=average(effective),
        runs=len(seeds),
    )


def run(
    client_counts: Sequence[int] = (1, 2, 4, 8, 16),
    seeds: Sequence[int] = (0, 1),
    num_requests: int = 30,
) -> List[ScalabilityPoint]:
    """Sweep client counts for dynamic, all-replicas and single-fastest."""
    policies: List = [
        (None, "dynamic (paper)"),
        (AllReplicasPolicy, "all-replicas"),
        (SingleFastestPolicy, "single-fastest"),
    ]
    points = []
    for factory, name in policies:
        for count in client_counts:
            points.append(
                run_client_count(
                    factory, name, count, seeds=seeds, num_requests=num_requests
                )
            )
    return points


def main() -> None:
    """Print the scalability table."""
    points = run()
    rows = [
        (
            p.policy,
            p.num_clients,
            p.failure_probability,
            p.mean_redundancy,
            p.mean_response_ms,
            p.server_load_amplification,
            p.effective_load_amplification,
        )
        for p in points
    ]
    print_table(
        "Scalability with concurrent clients (deadline 160 ms, Pc = 0.9)",
        ["policy", "clients", "failure prob", "mean redundancy",
         "mean response ms", "replica msgs/request", "offered copies/admitted"],
        rows,
    )


if __name__ == "__main__":
    main()
