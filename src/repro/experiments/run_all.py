"""Run every experiment harness and print every table.

``python -m repro.experiments.run_all`` regenerates the complete
EXPERIMENTS.md data set in one go (several minutes).  Pass ``--quick``
for a reduced-sweep smoke pass, and ``--workers N`` to fan the
parallel-capable sweeps (currently A15/A16/A18; see
EXPERIMENTS.md § "Running the matrix in parallel") across N worker
processes — their tables stay bit-identical to the serial run.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    adaptation_timeline,
    bursty_network,
    calibration,
    chaos_campaign,
    clock_faults,
    colocation,
    factors,
    fig3_overhead,
    fig45_selection,
    health_degradation,
    method_classification,
    min_response,
    omission_faults,
    overload_collapse,
    policy_comparison,
    probing,
    queue_scaling,
    retransmission,
    scalability,
    window_sensitivity,
)

#: (label, module) in presentation order.
ALL_EXPERIMENTS = [
    ("Figure 3 (overhead)", fig3_overhead),
    ("Figures 4+5 (selection & failures)", fig45_selection),
    ("Minimum response time", min_response),
    ("§5.1 factors", factors),
    ("A1/A4 policy comparison", policy_comparison),
    ("A2 crash tolerance", None),  # imported lazily: heavy
    ("A3 window sensitivity", window_sensitivity),
    ("A5 scalability", scalability),
    ("A6 active probing", probing),
    ("A7 method classification", method_classification),
    ("A8 bursty network", bursty_network),
    ("A9 model calibration", calibration),
    ("A10 omission faults", omission_faults),
    ("A11 queue scaling", queue_scaling),
    ("A12 co-location interference", colocation),
    ("A13 redundancy vs retransmission", retransmission),
    ("A14 adaptation timeline", adaptation_timeline),
    ("A15 health under degradation", health_degradation),
    ("A16 overload collapse", overload_collapse),
    ("A17 chaos campaign", chaos_campaign),
    ("A18 clock-fault tolerance", clock_faults),
]


def main(argv=None) -> int:
    """Run all experiment mains, timing each."""
    parser = argparse.ArgumentParser(
        description="Regenerate every table of EXPERIMENTS.md"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sweeps (for smoke testing the harnesses)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for parallel-capable sweeps "
            "(default 1 = serial; results are bit-identical either way)"
        ),
    )
    args = parser.parse_args(argv)

    from . import crash_tolerance

    experiments = [
        (label, module if module is not None else crash_tolerance)
        for label, module in ALL_EXPERIMENTS
    ]
    started_all = time.perf_counter()
    for label, module in experiments:
        print(f"\n### {label} — python -m {module.__name__}")
        started = time.perf_counter()
        if args.quick and hasattr(module, "run"):
            # Harnesses expose run() with sweep-size defaults; quick mode
            # just proves each one executes end to end.
            try:
                module.run(seeds=(0,))  # type: ignore[call-arg]
            except TypeError:
                module.run()  # run() without a seeds parameter
        elif args.workers > 1 and getattr(module, "PARALLEL_CAPABLE", False):
            module.main(["--workers", str(args.workers)])
        else:
            module.main()
        print(f"[{label}: {time.perf_counter() - started:.1f}s]")
    print(
        f"\nAll experiments done in "
        f"{time.perf_counter() - started_all:.1f}s."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
