"""Shared experiment machinery.

Every figure/table module builds on :func:`run_two_client_experiment`,
which reproduces the paper's §6 setup — two closed-loop clients against
seven replicas, fifty requests each, one-second think time — and on the
small table-printing helpers used by all ``main()`` entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..core.qos import QoSSpec
from ..core.selection import SelectionPolicy
from ..rng import derive_repetition_seed
from ..workload.client import ClientSummary
from ..workload.scenarios import Scenario, ScenarioConfig

__all__ = [
    "TwoClientResult",
    "run_two_client_experiment",
    "repetition_seeds",
    "two_client_point",
    "average",
    "format_table",
    "print_table",
]


@dataclass(frozen=True)
class TwoClientResult:
    """Outcome of one two-client run (the paper's unit of measurement)."""

    deadline_ms: float
    min_probability: float
    client2: ClientSummary
    client1: ClientSummary

    @property
    def avg_replicas_selected(self) -> float:
        """Fig. 4's y-axis: mean redundancy chosen for client 2."""
        return self.client2.mean_redundancy

    @property
    def failure_probability(self) -> float:
        """Fig. 5's y-axis: observed timing-failure probability, client 2."""
        return self.client2.failure_probability


def run_two_client_experiment(
    deadline_ms: float,
    min_probability: float,
    seed: int = 0,
    num_requests: int = 50,
    num_replicas: int = 7,
    window_size: int = 5,
    policy_factory: Optional[Callable[[], SelectionPolicy]] = None,
    config: Optional[ScenarioConfig] = None,
    audit_lifecycle: bool = True,
) -> TwoClientResult:
    """One run of the paper's §6 experiment.

    Client 1 always requests (deadline 200 ms, Pc ≥ 0); client 2 requests
    ``(deadline_ms, min_probability)``.  Both issue ``num_requests``
    requests with 1 s think time against ``num_replicas`` replicas whose
    service delay is Normal(100 ms, 50 ms).

    ``audit_lifecycle`` (default on) runs the drain-time
    :class:`~repro.faultinject.auditor.LifecycleAuditor` over the finished
    scenario, so every figure run doubles as a leak regression check.
    """
    if config is None:
        config = ScenarioConfig(
            seed=seed,
            num_replicas=num_replicas,
            window_size=window_size,
        )
    scenario = Scenario(config)
    service = config.service
    client1 = scenario.add_client(
        "client-1",
        QoSSpec(service, deadline_ms=200.0, min_probability=0.0),
        policy=policy_factory() if policy_factory else None,
        num_requests=num_requests,
    )
    client2 = scenario.add_client(
        "client-2",
        QoSSpec(service, deadline_ms=deadline_ms, min_probability=min_probability),
        policy=policy_factory() if policy_factory else None,
        num_requests=num_requests,
    )
    scenario.run_to_completion()
    if audit_lifecycle:
        scenario.audit_lifecycle()
    return TwoClientResult(
        deadline_ms=deadline_ms,
        min_probability=min_probability,
        client2=client2.summary(),
        client1=client1.summary(),
    )


def repetition_seeds(base_seed: int, repetitions: int) -> Tuple[int, ...]:
    """Derived scenario seeds for ``repetitions`` repeated runs.

    The canonical way to widen a sweep: instead of hand-picking seed
    tuples, record one ``base_seed`` and derive repetition ``r``'s
    scenario seed as ``derive_repetition_seed(base_seed, r)``
    (docs/REPRODUCIBILITY.md).  Stable under reordering and extension —
    growing ``repetitions`` never changes the earlier seeds.
    """
    return tuple(
        derive_repetition_seed(base_seed, r) for r in range(repetitions)
    )


def two_client_point(params: dict, seed: int, repetition: int) -> TwoClientResult:
    """Sweep adapter: one §6 two-client run as a parallel-runner task.

    ``params`` are keyword arguments of :func:`run_two_client_experiment`
    minus ``seed``, which the runner supplies per task.  Module-level so
    it can be pickled into worker processes
    (:func:`repro.experiments.parallel.run_sweep`).
    """
    return run_two_client_experiment(seed=seed, **params)


def average(values: Sequence[float]) -> float:
    """Plain mean (raises on empty input, which is always a harness bug)."""
    if not values:
        raise ValueError("cannot average zero values")
    return sum(values) / len(values)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table (monospace, paper-style)."""
    columns = [
        [str(header)] + [_format_cell(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        str(headers[i]).ljust(widths[i]) for i in range(len(headers))
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _format_cell(row[i]).ljust(widths[i]) for i in range(len(row))
            )
        )
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def print_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Print a titled table to stdout."""
    print()
    print(title)
    print("=" * len(title))
    print(format_table(headers, rows))
