"""Deadline-based admission control: fail fast instead of queueing to miss.

Under pressure a request whose best achievable ``F_{R_m0}(t - δ)`` is
already below a floor will almost surely miss its deadline; multicasting
it anyway burns server queue capacity that admitted requests need.  The
controller reads the selection decision's own probability annotations —
no extra model — and declares a *shed*: the client gets an immediate
fail-fast outcome, no copy reaches any replica, and the lifecycle
auditor books the request as completed-by-shed (exactly one of reply,
timeout, shed).

Hedged retransmissions are the cheapest load to cut, so they are
suppressed at a *lower* load threshold than request shedding engages:
first stop re-sending copies of requests that already have copies in
flight, only then start rejecting fresh work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.selection import SelectionMeta

__all__ = ["AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Thresholds of the fail-fast ladder.

    Attributes
    ----------
    floor_probability:
        Minimum best-replica ``F_{R_i}(t - δ)`` a request must have to be
        admitted while the controller is engaged.
    engage_load:
        Load index at or above which shedding is considered at all;
        below it every request is admitted regardless of its odds.
    hedge_suppress_load:
        Load index at or above which hedged retransmissions are
        suppressed.  Must not exceed ``engage_load`` — hedges are cut
        before fresh work is rejected.
    """

    floor_probability: float = 0.2
    engage_load: float = 1.0
    hedge_suppress_load: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.floor_probability <= 1.0:
            raise ValueError(
                "floor_probability must be in [0, 1], got "
                f"{self.floor_probability}"
            )
        if self.engage_load < 0:
            raise ValueError(
                f"engage_load must be >= 0, got {self.engage_load}"
            )
        if self.hedge_suppress_load > self.engage_load:
            raise ValueError(
                "hedge_suppress_load must not exceed engage_load "
                "(hedges shed first), got "
                f"{self.hedge_suppress_load} > {self.engage_load}"
            )


class AdmissionController:
    """Decides, per request, between admit and fail-fast shed."""

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        self.admitted = 0
        self.sheds = 0
        self.hedges_suppressed = 0

    @staticmethod
    def best_probability(decision_meta: SelectionMeta) -> Optional[float]:
        """Best per-replica probability annotated on the decision.

        ``None`` when the decision carries no model (bootstrap, static
        fallback) — such requests are always admitted: without evidence
        of hopelessness, shedding would be guessing.
        """
        probabilities = decision_meta.get("probabilities")
        # The isinstance guard is redundant under the checker but kept as
        # runtime defense: untyped callers (tests, notebooks) hand-build
        # meta dicts.
        if not isinstance(probabilities, dict) or not probabilities:
            return None
        return max(float(p) for p in probabilities.values())

    def should_shed(
        self, decision_meta: SelectionMeta, load: float
    ) -> bool:
        """Admit-or-shed verdict; updates the controller's counters."""
        shed = False
        if load >= self.config.engage_load:
            best = self.best_probability(decision_meta)
            if best is not None and best < self.config.floor_probability:
                shed = True
        if shed:
            self.sheds += 1
        else:
            self.admitted += 1
        return shed

    def suppress_hedging(self, load: float) -> bool:
        """Whether hedged retransmissions should be withheld at ``load``."""
        suppress = load >= self.config.hedge_suppress_load
        if suppress:
            self.hedges_suppressed += 1
        return suppress

    def __repr__(self) -> str:
        return (
            f"<AdmissionController admitted={self.admitted} "
            f"sheds={self.sheds} hedges_suppressed={self.hedges_suppressed}>"
        )
