"""The load tracker: a per-replica and system-wide load index.

Every reply already carries the replying replica's queue length and the
queuing delay ``tq`` the request experienced (paper §5.4.1); the client
gateway additionally knows how many request copies it has in flight.
:class:`LoadTracker` folds those three signals — without any new wire
traffic — into one dimensionless load index:

* per replica, an EWMA of the *implied queue depth*: the larger of the
  reported queue length and ``tq / ts`` (how many service times the
  request waited), normalized by ``target_queue_depth``;
* system-wide, the mean per-replica index over the *active* (non-
  quarantined) replicas plus the gateway's own in-flight copies divided
  by the active capacity.

An index of 0 means idle (no queueing observed anywhere, nothing in
flight); 1 means every active replica sits at the configured target
depth.  The index is the single input of the redundancy governor's cap
ladder and the admission controller's engage thresholds — see
docs/ARCHITECTURE.md §6.

Quarantine composes through the ``names`` argument of
:meth:`system_load`: callers pass the active replica set, so a shrinking
set concentrates the same in-flight work over less capacity and the
index *rises* — the governor tightens rather than re-amplifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = ["LoadConfig", "LoadTracker"]


@dataclass(frozen=True)
class LoadConfig:
    """Knobs of the load index.

    Attributes
    ----------
    target_queue_depth:
        Per-replica outstanding-request depth considered saturated; the
        per-replica index is the EWMA'd implied depth divided by this.
    ewma_alpha:
        Weight of the newest implied-depth sample (1.0 = no smoothing).
    inflight_weight:
        Weight of the gateway in-flight component of the system index
        (0.0 ignores in-flight work entirely).
    """

    target_queue_depth: float = 4.0
    ewma_alpha: float = 0.4
    inflight_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.target_queue_depth <= 0:
            raise ValueError(
                f"target_queue_depth must be > 0, got {self.target_queue_depth}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.inflight_weight < 0:
            raise ValueError(
                f"inflight_weight must be >= 0, got {self.inflight_weight}"
            )


class LoadTracker:
    """Folds reply-borne queue evidence into a load index.

    The tracker is passive like the health monitor: the handler feeds it
    observations with explicit timestamps and it never schedules events.
    ``inflight_provider`` (set by the owning handler) reports the number
    of request copies currently awaiting a reply, so the index reflects
    work this gateway has committed but the replicas have not yet
    acknowledged through a queue-length report.
    """

    def __init__(
        self,
        config: Optional[LoadConfig] = None,
        inflight_provider: Optional[Callable[[], int]] = None,
    ) -> None:
        self.config = config or LoadConfig()
        self.inflight_provider = inflight_provider
        # replica -> EWMA of the implied queue depth.
        self._depth_ewma: Dict[str, float] = {}
        self._last_update_ms: Dict[str, float] = {}
        self.observations = 0

    # -- feeding -------------------------------------------------------------
    def observe_reply(
        self,
        replica: str,
        queue_length: int,
        queue_delay_ms: float = 0.0,
        service_time_ms: float = 0.0,
        now_ms: float = 0.0,
    ) -> None:
        """Fold one performance update (reply or push) into the index.

        The implied depth is the larger of the reported queue length and
        ``tq / ts`` — a long wait behind few-but-slow requests is load
        too.  ``service_time_ms`` of 0 (unknown) uses the queue length
        alone.
        """
        implied = float(queue_length)
        if service_time_ms > 0.0 and queue_delay_ms > 0.0:
            implied = max(implied, queue_delay_ms / service_time_ms)
        self._fold(replica, implied, now_ms)

    def observe_probe(
        self, replica: str, queue_length: int, now_ms: float
    ) -> None:
        """Fold a gateway probe's sampled queue depth into the index."""
        self._fold(replica, float(queue_length), now_ms)

    def _fold(self, replica: str, implied_depth: float, now_ms: float) -> None:
        if implied_depth < 0:
            raise ValueError(
                f"implied depth must be >= 0, got {implied_depth}"
            )
        alpha = self.config.ewma_alpha
        previous = self._depth_ewma.get(replica)
        if previous is None:
            self._depth_ewma[replica] = implied_depth
        else:
            self._depth_ewma[replica] = (
                alpha * implied_depth + (1.0 - alpha) * previous
            )
        self._last_update_ms[replica] = float(now_ms)
        self.observations += 1

    def sync_members(self, members: Iterable[str]) -> None:
        """Drop state for departed replicas (a rejoin starts fresh)."""
        members = set(members)
        for name in list(self._depth_ewma):
            if name not in members:
                del self._depth_ewma[name]
                self._last_update_ms.pop(name, None)

    # -- the index -----------------------------------------------------------
    def replica_load(self, replica: str) -> float:
        """Per-replica load: EWMA'd depth over the target (0 if unseen)."""
        depth = self._depth_ewma.get(replica)
        if depth is None:
            return 0.0
        return depth / self.config.target_queue_depth

    def inflight_copies(self) -> int:
        """Request copies the gateway is currently awaiting replies for."""
        if self.inflight_provider is None:
            return 0
        return max(0, int(self.inflight_provider()))

    def system_load(self, names: Optional[Sequence[str]] = None) -> float:
        """The system-wide load index over the active replica set.

        ``names`` defaults to every replica ever observed.  Replicas
        without observations count as idle (load 0) — a cold start must
        read as idle so the governor and admission controller stay inert
        until evidence of pressure exists.
        """
        pool: List[str] = (
            list(names) if names is not None else sorted(self._depth_ewma)
        )
        if not pool:
            return 0.0
        queue_component = sum(self.replica_load(name) for name in pool) / len(
            pool
        )
        capacity = len(pool) * self.config.target_queue_depth
        inflight_component = (
            self.config.inflight_weight * self.inflight_copies() / capacity
        )
        return queue_component + inflight_component

    def __repr__(self) -> str:
        return (
            f"<LoadTracker replicas={len(self._depth_ewma)} "
            f"observations={self.observations}>"
        )
