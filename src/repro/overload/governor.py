"""The redundancy governor: a load-dependent cap on Algorithm 1's ``|K|``.

Algorithm 1 hedges timing faults with extra request copies, but each
copy is real work on the FIFO server queues: under a flash crowd the
hedging that protects one client widens every ``W_i`` pmf, which makes
the algorithm select *more* replicas — a metastable feedback loop
(Poloczek & Ciucu: replication flips from latency-reducing to
capacity-destroying past a load threshold).

:class:`GovernedSelectionPolicy` breaks the loop from outside the
algorithm: it wraps any :class:`~repro.core.selection.SelectionPolicy`
and, before each decision, translates the tracker's load index into a
redundancy cap via a linear ladder —

* ``load <= engage_load``: no cap; the inner policy's decision is
  bit-for-bit what it would have produced un-wrapped;
* ``load >= saturate_load``: the floor — ``{m0}`` plus the minimum set
  still satisfying the crash guarantee (``crash_tolerance + 1``
  members), never fewer while requests are being admitted;
* in between: linear interpolation, rounded up so the cap only bites
  when the load has genuinely moved.

The cap travels inside :class:`~repro.core.selection.SelectionContext`
(``max_redundancy``), so Algorithm 1 enforces it where the probabilities
are computed; the governor additionally trims the returned set as a
defense against cap-blind policies.  Quarantined replicas are excluded
from the capacity the load index is computed over, so quarantine makes
the index *rise* and the governor tighten — composition, not
re-amplification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from ..core.selection import (
    GovernorMeta,
    SelectionContext,
    SelectionDecision,
    SelectionMeta,
    SelectionPolicy,
)
from .load import LoadTracker

__all__ = ["GovernorConfig", "GovernedSelectionPolicy"]


@dataclass(frozen=True)
class GovernorConfig:
    """The cap ladder's thresholds.

    Attributes
    ----------
    engage_load:
        Load index below which the governor is inert (full hedging).
    saturate_load:
        Load index at or above which the cap sits at the floor.
    min_redundancy:
        The floor itself.  ``None`` derives it from the wrapped policy's
        ``crash_tolerance`` (``crash_tolerance + 1``: the protected best
        plus one survivor — the structural single-crash guarantee).
    """

    engage_load: float = 0.5
    saturate_load: float = 1.5
    min_redundancy: Optional[int] = None

    def __post_init__(self) -> None:
        if self.engage_load < 0:
            raise ValueError(
                f"engage_load must be >= 0, got {self.engage_load}"
            )
        if self.saturate_load <= self.engage_load:
            raise ValueError(
                "saturate_load must exceed engage_load, got "
                f"{self.saturate_load} <= {self.engage_load}"
            )
        if self.min_redundancy is not None and self.min_redundancy < 1:
            raise ValueError(
                f"min_redundancy must be >= 1, got {self.min_redundancy}"
            )


class GovernedSelectionPolicy(SelectionPolicy):
    """Wrap a selection policy with the load-dependent redundancy cap."""

    def __init__(
        self,
        inner: SelectionPolicy,
        tracker: LoadTracker,
        config: Optional[GovernorConfig] = None,
    ) -> None:
        self.inner = inner
        self.tracker = tracker
        self.config = config or GovernorConfig()
        self.name = f"governed-{inner.name}"
        #: Load index of the most recent decision (the handler reads this
        #: for admission control and hedge suppression).
        self.last_load = 0.0
        #: Decisions where the cap was below the available replica count.
        self.engagements = 0

    def floor_redundancy(self) -> int:
        """The ladder's floor before clamping to the available count."""
        if self.config.min_redundancy is not None:
            return self.config.min_redundancy
        return int(getattr(self.inner, "crash_tolerance", 1)) + 1

    def cap_for(self, load: float, available: int) -> int:
        """Map a load index to a redundancy cap over ``available`` replicas."""
        if available <= 0:
            return available
        floor_k = min(self.floor_redundancy(), available)
        if load <= self.config.engage_load:
            return available
        if load >= self.config.saturate_load:
            return floor_k
        fraction = (load - self.config.engage_load) / (
            self.config.saturate_load - self.config.engage_load
        )
        span = available - floor_k
        return floor_k + int(math.ceil((1.0 - fraction) * span))

    def decide(self, ctx: SelectionContext) -> SelectionDecision:
        # Capacity = the non-quarantined replicas (quarantine shrinks it).
        names = list(ctx.replicas)
        if ctx.health is not None:
            active = [r for r in names if not ctx.health.is_quarantined(r)]
            if active:
                names = active
        load = self.tracker.system_load(names)
        self.last_load = load
        available = len(names)
        cap = self.cap_for(load, available)
        if ctx.max_redundancy is not None:
            cap = min(cap, ctx.max_redundancy)

        engaged = cap < available
        if not engaged and ctx.max_redundancy is None:
            # Inert governor: hand the context through untouched so the
            # decision is exactly the un-wrapped policy's.
            decision = self.inner.decide(ctx)
        else:
            decision = self.inner.decide(replace(ctx, max_redundancy=cap))
            if len(decision.selected) > cap:
                # Defense for cap-blind policies (static baselines).
                decision = SelectionDecision(
                    selected=decision.selected[: max(cap, 1)],
                    meta=decision.meta.copy(),
                )
        if engaged:
            self.engagements += 1

        governor_meta = GovernorMeta(
            load=load, cap=cap, available=available, engaged=engaged
        )
        meta: SelectionMeta = {**decision.meta, "governor": governor_meta}
        return SelectionDecision(selected=decision.selected, meta=meta)
