"""Overload defense: load tracking, redundancy governing, admission control.

The subsystem closes the redundancy→load feedback loop of Algorithm 1
(docs/ARCHITECTURE.md §6):

* :class:`LoadTracker` folds the queue-length and ``tq`` fields already
  carried on every reply, plus the gateway's in-flight copy count, into
  a dimensionless load index;
* :class:`GovernedSelectionPolicy` caps the selected set's size as the
  index rises — full hedging when idle, shrinking toward ``{m0}`` plus
  the minimum crash-guarantee set under saturation;
* :class:`AdmissionController` fail-fast sheds requests whose best
  achievable ``F_{R_m0}(t - δ)`` is below a floor, suppressing hedged
  retransmissions first.

:class:`OverloadConfig` bundles the three knobs for the handler; passing
it to :class:`~repro.gateway.handlers.timing_fault.TimingFaultClientHandler`
activates the whole subsystem.
"""

from dataclasses import dataclass, field
from typing import Optional

from .admission import AdmissionConfig, AdmissionController
from .governor import GovernedSelectionPolicy, GovernorConfig
from .load import LoadConfig, LoadTracker

__all__ = [
    "LoadConfig",
    "LoadTracker",
    "GovernorConfig",
    "GovernedSelectionPolicy",
    "AdmissionConfig",
    "AdmissionController",
    "OverloadConfig",
]


@dataclass(frozen=True)
class OverloadConfig:
    """Bundle of the three overload-defense knobs.

    ``governor=None`` leaves the selection policy un-wrapped;
    ``admission=None`` disables shedding and hedge suppression.  The
    load tracker always runs (its observations are passive and cheap)
    so metrics expose the index even with both defenses off.
    """

    load: LoadConfig = field(default_factory=LoadConfig)
    governor: Optional[GovernorConfig] = field(default_factory=GovernorConfig)
    admission: Optional[AdmissionConfig] = field(
        default_factory=AdmissionConfig
    )
