"""Object model of the simulated ORB.

CORBA gives AQuA three things our reproduction needs: named service
interfaces with methods, servants implementing them, and object references
through which clients invoke methods without knowing about replication.
This module provides those, without wire-level encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "MethodSignature",
    "ServiceInterface",
    "Servant",
    "FunctionServant",
    "MethodRequest",
]


@dataclass(frozen=True)
class MethodSignature:
    """One method of a service interface.

    ``request_bytes`` / ``reply_bytes`` drive the marshalling and
    transmission cost models (the paper measured a ≈3.5 ms floor for a
    "minimum-sized request having negligible service time").
    """

    name: str
    request_bytes: int = 128
    reply_bytes: int = 128

    def __post_init__(self) -> None:
        if self.request_bytes < 0 or self.reply_bytes < 0:
            raise ValueError("message sizes must be >= 0")


class ServiceInterface:
    """A named collection of method signatures (an IDL interface analog)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._methods: Dict[str, MethodSignature] = {}

    def add_method(self, signature: MethodSignature) -> "ServiceInterface":
        """Add a method; returns self for chaining."""
        if signature.name in self._methods:
            raise ValueError(
                f"method {signature.name!r} already on interface {self.name!r}"
            )
        self._methods[signature.name] = signature
        return self

    def method(self, name: str) -> MethodSignature:
        """Look up a method signature by name."""
        try:
            return self._methods[name]
        except KeyError:
            raise KeyError(
                f"interface {self.name!r} has no method {name!r}"
            ) from None

    def methods(self) -> Tuple[MethodSignature, ...]:
        """All methods in declaration order."""
        return tuple(self._methods.values())

    def __contains__(self, name: str) -> bool:
        return name in self._methods

    def __repr__(self) -> str:
        return f"<ServiceInterface {self.name!r} methods={sorted(self._methods)}>"


@dataclass(frozen=True)
class MethodRequest:
    """A client's intent to invoke ``method`` on ``service`` with ``args``."""

    service: str
    method: str
    args: Tuple[Any, ...] = ()

    def describe(self) -> Dict[str, Any]:
        """Compact dict for tracing."""
        return {"service": self.service, "method": self.method}


class Servant:
    """Base class for server-side application objects.

    Subclasses implement the service logic by defining a method per
    interface operation, or by overriding :meth:`dispatch`.  The *duration*
    of the computation is modeled by the replica's service-time
    distribution (``repro.replica.load``); servants only compute reply
    *values* — the stateless-service assumption of the paper means any
    replica's reply is as good as any other's.
    """

    def __init__(self, interface: ServiceInterface) -> None:
        self.interface = interface

    def dispatch(self, method: str, args: Tuple[Any, ...]) -> Any:
        """Execute ``method`` with ``args`` and return the reply value."""
        if method not in self.interface:
            raise KeyError(
                f"servant for {self.interface.name!r} has no method {method!r}"
            )
        handler: Optional[Callable[..., Any]] = getattr(self, method, None)
        if handler is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not implement {method!r}"
            )
        return handler(*args)


class FunctionServant(Servant):
    """A servant built from plain callables, for tests and examples."""

    def __init__(
        self,
        interface: ServiceInterface,
        handlers: Dict[str, Callable[..., Any]],
    ) -> None:
        super().__init__(interface)
        unknown = set(handlers) - {m.name for m in interface.methods()}
        if unknown:
            raise ValueError(f"handlers for unknown methods: {sorted(unknown)}")
        self._handlers = dict(handlers)

    def dispatch(self, method: str, args: Tuple[Any, ...]) -> Any:
        if method not in self.interface:
            raise KeyError(
                f"interface {self.interface.name!r} has no method {method!r}"
            )
        try:
            handler = self._handlers[method]
        except KeyError:
            raise NotImplementedError(f"no handler bound for {method!r}") from None
        return handler(*args)
