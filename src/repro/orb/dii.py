"""Dynamic invocation (DII analog).

The AQuA server gateway enqueues demarshalled requests into the server
application's request queue "using CORBA's dynamic invocation interface"
(paper §5.1, Stage 3).  :class:`DynamicInvoker` is that thin adapter: it
takes a servant and a :class:`~repro.orb.object.MethodRequest` and performs
the upcall, insulating gateways from servant classes.
"""

from __future__ import annotations

from typing import Any

from .object import MethodRequest, Servant

__all__ = ["DynamicInvoker", "InvocationError"]


class InvocationError(Exception):
    """A dynamic upcall failed (unknown method, servant raised, ...)."""


class DynamicInvoker:
    """Performs dynamic upcalls on a servant."""

    def __init__(self, servant: Servant) -> None:
        self.servant = servant

    def invoke(self, request: MethodRequest) -> Any:
        """Dispatch ``request`` on the servant and return its reply value."""
        if request.service != self.servant.interface.name:
            raise InvocationError(
                f"request for service {request.service!r} reached a servant "
                f"of {self.servant.interface.name!r}"
            )
        try:
            return self.servant.dispatch(request.method, request.args)
        except (KeyError, NotImplementedError) as exc:
            raise InvocationError(str(exc)) from exc

    def __repr__(self) -> str:
        return f"<DynamicInvoker service={self.servant.interface.name!r}>"
