"""Object request broker: interfaces, interceptors and client stubs.

The AQuA gateway "transparently intercepts a local application's CORBA
message and forwards it to the destination replica group" (paper §2).  The
:class:`Orb` realizes the interception point: client code calls
``stub.invoke(...)`` and gets back a simulation event; whichever protocol
handler is registered as the *interceptor* for that service decides how the
request is actually satisfied (timing-fault selection, active replication,
a single server, ...).
"""

from __future__ import annotations

from typing import Any, Dict

from ..sim.events import Event
from .object import MethodRequest, ServiceInterface

__all__ = ["Orb", "Stub", "RequestInterceptor", "OrbError"]


class OrbError(Exception):
    """Raised on broker misconfiguration (unknown service, double bind)."""


class RequestInterceptor:
    """Protocol a gateway handler implements to receive client requests."""

    def submit(self, request: MethodRequest) -> Event:
        """Accept ``request``; the returned event fires with the reply."""
        raise NotImplementedError


class Orb:
    """Registry of service interfaces and per-service interceptors."""

    def __init__(self) -> None:
        self._interfaces: Dict[str, ServiceInterface] = {}
        self._interceptors: Dict[str, RequestInterceptor] = {}

    # -- interfaces --------------------------------------------------------
    def register_interface(self, interface: ServiceInterface) -> None:
        """Publish a service interface under its name."""
        if interface.name in self._interfaces:
            raise OrbError(f"interface {interface.name!r} already registered")
        self._interfaces[interface.name] = interface

    def interface(self, service: str) -> ServiceInterface:
        """Look up a published interface."""
        try:
            return self._interfaces[service]
        except KeyError:
            raise OrbError(f"unknown service {service!r}") from None

    def has_interface(self, service: str) -> bool:
        """Whether ``service`` has a published interface."""
        return service in self._interfaces

    # -- interception --------------------------------------------------------
    def bind_interceptor(
        self, service: str, interceptor: RequestInterceptor
    ) -> None:
        """Attach the handler that will receive requests for ``service``."""
        self.interface(service)  # must exist
        if service in self._interceptors:
            raise OrbError(f"service {service!r} already has an interceptor")
        self._interceptors[service] = interceptor

    def rebind_interceptor(
        self, service: str, interceptor: RequestInterceptor
    ) -> None:
        """Replace the handler for ``service`` (e.g. QoS renegotiation)."""
        self.interface(service)
        self._interceptors[service] = interceptor

    def _intercept(self, request: MethodRequest) -> Event:
        interceptor = self._interceptors.get(request.service)
        if interceptor is None:
            raise OrbError(
                f"no interceptor bound for service {request.service!r}"
            )
        return interceptor.submit(request)

    # -- stubs -------------------------------------------------------------
    def stub(self, service: str) -> "Stub":
        """An object-reference stub for ``service``."""
        return Stub(self, self.interface(service))

    def __repr__(self) -> str:
        return (
            f"<Orb interfaces={sorted(self._interfaces)} "
            f"bound={sorted(self._interceptors)}>"
        )


class Stub:
    """Client-side object reference; invocations return simulation events."""

    def __init__(self, orb: Orb, interface: ServiceInterface) -> None:
        self._orb = orb
        self.interface = interface

    def invoke(self, method: str, *args: Any) -> Event:
        """Invoke ``method(*args)``; the event fires with the reply value.

        Raises :class:`KeyError` immediately for a method not on the
        interface — that is a programming error, not a runtime fault.
        """
        self.interface.method(method)  # validate
        request = MethodRequest(
            service=self.interface.name, method=method, args=tuple(args)
        )
        return self._orb._intercept(request)

    def __repr__(self) -> str:
        return f"<Stub service={self.interface.name!r}>"
