"""Simulated ORB: service interfaces, servants, marshalling and stubs."""

from .dii import DynamicInvoker, InvocationError
from .iiop import MarshalledCall, MarshalledReply, MarshallingModel
from .object import (
    FunctionServant,
    MethodRequest,
    MethodSignature,
    Servant,
    ServiceInterface,
)
from .orb import Orb, OrbError, RequestInterceptor, Stub

__all__ = [
    "Orb",
    "OrbError",
    "Stub",
    "RequestInterceptor",
    "ServiceInterface",
    "MethodSignature",
    "MethodRequest",
    "Servant",
    "FunctionServant",
    "DynamicInvoker",
    "InvocationError",
    "MarshallingModel",
    "MarshalledCall",
    "MarshalledReply",
]
