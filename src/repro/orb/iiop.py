"""Marshalling cost model (IIOP analog).

In AQuA every request crosses two representation boundaries: the gateway
marshals the intercepted CORBA call into a Maestro message, and the server
gateway demarshals it back (paper §5.1, Stage 2/3).  We model this as a CPU
cost charged at the marshalling host, proportional to message size, plus
the resulting wire size.  The numbers are small (sub-millisecond) but they
are what gives the ≈3.5 ms response-time floor reported in §6 together with
the LAN stack cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from .object import MethodRequest, MethodSignature

__all__ = ["MarshallingModel", "MarshalledCall", "MarshalledReply"]


@dataclass(frozen=True)
class MarshalledCall:
    """A method request encoded for the wire."""

    request: MethodRequest
    size_bytes: int


@dataclass(frozen=True)
class MarshalledReply:
    """A method reply encoded for the wire."""

    value: Any
    size_bytes: int


class MarshallingModel:
    """Charges CPU time for marshal/demarshal and computes wire sizes.

    Parameters
    ----------
    base_ms:
        Fixed per-operation cost.
    per_kb_ms:
        Additional cost per kilobyte of encoded data.
    envelope_bytes:
        Header overhead added to every encoded message.
    """

    def __init__(
        self,
        base_ms: float = 0.15,
        per_kb_ms: float = 0.05,
        envelope_bytes: int = 64,
    ) -> None:
        if base_ms < 0 or per_kb_ms < 0 or envelope_bytes < 0:
            raise ValueError("marshalling parameters must be >= 0")
        self.base_ms = float(base_ms)
        self.per_kb_ms = float(per_kb_ms)
        self.envelope_bytes = int(envelope_bytes)

    def _cost(self, size_bytes: int) -> float:
        return self.base_ms + self.per_kb_ms * (size_bytes / 1024.0)

    def marshal_request(
        self, request: MethodRequest, signature: MethodSignature
    ) -> Tuple[MarshalledCall, float]:
        """Encode a request; returns ``(encoded, cpu_cost_ms)``."""
        size = signature.request_bytes + self.envelope_bytes
        return MarshalledCall(request=request, size_bytes=size), self._cost(size)

    def demarshal_request(self, call: MarshalledCall) -> Tuple[MethodRequest, float]:
        """Decode a request; returns ``(request, cpu_cost_ms)``."""
        return call.request, self._cost(call.size_bytes)

    def marshal_reply(
        self, value: Any, signature: MethodSignature
    ) -> Tuple[MarshalledReply, float]:
        """Encode a reply; returns ``(encoded, cpu_cost_ms)``."""
        size = signature.reply_bytes + self.envelope_bytes
        return MarshalledReply(value=value, size_bytes=size), self._cost(size)

    def demarshal_reply(self, reply: MarshalledReply) -> Tuple[Any, float]:
        """Decode a reply; returns ``(value, cpu_cost_ms)``."""
        return reply.value, self._cost(reply.size_bytes)

    def __repr__(self) -> str:
        return (
            f"<MarshallingModel base={self.base_ms}ms "
            f"per_kb={self.per_kb_ms}ms env={self.envelope_bytes}B>"
        )
