"""Workloads: client behaviours and full-system scenario assembly."""

from .client import ClientSummary, ClosedLoopClient, OpenLoopClient
from .scenarios import IntegerServant, Scenario, ScenarioConfig, make_interface

__all__ = [
    "ClientSummary",
    "ClosedLoopClient",
    "OpenLoopClient",
    "Scenario",
    "ScenarioConfig",
    "IntegerServant",
    "make_interface",
]
