"""Scenario builder: assemble the full AQuA stack in a few lines.

A :class:`Scenario` wires kernel, LAN, transport, group communication,
ORB, Proteus manager, replicas and clients together with one shared seed,
so experiments and examples only describe *what* varies.  All randomness
flows through one named-stream :class:`~repro.sim.random.RandomStreams`
manager (the ``repro.rng`` discipline, docs/REPRODUCIBILITY.md), so a
scenario is replayable from ``config.seed`` alone and adding a component
never perturbs the draws of existing ones.  The defaults
reproduce the paper's §6 testbed: seven replicas on distinct hosts, an
integer-returning servant, and service delays drawn from
Normal(100 ms, 50 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.qos import QoSSpec
from ..core.selection import SelectionPolicy
from ..faultinject.auditor import AuditReport, LifecycleAuditor
from ..gateway.handlers.timing_fault import TimingFaultClientHandler
from ..group.ensemble import GroupCommunication
from ..group.failure_detector import FailureDetector
from ..health import HealthConfig
from ..metrics.collector import MetricsCollector
from ..net.lan import LanModel, LinkProfile, bursty_jitter
from ..net.transport import Transport
from ..orb.iiop import MarshallingModel
from ..overload import OverloadConfig
from ..orb.object import MethodSignature, Servant, ServiceInterface
from ..orb.orb import Orb
from ..proteus.manager import DependabilityManager, ServiceSpec
from ..replica.faults import CrashSchedule, FaultInjector
from ..replica.load import ConstantLoad, LoadModel, ServiceProfile
from ..sim.hostclock import ClockRegistry
from ..sim.kernel import Simulator
from ..sim.random import Constant, Distribution, Normal, RandomStreams
from ..sim.trace import NullTracer, Tracer
from .client import ClosedLoopClient, OpenLoopClient

__all__ = ["IntegerServant", "ScenarioConfig", "Scenario", "make_interface"]


def make_interface(
    service: str = "search",
    method: str = "process",
    request_bytes: int = 64,
    reply_bytes: int = 64,
) -> ServiceInterface:
    """A single-method interface, as the paper assumes (§8: one method)."""
    interface = ServiceInterface(service)
    interface.add_method(
        MethodSignature(
            name=method, request_bytes=request_bytes, reply_bytes=reply_bytes
        )
    )
    return interface


class IntegerServant(Servant):
    """Replies with integer data, like the paper's test servers (§6).

    Accepts every method on its interface (the reply value is the echoed
    request index either way); the *duration* differences between methods
    live in the replica's :class:`ServiceProfile`.
    """

    def __init__(self, interface: ServiceInterface, method: str = "process"):
        super().__init__(interface)
        self._method = method

    def dispatch(self, method: str, args) -> int:
        if method not in self.interface:
            raise KeyError(f"unknown method {method!r}")
        index = args[0] if args else 0
        return int(index)


@dataclass
class ScenarioConfig:
    """Knobs of a scenario; defaults mirror the paper's testbed.

    ``service_sigma_ms`` follows the σ=50 ms reading of the paper's
    "variance of 50 milliseconds" (see DESIGN.md); pass
    ``service_sigma_ms=50 ** 0.5`` for the literal-variance reading.
    """

    seed: int = 0
    service: str = "search"
    method: str = "process"
    num_replicas: int = 7
    service_mean_ms: float = 100.0
    service_sigma_ms: float = 50.0
    window_size: int = 5
    bin_width_ms: float = 1.0
    selection_charge_ms: float = 0.3
    request_bytes: int = 64
    reply_bytes: int = 64
    bursty_network: bool = False
    # Omission faults: probability a message is lost on any link.
    loss_probability: float = 0.0
    # Optional LAN-wide correlated congestion (breaks Eq. 1 independence).
    shared_congestion: Optional[Distribution] = None
    notify_delay_ms: float = 1.0
    fd_poll_interval_ms: float = 50.0
    fd_confirm_polls: int = 2
    response_timeout_factor: float = 10.0
    trace: bool = False
    keep_samples: bool = True
    # Optional per-host overrides.
    load_factory: Optional[Callable[[str], LoadModel]] = None
    service_distribution_factory: Optional[Callable[[str], Distribution]] = None
    # Extra methods beyond `method`, with their service-time distributions
    # (enables the paper's §8 multi-interface extension).
    extra_methods: Optional[Dict[str, Distribution]] = None
    # Full per-host service profile override; trumps the factories above.
    profile_factory: Optional[Callable[[str], "ServiceProfile"]] = None
    # When set, every client handler runs the health subsystem
    # (suspicion/quarantine/probation; docs/ARCHITECTURE.md §5) and its
    # transitions are reported to the Proteus manager.
    health_config: Optional[HealthConfig] = None
    # When set, every client handler runs the overload subsystem (load
    # tracker + redundancy governor + admission control;
    # docs/ARCHITECTURE.md §6).
    overload_config: Optional[OverloadConfig] = None

    def replica_hosts(self) -> List[str]:
        """Host names the replicas run on."""
        return [f"replica-{i + 1}" for i in range(self.num_replicas)]


class Scenario:
    """A fully wired simulated AQuA deployment."""

    def __init__(self, config: Optional[ScenarioConfig] = None):
        self.config = config or ScenarioConfig()
        cfg = self.config

        self.sim = Simulator()
        # One virtual clock per host; handlers stamp on their own host's
        # clock so the clock-fault plane can de-synchronize them.
        self.clocks = ClockRegistry(self.sim)
        self.streams = RandomStreams(seed=cfg.seed)
        self.tracer = Tracer() if cfg.trace else NullTracer()
        self.metrics = MetricsCollector(keep_samples=cfg.keep_samples)

        profile = LinkProfile(
            jitter=bursty_jitter() if cfg.bursty_network else Normal(0.3, 0.15),
            loss_probability=cfg.loss_probability,
        )
        self.lan = LanModel(
            self.streams,
            default_profile=profile,
            shared_congestion=cfg.shared_congestion,
        )
        self.transport = Transport(self.sim, self.lan, tracer=self.tracer)
        detector = FailureDetector(
            self.sim,
            self.lan,
            poll_interval_ms=cfg.fd_poll_interval_ms,
            confirm_polls=cfg.fd_confirm_polls,
            tracer=self.tracer,
        )
        self.group_comm = GroupCommunication(
            self.sim,
            self.lan,
            self.transport,
            notify_delay_ms=cfg.notify_delay_ms,
            failure_detector=detector,
            tracer=self.tracer,
        )
        self.marshalling = MarshallingModel()
        self.interface = make_interface(
            cfg.service, cfg.method, cfg.request_bytes, cfg.reply_bytes
        )
        for name in (cfg.extra_methods or {}):
            self.interface.add_method(
                MethodSignature(
                    name=name,
                    request_bytes=cfg.request_bytes,
                    reply_bytes=cfg.reply_bytes,
                )
            )

        self.manager = DependabilityManager(
            self.sim,
            self.lan,
            self.transport,
            self.group_comm,
            self.streams,
            marshalling=self.marshalling,
            tracer=self.tracer,
            metrics=self.metrics,
            clocks=self.clocks,
        )
        self.injector = FaultInjector(self.sim, self.lan, tracer=self.tracer)
        self.manager.attach_injector(self.injector)

        for host in cfg.replica_hosts():
            self.lan.add_host(host)
        spec = ServiceSpec(
            service=cfg.service,
            servant_factory=lambda: IntegerServant(self.interface, cfg.method),
            profile_factory=self._profile_for,
            replication_level=cfg.num_replicas,
        )
        self.replica_hosts = self.manager.deploy(spec, cfg.replica_hosts())
        self.clients: Dict[str, ClosedLoopClient] = {}
        self.open_clients: Dict[str, OpenLoopClient] = {}
        self.handlers: Dict[str, TimingFaultClientHandler] = {}
        # Tracks every client submission so experiments can assert the
        # request-lifecycle invariants after the run (see audit_lifecycle).
        self.auditor = LifecycleAuditor()

    # -- replica profiles ------------------------------------------------------
    def _profile_for(self, host: str) -> ServiceProfile:
        cfg = self.config
        if cfg.profile_factory is not None:
            return cfg.profile_factory(host)
        if cfg.service_distribution_factory is not None:
            distribution = cfg.service_distribution_factory(host)
        else:
            distribution = Normal(cfg.service_mean_ms, cfg.service_sigma_ms)
        load = (
            cfg.load_factory(host) if cfg.load_factory is not None else ConstantLoad()
        )
        return ServiceProfile(
            default=distribution,
            per_method=dict(cfg.extra_methods or {}),
            load=load,
        )

    # -- clients -----------------------------------------------------------
    def add_client(
        self,
        name: str,
        qos: QoSSpec,
        policy: Optional[SelectionPolicy] = None,
        handler_cls=TimingFaultClientHandler,
        num_requests: int = 50,
        think_time: Optional[Distribution] = None,
        window_size: Optional[int] = None,
        violation_callback=None,
        method_chooser=None,
        handler_kwargs: Optional[Dict] = None,
    ) -> ClosedLoopClient:
        """Add a closed-loop client named ``name`` with the given QoS.

        ``handler_kwargs`` forwards extra options to the client handler
        (e.g. ``classifier=``, ``probe_staleness_ms=``,
        ``gateway_window_size=`` for the §8 extensions).
        """
        handler, orb = self._make_handler(
            name, qos, policy, handler_cls, window_size, violation_callback,
            handler_kwargs or {},
        )
        client = ClosedLoopClient(
            sim=self.sim,
            stub=orb.stub(self.config.service),
            host=name,
            streams=self.streams,
            method=self.config.method,
            num_requests=num_requests,
            think_time=think_time or Constant(1000.0),
            method_chooser=method_chooser,
        )
        self.clients[name] = client
        self.handlers[name] = handler
        return client

    def add_open_loop_client(
        self,
        name: str,
        qos: QoSSpec,
        interarrival: Distribution,
        policy: Optional[SelectionPolicy] = None,
        num_requests: int = 100,
        window_size: Optional[int] = None,
    ) -> OpenLoopClient:
        """Add an open-loop client firing on ``interarrival`` gaps."""
        handler, orb = self._make_handler(
            name, qos, policy, TimingFaultClientHandler, window_size, None, {}
        )
        client = OpenLoopClient(
            sim=self.sim,
            stub=orb.stub(self.config.service),
            host=name,
            streams=self.streams,
            interarrival=interarrival,
            method=self.config.method,
            num_requests=num_requests,
        )
        self.open_clients[name] = client
        self.handlers[name] = handler
        return client

    def _make_handler(
        self, name, qos, policy, handler_cls, window_size, violation_callback,
        handler_kwargs,
    ):
        cfg = self.config
        if qos.service != cfg.service:
            raise ValueError(
                f"QoS is for service {qos.service!r}, scenario runs {cfg.service!r}"
            )
        self.lan.add_host(name)
        gateway = self.manager.gateway_for(name)
        handler_kwargs = dict(handler_kwargs)
        if cfg.health_config is not None:
            handler_kwargs.setdefault("health_config", cfg.health_config)
            handler_kwargs.setdefault(
                "health_listener", self.manager.health_listener(cfg.service)
            )
        if cfg.overload_config is not None:
            handler_kwargs.setdefault("overload_config", cfg.overload_config)
        handler_kwargs.setdefault("clock", self.clocks.clock(name))
        handler = handler_cls(
            sim=self.sim,
            host=name,
            transport=self.transport,
            group_comm=self.group_comm,
            interface=self.interface,
            qos=qos,
            policy=policy,
            window_size=window_size if window_size is not None else cfg.window_size,
            bin_width_ms=cfg.bin_width_ms,
            marshalling=self.marshalling,
            selection_charge_ms=cfg.selection_charge_ms,
            response_timeout_factor=cfg.response_timeout_factor,
            violation_callback=violation_callback,
            rng=self.streams.stream(f"client.{name}.policy"),
            distance=lambda replica: self.lan.zone_distance(name, replica),
            tracer=self.tracer,
            metrics=self.metrics,
            **handler_kwargs,
        )
        gateway.load_handler(handler)
        self.auditor.watch_client(handler)
        # Each client process gets its own ORB, like separate CORBA
        # applications on separate hosts.
        orb = Orb()
        orb.register_interface(self.interface)
        orb.bind_interceptor(cfg.service, handler)
        return handler, orb

    # -- faults -----------------------------------------------------------
    def schedule_crash(
        self, host: str, at_ms: float, recover_at_ms: Optional[float] = None
    ) -> None:
        """Crash ``host`` at ``at_ms`` (optionally recovering later)."""
        self.injector.schedule(CrashSchedule(host, at_ms, recover_at_ms))

    # -- running ------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (see :meth:`Simulator.run`)."""
        self.sim.run(until=until)

    def run_to_completion(self, limit_ms: float = 10_000_000.0) -> None:
        """Run until every client finished (bounded by ``limit_ms``)."""
        self.sim.run()
        unfinished = [
            c.host
            for c in list(self.clients.values()) + list(self.open_clients.values())
            if not c.done
        ]
        if unfinished and self.sim.now < limit_ms:
            # Live events drained while clients still wait (e.g. replies
            # lost to a crash): let daemon activity (failure detection)
            # unblock them, then continue.
            while unfinished and self.sim.now < limit_ms:
                self.sim.run(until=min(limit_ms, self.sim.now + 1000.0))
                self.sim.run()
                unfinished = [
                    c.host
                    for c in list(self.clients.values())
                    + list(self.open_clients.values())
                    if not c.done
                ]
        if unfinished:
            raise RuntimeError(
                f"clients {unfinished} did not finish before {limit_ms} ms"
            )

    # -- lifecycle auditing ------------------------------------------------
    def audit_lifecycle(self) -> AuditReport:
        """Assert the request-lifecycle invariants after a drained run.

        Registers every replica ever started (crashed ones included) and
        raises :class:`~repro.faultinject.auditor.LifecycleViolation` on
        leaked pending/alias/probe state, resurrection, or a request that
        did not complete exactly once.
        """
        for handler in self.manager.all_handlers():
            self.auditor.watch_server(handler)
        return self.auditor.assert_clean()

    def __repr__(self) -> str:
        return (
            f"<Scenario service={self.config.service!r} "
            f"replicas={self.config.num_replicas} clients={len(self.clients)}>"
        )
