"""Client behaviours: closed-loop and open-loop request issuers.

The paper's §6 experiments use closed-loop clients: each "independently
issued requests to the same service with a one second delay between
receiving a response and issuing the next request", fifty requests per
run.  :class:`ClosedLoopClient` reproduces that; :class:`OpenLoopClient`
adds rate-driven arrivals for the scalability ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..gateway.handlers.timing_fault import OutcomeKind, ReplyOutcome
from ..orb.orb import Stub
from ..rng import RNGManager
from ..sim.kernel import Simulator
from ..sim.random import Constant, Distribution

__all__ = ["ClientSummary", "ClosedLoopClient", "OpenLoopClient"]


@dataclass(frozen=True)
class ClientSummary:
    """Aggregate view of one client's run.

    ``timing_failures`` and the two means describe *admitted* requests
    only; sheds (fail-fast admission rejections) are load control, not
    timing faults, and are accounted separately so a shedding policy
    cannot dress drops up as timeliness.
    """

    requests: int
    timing_failures: int
    timeouts: int
    mean_response_ms: float
    mean_redundancy: float
    sheds: int = 0

    @property
    def failure_probability(self) -> float:
        """Observed probability of timing failures."""
        if self.requests == 0:
            return 0.0
        return self.timing_failures / self.requests

    @property
    def admitted(self) -> int:
        """Requests that were actually dispatched (issued minus shed)."""
        return self.requests - self.sheds

    @property
    def shed_fraction(self) -> float:
        """Fraction of issued requests the admission controller rejected."""
        if self.requests == 0:
            return 0.0
        return self.sheds / self.requests

    @property
    def admitted_timely_fraction(self) -> float:
        """In-deadline fraction among admitted requests (A16's headline)."""
        if self.admitted == 0:
            return 0.0
        return (self.admitted - self.timing_failures) / self.admitted


def _summarize(outcomes: List[ReplyOutcome]) -> ClientSummary:
    if not outcomes:
        return ClientSummary(0, 0, 0, 0.0, 0.0)
    sheds = sum(1 for o in outcomes if o.kind is OutcomeKind.SHED)
    served = [o for o in outcomes if o.kind is not OutcomeKind.SHED]
    failures = sum(1 for o in served if not o.timely)
    timeouts = sum(1 for o in served if o.timed_out)
    mean_response = (
        sum(o.response_time_ms for o in served) / len(served) if served else 0.0
    )
    mean_redundancy = (
        sum(o.redundancy for o in served) / len(served) if served else 0.0
    )
    return ClientSummary(
        requests=len(outcomes),
        timing_failures=failures,
        timeouts=timeouts,
        mean_response_ms=mean_response,
        mean_redundancy=mean_redundancy,
        sheds=sheds,
    )


class ClosedLoopClient:
    """Issues ``num_requests`` requests, one at a time, with think time.

    Parameters
    ----------
    sim, stub:
        Kernel and the service stub to invoke through.
    host:
        Client host name (names the random substream).
    method:
        Method invoked on every request.
    num_requests:
        Requests per run (paper: 50).
    think_time:
        Delay between receiving a response and the next request
        (paper: a constant 1 s = 1000 ms).
    """

    def __init__(
        self,
        sim: Simulator,
        stub: Stub,
        host: str,
        streams: RNGManager,
        method: str = "process",
        num_requests: int = 50,
        think_time: Optional[Distribution] = None,
        method_chooser=None,
    ):
        if num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {num_requests}")
        self.sim = sim
        self.stub = stub
        self.host = host
        self.method = method
        self.num_requests = int(num_requests)
        self.think_time = think_time or Constant(1000.0)
        # Optional per-request method selection (index -> method name),
        # for multi-method services.
        self.method_chooser = method_chooser
        self._rng = streams.stream(f"client.{host}.think")
        self.outcomes: List[ReplyOutcome] = []
        #: Simulated time at which the run finished (None while running).
        self.completed_at_ms: Optional[float] = None
        self.process = sim.spawn(self._run(), name=f"client.{host}")

    def _method_for(self, index: int) -> str:
        if self.method_chooser is None:
            return self.method
        return self.method_chooser(index)

    def _run(self):
        for index in range(self.num_requests):
            outcome = yield self.stub.invoke(self._method_for(index), index)
            self.outcomes.append(outcome)
            if index + 1 < self.num_requests:
                yield self.sim.timeout(self.think_time.sample(self._rng))
        self.completed_at_ms = self.sim.now
        return self.summary()

    @property
    def done(self) -> bool:
        """Whether the client has finished its run."""
        return not self.process.alive

    def summary(self) -> ClientSummary:
        """Aggregate statistics of the outcomes so far."""
        return _summarize(self.outcomes)

    def __repr__(self) -> str:
        return (
            f"<ClosedLoopClient {self.host!r} "
            f"{len(self.outcomes)}/{self.num_requests}>"
        )


class OpenLoopClient:
    """Fires requests on an arrival process, not waiting for replies.

    Used by the scalability experiments, where the offered load must not
    shrink when the service slows down (the defining property of open-loop
    workloads).
    """

    def __init__(
        self,
        sim: Simulator,
        stub: Stub,
        host: str,
        streams: RNGManager,
        interarrival: Distribution,
        method: str = "process",
        num_requests: int = 100,
    ):
        if num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {num_requests}")
        self.sim = sim
        self.stub = stub
        self.host = host
        self.method = method
        self.num_requests = int(num_requests)
        self.interarrival = interarrival
        self._rng = streams.stream(f"client.{host}.arrivals")
        self.outcomes: List[ReplyOutcome] = []
        self.issued = 0
        #: Simulated time at which the run finished (None while running).
        self.completed_at_ms: Optional[float] = None
        self.process = sim.spawn(self._run(), name=f"client.{host}")

    def _run(self):
        pending = []
        for index in range(self.num_requests):
            event = self.stub.invoke(self.method, index)
            event.add_callback(self._collect)
            pending.append(event)
            self.issued += 1
            if index + 1 < self.num_requests:
                yield self.sim.timeout(self.interarrival.sample(self._rng))
        # Wait for the stragglers so the run has a well-defined end.
        for event in pending:
            if not event.processed:
                yield event
        self.completed_at_ms = self.sim.now
        return self.summary()

    def _collect(self, event) -> None:
        if event.ok:
            self.outcomes.append(event.value)

    @property
    def done(self) -> bool:
        """Whether all requests have been issued and completed."""
        return not self.process.alive

    def summary(self) -> ClientSummary:
        """Aggregate statistics of the outcomes so far."""
        return _summarize(self.outcomes)

    def __repr__(self) -> str:
        return (
            f"<OpenLoopClient {self.host!r} issued={self.issued} "
            f"completed={len(self.outcomes)}>"
        )
