"""Calibration analysis of the Equation 1 model.

For every non-bootstrap request the dynamic policy records the predicted
probability ``P_K(t)`` of a timely response in the decision metadata.
Comparing these predictions against the observed outcome — bucketed by
predicted probability — measures how well the paper's online model is
calibrated, and where its independence assumption (response times of
different replicas are independent) breaks down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..gateway.handlers.timing_fault import ReplyOutcome

__all__ = ["CalibrationBucket", "calibration_table", "brier_score"]


@dataclass(frozen=True)
class CalibrationBucket:
    """Requests whose predicted probability fell in one interval."""

    low: float
    high: float
    count: int
    mean_predicted: float
    observed_timely: float

    @property
    def overconfidence(self) -> float:
        """Predicted minus observed: positive = the model promised more."""
        return self.mean_predicted - self.observed_timely


def _prediction(outcome: ReplyOutcome) -> Optional[float]:
    meta = outcome.decision_meta
    if meta.get("bootstrap", False):
        return None  # no model behind bootstrap selections
    prediction = meta.get("full_probability")
    if prediction is None:
        return None
    return float(prediction)


def calibration_table(
    outcomes: Iterable[ReplyOutcome], num_buckets: int = 10
) -> List[CalibrationBucket]:
    """Bucket predictions and compare with observed timely frequencies.

    Empty buckets are omitted.  Requests without a model prediction
    (bootstrap selections, baseline policies) are skipped.
    """
    if num_buckets < 1:
        raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
    pairs: List[Tuple[float, bool]] = []
    for outcome in outcomes:
        prediction = _prediction(outcome)
        if prediction is not None:
            pairs.append((prediction, outcome.timely))
    buckets = []
    width = 1.0 / num_buckets
    for index in range(num_buckets):
        low = index * width
        high = low + width
        members = [
            (p, timely)
            for p, timely in pairs
            # The top bucket includes exactly-1.0 predictions (half-open
            # bucketing would drop them); an exact sentinel, not a grid
            # comparison.
            if low <= p < high
            or (index == num_buckets - 1 and p == 1.0)  # repro-lint: disable=RL003 (exact boundary sentinel)
        ]
        if not members:
            continue
        buckets.append(
            CalibrationBucket(
                low=low,
                high=high,
                count=len(members),
                mean_predicted=sum(p for p, _t in members) / len(members),
                observed_timely=(
                    sum(1 for _p, timely in members if timely) / len(members)
                ),
            )
        )
    return buckets


def brier_score(outcomes: Iterable[ReplyOutcome]) -> float:
    """Mean squared error of the model's timeliness predictions.

    0 is perfect; 0.25 is the score of always predicting 0.5.
    """
    errors = []
    for outcome in outcomes:
        prediction = _prediction(outcome)
        if prediction is None:
            continue
        errors.append((prediction - (1.0 if outcome.timely else 0.0)) ** 2)
    if not errors:
        raise ValueError("no model-backed outcomes to score")
    return sum(errors) / len(errors)
