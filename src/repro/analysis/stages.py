"""Per-stage latency decomposition from traces (paper §5.1).

The paper's authors "conducted experiments to determine the factors that
have a significant impact on a replica's response time" and concluded the
gateway-to-gateway delay, queuing delay and service time dominate — the
decomposition that becomes Equation 2.  This module reproduces that
off-line analysis: it correlates trace records into per-request stage
durations along the winning reply's path.

Stages (Fig. 2 of the paper):

* ``client_ms``   — interception → transmission (marshal + selection, t0→t1)
* ``request_ms``  — client gateway → server gateway (t1→t2)
* ``queue_ms``    — FIFO wait at the replica (tq = t3 − t2)
* ``service_ms``  — servant execution (ts)
* ``reply_ms``    — reply leaving the server gateway → arrival (…→t4)

Requires a scenario built with ``trace=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..metrics.stats import Summary, summarize
from ..sim.trace import Tracer

__all__ = ["RequestStages", "extract_stages", "stage_summaries"]


@dataclass(frozen=True)
class RequestStages:
    """Stage durations for one completed request (winning replica path)."""

    msg_id: int
    client: str
    replica: str
    client_ms: float
    request_ms: float
    queue_ms: float
    service_ms: float
    reply_ms: float
    total_ms: float

    def network_share(self) -> float:
        """Fraction of the response time spent on gateway-to-gateway paths.

        The paper justifies Equation 1's independence assumption with
        "the network delay is usually a small fraction of the replica's
        response time in a LAN environment" — this is that fraction.
        """
        if self.total_ms <= 0:
            return 0.0
        return (self.request_ms + self.reply_ms) / self.total_ms


def extract_stages(tracer: Tracer) -> List[RequestStages]:
    """Correlate trace records into per-request stage decompositions.

    Only requests with a delivered (non-timed-out) first reply appear;
    the decomposition follows the replica that won the race.
    """
    sent: Dict[int, Tuple[float, float, str]] = {}  # msg_id -> (t0, t1, client)
    enqueued: Dict[Tuple[int, str], float] = {}  # (msg_id, replica) -> t2
    serviced: Dict[Tuple[int, str], Tuple[float, float, float]] = {}
    replies: Dict[int, Tuple[float, str]] = {}  # first reply: t4, replica

    for record in tracer.records:
        if record.kind == "client.sent":
            client = record.source.split(".", 1)[1]
            sent[record.data["msg_id"]] = (
                record.data["t0"], record.time, client
            )
        elif record.kind == "server.enqueued":
            replica = record.source.split(".", 1)[1]
            enqueued[(record.data["msg_id"], replica)] = record.time
        elif record.kind == "server.serviced":
            replica = record.source.split(".", 1)[1]
            serviced[(record.data["msg_id"], replica)] = (
                record.time, record.data["tq"], record.data["ts"]
            )
        elif record.kind == "client.reply":
            msg_id = record.data["msg_id"]
            if msg_id not in replies:  # first reply wins
                replies[msg_id] = (record.time, record.data["replica"])

    stages = []
    for msg_id, (t4, replica) in replies.items():
        if msg_id not in sent or (msg_id, replica) not in serviced:
            continue
        t0, t1, client = sent[msg_id]
        t2 = enqueued.get((msg_id, replica))
        if t2 is None:
            continue
        reply_sent_at, tq, ts = serviced[(msg_id, replica)]
        stages.append(
            RequestStages(
                msg_id=msg_id,
                client=client,
                replica=replica,
                client_ms=t1 - t0,
                request_ms=t2 - t1,
                queue_ms=tq,
                service_ms=ts,
                reply_ms=t4 - reply_sent_at,
                total_ms=t4 - t0,
            )
        )
    stages.sort(key=lambda s: s.msg_id)
    return stages


def stage_summaries(stages: List[RequestStages]) -> Dict[str, Summary]:
    """Summaries per stage name, plus ``total``."""
    if not stages:
        raise ValueError("no completed requests in the trace")
    return {
        "client": summarize([s.client_ms for s in stages]),
        "request-net": summarize([s.request_ms for s in stages]),
        "queueing": summarize([s.queue_ms for s in stages]),
        "service": summarize([s.service_ms for s in stages]),
        "reply-net": summarize([s.reply_ms for s in stages]),
        "total": summarize([s.total_ms for s in stages]),
    }
