"""Post-run analyses: stage decomposition and model calibration."""

from .calibration import CalibrationBucket, brier_score, calibration_table
from .stages import RequestStages, extract_stages, stage_summaries

__all__ = [
    "RequestStages",
    "extract_stages",
    "stage_summaries",
    "CalibrationBucket",
    "calibration_table",
    "brier_score",
]
