"""Health states, configuration, and events for the replica health subsystem.

The paper's timing fault handler *measures* deadline misses and reports
them to the dependability manager (§5.4), but nothing in the base design
changes behavior when a replica goes persistently bad: a replica that
stops replying also stops producing performance updates, so its sliding
windows freeze at their last (possibly excellent) values and the model
keeps trusting a dead replica — *model starvation*.  The health subsystem
closes that loop with a small per-replica state machine:

::

            consecutive faults            further faults
    HEALTHY ────────────────► SUSPECTED ────────────────► QUARANTINED
       ▲                          │                            │
       │  consecutive successes   │                            │ probe
       ◄──────────────────────────┘                            │ success
       │                                                       ▼
       └───────────────────◄──── PROBATION ◄───────────────────┘
           probe / reply                │ any fault
           successes                    └────────► QUARANTINED (backoff ×2)

* **HEALTHY** — full trust; ``F_{R_i}(t)`` used as-is.
* **SUSPECTED** — a streak of timing/omission faults; the replica keeps
  receiving (discounted) traffic and is actively probed so the streak can
  resolve either way even if selection stops routing to it.
* **QUARANTINED** — no client traffic at all (auditor-enforced); probed
  on an exponential backoff until a probe gets through.
* **PROBATION** — probes go through again; a few consecutive successes
  re-admit the replica, any fault re-quarantines it with a doubled
  backoff.

A crash declaration from the failure detector quarantines immediately —
the group layer will usually evict the member too, but the detector's
confirmation latency means the health view can act first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Literal, Optional

__all__ = ["FaultKind", "HealthState", "HealthConfig", "HealthEvent"]


#: The closed set of fault evidence kinds the monitor accepts.  A
#: ``Literal`` rather than an enum so call sites keep passing the plain
#: strings they always did (``record_fault(name, now, kind="omission")``)
#: while mypy rejects any kind outside the set.
FaultKind = Literal["timing", "omission", "crash", "probe-failure", "clock"]


class HealthState(enum.Enum):
    """The four trust levels of the per-replica state machine."""

    HEALTHY = "healthy"
    SUSPECTED = "suspected"
    QUARANTINED = "quarantined"
    PROBATION = "probation"


@dataclass(frozen=True)
class HealthEvent:
    """One state transition, as reported to listeners (e.g. Proteus)."""

    replica: str
    old_state: HealthState
    new_state: HealthState
    at_ms: float
    #: What triggered the transition ("timing", "omission", "crash",
    #: "probe-failure", "probe-success", "success", ...).
    reason: str


@dataclass(frozen=True)
class HealthConfig:
    """Tuning knobs of the health state machine.

    Parameters
    ----------
    suspect_after:
        Consecutive faults that demote HEALTHY → SUSPECTED.
    quarantine_after:
        *Further* consecutive faults (beyond ``suspect_after``) that
        demote SUSPECTED → QUARANTINED.
    recover_after:
        Consecutive request successes that promote SUSPECTED → HEALTHY.
    probation_after:
        Consecutive successes (probe or request) that promote
        PROBATION → HEALTHY.
    suspected_discount / probation_discount:
        Multipliers applied to ``F_{R_i}(t)`` while in the respective
        state (quarantined replicas are excluded outright).
    backoff_initial_ms / backoff_factor / backoff_max_ms:
        Re-admission probe backoff: the first probe goes out
        ``backoff_initial_ms`` after quarantine entry; every failed probe
        multiplies the gap by ``backoff_factor``, capped at
        ``backoff_max_ms``.  A PROBATION → QUARANTINED bounce keeps (and
        escalates) the previous backoff instead of resetting it.
    adaptive_timeout_quantile:
        Default quantile of the predicted ``R_i`` pmf used for the
        adaptive response timeout when the handler does not set its own
        (``None`` disables the adaptive timeout even with health on).
    unreachable_after:
        Consecutive *reply-loss* faults (omissions and probe failures —
        never timing faults, a late reply is still contact) that
        quarantine a replica directly with reason ``"unreachable"``,
        skipping SUSPECTED.  Distinguishes a partitioned replica from a
        merely slow one: grey failures keep answering probes, which
        resets the streak, so only true silence takes the fast path.
        ``None`` (the default) disables the shortcut.
    clock_anomaly_after:
        Consecutive incoherent performance reports (timestamps that are
        physically impossible against the gateway's own round-trip
        measurements) that quarantine a replica directly with reason
        ``"clock_fault"``.  A coherent report resets the streak, so an
        isolated straggler sample never quarantines.  ``None`` (the
        default) disables clock-sanity quarantine; the handler's
        inflation rejection (reported intervals exceeding the whole
        round trip) stays on regardless.
    clock_deflation_factor / clock_slack_ms:
        The deflation test the handler runs when clock sanity is on: a
        report claiming near-zero server time while the implied
        gateway-side delay exceeds ``clock_deflation_factor`` × the
        probed round trip (plus ``clock_slack_ms`` absolute slack) is
        incoherent.  The slack also pads the inflation test against
        float residue.
    """

    suspect_after: int = 2
    quarantine_after: int = 1
    recover_after: int = 2
    probation_after: int = 3
    suspected_discount: float = 0.5
    probation_discount: float = 0.7
    backoff_initial_ms: float = 1000.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 30_000.0
    adaptive_timeout_quantile: Optional[float] = 0.99
    unreachable_after: Optional[int] = None
    clock_anomaly_after: Optional[int] = None
    clock_deflation_factor: float = 6.0
    clock_slack_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.suspect_after < 1:
            raise ValueError(
                f"suspect_after must be >= 1, got {self.suspect_after}"
            )
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        if self.recover_after < 1:
            raise ValueError(
                f"recover_after must be >= 1, got {self.recover_after}"
            )
        if self.probation_after < 1:
            raise ValueError(
                f"probation_after must be >= 1, got {self.probation_after}"
            )
        for label, discount in (
            ("suspected_discount", self.suspected_discount),
            ("probation_discount", self.probation_discount),
        ):
            if not 0.0 <= discount <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {discount}")
        if self.backoff_initial_ms <= 0:
            raise ValueError(
                f"backoff_initial_ms must be > 0, got {self.backoff_initial_ms}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_ms < self.backoff_initial_ms:
            raise ValueError(
                "backoff_max_ms must be >= backoff_initial_ms, got "
                f"{self.backoff_max_ms} < {self.backoff_initial_ms}"
            )
        if self.adaptive_timeout_quantile is not None and not (
            0.0 < self.adaptive_timeout_quantile <= 1.0
        ):
            raise ValueError(
                "adaptive_timeout_quantile must be in (0, 1], got "
                f"{self.adaptive_timeout_quantile}"
            )
        if self.unreachable_after is not None and self.unreachable_after < 1:
            raise ValueError(
                f"unreachable_after must be >= 1, got {self.unreachable_after}"
            )
        if self.clock_anomaly_after is not None and self.clock_anomaly_after < 1:
            raise ValueError(
                f"clock_anomaly_after must be >= 1, got {self.clock_anomaly_after}"
            )
        if self.clock_deflation_factor < 1.0:
            raise ValueError(
                "clock_deflation_factor must be >= 1, got "
                f"{self.clock_deflation_factor}"
            )
        if self.clock_slack_ms < 0.0:
            raise ValueError(
                f"clock_slack_ms must be >= 0, got {self.clock_slack_ms}"
            )
