"""The per-replica health monitor driving the state machine of state.py.

One :class:`HealthMonitor` lives inside each client handler that enables
health tracking.  It is deliberately *passive* with respect to time and
transport: every method takes ``now_ms`` explicitly and the monitor never
schedules events or sends messages itself.  The handler feeds it evidence
(reply outcomes, omission timeouts, crash declarations, probe outcomes)
and asks it which replicas are due for a probe; the selection policy asks
it for quarantine membership and trust discounts.  That keeps the state
machine a pure, unit-testable object.

Evidence semantics, chosen to survive the FIFO-queue asymmetry:

* Request successes/faults always count.  A reply that arrives within
  the deadline is a success; a late reply is a "timing" fault; a replica
  that was addressed but never replied before the response timeout is an
  "omission" fault.
* Probe outcomes count only in the states that explicitly seek liveness
  evidence (SUSPECTED, QUARANTINED, PROBATION).  Probes bypass the
  replica's FIFO queue (§8), so a probe success says "alive", not
  "timely" — letting it reset a HEALTHY replica's fault streak would mask
  an overloaded replica behind its own fast probe path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from .state import FaultKind, HealthConfig, HealthEvent, HealthState

__all__ = ["ReplicaHealth", "HealthMonitor"]

HealthListener = Callable[[HealthEvent], None]


@dataclass
class ReplicaHealth:
    """Mutable health bookkeeping for one replica."""

    name: str
    state: HealthState = HealthState.HEALTHY
    consecutive_faults: int = 0
    consecutive_successes: int = 0
    #: Consecutive reply-loss faults (omission / probe-failure) with no
    #: intervening contact of any kind — the unreachability evidence.
    consecutive_omissions: int = 0
    #: Consecutive incoherent performance reports (clock-sanity evidence;
    #: a coherent report resets the streak).
    consecutive_clock_anomalies: int = 0
    clock_anomalies: int = 0
    faults_total: int = 0
    successes_total: int = 0
    quarantine_count: int = 0
    #: Current re-admission backoff (meaningful while QUARANTINED).
    backoff_ms: float = 0.0
    #: Absolute time the next re-admission probe is due (QUARANTINED).
    next_probe_at_ms: float = 0.0
    entered_state_at_ms: float = 0.0
    last_fault_kind: Optional[FaultKind] = None


class HealthMonitor:
    """Tracks every replica's health state and probe schedule.

    Parameters
    ----------
    config:
        State-machine thresholds and backoff parameters.
    listener:
        Optional initial transition listener (more via
        :meth:`add_listener`); the handler wires this to the Proteus
        manager's ``report_health_event`` — the paper's fault-notification
        path to the dependability manager.
    """

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        listener: Optional[HealthListener] = None,
    ) -> None:
        self.config = config or HealthConfig()
        self._replicas: Dict[str, ReplicaHealth] = {}
        self._listeners: List[HealthListener] = []
        #: Every transition ever emitted, in order (diagnostics/tests).
        self.events: List[HealthEvent] = []
        if listener is not None:
            self.add_listener(listener)

    # -- wiring --------------------------------------------------------------
    def add_listener(self, listener: HealthListener) -> Callable[[], None]:
        """Subscribe to transitions; returns an unsubscribe callable."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def sync_members(self, members: Iterable[str], now_ms: float) -> None:
        """Reconcile tracked replicas with a new group view.

        Departed replicas are dropped outright: a member that later
        rejoins is a fresh incarnation and starts HEALTHY with no fault
        history — mirroring how the repository restarts its windows.
        """
        members = set(members)
        for name in list(self._replicas):
            if name not in members:
                del self._replicas[name]
        for name in members:
            self._track(name, now_ms)

    def _track(self, name: str, now_ms: float) -> ReplicaHealth:
        record = self._replicas.get(name)
        if record is None:
            record = ReplicaHealth(name=name, entered_state_at_ms=now_ms)
            self._replicas[name] = record
        return record

    # -- inspection ----------------------------------------------------------
    def state(self, name: str) -> Optional[HealthState]:
        """The replica's state, or ``None`` if untracked."""
        record = self._replicas.get(name)
        return record.state if record is not None else None

    def states(self) -> Dict[str, HealthState]:
        """Snapshot of every tracked replica's state."""
        return {name: r.state for name, r in self._replicas.items()}

    def record_for(self, name: str) -> ReplicaHealth:
        """The full bookkeeping record (KeyError if untracked)."""
        return self._replicas[name]

    def is_quarantined(self, name: str) -> bool:
        """Whether ``name`` must receive no client traffic right now."""
        record = self._replicas.get(name)
        return record is not None and record.state is HealthState.QUARANTINED

    def quarantined(self) -> List[str]:
        """All currently quarantined replicas (sorted)."""
        return sorted(
            name for name, r in self._replicas.items()
            if r.state is HealthState.QUARANTINED
        )

    def discount(self, name: str) -> float:
        """Trust multiplier applied to the replica's ``F_{R_i}(t)``.

        Untracked replicas get full trust — the health view must never
        veto a replica it has no evidence about.
        """
        record = self._replicas.get(name)
        if record is None:
            return 1.0
        if record.state is HealthState.SUSPECTED:
            return self.config.suspected_discount
        if record.state is HealthState.PROBATION:
            return self.config.probation_discount
        if record.state is HealthState.QUARANTINED:
            return 0.0
        return 1.0

    # -- evidence: client requests ------------------------------------------
    def record_success(self, name: str, now_ms: float) -> None:
        """A timely reply from ``name`` (first or redundant)."""
        record = self._replicas.get(name)
        if record is None:
            return
        record.successes_total += 1
        record.consecutive_faults = 0
        record.consecutive_omissions = 0
        record.consecutive_successes += 1
        if (
            record.state is HealthState.SUSPECTED
            and record.consecutive_successes >= self.config.recover_after
        ):
            self._transition(record, HealthState.HEALTHY, now_ms, "success")
        elif (
            record.state is HealthState.PROBATION
            and record.consecutive_successes >= self.config.probation_after
        ):
            self._transition(record, HealthState.HEALTHY, now_ms, "success")
        elif record.state is HealthState.QUARANTINED:
            # A straggler reply from before quarantine proves liveness —
            # the same evidence a re-admission probe would bring.
            self._enter_probation(record, now_ms, "reply-while-quarantined")

    def record_fault(
        self, name: str, now_ms: float, kind: FaultKind = "timing"
    ) -> None:
        """A timing fault (late reply) or omission (no reply) from ``name``."""
        record = self._replicas.get(name)
        if record is None:
            return
        record.faults_total += 1
        record.consecutive_successes = 0
        record.consecutive_faults += 1
        record.last_fault_kind = kind
        if kind in ("omission", "probe-failure"):
            record.consecutive_omissions += 1
        else:
            # A late reply (or a crash declaration's synthetic fault) is
            # still *contact* — the replica is slow, not unreachable.
            record.consecutive_omissions = 0
        if (
            self.config.unreachable_after is not None
            and record.consecutive_omissions >= self.config.unreachable_after
            and record.state is not HealthState.QUARANTINED
        ):
            # Total silence: quarantine on reply-loss evidence alone,
            # without waiting out the SUSPECTED demotion ladder.
            self._quarantine(record, now_ms, "unreachable")
            return
        if (
            record.state is HealthState.HEALTHY
            and record.consecutive_faults >= self.config.suspect_after
        ):
            self._transition(record, HealthState.SUSPECTED, now_ms, kind)
        elif (
            record.state is HealthState.SUSPECTED
            and record.consecutive_faults
            >= self.config.suspect_after + self.config.quarantine_after
        ):
            self._quarantine(record, now_ms, kind)
        elif record.state is HealthState.PROBATION:
            self._quarantine(record, now_ms, kind)

    def record_clock_anomaly(self, name: str, now_ms: float) -> None:
        """An incoherent performance report from ``name``.

        The handler rejected a report whose timestamps are physically
        impossible against its own round-trip measurements (see
        ``HealthConfig.clock_anomaly_after``).  The report itself never
        enters the repository; this method only accumulates the evidence
        and quarantines the replica — reason ``"clock_fault"`` — once the
        streak crosses the threshold.  Re-admission rides the normal
        backoff-probe → PROBATION path: after the fault window resyncs,
        the replica's reports turn coherent again and it earns its way
        back in.
        """
        record = self._replicas.get(name)
        if record is None:
            return
        record.clock_anomalies += 1
        record.consecutive_clock_anomalies += 1
        record.faults_total += 1
        record.consecutive_successes = 0
        record.last_fault_kind = "clock"
        if (
            self.config.clock_anomaly_after is not None
            and record.consecutive_clock_anomalies
            >= self.config.clock_anomaly_after
            and record.state is not HealthState.QUARANTINED
        ):
            self._quarantine(record, now_ms, "clock_fault")

    def record_coherent_sample(self, name: str) -> None:
        """A performance report from ``name`` passed the coherence checks."""
        record = self._replicas.get(name)
        if record is not None:
            record.consecutive_clock_anomalies = 0

    def record_crash(self, name: str, now_ms: float) -> None:
        """The failure detector declared ``name`` crashed."""
        record = self._replicas.get(name)
        if record is None or record.state is HealthState.QUARANTINED:
            return
        record.faults_total += 1
        record.consecutive_successes = 0
        record.last_fault_kind = "crash"
        self._quarantine(record, now_ms, "crash")

    # -- evidence: probes ----------------------------------------------------
    def record_probe_success(self, name: str, now_ms: float) -> None:
        """A probe to ``name`` was answered (liveness, not timeliness)."""
        record = self._replicas.get(name)
        if record is None:
            return
        # Liveness contact in any state: a replica that answers probes is
        # grey (slow), not unreachable — the streak must not accumulate.
        record.consecutive_omissions = 0
        if record.state is HealthState.QUARANTINED:
            self._enter_probation(record, now_ms, "probe-success")
        elif record.state is HealthState.PROBATION:
            record.consecutive_successes += 1
            if record.consecutive_successes >= self.config.probation_after:
                self._transition(
                    record, HealthState.HEALTHY, now_ms, "probe-success"
                )
        # HEALTHY / SUSPECTED: a queue-bypassing probe success is no
        # evidence of timeliness; ignore it (see module docstring).

    def record_probe_failure(self, name: str, now_ms: float) -> None:
        """A probe to ``name`` expired unanswered."""
        record = self._replicas.get(name)
        if record is None:
            return
        if record.state is HealthState.QUARANTINED:
            record.backoff_ms = min(
                record.backoff_ms * self.config.backoff_factor,
                self.config.backoff_max_ms,
            )
            record.next_probe_at_ms = now_ms + record.backoff_ms
        elif record.state is HealthState.SUSPECTED:
            # The verification probe a suspicion triggers: its failure is
            # the omission evidence that escalates to quarantine even
            # after selection stopped routing requests to the replica.
            self.record_fault(name, now_ms, kind="probe-failure")
        elif record.state is HealthState.PROBATION:
            self._quarantine(record, now_ms, "probe-failure")
        # HEALTHY: a lost staleness-probe on a lossy wire is not a fault.

    # -- probe scheduling ----------------------------------------------------
    def due_probes(self, now_ms: float) -> List[str]:
        """Replicas a health probe should be sent to right now (sorted).

        SUSPECTED and PROBATION replicas are probed every tick (cheap,
        out-of-band evidence so their streaks can resolve without client
        traffic); QUARANTINED replicas only when their backoff expired.
        """
        due = []
        for name, record in self._replicas.items():
            if record.state in (HealthState.SUSPECTED, HealthState.PROBATION):
                due.append(name)
            elif (
                record.state is HealthState.QUARANTINED
                and now_ms >= record.next_probe_at_ms
            ):
                due.append(name)
        return sorted(due)

    def note_probe_sent(self, name: str, now_ms: float) -> None:
        """A probe left for ``name``; pre-arm the next quarantine slot."""
        record = self._replicas.get(name)
        if record is not None and record.state is HealthState.QUARANTINED:
            record.next_probe_at_ms = now_ms + record.backoff_ms

    # -- transitions ---------------------------------------------------------
    def _quarantine(
        self, record: ReplicaHealth, now_ms: float, reason: str
    ) -> None:
        if record.state is HealthState.PROBATION:
            # A probation bounce escalates the previous backoff instead of
            # restarting it — the replica keeps proving itself unstable.
            record.backoff_ms = min(
                max(record.backoff_ms, self.config.backoff_initial_ms)
                * self.config.backoff_factor,
                self.config.backoff_max_ms,
            )
        else:
            record.backoff_ms = self.config.backoff_initial_ms
        record.quarantine_count += 1
        record.next_probe_at_ms = now_ms + record.backoff_ms
        self._transition(record, HealthState.QUARANTINED, now_ms, reason)

    def _enter_probation(
        self, record: ReplicaHealth, now_ms: float, reason: str
    ) -> None:
        record.consecutive_faults = 0
        # The admitting evidence counts as the first probation success.
        record.consecutive_successes = 1
        self._transition(record, HealthState.PROBATION, now_ms, reason)
        if record.consecutive_successes >= self.config.probation_after:
            self._transition(
                record, HealthState.HEALTHY, now_ms, reason
            )

    def _transition(
        self,
        record: ReplicaHealth,
        new_state: HealthState,
        now_ms: float,
        reason: str,
    ) -> None:
        if record.state is new_state:
            return
        event = HealthEvent(
            replica=record.name,
            old_state=record.state,
            new_state=new_state,
            at_ms=now_ms,
            reason=reason,
        )
        record.state = new_state
        record.entered_state_at_ms = now_ms
        if new_state is HealthState.HEALTHY:
            record.consecutive_faults = 0
            record.consecutive_successes = 0
        self.events.append(event)
        for listener in list(self._listeners):
            listener(event)

    def __repr__(self) -> str:
        by_state: Dict[str, int] = {}
        for record in self._replicas.values():
            by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
        return f"<HealthMonitor {by_state}>"
