"""Replica health subsystem: suspicion, quarantine, and re-admission.

A per-replica state machine (HEALTHY → SUSPECTED → QUARANTINED →
PROBATION) driven by the timing-fault evidence the gateway handlers
already collect, with exponential-backoff re-admission probes.  The
selection layer consumes the resulting health view to exclude
quarantined replicas and discount suspected ones; the Proteus manager
receives every transition as a :class:`HealthEvent`.

See docs/ARCHITECTURE.md §5 for the full design.
"""

from .monitor import HealthListener, HealthMonitor, ReplicaHealth
from .state import FaultKind, HealthConfig, HealthEvent, HealthState

__all__ = [
    "FaultKind",
    "HealthConfig",
    "HealthEvent",
    "HealthListener",
    "HealthMonitor",
    "HealthState",
    "ReplicaHealth",
]
