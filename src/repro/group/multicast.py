"""Member-list multicast on top of a group.

The paper's timing fault handler uses "a multicast group ... similar to a
connection group in AQuA except that it allows a message to be sent to a
specified list of members in a group rather than be broadcast to all group
members" (§5.4).  :class:`MulticastGroup` provides exactly that: sends go
to an explicit subset of the current view (default: everyone), and the
per-member overhead of the LAN model is paid for the subset actually
addressed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..net.message import Message
from ..net.transport import Transport
from .membership import Group, MembershipError

__all__ = ["MulticastGroup"]


class MulticastGroup:
    """Send-to-subset multicast bound to one group and one transport."""

    def __init__(self, group: Group, transport: Transport) -> None:
        self.group = group
        self.transport = transport

    @property
    def name(self) -> str:
        """The underlying group's name."""
        return self.group.name

    def members(self) -> List[str]:
        """Members of the current view."""
        return self.group.members

    def send(
        self,
        message: Message,
        members: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Multicast ``message`` to ``members`` (default: the whole view).

        Members named but no longer in the current view are skipped — a
        racing eviction must not fail the whole send.  Returns the member
        names actually addressed.

        Raises :class:`MembershipError` if no named member remains in the
        view (the caller's view of the group is entirely stale).
        """
        view_members = set(self.group.members)
        if members is None:
            targets = self.group.members
        else:
            targets = [m for m in members if m in view_members]
        if not targets:
            raise MembershipError(
                f"no live destinations in group {self.group.name!r} "
                f"(requested {list(members) if members is not None else 'all'})"
            )
        tagged = message.with_header("group", self.group.name)
        self.transport.multicast(tagged, targets)
        return targets

    def __repr__(self) -> str:
        return f"<MulticastGroup {self.group.name!r} members={len(self.group.members)}>"
