"""Facade tying membership, failure detection and multicast together.

:class:`GroupCommunication` is our Maestro/Ensemble analog: processes join
named groups, send to member subsets, and receive *membership change
notifications* with a realistic delay after a member crashes.  The paper
relies on these notifications to drop crashed replicas from each client's
information repository (§5.4): "When a member of a multicast group crashes,
Maestro-Ensemble detects the failure and notifies all the group members
about the change in the membership."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..net.lan import LanModel
from ..net.transport import Transport
from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer
from .failure_detector import FailureDetector
from .membership import GroupView, MembershipService
from .multicast import MulticastGroup

__all__ = ["GroupCommunication"]

ViewCallback = Callable[[GroupView], None]


class GroupCommunication:
    """System-wide group communication service.

    Parameters
    ----------
    sim, lan, transport:
        Simulation substrate.
    notify_delay_ms:
        Delay between a membership change being installed and each member
        learning about it (propagation of the view-change protocol).
    failure_detector:
        Detector used to evict crashed members; a default one is built if
        not supplied.
    """

    def __init__(
        self,
        sim: Simulator,
        lan: LanModel,
        transport: Transport,
        notify_delay_ms: float = 1.0,
        failure_detector: Optional[FailureDetector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if notify_delay_ms < 0:
            raise ValueError(f"notify_delay_ms must be >= 0, got {notify_delay_ms}")
        self.sim = sim
        self.lan = lan
        self.transport = transport
        self.notify_delay_ms = float(notify_delay_ms)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.membership = MembershipService()
        self.failure_detector = failure_detector or FailureDetector(sim, lan)
        self.failure_detector.on_crash(self._on_crash)
        # (group name, member name) -> view-change callbacks
        self._view_callbacks: Dict[Tuple[str, str], List[ViewCallback]] = {}
        self._multicast_groups: Dict[str, MulticastGroup] = {}

    # -- group lifecycle ------------------------------------------------------
    def join(self, group_name: str, member: str, watch: bool = True) -> GroupView:
        """Add ``member`` (a host name) to ``group_name``.

        ``watch=True`` (the default for server replicas) also puts the
        member under failure detection; clients typically join unwatched.
        """
        group = self.membership.get_or_create(group_name)
        view = group.join(member)
        if watch:
            self.failure_detector.watch(member)
        self.tracer.emit(
            self.sim.now, "ensemble", "group.join",
            group=group_name, member=member, view=view.view_id,
        )
        self._announce(group_name, view)
        return view

    def leave(self, group_name: str, member: str) -> GroupView:
        """Gracefully remove ``member`` from ``group_name``."""
        group = self.membership.get(group_name)
        view = group.leave(member)
        self.tracer.emit(
            self.sim.now, "ensemble", "group.leave",
            group=group_name, member=member, view=view.view_id,
        )
        self._announce(group_name, view)
        return view

    def multicast_group(self, group_name: str) -> MulticastGroup:
        """The send-to-subset endpoint for ``group_name``."""
        mgroup = self._multicast_groups.get(group_name)
        if mgroup is None:
            group = self.membership.get_or_create(group_name)
            mgroup = MulticastGroup(group, self.transport)
            self._multicast_groups[group_name] = mgroup
        return mgroup

    def view(self, group_name: str) -> GroupView:
        """Current view of ``group_name``."""
        return self.membership.get(group_name).view()

    # -- notifications --------------------------------------------------------
    def on_view_change(
        self, group_name: str, member: str, callback: ViewCallback
    ) -> None:
        """Deliver future views of ``group_name`` to ``member``'s callback.

        Notifications arrive ``notify_delay_ms`` after the view is
        installed, and only if the member host is still up at that time.
        """
        key = (group_name, member)
        self._view_callbacks.setdefault(key, []).append(callback)

    def _announce(self, group_name: str, view: GroupView) -> None:
        for (name, member), callbacks in list(self._view_callbacks.items()):
            if name != group_name:
                continue
            for callback in list(callbacks):
                self.sim.call_in(
                    self.notify_delay_ms,
                    self._make_notifier(member, callback, view),
                )

    def _make_notifier(
        self, member: str, callback: ViewCallback, view: GroupView
    ) -> Callable[[], None]:
        def notify() -> None:
            if self.lan.has_host(member) and not self.lan.is_up(member):
                return  # crashed members receive nothing
            callback(view)

        return notify

    # -- crash handling -------------------------------------------------------
    def _on_crash(self, host_name: str) -> None:
        views = self.membership.evict_everywhere(host_name)
        self.tracer.emit(
            self.sim.now, "ensemble", "group.evict",
            member=host_name, groups=[v.group for v in views],
        )
        for view in views:
            self._announce(view.group, view)

    def __repr__(self) -> str:
        return (
            f"<GroupCommunication groups={len(self.membership.group_names())} "
            f"notify_delay={self.notify_delay_ms}ms>"
        )
