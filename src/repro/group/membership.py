"""Group membership with views.

Replicas offering the same service, and the clients talking to them, join
a named *group*.  Membership is versioned into :class:`GroupView` objects;
every change (join, leave, crash eviction) installs a new view and notifies
listeners — the contract AQuA inherits from Maestro/Ensemble and that the
timing fault handler relies on to purge crashed replicas from its
information repository (paper §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["GroupView", "Group", "MembershipService", "MembershipError"]

ViewListener = Callable[["GroupView", "GroupView"], None]


class MembershipError(Exception):
    """Raised on invalid membership operations."""


@dataclass(frozen=True)
class GroupView:
    """An immutable snapshot of a group's membership.

    Attributes
    ----------
    group:
        Group name.
    view_id:
        Monotonically increasing version, starting at 1.
    members:
        Member names in join order.
    """

    group: str
    view_id: int
    members: Tuple[str, ...]

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)


class Group:
    """One named group and its view history."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._members: List[str] = []
        self._view_id = 0
        self._listeners: List[ViewListener] = []
        self._history: List[GroupView] = [self.view()]

    # -- views ------------------------------------------------------------
    def view(self) -> GroupView:
        """The current view."""
        return GroupView(
            group=self.name, view_id=self._view_id, members=tuple(self._members)
        )

    def history(self) -> List[GroupView]:
        """All installed views, oldest first."""
        return list(self._history)

    @property
    def members(self) -> List[str]:
        """Current member names (copy)."""
        return list(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # -- changes -----------------------------------------------------------
    def join(self, member: str) -> GroupView:
        """Add ``member``; installs and returns the new view."""
        if member in self._members:
            raise MembershipError(
                f"{member!r} is already a member of group {self.name!r}"
            )
        return self._install(self._members + [member])

    def leave(self, member: str) -> GroupView:
        """Remove ``member``; installs and returns the new view."""
        if member not in self._members:
            raise MembershipError(
                f"{member!r} is not a member of group {self.name!r}"
            )
        return self._install([m for m in self._members if m != member])

    def evict(self, member: str) -> Optional[GroupView]:
        """Like :meth:`leave` but idempotent (used on crash detection)."""
        if member not in self._members:
            return None
        return self.leave(member)

    def _install(self, members: List[str]) -> GroupView:
        old_view = self.view()
        self._members = members
        self._view_id += 1
        new_view = self.view()
        self._history.append(new_view)
        for listener in list(self._listeners):
            listener(old_view, new_view)
        return new_view

    # -- notification --------------------------------------------------------
    def subscribe(self, listener: ViewListener) -> None:
        """Call ``listener(old_view, new_view)`` on every future change."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: ViewListener) -> None:
        """Remove a previously subscribed listener (idempotent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def __repr__(self) -> str:
        return (
            f"<Group {self.name!r} view={self._view_id} "
            f"members={len(self._members)}>"
        )


class MembershipService:
    """Registry of all groups in the system."""

    def __init__(self) -> None:
        self._groups: Dict[str, Group] = {}

    def create(self, name: str) -> Group:
        """Create a new empty group (error if the name is taken)."""
        if name in self._groups:
            raise MembershipError(f"group {name!r} already exists")
        group = Group(name)
        self._groups[name] = group
        return group

    def get(self, name: str) -> Group:
        """Look up an existing group."""
        try:
            return self._groups[name]
        except KeyError:
            raise MembershipError(f"no such group {name!r}") from None

    def get_or_create(self, name: str) -> Group:
        """Look up ``name``, creating the group if needed."""
        group = self._groups.get(name)
        if group is None:
            group = self.create(name)
        return group

    def groups_of(self, member: str) -> List[Group]:
        """All groups the member currently belongs to."""
        return [g for g in self._groups.values() if member in g]

    def evict_everywhere(self, member: str) -> List[GroupView]:
        """Remove a crashed member from every group it belongs to."""
        views = []
        for group in self.groups_of(member):
            view = group.evict(member)
            if view is not None:
                views.append(view)
        return views

    def group_names(self) -> List[str]:
        """Sorted names of all groups."""
        return sorted(self._groups)

    def __repr__(self) -> str:
        return f"<MembershipService groups={len(self._groups)}>"
