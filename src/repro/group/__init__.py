"""Group communication substrate (Maestro/Ensemble analog).

Versioned group membership, heartbeat-style crash detection, and
send-to-subset multicast with delayed membership-change notifications.
"""

from .ensemble import GroupCommunication
from .failure_detector import FailureDetector
from .membership import Group, GroupView, MembershipError, MembershipService
from .multicast import MulticastGroup

__all__ = [
    "GroupCommunication",
    "FailureDetector",
    "Group",
    "GroupView",
    "MembershipError",
    "MembershipService",
    "MulticastGroup",
]
