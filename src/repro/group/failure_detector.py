"""Crash failure detection.

Maestro/Ensemble detects member crashes and announces membership changes.
Our analog is a heartbeat-style detector: it samples each watched host's
liveness every ``poll_interval_ms`` and declares a crash after the host has
been observed down for ``confirm_polls`` consecutive samples.  The product
of the two is the *detection latency* — the window during which the paper's
selection algorithm must survive on redundancy alone, which is exactly why
Algorithm 1 over-provisions by one replica.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net.lan import LanModel
from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer

__all__ = ["FailureDetector"]

CrashListener = Callable[[str], None]


class FailureDetector:
    """Periodically polls host liveness and reports confirmed crashes.

    Parameters
    ----------
    sim, lan:
        Kernel and topology.
    poll_interval_ms:
        Gap between liveness samples for each watched host.
    confirm_polls:
        Consecutive "down" samples required before declaring a crash
        (guards against transient unreachability).
    vantage:
        Optional host the detector observes *from*.  With a vantage set,
        a watched host severed from it (in either direction — probes out
        or replies back) samples as down, so partitions produce the same
        eviction path as crashes.  ``None`` (the default) keeps the
        legacy oracle behaviour: only ``lan.is_up`` matters.
    """

    def __init__(
        self,
        sim: Simulator,
        lan: LanModel,
        poll_interval_ms: float = 50.0,
        confirm_polls: int = 2,
        tracer: Optional[Tracer] = None,
        vantage: Optional[str] = None,
    ) -> None:
        if poll_interval_ms <= 0:
            raise ValueError(f"poll_interval_ms must be > 0, got {poll_interval_ms}")
        if confirm_polls < 1:
            raise ValueError(f"confirm_polls must be >= 1, got {confirm_polls}")
        self.sim = sim
        self.lan = lan
        self.poll_interval_ms = float(poll_interval_ms)
        self.confirm_polls = int(confirm_polls)
        self.vantage = vantage
        self.tracer = tracer if tracer is not None else NullTracer()
        self._listeners: List[CrashListener] = []
        self._watched: Dict[str, int] = {}  # host -> consecutive down samples
        self._declared: Dict[str, float] = {}  # host -> time of declaration

    @property
    def detection_latency_ms(self) -> float:
        """Worst-case time from crash to declaration."""
        return self.poll_interval_ms * (self.confirm_polls + 1)

    # -- wiring --------------------------------------------------------------
    def watch(self, host_name: str) -> None:
        """Start monitoring ``host_name`` (idempotent)."""
        self.lan.host(host_name)  # validate
        if host_name in self._watched:
            # A re-watch (member rejoin) is a fresh sighting: suspicion
            # accumulated before a partition cut must not carry across
            # it, or the next blip confirms a "crash" in fewer polls
            # than the detector promises.
            self._watched[host_name] = 0
            return
        self._watched[host_name] = 0
        self.sim.call_in(
            self.poll_interval_ms, lambda: self._poll(host_name), daemon=True
        )

    def unwatch(self, host_name: str) -> None:
        """Stop monitoring ``host_name`` (idempotent)."""
        self._watched.pop(host_name, None)

    def on_crash(self, listener: CrashListener) -> Callable[[], None]:
        """Call ``listener(host_name)`` when a crash is confirmed.

        Returns an unsubscribe callable (idempotent), so short-lived
        subscribers — e.g. a client handler's health monitor — can detach
        without leaving a dangling reference in the detector.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    # -- inspection ------------------------------------------------------------
    def is_declared_crashed(self, host_name: str) -> bool:
        """Whether a crash has been declared for this host."""
        return host_name in self._declared

    def declared_crashes(self) -> Dict[str, float]:
        """Map of declared-crashed hosts to the declaration time."""
        return dict(self._declared)

    def forget(self, host_name: str) -> None:
        """Clear a crash declaration (call when the host recovers)."""
        self.sight(host_name)

    def sight(self, host_name: str) -> None:
        """Register a fresh sighting of ``host_name``.

        A heal after a partition (or any other positive liveness
        evidence from outside the poll loop) clears both the crash
        declaration and the consecutive-down count: suspicion gathered
        before the cut must not survive it.
        """
        self._declared.pop(host_name, None)
        if host_name in self._watched:
            self._watched[host_name] = 0

    def _observes_up(self, host_name: str) -> bool:
        """One liveness sample: up, and reachable from the vantage point
        in both directions (a one-way cut kills either the probe or its
        answer — the detector cannot tell which, only that it saw
        nothing)."""
        if not self.lan.is_up(host_name):
            return False
        if self.vantage is None or self.vantage == host_name:
            return True
        return self.lan.reachable(
            self.vantage, host_name
        ) and self.lan.reachable(host_name, self.vantage)

    # -- engine ------------------------------------------------------------
    def _poll(self, host_name: str) -> None:
        if host_name not in self._watched:
            return  # unwatched in the meantime
        if self._observes_up(host_name):
            self._watched[host_name] = 0
            if host_name in self._declared:
                # Recovered without an explicit forget(); treat as rejoin.
                self._declared.pop(host_name)
        else:
            self._watched[host_name] += 1
            if (
                self._watched[host_name] >= self.confirm_polls
                and host_name not in self._declared
            ):
                self._declared[host_name] = self.sim.now
                self.tracer.emit(
                    self.sim.now, "failure-detector", "fd.crash", host=host_name
                )
                for listener in list(self._listeners):
                    listener(host_name)
        self.sim.call_in(
            self.poll_interval_ms, lambda: self._poll(host_name), daemon=True
        )

    def __repr__(self) -> str:
        return (
            f"<FailureDetector watched={len(self._watched)} "
            f"declared={len(self._declared)}>"
        )
