"""Replica-side components: applications, load models, fault injection."""

from .faults import CrashSchedule, FaultInjector
from .load import (
    ConstantLoad,
    CoupledLoad,
    HostActivity,
    LoadModel,
    PeriodicLoad,
    ServiceProfile,
    StepLoad,
    paper_service_model,
)
from .server import ReplicaApplication

__all__ = [
    "ReplicaApplication",
    "ServiceProfile",
    "LoadModel",
    "ConstantLoad",
    "StepLoad",
    "PeriodicLoad",
    "HostActivity",
    "CoupledLoad",
    "paper_service_model",
    "CrashSchedule",
    "FaultInjector",
]
