"""Fault injection: replica crashes and recoveries on a schedule.

The paper's §5.3.2 guarantee — the selected set still meets the client's
probability after a single member crash — is exercised by crashing hosts
mid-run.  A crash here is fail-stop: the host drops off the LAN (all
in-flight deliveries to it are lost), its server handler stops consuming
its queue, and the failure detector eventually evicts it from its groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.lan import LanModel
from ..sim.kernel import Simulator
from ..sim.trace import NullTracer, Tracer

__all__ = ["CrashSchedule", "FaultInjector"]


@dataclass(frozen=True)
class CrashSchedule:
    """One scripted crash (and optional recovery) of a host.

    Attributes
    ----------
    host:
        The host to crash.
    crash_at_ms:
        Simulated time of the crash.
    recover_at_ms:
        Optional time the host comes back; ``None`` means it stays down.
    """

    host: str
    crash_at_ms: float
    recover_at_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.crash_at_ms < 0:
            raise ValueError(f"crash time must be >= 0, got {self.crash_at_ms}")
        if self.recover_at_ms is not None and self.recover_at_ms <= self.crash_at_ms:
            raise ValueError("recovery must come strictly after the crash")


class FaultInjector:
    """Applies :class:`CrashSchedule` entries to the running system.

    Components with crash-sensitive internal state (the server handlers)
    register per-host ``on_crash`` / ``on_recover`` hooks; the injector
    marks the host down on the LAN *and* runs the hooks, so queue draining
    stops at the same instant deliveries start being dropped.
    """

    def __init__(
        self,
        sim: Simulator,
        lan: LanModel,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.lan = lan
        self.tracer = tracer if tracer is not None else NullTracer()
        self._crash_hooks: Dict[str, List[Callable[[], None]]] = {}
        self._recover_hooks: Dict[str, List[Callable[[], None]]] = {}
        self.crashes_injected = 0
        self.recoveries_injected = 0

    # -- wiring --------------------------------------------------------------
    def on_crash(self, host: str, hook: Callable[[], None]) -> None:
        """Run ``hook()`` at the instant ``host`` crashes."""
        self._crash_hooks.setdefault(host, []).append(hook)

    def on_recover(self, host: str, hook: Callable[[], None]) -> None:
        """Run ``hook()`` at the instant ``host`` recovers."""
        self._recover_hooks.setdefault(host, []).append(hook)

    # -- scheduling ------------------------------------------------------------
    def schedule(self, schedule: CrashSchedule) -> None:
        """Arm one crash (and its optional recovery)."""
        self.lan.host(schedule.host)  # validate early
        self.sim.call_at(schedule.crash_at_ms, lambda: self.crash_now(schedule.host))
        if schedule.recover_at_ms is not None:
            self.sim.call_at(
                schedule.recover_at_ms, lambda: self.recover_now(schedule.host)
            )

    def schedule_all(self, schedules: List[CrashSchedule]) -> None:
        """Arm several crash schedules."""
        for schedule in schedules:
            self.schedule(schedule)

    # -- immediate injection ---------------------------------------------------
    def crash_now(self, host: str) -> None:
        """Fail-stop ``host`` at the current instant (idempotent)."""
        if not self.lan.is_up(host):
            return
        self.lan.mark_down(host)
        self.crashes_injected += 1
        self.tracer.emit(self.sim.now, "fault-injector", "fault.crash", host=host)
        for hook in self._crash_hooks.get(host, []):
            hook()

    def recover_now(self, host: str) -> None:
        """Bring ``host`` back up at the current instant (idempotent)."""
        if self.lan.is_up(host):
            return
        self.lan.mark_up(host)
        self.recoveries_injected += 1
        self.tracer.emit(self.sim.now, "fault-injector", "fault.recover", host=host)
        for hook in self._recover_hooks.get(host, []):
            hook()

    def __repr__(self) -> str:
        return (
            f"<FaultInjector crashes={self.crashes_injected} "
            f"recoveries={self.recoveries_injected}>"
        )
