"""Service-time and host-load models for replicas.

The paper's system model (§3) assumes "the load on a replica may fluctuate
and ... periods of high load may make it less responsive".  A replica's
service duration here is

    duration = base_distribution.sample() × load_factor(now)

where the base distribution captures the request's intrinsic cost and the
load factor captures time-varying host contention.  The paper's §6
experiments "simulated the load on the servers by having each replica
respond to a request after a delay that was normally distributed with a
mean of 100 ms and a variance of 50 ms" — :func:`paper_service_model`
builds exactly that profile.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..sim.random import Distribution, Normal

__all__ = [
    "LoadModel",
    "ConstantLoad",
    "StepLoad",
    "PeriodicLoad",
    "HostActivity",
    "CoupledLoad",
    "ServiceProfile",
    "paper_service_model",
]


class LoadModel:
    """Time-varying multiplicative load factor on a host."""

    def factor(self, now_ms: float) -> float:
        """The service-time multiplier in effect at ``now_ms`` (>= 0)."""
        raise NotImplementedError


class ConstantLoad(LoadModel):
    """A fixed load factor (1.0 = nominal)."""

    def __init__(self, factor: float = 1.0):
        if factor < 0:
            raise ValueError(f"load factor must be >= 0, got {factor}")
        self._factor = float(factor)

    def factor(self, now_ms: float) -> float:
        return self._factor

    def __repr__(self) -> str:
        return f"ConstantLoad({self._factor})"


class StepLoad(LoadModel):
    """Piecewise-constant load given as ``[(start_ms, factor), ...]``.

    The factor at time ``t`` is the one of the last step whose start is
    ``<= t``; before the first step the factor is ``initial``.  Use for
    scripted load spikes ("host h3 becomes 3× slower at t=30 s").
    """

    def __init__(
        self,
        steps: Sequence[Tuple[float, float]],
        initial: float = 1.0,
    ):
        if initial < 0:
            raise ValueError(f"initial factor must be >= 0, got {initial}")
        ordered = sorted(steps)
        for _start, factor in ordered:
            if factor < 0:
                raise ValueError(f"load factors must be >= 0, got {factor}")
        self._starts = [start for start, _factor in ordered]
        self._factors = [factor for _start, factor in ordered]
        self._initial = float(initial)

    def factor(self, now_ms: float) -> float:
        index = bisect_right(self._starts, now_ms)
        if index == 0:
            return self._initial
        return self._factors[index - 1]

    def __repr__(self) -> str:
        return f"StepLoad(steps={len(self._starts)})"


class PeriodicLoad(LoadModel):
    """Sinusoidal load oscillation around a mean factor.

    ``factor(t) = mean + amplitude · sin(2π (t + phase) / period)``,
    clipped at zero.  Models diurnal-style slow oscillation compressed to
    simulation scale.
    """

    def __init__(
        self,
        mean: float = 1.0,
        amplitude: float = 0.5,
        period_ms: float = 60_000.0,
        phase_ms: float = 0.0,
    ):
        if mean < 0 or amplitude < 0:
            raise ValueError("mean and amplitude must be >= 0")
        if period_ms <= 0:
            raise ValueError(f"period must be > 0, got {period_ms}")
        self.mean = float(mean)
        self.amplitude = float(amplitude)
        self.period_ms = float(period_ms)
        self.phase_ms = float(phase_ms)

    def factor(self, now_ms: float) -> float:
        angle = 2.0 * math.pi * (now_ms + self.phase_ms) / self.period_ms
        return max(0.0, self.mean + self.amplitude * math.sin(angle))

    def __repr__(self) -> str:
        return (
            f"PeriodicLoad(mean={self.mean}, amp={self.amplitude}, "
            f"period={self.period_ms}ms)"
        )


class HostActivity:
    """How many co-located replicas on each host are busy right now.

    The paper's system model allows "a machine may host multiple
    replicas" (§3); when several of them service requests concurrently
    they contend for the CPU.  Server handlers report service begin/end
    here, and :class:`CoupledLoad` turns the concurrency into a slowdown.
    """

    def __init__(self):
        self._busy: Dict[str, int] = {}

    def enter(self, host: str) -> None:
        """A replica on ``host`` started servicing a request."""
        self._busy[host] = self._busy.get(host, 0) + 1

    def exit(self, host: str) -> None:
        """A replica on ``host`` finished servicing a request."""
        current = self._busy.get(host, 0)
        if current <= 0:
            raise ValueError(f"exit() without matching enter() on {host!r}")
        self._busy[host] = current - 1

    def busy(self, host: str) -> int:
        """Number of replicas on ``host`` currently in service."""
        return self._busy.get(host, 0)

    def __repr__(self) -> str:
        active = {h: n for h, n in self._busy.items() if n}
        return f"<HostActivity busy={active}>"


class CoupledLoad(LoadModel):
    """Load factor driven by co-located replicas' concurrency.

    ``factor = base · (1 + alpha · other_busy)`` where ``other_busy`` is
    the number of *other* replicas on the same host currently in service
    — a linear CPU-contention model.  The sampling replica is itself about
    to run, so only its neighbours slow it down.
    """

    def __init__(self, activity: HostActivity, host: str, alpha: float = 1.0,
                 base: float = 1.0):
        if alpha < 0 or base < 0:
            raise ValueError("alpha and base must be >= 0")
        self.activity = activity
        self.host = host
        self.alpha = float(alpha)
        self.base = float(base)

    def factor(self, now_ms: float) -> float:
        others = max(0, self.activity.busy(self.host))
        return self.base * (1.0 + self.alpha * others)

    def __repr__(self) -> str:
        return (
            f"CoupledLoad(host={self.host!r}, alpha={self.alpha}, "
            f"base={self.base})"
        )


class ServiceProfile:
    """Per-method service-time distributions plus a host load model.

    Parameters
    ----------
    default:
        Distribution used for methods without an explicit entry.
    per_method:
        Optional overrides keyed by method name (the paper's "multiple
        service interfaces" extension needs exactly this hook).
    load:
        The host's time-varying load factor.
    """

    def __init__(
        self,
        default: Distribution,
        per_method: Optional[Dict[str, Distribution]] = None,
        load: Optional[LoadModel] = None,
    ):
        self.default = default
        self.per_method = dict(per_method or {})
        self.load = load or ConstantLoad(1.0)

    def distribution_for(self, method: str) -> Distribution:
        """The base service-time distribution for ``method``."""
        return self.per_method.get(method, self.default)

    def sample_duration(
        self, method: str, now_ms: float, rng: np.random.Generator
    ) -> float:
        """One service duration in ms, including the current load factor."""
        base = self.distribution_for(method).sample(rng)
        return max(0.0, base * self.load.factor(now_ms))

    def __repr__(self) -> str:
        return (
            f"<ServiceProfile default={self.default!r} "
            f"overrides={sorted(self.per_method)} load={self.load!r}>"
        )


def paper_service_model(
    mean_ms: float = 100.0,
    sigma_ms: float = 50.0,
    load: Optional[LoadModel] = None,
) -> ServiceProfile:
    """The §6 workload: normal service delay, mean 100 ms, "variance" 50 ms.

    The paper's wording is ambiguous between σ=50 ms and σ²=50 ms²;
    σ=50 ms is the reading consistent with the failure probabilities of
    Fig. 5 (see DESIGN.md), and is the default here.  Negative samples are
    clipped at zero, as any physical delay must be.
    """
    return ServiceProfile(default=Normal(mean_ms, sigma_ms), load=load)
