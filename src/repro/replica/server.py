"""The replica-side application: servant + service-time behaviour.

A :class:`ReplicaApplication` is what runs on one server host: it owns the
servant (business logic), knows how long requests take there (service
profile × host load), and performs the DII upcall.  The *gateway* concerns
— request queue, stage timestamps, performance publication — live in
:class:`repro.gateway.handlers.timing_fault.TimingFaultServerHandler`,
mirroring the paper's separation between the AQuA server and its gateway.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..orb.dii import DynamicInvoker
from ..orb.object import MethodRequest, Servant
from ..sim.random import RandomStreams
from .load import HostActivity, ServiceProfile

__all__ = ["ReplicaApplication"]


class ReplicaApplication:
    """One replica of a service, pinned to a host.

    Parameters
    ----------
    host:
        Name of the host the replica runs on (its network identity).
    servant:
        The application object implementing the service interface.
    profile:
        Service-time model (per-method distributions + host load).
    streams:
        Random-stream family; the replica draws service times from its own
        substream ``replica.<host>.service``.
    """

    def __init__(
        self,
        host: str,
        servant: Servant,
        profile: ServiceProfile,
        streams: RandomStreams,
        activity: Optional["HostActivity"] = None,
    ):
        self.host = host
        self.servant = servant
        self.profile = profile
        # Shared co-location tracker (paper §3: "a machine may host
        # multiple replicas"); None when the host runs a single replica.
        self.activity = activity
        self._invoker = DynamicInvoker(servant)
        self._rng: np.random.Generator = streams.stream(
            f"replica.{host}.{servant.interface.name}.service"
        )
        self.requests_served = 0

    @property
    def service(self) -> str:
        """Name of the service this replica offers."""
        return self.servant.interface.name

    def service_duration(self, method: str, now_ms: float) -> float:
        """Sample how long servicing ``method`` takes right now (ms)."""
        return self.profile.sample_duration(method, now_ms, self._rng)

    def begin_service(self) -> None:
        """Mark this replica busy for co-location load coupling."""
        if self.activity is not None:
            self.activity.enter(self.host)

    def end_service(self) -> None:
        """Mark this replica idle again."""
        if self.activity is not None:
            self.activity.exit(self.host)

    def execute(self, request: MethodRequest) -> Any:
        """Perform the servant upcall and return the reply value."""
        value = self._invoker.invoke(request)
        self.requests_served += 1
        return value

    def __repr__(self) -> str:
        return (
            f"<ReplicaApplication host={self.host!r} "
            f"service={self.service!r} served={self.requests_served}>"
        )
