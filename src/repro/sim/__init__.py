"""Discrete-event simulation substrate.

This package provides the simulated "machines and wires" on which the
reproduction runs: an event-driven kernel with a millisecond clock
(:class:`Simulator`), generator-based processes (:class:`Process`),
reproducible named random streams (:class:`RandomStreams`) and structured
tracing (:class:`Tracer`).
"""

from .events import AllOf, AnyOf, Event, EventState, Interrupt, SimulationError, Timeout
from .hostclock import ClockRegistry, HostClock
from .kernel import Simulator
from .process import Process
from .random import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    MarkovModulated,
    Mixture,
    Normal,
    Pareto,
    RandomStreams,
    TruncatedNormal,
    Uniform,
)
from .trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "HostClock",
    "ClockRegistry",
    "Process",
    "Event",
    "EventState",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "RandomStreams",
    "Distribution",
    "Constant",
    "Uniform",
    "Exponential",
    "Normal",
    "TruncatedNormal",
    "LogNormal",
    "Pareto",
    "Empirical",
    "Mixture",
    "MarkovModulated",
    "Tracer",
    "NullTracer",
    "TraceRecord",
]
