"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot synchronization point.  Processes wait on
events by yielding them; the kernel resumes every waiter when the event is
triggered.  Events may *succeed* (carrying a value) or *fail* (carrying an
exception), mirroring the familiar future/promise contract.

The kernel schedules :class:`Event` objects on its heap; everything that
"happens" in the simulation ultimately reduces to an event callback firing
at a simulated instant.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .kernel import Simulator

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "EventState",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party may attach a ``cause`` describing why the
    interruption happened (e.g. a crash notification).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:
        return f"Interrupt(cause={self.cause!r})"


class EventState(enum.Enum):
    """Lifecycle of an :class:`Event`."""

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"


class Event:
    """A one-shot occurrence at a simulated instant.

    Parameters
    ----------
    sim:
        The owning simulator.  Events are bound to exactly one simulator
        and may not be shared across kernels.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_queue_slot")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._state = EventState.PENDING
        # Slot index in the kernel's EventQueue while scheduled (-1
        # otherwise); lets daemon demotion find the entry in O(1).
        self._queue_slot = -1

    # -- inspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled to fire."""
        return self._state is not EventState.PENDING

    @property
    def processed(self) -> bool:
        """``True`` once all callbacks have run."""
        return self._state is EventState.PROCESSED

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Valid only once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload carried by the event (value or exception)."""
        if self._state is EventState.PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        self._arm(ok=True, value=value, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire carrying ``exception``.

        The exception is re-raised inside every waiting process.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._arm(ok=False, value=exception, delay=delay)
        return self

    def _arm(self, ok: bool, value: Any, delay: float) -> None:
        if self._state is not EventState.PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._ok = ok
        self._value = value
        self._state = EventState.TRIGGERED
        self.sim._schedule(self, delay)

    def _run_callbacks(self) -> None:
        """Invoked by the kernel when the event's instant arrives."""
        callbacks, self.callbacks = self.callbacks, []
        self._state = EventState.PROCESSED
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately if already fired."""
        if self._state is EventState.PROCESSED:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} state={self._state.value}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = EventState.TRIGGERED
        sim._schedule(self, delay)


class _CompositeEvent(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("composite events must share a simulator")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
        else:
            for event in self.events:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_CompositeEvent):
    """Fires as soon as any child event fires; value is that child's value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class AllOf(_CompositeEvent):
    """Fires once every child event has fired; value is the list of values."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])
