"""Generator-based simulated processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Each ``yield`` suspends the process until the yielded event fires;
the event's value is sent back into the generator (or its exception raised
inside it).  A process is itself an event that fires when the generator
returns, which makes ``yield other_process`` a natural join.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def worker(sim):
...     yield sim.timeout(5.0)
...     return "done"
>>> proc = sim.spawn(worker(sim))
>>> sim.run()
>>> proc.value
'done'
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator

__all__ = ["Process"]


class Process(Event):
    """A running simulated activity driven by a generator.

    Fires (as an event) when the generator finishes: successfully with the
    generator's return value, or failing with its uncaught exception.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_started")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._started = False
        # Kick off the process at the current simulated instant.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    # -- state -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return self._state.value == "pending"

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it resumes collapses to the latest cause.
        """
        if not self.alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting_on = self._waiting_on
        if waiting_on is not None:
            # Detach from the event we were waiting on so its later firing
            # does not resume us twice.
            try:
                waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup.add_callback(self._resume)
        wakeup.fail(Interrupt(cause))

    # -- engine ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._started = True
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # An unhandled interrupt terminates the process "successfully
            # killed": surface it as a failure so joiners notice.
            self.fail(interrupt)
            return
        except Exception as exc:
            self.fail(exc)
            return

        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances"
            )
        elif target.sim is not self.sim:
            error = SimulationError(
                "yielded event belongs to a different simulator"
            )
        else:
            error = None
        if error is not None:
            self.generator.close()
            self.fail(error)
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} state={self._state.value}>"
