"""The discrete-event simulation kernel.

:class:`Simulator` owns the simulated clock and the pending-event queue.
Time is a ``float`` in **milliseconds** throughout the repository, matching
the units the paper reports.

The pending set is an :class:`EventQueue` — a slotted, array-friendly
priority queue that packs each entry's ``(when, seq)`` priority into a
single integer key, keeps event references in a recycled slot table and
daemon flags in a flat byte array.  Dispatching an event therefore stops
allocating a fresh ``(when, seq, daemon, event)`` tuple per hop, and
daemon demotion is an O(1) flag flip instead of an O(n) heap scan, while
the pop order stays bit-for-bit identical to the historic tuple heap
(see ``tests/sim/test_event_queue.py``).

The kernel is deliberately small: events (:mod:`repro.sim.events`),
processes (:mod:`repro.sim.process`) and everything above them are built
from ``_schedule`` and the run loop below.
"""

from __future__ import annotations

import heapq
import struct
from array import array
from typing import Any, Callable, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process

__all__ = ["EventQueue", "Simulator"]

_FLOAT64 = struct.Struct(">d")
_SIGN_BIT = 0x8000000000000000
_UINT64_MASK = 0xFFFFFFFFFFFFFFFF
# Packed key layout: [64 bits ordered when][48 bits seq][32 bits slot].
_SEQ_BITS = 48
_SLOT_BITS = 32
_SLOT_MASK = (1 << _SLOT_BITS) - 1
_WHEN_SHIFT = _SEQ_BITS + _SLOT_BITS


def _time_key(when: float) -> int:
    """Map a float instant to an integer with the same total order.

    The IEEE-754 bit pattern of a non-negative double is already
    monotone in its value; negative values are order-reversed and fixed
    up with the standard sign-flip transform.  Integer comparison of
    the results is then exactly float comparison of the inputs.
    """
    # -0.0 == 0.0 must key identically (the tuple heap tied them and fell
    # to the sequence number); adding 0.0 canonicalizes the signed zero.
    bits = int.from_bytes(_FLOAT64.pack(when + 0.0), "big")
    if bits & _SIGN_BIT:
        return bits ^ _UINT64_MASK
    return bits | _SIGN_BIT


class EventQueue:
    """Slotted pending-event queue with heapq-identical ordering.

    Entries are single integers on a binary heap: the ordered bit
    pattern of ``when``, then a monotone FIFO sequence number, then the
    slot index — so popping compares plain ints (C-speed, no tuple per
    event).  Slot-indexed side tables hold what the tuple used to:
    event references (a recycled object list), the exact scheduled
    instant (a flat ``array('d')``) and the daemon flag (a bytearray).

    Ordering contract: pops come out in ascending ``(when, seq)``, the
    exact order of the historic ``(when, seq, daemon, event)`` tuple
    heap — ``seq`` is unique, so the daemon flag never decided a
    comparison there either.
    """

    __slots__ = ("_keys", "_events", "_whens", "_daemon", "_free", "_seq")

    def __init__(self) -> None:
        self._keys: List[int] = []
        self._events: List[Optional[Event]] = []
        self._whens = array("d")
        self._daemon = bytearray()
        self._free: List[int] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._keys)

    def push(self, when: float, event: Event, daemon: bool = False) -> None:
        """Enqueue ``event`` at instant ``when`` (FIFO-stable on ties)."""
        if self._free:
            slot = self._free.pop()
            self._events[slot] = event
            self._whens[slot] = when
            self._daemon[slot] = 1 if daemon else 0
        else:
            slot = len(self._events)
            if slot > _SLOT_MASK:
                raise SimulationError("event queue slot table overflow")
            self._events.append(event)
            self._whens.append(when)
            self._daemon.append(1 if daemon else 0)
        self._seq += 1
        event._queue_slot = slot
        heapq.heappush(
            self._keys,
            (_time_key(when) << _WHEN_SHIFT) | (self._seq << _SLOT_BITS) | slot,
        )

    def pop(self) -> Tuple[float, Event, bool]:
        """Dequeue and return ``(when, event, daemon)`` for the next event."""
        if not self._keys:
            raise SimulationError("pop() on an empty event queue")
        slot = heapq.heappop(self._keys) & _SLOT_MASK
        event = self._events[slot]
        when = self._whens[slot]
        daemon = bool(self._daemon[slot])
        self._events[slot] = None
        event._queue_slot = -1
        self._free.append(slot)
        return when, event, daemon

    def peek_when(self) -> float:
        """Instant of the next event, or ``inf`` when empty."""
        if not self._keys:
            return float("inf")
        return self._whens[self._keys[0] & _SLOT_MASK]

    def demote(self, event: Event) -> bool:
        """Flag a scheduled ``event`` as daemon; ``True`` if it flipped."""
        slot = event._queue_slot
        if slot < 0 or self._events[slot] is not event or self._daemon[slot]:
            return False
        self._daemon[slot] = 1
        return True


class Simulator:
    """Event-driven simulator with a monotonically advancing clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in milliseconds.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._processed_events = 0
        self._pending_live = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events the run loop has fired so far."""
        return self._processed_events

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    @property
    def pending_live(self) -> int:
        """Number of non-daemon events still pending."""
        return self._pending_live

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process from ``generator`` at the current instant."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} ms: clock already at {self._now} ms"
            )
        event = self.timeout(when - self._now)
        event.add_callback(lambda _event: callback())
        return event

    def call_in(
        self, delay: float, callback: Callable[[], None], daemon: bool = False
    ) -> Event:
        """Run ``callback()`` after ``delay`` milliseconds.

        ``daemon=True`` marks the firing as background activity: daemon
        events still fire during bounded runs (``run(until=...)``) but do
        not keep an unbounded ``run()`` alive.  Use it for self-reschedul-
        ing activities such as failure-detector polls.
        """
        event = self.timeout(delay)
        if daemon:
            self._demote_to_daemon(event)
        event.add_callback(lambda _event: callback())
        return event

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        """Enqueue ``event`` to fire ``delay`` ms from now (FIFO-stable)."""
        self._pending_live += 1
        self._queue.push(self._now + delay, event)

    def _demote_to_daemon(self, event: Event) -> None:
        """Re-tag an already scheduled event as daemon (kernel-internal)."""
        if self._queue.demote(event):
            self._pending_live -= 1

    # -- run loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')`` if none."""
        return self._queue.peek_when()

    def step(self) -> None:
        """Fire the single next event, advancing the clock to it."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, event, daemon = self._queue.pop()
        if not daemon:
            self._pending_live -= 1
        self._now = when
        self._processed_events += 1
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until work drains or the clock would pass ``until``.

        Without ``until``, the run stops once no *non-daemon* events remain
        (daemon background activity alone does not keep a simulation
        alive).  With ``until`` set, all events — daemon included — fire up
        to the horizon and the clock is left exactly at ``until``, so
        repeated ``run(until=...)`` calls compose predictably.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run until {until} ms is in the past (now {self._now} ms)"
            )
        while self._queue:
            if until is None and self._pending_live == 0:
                return
            when = self._queue.peek_when()
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` has been processed; return its value.

        Raises the event's exception if it failed, and
        :class:`SimulationError` if the queue drains (or ``limit`` is hit)
        before the event fires.
        """
        while not event.processed:
            if not self._queue:
                raise SimulationError("simulation ended before event fired")
            if limit is not None and self.peek() > limit:
                raise SimulationError(
                    f"event did not fire before limit {limit} ms"
                )
            self.step()
        if not event.ok:
            raise event.value
        return event.value

    def __repr__(self) -> str:
        return (
            f"<Simulator now={self._now:.3f}ms "
            f"pending={len(self._queue)} processed={self._processed_events}>"
        )
