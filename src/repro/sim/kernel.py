"""The discrete-event simulation kernel.

:class:`Simulator` owns the simulated clock and the pending-event heap.
Time is a ``float`` in **milliseconds** throughout the repository, matching
the units the paper reports.

The kernel is deliberately small: events (:mod:`repro.sim.events`),
processes (:mod:`repro.sim.process`) and everything above them are built
from ``_schedule`` and the run loop below.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, SimulationError, Timeout
from .process import Process

__all__ = ["Simulator"]


class Simulator:
    """Event-driven simulator with a monotonically advancing clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in milliseconds.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, bool, Event]] = []
        self._sequence = 0
        self._processed_events = 0
        self._pending_live = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events the run loop has fired so far."""
        return self._processed_events

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    @property
    def pending_live(self) -> int:
        """Number of non-daemon events still on the heap."""
        return self._pending_live

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process from ``generator`` at the current instant."""
        return Process(self, generator, name=name)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} ms: clock already at {self._now} ms"
            )
        event = self.timeout(when - self._now)
        event.add_callback(lambda _event: callback())
        return event

    def call_in(
        self, delay: float, callback: Callable[[], None], daemon: bool = False
    ) -> Event:
        """Run ``callback()`` after ``delay`` milliseconds.

        ``daemon=True`` marks the firing as background activity: daemon
        events still fire during bounded runs (``run(until=...)``) but do
        not keep an unbounded ``run()`` alive.  Use it for self-reschedul-
        ing activities such as failure-detector polls.
        """
        event = self.timeout(delay)
        if daemon:
            self._demote_to_daemon(event)
        event.add_callback(lambda _event: callback())
        return event

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        """Place ``event`` on the heap ``delay`` ms from now (FIFO-stable)."""
        self._sequence += 1
        self._pending_live += 1
        heapq.heappush(
            self._heap, (self._now + delay, self._sequence, False, event)
        )

    def _demote_to_daemon(self, event: Event) -> None:
        """Re-tag an already scheduled event as daemon (kernel-internal)."""
        for index, (when, seq, daemon, entry) in enumerate(self._heap):
            if entry is event and not daemon:
                self._heap[index] = (when, seq, True, entry)
                self._pending_live -= 1
                return

    # -- run loop ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')`` if none."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Fire the single next event, advancing the clock to it."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        when, _seq, daemon, event = heapq.heappop(self._heap)
        if not daemon:
            self._pending_live -= 1
        self._now = when
        self._processed_events += 1
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until work drains or the clock would pass ``until``.

        Without ``until``, the run stops once no *non-daemon* events remain
        (daemon background activity alone does not keep a simulation
        alive).  With ``until`` set, all events — daemon included — fire up
        to the horizon and the clock is left exactly at ``until``, so
        repeated ``run(until=...)`` calls compose predictably.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run until {until} ms is in the past (now {self._now} ms)"
            )
        while self._heap:
            if until is None and self._pending_live == 0:
                return
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` has been processed; return its value.

        Raises the event's exception if it failed, and
        :class:`SimulationError` if the heap drains (or ``limit`` is hit)
        before the event fires.
        """
        while not event.processed:
            if not self._heap:
                raise SimulationError("simulation ended before event fired")
            if limit is not None and self.peek() > limit:
                raise SimulationError(
                    f"event did not fire before limit {limit} ms"
                )
            self.step()
        if not event.ok:
            raise event.value
        return event.value

    def __repr__(self) -> str:
        return (
            f"<Simulator now={self._now:.3f}ms "
            f"pending={len(self._heap)} processed={self._processed_events}>"
        )
